//! §5 — the Nagel–Schreckenberg traffic model (experiments E6, E7; Figure 3).
//!
//! Renders the paper's exact Figure-3 configuration (200 cars, length 1000,
//! p = 0.13, v_max = 5) as a space–time diagram, shows the p = 0 control
//! (no jams without randomness), demonstrates thread-count-invariant
//! reproducibility, and sketches the fundamental diagram.
//!
//! ```sh
//! cargo run --release --example traffic_jam
//! ```

use peachy::traffic::{flow, fundamental_diagram, jam_fraction, AgentRoad, RoadConfig, SpaceTime};

fn main() {
    // ---- Figure 3 ----
    let config = RoadConfig::figure3(2023);
    println!(
        "=== E6 (Figure 3): {} cars, length {}, p = {}, v_max = {} ===\n",
        config.cars, config.length, config.p, config.v_max
    );
    let st = SpaceTime::record(&config, 300);
    println!("space–time diagram (time ↓, road →; dark tiles = jams, drifting backwards):");
    println!("{}", st.ascii_density(13, 6));

    let quiet = RoadConfig { p: 0.0, ..config };
    let st0 = SpaceTime::record(&quiet, 300);
    println!("the same road with p = 0 (no randomness → no jams):");
    println!("{}", st0.ascii_density(13, 6));

    println!(
        "jam fraction after warm-up: p=0.13 → {:.3}, p=0 → {:.3}\n",
        jam_fraction(&config, 300, 200),
        jam_fraction(&quiet, 300, 200)
    );

    // ---- E7: reproducibility ----
    println!("=== E7: thread-count-invariant reproducibility ===\n");
    let big = RoadConfig {
        length: 10_000,
        cars: 2_000,
        v_max: 5,
        p: 0.2,
        seed: 7,
    };
    let mut serial = AgentRoad::new(&big);
    serial.run_serial(0, 200);
    print!("chunks:");
    for chunks in [1usize, 2, 4, 8, 16] {
        let mut par = AgentRoad::new(&big);
        par.run_parallel(0, 200, chunks);
        print!(
            "  {chunks}→{}",
            if par == serial {
                "identical"
            } else {
                "DIFFERENT!"
            }
        );
    }
    println!("\n(per-thread-seed variant, by contrast, diverges between chunkings:)");
    let mut a = AgentRoad::new(&big);
    let mut b = AgentRoad::new(&big);
    for step in 0..200 {
        a.step_parallel_substreams(step, 2);
        b.step_parallel_substreams(step, 8);
    }
    println!(
        "  substreams 2 vs 8 chunks match? {}\n",
        a.positions() == b.positions()
    );

    // ---- fundamental diagram ----
    println!("=== fundamental diagram (length 1000, p = 0.13) ===\n");
    let densities: Vec<f64> = (1..=18).map(|i| i as f64 * 0.05).collect();
    let stats = fundamental_diagram(1000, 5, 0.13, 3, &densities, 500, 500);
    println!("{:>8} {:>8} {:>8}  flow", "density", "mean v", "flow");
    for s in &stats {
        let bar = "#".repeat((s.flow * 80.0) as usize);
        println!(
            "{:>8.2} {:>8.2} {:>8.3}  {bar}",
            s.density, s.mean_velocity, s.flow
        );
    }
    let peak = stats
        .iter()
        .cloned()
        .reduce(|a, b| if a.flow > b.flow { a } else { b })
        .unwrap();
    println!(
        "\npeak flow {:.3} at density {:.2} (free-flow/congested transition)",
        peak.flow, peak.density
    );
    let _ = flow(&config, 10, 10);
}
