//! §7 — ensemble uncertainty on digits (experiment E9, Figure 4).
//!
//! Trains a deep ensemble during hyper-parameter optimization (so the
//! ensemble is "free"), then probes it with a clean digit and a genuinely
//! ambiguous 4/9 blend — reproducing Figure 4's high- vs low-uncertainty
//! contrast. Also demonstrates the uneven task→rank distribution.
//!
//! ```sh
//! cargo run --release --example uncertain_digits
//! ```

use peachy::data::digits::{ascii_art, digit_dataset, render, render_blend, Style};
use peachy::data::split::train_test_split;
use peachy::ensemble::{
    block_assignment, distribute_training, random_search, HpoConfig, NetConfig, TrainConfig,
};

fn main() {
    println!("=== E9 (Figure 4): ensemble uncertainty on procedural digits ===\n");

    // Train/validation split of the MNIST substitute.
    let all = digit_dataset(3_000, 0.05, 5);
    let tt = train_test_split(&all, 0.8, 6);

    // HPO: the intermediate models become the ensemble.
    println!("running random-search HPO (8 candidates, top 4 → ensemble)…");
    let hpo = HpoConfig {
        candidates: 8,
        ensemble_size: 4,
        hidden: (16, 64),
        log10_lr: (-1.6, -0.8),
        batches: &[16, 32],
        epochs: 3,
        seed: 9,
    };
    let result = random_search(&hpo, peachy::data::digits::PIXELS, 10, &tt.train, &tt.test);
    println!(
        "{:>8} {:>10} {:>8} {:>10}",
        "hidden", "lr", "batch", "val acc"
    );
    for c in &result.candidates {
        println!(
            "{:>8} {:>10.4} {:>8} {:>10.3}",
            c.hidden, c.lr, c.batch, c.val_accuracy
        );
    }
    let ens = &result.ensemble;
    println!(
        "\nbest config: hidden {} lr {:.4}; ensemble of {} has test accuracy {:.3}\n",
        result.best().hidden,
        result.best().lr,
        ens.len(),
        ens.accuracy(&tt.test)
    );

    // Figure 4's two probes.
    let clean = render(4, &Style::clean());
    let ambiguous = render_blend(4, 9, 0.5, &Style::clean());
    for (name, img) in [
        ("B) clean '4' — low uncertainty", &clean),
        ("A) 4/9 blend — high uncertainty", &ambiguous),
    ] {
        let r = ens.predict_with_uncertainty(img);
        println!("--- {name} ---");
        println!("{}", ascii_art(img));
        println!(
            "predicted {} | confidence {:.2} | predictive entropy {:.3} | mutual information {:.3}\n",
            r.predicted, r.confidence, r.predictive_entropy, r.mutual_information
        );
    }

    // The PDC concept: 10 models over ranks that don't divide evenly.
    println!("=== E10: distributing M = 10 models over R ranks (R ∤ M) ===\n");
    for ranks in [3usize, 4, 6] {
        let loads: Vec<usize> = (0..ranks)
            .map(|r| block_assignment(10, ranks, r).len())
            .collect();
        println!("  R = {ranks}: per-rank model counts {loads:?}");
    }
    println!("\ntraining 6 models on 4 simulated ranks (block assignment)…");
    let small_train = tt.train.select(&(0..800).collect::<Vec<_>>());
    let dist_ens = distribute_training(
        &NetConfig::digits_default(24),
        &TrainConfig {
            epochs: 2,
            batch: 16,
            lr: 0.08,
            momentum: 0.9,
            seed: 21,
        },
        6,
        4,
        &small_train,
    );
    println!(
        "distributed ensemble of {} → test accuracy {:.3}",
        dist_ens.len(),
        dist_ens.accuracy(&tt.test)
    );
}
