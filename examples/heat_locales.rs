//! §6 — the 1-D heat equation over simulated locales (experiment E8).
//!
//! Part 1 (forall over a Block distribution) vs part 2 (coforall with
//! persistent tasks, halo cells and a barrier): identical answers, very
//! different overhead profiles.
//!
//! ```sh
//! cargo run --release --example heat_locales
//! ```

use std::time::Instant;

use peachy::heat::{
    forall::solve_forall_stats, solve_coforall, solve_forall, solve_serial, BlockDist, HeatProblem,
    InitialCondition,
};

fn main() {
    println!("=== E8: 1-D heat equation — forall vs coforall ===\n");

    // Correctness first: validate against the exact eigenmode decay.
    let validation = HeatProblem::validation(4_097, 500);
    let exact = validation.exact_sine_solution().unwrap();
    let got = solve_coforall(&validation, 8);
    let max_err = got
        .iter()
        .zip(&exact)
        .map(|(g, e)| (g - e).abs())
        .fold(0.0f64, f64::max);
    println!("validation vs exact discrete eigenmode: max error {max_err:.2e}\n");

    // The Block distribution in play.
    let dist = BlockDist::new(1_000_000, 8);
    println!(
        "Block distribution of 1 000 000 cells over 8 locales: locale 0 owns {:?}, locale 7 owns {:?}\n",
        dist.local_range(0),
        dist.local_range(7)
    );

    // Overhead study: many steps on a small array (spawn-dominated) and
    // few steps on a big array (compute-dominated).
    for (name, n, nt) in [
        (
            "spawn-dominated (n = 2 000, nt = 20 000)",
            2_000usize,
            20_000usize,
        ),
        (
            "compute-dominated (n = 1 000 000, nt = 100)",
            1_000_000,
            100,
        ),
    ] {
        println!("-- {name} --");
        let p = HeatProblem {
            n,
            alpha: 0.25,
            nt,
            left: 1.0,
            right: 0.0,
            ic: InitialCondition::Gaussian(0.05),
        };
        let t0 = Instant::now();
        let serial = solve_serial(&p);
        let t_serial = t0.elapsed();
        println!("   serial                       {:>10.2?}", t_serial);
        for locales in [2usize, 4, 8] {
            let t0 = Instant::now();
            let (forall, stats) = solve_forall_stats(&p, locales);
            let t_forall = t0.elapsed();
            let t0 = Instant::now();
            let coforall = solve_coforall(&p, locales);
            let t_coforall = t0.elapsed();
            assert_eq!(forall, serial);
            assert_eq!(coforall, serial);
            println!(
                "   {locales} locales: forall {:>10.2?} ({} spawns)   coforall {:>10.2?}   coforall/forall = {:.2}",
                t_forall,
                stats.tasks_spawned,
                t_coforall,
                t_coforall.as_secs_f64() / t_forall.as_secs_f64()
            );
        }
        println!();
    }
    println!("(Part 2's persistent tasks win when steps are many and cheap —");
    println!(" exactly the overhead argument the assignment makes.)\n");

    // The "across multiple compute nodes" completion: locales as
    // message-passing ranks with halo values travelling as messages.
    let p = HeatProblem::validation(8_193, 200);
    let reference = solve_serial(&p);
    let dist = peachy::heat::solve_distributed(&p, 8);
    println!(
        "distributed (8 message-passing ranks) == serial? {}",
        dist == reference
    );

    // And the 2-D extension, validated against its own exact eigenmode.
    use peachy::heat::heat2d::{solve2d_forall, solve2d_serial, Heat2dProblem};
    let p2 = Heat2dProblem {
        w: 513,
        h: 257,
        alpha: 0.25,
        nt: 100,
        mode: (2, 1),
    };
    let serial2 = solve2d_serial(&p2);
    let par2 = solve2d_forall(&p2, 8);
    let err2 = serial2
        .iter()
        .zip(&p2.exact())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "2-D extension (513×257, 100 steps): forall == serial? {}; max error vs exact {err2:.2e}",
        par2 == serial2
    );
    let _ = solve_forall(&HeatProblem::validation(65, 10), 2);
}
