//! Quickstart: a five-minute tour of all six Peachy assignments.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use peachy::prelude::*;
use peachy::{data, ensemble, heat, kmeans, knn, traffic};

fn main() {
    println!("=== Peachy Parallel Assignments (EduHPC 2023) — quickstart ===\n");

    // §2: k-Nearest Neighbor on MapReduce.
    let all = data::synth::gaussian_blobs(2_000, 8, 4, 1.0, 1);
    let db = all.select(&(0..1_500).collect::<Vec<_>>());
    let queries = all.select(&(1_500..2_000).collect::<Vec<_>>());
    let out = knn::knn_mapreduce(
        &db,
        &queries,
        knn::KnnMrConfig {
            k: 9,
            ranks: 4,
            map_blocks: 8,
            combine: true,
        },
    );
    let acc = knn::metrics::accuracy(&out.predictions, &queries.labels);
    println!(
        "§2  k-NN over MapReduce (4 ranks): accuracy {acc:.3}, {} pairs shuffled",
        out.shuffled_pairs
    );

    // §3: K-means with the reduction strategy.
    let cloud = data::synth::gaussian_blobs(5_000, 2, 3, 0.5, 2);
    let init = kmeans::kmeans_plus_plus(&cloud.points, 3, 3);
    let result = kmeans::fit(
        &cloud.points,
        &kmeans::KMeansConfig::default(),
        init,
        kmeans::Strategy::Reduction,
    );
    println!(
        "§3  K-means (reduction strategy): {} iterations, inertia {:.1}, stopped on {:?}",
        result.iterations,
        kmeans::inertia(&cloud.points, &result.centroids, &result.assignments),
        result.termination
    );

    // §4: a two-line dataflow pipeline.
    let words = Dataset::from_vec(
        vec![
            "peachy parallel assignments",
            "parallel computing",
            "peachy",
        ],
        2,
    )
    .flat_map(|s| s.split_whitespace().map(str::to_string).collect::<Vec<_>>());
    let mut counts = words.key_by(|w| w.clone()).count_by_key().collect();
    counts.sort();
    println!("§4  dataflow word count: {counts:?}");

    // §5: reproducible parallel traffic — shared-memory AND simulated GPU.
    let config = traffic::RoadConfig::figure3(42);
    let mut serial = traffic::AgentRoad::new(&config);
    let mut parallel = traffic::AgentRoad::new(&config);
    serial.run_serial(0, 200);
    parallel.run_parallel(0, 200, 8);
    let gpu = traffic::gpu::run_gpu(&config, 200, 8, 32);
    println!(
        "§5  Nagel–Schreckenberg: serial == parallel(8 chunks)? {}; == GPU(8×32)? {} (mean v = {:.2})",
        serial.positions() == parallel.positions(),
        serial.positions() == gpu.positions(),
        serial.total_velocity() as f64 / config.cars as f64
    );

    // §6: heat equation, forall vs coforall, validated bit-for-bit.
    let problem = heat::HeatProblem::validation(10_001, 200);
    let a = heat::solve_forall(&problem, 8);
    let b = heat::solve_coforall(&problem, 8);
    println!(
        "§6  heat equation: forall == coforall over 8 locales? {}",
        a == b
    );

    // §7: a tiny deep ensemble with uncertainty.
    let digits = data::digits::digit_dataset(600, 0.05, 7);
    let ens = ensemble::Ensemble::train(
        &ensemble::NetConfig::digits_default(24),
        &ensemble::TrainConfig {
            epochs: 3,
            ..Default::default()
        },
        4,
        &digits,
    );
    let clean = data::digits::render(7, &data::digits::Style::clean());
    let report = ens.predict_with_uncertainty(&clean);
    println!(
        "§7  ensemble(4 nets) on a clean '7': predicted {} with confidence {:.2}, entropy {:.3}",
        report.predicted, report.confidence, report.predictive_entropy
    );

    println!("\nAll six assignments are available as library crates — see README.md.");
}
