//! §4 — the data-science pipeline (experiment E5, Figure 2).
//!
//! Generates a synthetic city (the NYC-open-data substitute), then runs the
//! three analysis questions of the exemplar student project, ending with
//! the arrests-per-100k heat map of Figure 2.
//!
//! ```sh
//! cargo run --release --example city_pipeline
//! ```

use peachy::city::{
    arrests_per_100k, heat_map_ascii, hotspot_growth, hotspot_growth_with, hotspot_plan,
    offenses_by_year, CityTables,
};
use peachy::data::geo::{CityConfig, SyntheticCity};
use peachy::dataflow::OptimizerConfig;

fn main() {
    let config = CityConfig {
        grid_w: 8,
        grid_h: 8,
        arrests: 200_000,
        ..CityConfig::default()
    };
    println!("=== E5 (Figure 2): NYC-style arrests pipeline ===");
    println!(
        "city: {}×{} NTAs, {} arrest records ({}% dirty), current year {}\n",
        config.grid_w,
        config.grid_h,
        config.arrests,
        config.dirty_frac * 100.0,
        config.current_year
    );
    let city = SyntheticCity::generate(config, 2023);
    let tables = CityTables::from_city(&city, config.current_year);

    // Analysis 1: arrests per 100k per NTA (the Figure-2 question).
    let (rates, stats) = arrests_per_100k(&tables, 8);
    println!("-- analysis 1: arrests per 100 000 citizens per NTA (top 10) --");
    println!(
        "{:>8} {:>9} {:>12} {:>12}",
        "NTA", "arrests", "population", "per 100k"
    );
    for r in rates.iter().take(10) {
        println!(
            "{:>8} {:>9} {:>12} {:>12.1}",
            r.code, r.arrests, r.population, r.per_100k
        );
    }
    println!(
        "\npipeline shuffled {} records across {} shuffles (map-side combining on)",
        stats.records(),
        stats.shuffles()
    );

    println!("\nheat map (darker = more arrests per 100k):");
    println!("{}", heat_map_ascii(&rates, config.grid_w, config.grid_h));

    // Analysis 2: offense mix per year.
    let mix = offenses_by_year(&tables, 8);
    let years: std::collections::BTreeSet<u32> = mix.iter().map(|((y, _), _)| *y).collect();
    println!("-- analysis 2: offense mix per year --");
    print!("{:>10}", "year");
    for off in peachy::data::geo::OFFENSES {
        print!("{off:>11}");
    }
    println!();
    for year in years {
        print!("{year:>10}");
        for off in peachy::data::geo::OFFENSES {
            let count = mix
                .iter()
                .find(|((y, o), _)| *y == year && o == off)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            print!("{count:>11}");
        }
        println!();
    }

    // Analysis 3: hotspot growth.
    let growth = hotspot_growth(&tables, config.historic_years, 8);
    println!("\n-- analysis 3: fastest-growing NTAs (current vs historic yearly mean) --");
    println!(
        "{:>8} {:>9} {:>14} {:>8}",
        "NTA", "current", "historic/year", "ratio"
    );
    for (code, cur, per_year) in growth.iter().take(8) {
        println!(
            "{:>8} {:>9} {:>14.1} {:>8.2}",
            code,
            cur,
            per_year,
            *cur as f64 / per_year.max(1e-9)
        );
    }

    // The optimizer's view of analysis 3: both join inputs are already
    // hash-partitioned count_by_key outputs, so the optimized plan elides
    // the join shuffle and the narrow parse chain fuses.
    println!("\n-- plan optimizer: analysis 3, naive vs optimized --");
    println!("{}", hotspot_plan(&tables, 8));
    let (_, naive_stats) =
        hotspot_growth_with(&tables, config.historic_years, 8, OptimizerConfig::naive());
    let (_, opt_stats) =
        hotspot_growth_with(&tables, config.historic_years, 8, OptimizerConfig::default());
    println!(
        "measured: {} -> {} shuffle bytes, {} -> {} shuffles ({} elided)",
        naive_stats.bytes(),
        opt_stats.bytes(),
        naive_stats.shuffles(),
        opt_stats.shuffles(),
        opt_stats.shuffles_elided(),
    );

    // Verify against generator ground truth.
    let mut ok = true;
    for (idx, nta) in city.ntas.iter().enumerate() {
        let truth = city.truth_current_counts[idx];
        let got = rates
            .iter()
            .find(|r| r.code == nta.code)
            .map(|r| r.arrests)
            .unwrap_or(0);
        if truth != got {
            ok = false;
        }
    }
    println!("\nground-truth check: pipeline counts match generator? {ok}");
}
