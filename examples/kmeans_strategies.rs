//! §3 — K-means and the parallelization-strategy ladder (experiments E2, E3).
//!
//! Renders Figure 1 (a 2-D clustering scatter) as ASCII and times the
//! strategy ladder: critical region → atomic → reduction → distributed.
//!
//! ```sh
//! cargo run --release --example kmeans_strategies
//! ```

use std::time::Instant;

use peachy::data::synth::gaussian_blobs;
use peachy::kmeans::{
    fit, fit_distributed, fit_seq, inertia, kmeans_plus_plus, KMeansConfig, Strategy,
};

fn main() {
    // ---- Figure 1: 2-D, K = 3 ----
    println!("=== E2 (Figure 1): K-means, 2-D dataset, K = 3 ===\n");
    let data = gaussian_blobs(3_000, 2, 3, 0.9, 7);
    let init = kmeans_plus_plus(&data.points, 3, 11);
    let result = fit_seq(&data.points, &KMeansConfig::default(), init);
    println!(
        "{}",
        scatter_ascii(&data.points, &result.assignments, &result.centroids, 64, 28)
    );
    println!(
        "{} iterations, inertia {:.1}, terminated on {:?}\n",
        result.iterations,
        inertia(&data.points, &result.centroids, &result.assignments),
        result.termination
    );

    // ---- E3: the strategy ladder ----
    println!("=== E3: strategy ladder, n = 200 000, d = 4, K = 32 ===\n");
    let data = gaussian_blobs(200_000, 4, 32, 1.0, 13);
    let init = kmeans_plus_plus(&data.points, 32, 17);
    let config = KMeansConfig {
        max_iters: 20,
        min_changes: 0,
        min_shift: 0.0,
    };

    let t0 = Instant::now();
    let seq = fit_seq(&data.points, &config, init.clone());
    let t_seq = t0.elapsed();
    println!("{:<22} {:>10.2?}   (reference)", "sequential", t_seq);

    for (name, strategy) in [
        ("critical (mutex)", Strategy::Critical),
        ("atomic (CAS)", Strategy::Atomic),
        ("reduction", Strategy::Reduction),
    ] {
        let t0 = Instant::now();
        let r = fit(&data.points, &config, init.clone(), strategy);
        let t = t0.elapsed();
        assert_eq!(r.assignments, seq.assignments);
        println!(
            "{name:<22} {t:>10.2?}   speedup {:>5.2}×",
            t_seq.as_secs_f64() / t.as_secs_f64()
        );
    }

    for ranks in [2usize, 4, 8] {
        let t0 = Instant::now();
        let r = fit_distributed(&data.points, &config, init.clone(), ranks);
        let t = t0.elapsed();
        assert_eq!(r.assignments, seq.assignments);
        println!(
            "{:<22} {t:>10.2?}   speedup {:>5.2}×",
            format!("distributed ({ranks} ranks)"),
            t_seq.as_secs_f64() / t.as_secs_f64()
        );
    }
    println!("\n(The ladder's lesson: reductions beat atomics beat critical regions,");
    println!(" and the distributed version needs the same reduction anyway.)");
}

/// Plot points colour-coded by cluster (digits) plus centroids (*).
fn scatter_ascii(
    points: &peachy::data::Matrix,
    assignments: &[u32],
    centroids: &peachy::data::Matrix,
    w: usize,
    h: usize,
) -> String {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
    for row in points.iter_rows() {
        min_x = min_x.min(row[0]);
        max_x = max_x.max(row[0]);
        min_y = min_y.min(row[1]);
        max_y = max_y.max(row[1]);
    }
    let mut grid = vec![vec![' '; w]; h];
    let place = |x: f64, y: f64| -> (usize, usize) {
        let gx = ((x - min_x) / (max_x - min_x) * (w - 1) as f64).round() as usize;
        let gy = ((y - min_y) / (max_y - min_y) * (h - 1) as f64).round() as usize;
        (gx.min(w - 1), gy.min(h - 1))
    };
    for (i, row) in points.iter_rows().enumerate() {
        let (gx, gy) = place(row[0], row[1]);
        grid[gy][gx] = char::from_digit(assignments[i], 10).unwrap_or('?');
    }
    for c in 0..centroids.rows() {
        let (gx, gy) = place(centroids.get(c, 0), centroids.get(c, 1));
        grid[gy][gx] = '*';
    }
    grid.into_iter()
        .rev()
        .map(|row| row.into_iter().collect::<String>() + "\n")
        .collect()
}
