//! The "whole application" adaptation of §2 on real data: parse CSVs,
//! classify with k-NN, report accuracy — Fisher's iris instead of a
//! datahub.io download, exercising the same code path end to end
//! (CSV ingestion → split → classify → output CSV).
//!
//! ```sh
//! cargo run --release --example iris_classifier
//! ```

use peachy::data::csv::write_labeled;
use peachy::data::iris::{iris, IRIS_CLASSES};
use peachy::data::split::train_test_split;
use peachy::knn::{self, app, KnnMrConfig};

fn main() {
    println!("=== §2 whole-application variant: k-NN on Fisher's iris ===\n");
    let ds = iris();
    println!(
        "{} rows × {} features, classes: {:?}",
        ds.len(),
        ds.dims(),
        IRIS_CLASSES
    );
    let tt = train_test_split(&ds, 0.7, 2023);
    let (db_csv, q_csv) = (write_labeled(&tt.train), write_labeled(&tt.test));

    // The simple application path (built-in sort, as the assignment says).
    println!(
        "\n{:>4} {:>10}  (sort-based application path)",
        "k", "accuracy"
    );
    for k in [1usize, 3, 5, 9, 15] {
        let out = app::run(&db_csv, &q_csv, k).expect("CSV parses");
        println!("{k:>4} {:>10.3}", out.accuracy);
    }

    // Cross-check every other implementation on k = 5.
    let k = 5;
    let reference = knn::classify_batch_seq(&tt.train, &tt.test, k);
    let kd = knn::KdTree::build(&tt.train);
    let by_kd: Vec<u32> = (0..tt.test.len())
        .map(|q| kd.classify(tt.test.points.row(q), k))
        .collect();
    let mr = knn::knn_mapreduce(
        &tt.train,
        &tt.test,
        KnnMrConfig {
            k,
            ranks: 3,
            map_blocks: 6,
            combine: true,
        },
    );
    let gpu = knn::gpu::classify_batch_gpu(&tt.train, &tt.test, k, 16);
    println!("\nimplementation agreement at k = {k}:");
    println!(
        "  heap == sort-app:   {}",
        app::run(&db_csv, &q_csv, k).unwrap().predictions == reference
    );
    println!("  kd-tree == brute:   {}", by_kd == reference);
    println!("  mapreduce == brute: {}", mr.predictions == reference);
    println!("  gpu == brute:       {}", gpu == reference);

    // Confusion matrix for the curious.
    let confusion = knn::metrics::confusion_matrix(&reference, &tt.test.labels, 3);
    println!("\nconfusion matrix (rows = truth):");
    print!("{:>12}", "");
    for name in IRIS_CLASSES {
        print!("{name:>12}");
    }
    println!();
    for (i, row) in confusion.iter().enumerate() {
        print!("{:>12}", IRIS_CLASSES[i]);
        for &c in row {
            print!("{c:>12}");
        }
        println!();
    }
}
