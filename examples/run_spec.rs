//! The `.peachy` scenario runner (experiment E21).
//!
//! Loads declarative scenario files, executes them on the chosen
//! backend, and prints the report: sink rows (or service responses),
//! the shuffle-counter ledger, the serve ledger, and — when the spec
//! asks — the optimizer's plan explanation.
//!
//! ```sh
//! cargo run --release --example run_spec -- specs/city_rates.peachy
//! cargo run --release --example run_spec -- --exec cluster:4 specs/*.peachy
//! cargo run --release --example run_spec -- --explain specs/city_rates.peachy
//! ```
//!
//! `--exec seq|rayon:N|cluster:N` picks the backend (default `seq`);
//! `--explain` forces plan explanation on; `PEACHY_CHAOS_SEED` reseeds
//! any `[fault]` section, the same convention the CI chaos jobs use.

use peachy::cluster::Executor;
use peachy::spec::{RunOptions, Runner, ScenarioReport};

fn main() {
    let mut exec = Executor::Seq;
    let mut explain = false;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exec" => {
                let value = args.next().unwrap_or_else(|| usage("--exec needs a value"));
                exec = value.parse().unwrap_or_else(|e: String| usage(&e));
            }
            "--explain" => explain = true,
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag `{other}`")),
            other => files.push(other.to_string()),
        }
    }
    if files.is_empty() {
        usage("no spec files given");
    }
    let chaos_seed = std::env::var("PEACHY_CHAOS_SEED")
        .ok()
        .map(|s| s.parse().unwrap_or_else(|_| usage("PEACHY_CHAOS_SEED must be a u64")));

    let opts = RunOptions {
        executor: exec,
        chaos_seed,
        apply_fault: true,
    };
    let mut failed = false;
    for file in &files {
        println!("=== {file} ===");
        let report = Runner::from_file(file).and_then(|runner| {
            let runner = if explain { runner.with_explain() } else { runner };
            runner.run(&opts)
        });
        match report {
            Ok(report) => print_report(&report),
            Err(e) => {
                println!("{e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn print_report(report: &ScenarioReport) {
    println!("scenario: {}", report.name);
    if let Some(explain) = &report.explain {
        println!("{explain}");
    }
    let rendered = report.render_rows();
    let total = report.rows.len();
    for (i, line) in rendered.lines().enumerate() {
        if i > 20 {
            println!("... ({} rows total)", total);
            break;
        }
        println!("{line}");
    }
    let c = &report.counters;
    if c.shuffles + c.shuffles_elided > 0 {
        println!(
            "counters: {} records, {} shuffles ({} elided), {} spills ({} bytes out, {} back)",
            c.records, c.shuffles, c.shuffles_elided, c.spills, c.spill_bytes, c.unspill_bytes
        );
    }
    if let Some(s) = &report.serve {
        println!(
            "serve: {}/{} completed ({} rejected, {} failed), {} batches, {} retried",
            s.completed, s.submitted, s.rejected, s.failed, s.batches, s.retried
        );
        if s.epochs > 0 {
            println!(
                "elastic: {} epochs, {} shards moved, {} rebuilt, {} replayed, {} backoff ticks",
                s.epochs, s.shards_moved, s.shards_rebuilt, s.replayed, s.backoff_ticks
            );
        }
        if let (Some(p50), Some(p95), Some(p99)) = (s.p50, s.p95, s.p99) {
            println!("latency ticks: p50={p50} p95={p95} p99={p99}");
        }
    }
    println!();
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!("usage: run_spec [--exec seq|rayon:N|cluster:N] [--explain] <file.peachy>...");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
