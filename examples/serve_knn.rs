//! Serving k-NN classifications through the micro-batching request server.
//!
//! An open-loop arrival process (seeded, so every run offers the *same*
//! load) pushes query rows at a [`KnnService`]; the server coalesces them
//! into batches in virtual time, executes each batch on an
//! [`Executor`](peachy::cluster::Executor) backend, and keeps a ledger of
//! queue depth, batch sizes, and latency percentiles in virtual ticks.
//!
//! The run sweeps offered load across all three backends and prints each
//! [`ServerReport`](peachy::serve::ServerReport) summary table. Two things
//! to notice in the output:
//!
//! * every backend answers identically and logs identical batch
//!   boundaries and latency histograms — batching happens in virtual
//!   time, so the executor only changes *how* a batch is computed;
//! * past the capacity knee the admission controller starts rejecting
//!   (`rejected` > 0) instead of letting the queue grow without bound,
//!   and p99 latency saturates near `max_wait`.
//!
//! ```sh
//! cargo run --release --example serve_knn
//! ```
//!
//! With `--elastic`, the example instead drives the **sharded elastic
//! tier**: a consistent-hash shard map over an elastic membership, a
//! scripted join, a mid-trace rank kill (with replay of the lost
//! batches), a revival, and a graceful drain. It prints the shard map
//! before and after the scripted kill plus the per-epoch reshard ledger
//! — and the answers still match a fault-free run, which is the point.
//!
//! ```sh
//! cargo run --release --example serve_knn -- --elastic
//! ```

use peachy::cluster::{EdgeFault, Executor, FaultPlan, TickBackoff};
use peachy::data::synth::gaussian_blobs;
use peachy::serve::{
    keyed_query_trace, query_trace, KnnService, ScaleEvent, ServeConfig, Server, ShardConfig,
    ShardedKnnService, ShardedServer,
};

fn main() {
    if std::env::args().any(|a| a == "--elastic") {
        elastic();
    } else {
        fixed_pool();
    }
}

fn fixed_pool() {
    let seed = 42;
    let db = gaussian_blobs(400, 8, 4, 2.0, seed);
    let pool = gaussian_blobs(100, 8, 4, 2.0, seed + 1);
    let ticks = 60;

    println!("=== k-NN serving: seeded open-loop traffic, virtual-time batching ===");
    for rate in [1.0, 3.0, 8.0] {
        println!("\n--- offered load {rate} req/tick over {ticks} ticks ---");
        for exec in [Executor::seq(), Executor::rayon(4), Executor::cluster(4)] {
            let cfg = ServeConfig {
                capacity: 24,
                max_batch_size: 8,
                max_wait: 3,
                workers: 2,
                ..ServeConfig::default()
            };
            let server = Server::start(KnnService::new(db.clone(), 5), exec, cfg);
            let trace = query_trace(seed, ticks, rate, &pool.points);
            let responses = server.run_trace(trace);
            let ok = responses.iter().filter(|r| r.is_ok()).count();
            let report = server.shutdown();
            println!("{report}");
            println!("  answered   {ok} of {} offered\n", responses.len());
        }
    }
    println!("(identical ledgers across backends at each load are the point)");
}

fn elastic() {
    let seed = 42;
    let db = gaussian_blobs(400, 8, 4, 2.0, seed);
    let pool = gaussian_blobs(100, 8, 4, 2.0, seed + 1);
    let cfg = ShardConfig {
        num_shards: 16,
        initial_ranks: 4,
        max_batch_size: 4,
        max_wait: 2,
        backoff: TickBackoff::linear(1, 3, seed),
        // Rank 2 dies after its third dispatched batch and revives three
        // ticks later; benign transport chaos rides every cluster round.
        plan: FaultPlan::new(seed)
            .all_edges(EdgeFault {
                dup_p: 0.15,
                reorder_p: 0.15,
                ..EdgeFault::none()
            })
            .kill(2, 2)
            .revive(2, 3),
        scaling: vec![(6, ScaleEvent::Add(4)), (18, ScaleEvent::Drain(1))],
        ..ShardConfig::default()
    };
    let trace = keyed_query_trace(seed, 24, 2.0, &pool.points);

    println!("=== elastic sharded k-NN: join, kill, revive, drain — no answer changes ===");
    let mut quiet_answers = None;
    for exec in [Executor::seq(), Executor::cluster(4)] {
        println!("\n--- backend {exec:?} ---");
        let mut server =
            ShardedServer::start(ShardedKnnService::new(db.clone(), 5), exec, cfg.clone());
        println!("{}", server.shard_map());

        let responses = server.run_trace(trace.clone());
        println!("shard map after the scripted kill/revive/drain story:");
        let report = server.shutdown();
        println!("{report}");

        let answers: Vec<_> = responses.into_iter().map(|r| r.ok()).collect();
        match &quiet_answers {
            None => quiet_answers = Some(answers),
            Some(reference) => {
                assert_eq!(&answers, reference, "backends must answer identically");
                println!("answers identical to the Seq run ({} requests)", answers.len());
            }
        }
    }
    println!("\n(the reshard ledger moved only the shard delta; the kill rebuilt, not moved)");
}
