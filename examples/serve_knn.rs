//! Serving k-NN classifications through the micro-batching request server.
//!
//! An open-loop arrival process (seeded, so every run offers the *same*
//! load) pushes query rows at a [`KnnService`]; the server coalesces them
//! into batches in virtual time, executes each batch on an
//! [`Executor`](peachy::cluster::Executor) backend, and keeps a ledger of
//! queue depth, batch sizes, and latency percentiles in virtual ticks.
//!
//! The run sweeps offered load across all three backends and prints each
//! [`ServerReport`](peachy::serve::ServerReport) summary table. Two things
//! to notice in the output:
//!
//! * every backend answers identically and logs identical batch
//!   boundaries and latency histograms — batching happens in virtual
//!   time, so the executor only changes *how* a batch is computed;
//! * past the capacity knee the admission controller starts rejecting
//!   (`rejected` > 0) instead of letting the queue grow without bound,
//!   and p99 latency saturates near `max_wait`.
//!
//! ```sh
//! cargo run --release --example serve_knn
//! ```

use peachy::cluster::Executor;
use peachy::data::synth::gaussian_blobs;
use peachy::serve::{query_trace, KnnService, ServeConfig, Server};

fn main() {
    let seed = 42;
    let db = gaussian_blobs(400, 8, 4, 2.0, seed);
    let pool = gaussian_blobs(100, 8, 4, 2.0, seed + 1);
    let ticks = 60;

    println!("=== k-NN serving: seeded open-loop traffic, virtual-time batching ===");
    for rate in [1.0, 3.0, 8.0] {
        println!("\n--- offered load {rate} req/tick over {ticks} ticks ---");
        for exec in [Executor::seq(), Executor::rayon(4), Executor::cluster(4)] {
            let cfg = ServeConfig {
                capacity: 24,
                max_batch_size: 8,
                max_wait: 3,
                workers: 2,
                ..ServeConfig::default()
            };
            let server = Server::start(KnnService::new(db.clone(), 5), exec, cfg);
            let trace = query_trace(seed, ticks, rate, &pool.points);
            let responses = server.run_trace(trace);
            let ok = responses.iter().filter(|r| r.is_ok()).count();
            let report = server.shutdown();
            println!("{report}");
            println!("  answered   {ok} of {} offered\n", responses.len());
        }
    }
    println!("(identical ledgers across backends at each load are the point)");
}
