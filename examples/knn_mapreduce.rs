//! §2 — k-Nearest Neighbor with MapReduce (experiment E1).
//!
//! Reproduces the paper's quoted instance: "a 40-dimensional test case with
//! 5,000 database points and 5,000 queries takes about 5 seconds
//! sequentially", then shows the MapReduce speedup, the heap-vs-sort
//! selection gap, and the combiner's effect on shuffle volume.
//!
//! ```sh
//! cargo run --release --example knn_mapreduce
//! ```

use std::time::Instant;

use peachy::data::synth::knn_paper_instance;
use peachy::knn::{self, classify_batch_par, classify_batch_seq, KnnMrConfig};

fn main() {
    println!("=== E1: k-NN — the paper's 40-d, 5 000 × 5 000 instance ===\n");
    let (db, queries) = knn_paper_instance(1);
    let k = 15;

    // Sequential baseline (heap top-k).
    let t0 = Instant::now();
    let seq = classify_batch_seq(&db, &queries, k);
    let t_seq = t0.elapsed();
    let acc = knn::metrics::accuracy(&seq, &queries.labels);
    println!(
        "sequential (heap, Θ(qn(d+log k))):  {:>8.2?}   accuracy {acc:.3}",
        t_seq
    );

    // Sort-based per-query selection: the Θ(n log n) baseline.
    let t0 = Instant::now();
    let _sorted: Vec<u32> = (0..queries.len().min(500))
        .map(|q| knn::classify_sort(&db, queries.points.row(q), k))
        .collect();
    let per_query_sort = t0.elapsed() / 500;
    let per_query_heap = t_seq / queries.len() as u32;
    println!(
        "per-query: heap {:>8.2?} vs sort {:>8.2?}  (heap wins for k ≪ n)",
        per_query_heap, per_query_sort
    );

    // Shared-memory parallel (rayon).
    let t0 = Instant::now();
    let par = classify_batch_par(&db, &queries, k);
    let t_par = t0.elapsed();
    assert_eq!(par, seq);
    println!(
        "rayon parallel batch:               {:>8.2?}   speedup {:.1}×",
        t_par,
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );

    // MapReduce over simulated ranks.
    println!("\nMapReduce-MPI-style job (combiner ON):");
    println!(
        "{:>6} {:>12} {:>10} {:>14}",
        "ranks", "time", "speedup", "pairs shuffled"
    );
    for ranks in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let out = knn::knn_mapreduce(
            &db,
            &queries,
            KnnMrConfig {
                k,
                ranks,
                map_blocks: ranks * 4,
                combine: true,
            },
        );
        let t = t0.elapsed();
        assert_eq!(out.predictions, seq);
        println!(
            "{ranks:>6} {t:>12.2?} {:>9.1}× {:>14}",
            t_seq.as_secs_f64() / t.as_secs_f64(),
            out.shuffled_pairs
        );
    }

    // The communication optimization the assignment teaches.
    println!("\ncombiner ablation (4 ranks, 16 blocks), small instance:");
    let small_db = db.select(&(0..1000).collect::<Vec<_>>());
    let small_q = queries.select(&(0..500).collect::<Vec<_>>());
    for combine in [false, true] {
        let out = knn::knn_mapreduce(
            &small_db,
            &small_q,
            KnnMrConfig {
                k,
                ranks: 4,
                map_blocks: 16,
                combine,
            },
        );
        println!(
            "  combine = {combine:<5} → {:>10} pairs shuffled",
            out.shuffled_pairs
        );
    }
}
