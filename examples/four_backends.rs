//! One model, four programming models — the point of the Peachy series.
//!
//! §3's framing: "different programming models use different approaches to
//! parallelize applications and students must understand these variations".
//! This example runs the *same* Nagel–Schreckenberg simulation on every
//! backend in the repository — serial, shared-memory (OpenMP-analogue),
//! distributed-memory (MPI-analogue), and the simulated GPU (CUDA
//! -analogue) — and shows they are **bit-identical**, then does the same
//! for k-means across its five implementations, plus the traffic
//! parameter-study and self-describing-output variations.
//!
//! ```sh
//! cargo run --release --example four_backends
//! ```

use std::time::Instant;

use peachy::data::selfdesc::SelfDescribing;
use peachy::data::synth::gaussian_blobs;
use peachy::kmeans::{
    fit, fit_buffers, fit_distributed, fit_gpu, fit_seq, kmeans_plus_plus, GpuLaunch, GpuStrategy,
    KMeansConfig, Strategy,
};
use peachy::traffic::{self, output, AgentRoad, RoadConfig};

fn main() {
    // ---- the same traffic simulation on four backends ----
    let config = RoadConfig::figure3(99);
    let steps = 100;
    println!("=== Nagel–Schreckenberg, Figure-3 config, {steps} steps ===\n");

    let t0 = Instant::now();
    let mut serial = AgentRoad::new(&config);
    serial.run_serial(0, steps);
    println!("serial                         {:>9.2?}", t0.elapsed());

    let t0 = Instant::now();
    let mut shared = AgentRoad::new(&config);
    shared.run_parallel(0, steps, 8);
    println!(
        "shared memory (8 chunks)       {:>9.2?}   identical: {}",
        t0.elapsed(),
        shared == serial
    );

    let t0 = Instant::now();
    let distributed = traffic::run_distributed(&config, steps, 4);
    println!(
        "distributed (4 ranks)          {:>9.2?}   identical: {}",
        t0.elapsed(),
        distributed.positions() == serial.positions()
    );

    let t0 = Instant::now();
    let gpu = traffic::gpu::run_gpu(&config, steps, 8, 32);
    println!(
        "GPU (8 blocks × 32 threads)    {:>9.2?}   identical: {}",
        t0.elapsed(),
        gpu.positions() == serial.positions()
    );

    // ---- k-means across five implementations ----
    println!("\n=== K-means, n = 20 000, d = 4, K = 8 — five implementations ===\n");
    let data = gaussian_blobs(20_000, 4, 8, 1.0, 7);
    let init = kmeans_plus_plus(&data.points, 8, 8);
    let cfg = KMeansConfig::default();
    let reference = fit_seq(&data.points, &cfg, init.clone());
    let runs: Vec<(&str, Vec<u32>)> = vec![
        ("sequential (static layout)", reference.assignments.clone()),
        (
            "sequential (cluster buffers)",
            fit_buffers(&data.points, &cfg, init.clone()).assignments,
        ),
        (
            "shared memory (reduction)",
            fit(&data.points, &cfg, init.clone(), Strategy::Reduction).assignments,
        ),
        (
            "distributed (4 ranks)",
            fit_distributed(&data.points, &cfg, init.clone(), 4).assignments,
        ),
        (
            "GPU (block reduction)",
            fit_gpu(
                &data.points,
                &cfg,
                init.clone(),
                GpuStrategy::BlockReduction,
                GpuLaunch::default(),
            )
            .assignments,
        ),
    ];
    for (name, assignments) in &runs {
        println!(
            "{name:<32} assignments match sequential: {}",
            *assignments == reference.assignments
        );
    }

    // ---- parameter study (embarrassingly parallel jobs) ----
    println!("\n=== traffic parameter study: capacity vs p ===\n");
    let ps = [0.0, 0.1, 0.2, 0.3, 0.5];
    let densities: Vec<f64> = (1..=12).map(|i| i as f64 * 0.06).collect();
    let points = traffic::run_sweep(600, 5, 3, &ps, &densities, 300, 300);
    println!("{:>6} {:>16} {:>12}", "p", "peak density", "peak flow");
    for (p, rho, flow) in traffic::capacity_curve(&points, &ps) {
        println!("{p:>6.2} {rho:>16.2} {flow:>12.3}");
    }

    // ---- self-describing output (the NetCDF variation) ----
    let ds = output::record_run(&config, 50);
    let bytes = ds.encode();
    let back = SelfDescribing::decode(&bytes).expect("decode");
    let verified = output::verify(&back).expect("verify");
    println!(
        "\nself-describing output: {} bytes, {} vars, re-verified {} steps from its own metadata",
        bytes.len(),
        back.vars.len(),
        verified
    );
}
