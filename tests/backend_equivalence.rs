//! Cross-backend equivalence at integration scale: the same computation on
//! serial / shared-memory / distributed / GPU backends must agree — the
//! multi-programming-model thesis of the assignment series, enforced.

use peachy::data::synth::gaussian_blobs;
use peachy::kmeans::{
    fit, fit_buffers, fit_distributed, fit_gpu, fit_seq, random_init, GpuLaunch, GpuStrategy,
    KMeansConfig, Strategy,
};
use peachy::knn::{self, KnnMrConfig};
use peachy::traffic::{self, AgentRoad, RoadConfig};

#[test]
fn traffic_four_backends_bit_identical() {
    let config = RoadConfig {
        length: 2_000,
        cars: 400,
        v_max: 5,
        p: 0.18,
        seed: 131,
    };
    let steps = 120;
    let mut serial = AgentRoad::new(&config);
    serial.run_serial(0, steps);

    let mut shared = AgentRoad::new(&config);
    shared.run_parallel(0, steps, 6);
    assert_eq!(shared.positions(), serial.positions());

    let distributed = traffic::run_distributed(&config, steps, 5);
    assert_eq!(distributed.positions(), serial.positions());
    assert_eq!(distributed.velocities(), serial.velocities());

    let gpu = traffic::gpu::run_gpu(&config, steps, 4, 32);
    assert_eq!(gpu.positions(), serial.positions());
    assert_eq!(gpu.velocities(), serial.velocities());
}

#[test]
fn kmeans_six_implementations_agree() {
    let data = gaussian_blobs(3_000, 4, 6, 1.0, 132);
    let init = random_init(&data.points, 6, 133);
    let cfg = KMeansConfig {
        max_iters: 30,
        min_changes: 0,
        min_shift: 1e-12,
    };
    let reference = fit_seq(&data.points, &cfg, init.clone());

    let buffers = fit_buffers(&data.points, &cfg, init.clone());
    assert_eq!(buffers.assignments, reference.assignments);
    assert_eq!(
        buffers.centroids, reference.centroids,
        "buffer layout is bit-identical"
    );

    for strategy in [Strategy::Critical, Strategy::Atomic, Strategy::Reduction] {
        let r = fit(&data.points, &cfg, init.clone(), strategy);
        assert_eq!(r.assignments, reference.assignments, "{strategy:?}");
    }

    let dist = fit_distributed(&data.points, &cfg, init.clone(), 4);
    assert_eq!(dist.assignments, reference.assignments);

    for gpu_strategy in [GpuStrategy::Atomic, GpuStrategy::BlockReduction] {
        let gpu = fit_gpu(
            &data.points,
            &cfg,
            init.clone(),
            gpu_strategy,
            GpuLaunch::default(),
        );
        assert_eq!(gpu.assignments, reference.assignments, "{gpu_strategy:?}");
        assert_eq!(gpu.iterations, reference.iterations, "{gpu_strategy:?}");
    }
}

#[test]
fn knn_five_implementations_agree() {
    let all = gaussian_blobs(1_000, 2, 4, 1.5, 134);
    let db = all.select(&(0..800).collect::<Vec<_>>());
    let queries = all.select(&(800..1_000).collect::<Vec<_>>());
    let k = 9;

    let reference = knn::classify_batch_seq(&db, &queries, k);
    assert_eq!(knn::classify_batch_par(&db, &queries, k), reference);

    let kd = knn::KdTree::build(&db);
    let by_kd: Vec<u32> = (0..queries.len())
        .map(|q| kd.classify(queries.points.row(q), k))
        .collect();
    assert_eq!(by_kd, reference);

    let quad = knn::QuadTree::build(&db);
    let by_quad: Vec<u32> = (0..queries.len())
        .map(|q| quad.classify(queries.points.row(q), k))
        .collect();
    assert_eq!(by_quad, reference);

    let mr = knn::knn_mapreduce(
        &db,
        &queries,
        KnnMrConfig {
            k,
            ranks: 3,
            map_blocks: 6,
            combine: true,
        },
    );
    assert_eq!(mr.predictions, reference);

    assert_eq!(
        knn::gpu::classify_batch_gpu(&db, &queries, k, 32),
        reference
    );
}

#[test]
fn heat_four_solvers_agree() {
    use peachy::heat::{
        solve_coforall, solve_distributed, solve_forall, solve_serial, HeatProblem,
    };
    let p = HeatProblem::validation(513, 120);
    let reference = solve_serial(&p);
    assert_eq!(solve_forall(&p, 6), reference);
    assert_eq!(solve_coforall(&p, 6), reference);
    assert_eq!(solve_distributed(&p, 6), reference);
}

#[test]
fn gpu_atomics_vs_tree_reduction_sums_agree() {
    use peachy::gpu::kernels::device_sum;
    let xs: Vec<f64> = (0..50_000).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
    let expected: f64 = xs.iter().sum();
    let atomic = device_sum(&xs, 16, 64, false);
    let tree = device_sum(&xs, 16, 64, true);
    assert!((atomic - expected).abs() < 1e-6);
    assert!((tree - expected).abs() < 1e-6);
}
