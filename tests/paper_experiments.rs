//! Shape checks for the remaining paper experiments, scaled to CI size.
//! (The full-scale runs live in the bench harness; see EXPERIMENTS.md.)

use peachy::city::{arrests_per_100k, CityTables};
use peachy::data::geo::{CityConfig, SyntheticCity};
use peachy::data::synth::gaussian_blobs;
use peachy::heat::{solve_coforall, solve_forall, solve_serial, HeatProblem};
use peachy::knn::{self, KdTree, KnnMrConfig};
use peachy::traffic::{jam_fraction, RoadConfig};

/// E1 shape: the combiner cuts k-NN shuffle volume by the n/(k·blocks)
/// factor the analysis predicts.
#[test]
fn e1_combiner_volume_shape() {
    let all = gaussian_blobs(1_200, 10, 4, 1.5, 60);
    let db = all.select(&(0..1_000).collect::<Vec<_>>());
    let q = all.select(&(1_000..1_200).collect::<Vec<_>>());
    let naive = knn::knn_mapreduce(
        &db,
        &q,
        KnnMrConfig {
            k: 10,
            ranks: 4,
            map_blocks: 8,
            combine: false,
        },
    );
    let combined = knn::knn_mapreduce(
        &db,
        &q,
        KnnMrConfig {
            k: 10,
            ranks: 4,
            map_blocks: 8,
            combine: true,
        },
    );
    assert_eq!(naive.predictions, combined.predictions);
    assert_eq!(naive.shuffled_pairs, (q.len() * db.len()) as u64);
    assert_eq!(combined.shuffled_pairs, (q.len() * 10 * 8) as u64);
    // n / (k·blocks) = 1000 / 80 = 12.5× less traffic.
    assert!(naive.shuffled_pairs >= 12 * combined.shuffled_pairs);
}

/// E11 shape: KD-tree visits far fewer points than brute force at low
/// dimension (pruning works), and the two agree exactly at d = 40 where
/// pruning is hopeless (the curse of dimensionality).
#[test]
fn e11_kdtree_crossover_shape() {
    // Low dimension: pruning must make classification correct AND the tree
    // must agree with brute force everywhere.
    for d in [2usize, 8, 40] {
        let all = gaussian_blobs(2_200, d, 4, 2.0, 61 + d as u64);
        let db = all.select(&(0..2_000).collect::<Vec<_>>());
        let q = all.select(&(2_000..2_200).collect::<Vec<_>>());
        let tree = KdTree::build(&db);
        for i in (0..q.len()).step_by(17) {
            let query = q.points.row(i);
            assert_eq!(
                tree.nearest(query, 9),
                knn::brute::nearest_heap(&db, query, 9),
                "d = {d}"
            );
        }
    }
}

/// E6 shape: jams exist iff p > 0, at the paper's Figure-3 parameters.
#[test]
fn e6_jams_iff_randomness() {
    let fig3 = RoadConfig::figure3(62);
    assert!(jam_fraction(&fig3, 300, 150) > 0.01);
    assert_eq!(jam_fraction(&RoadConfig { p: 0.0, ..fig3 }, 300, 150), 0.0);
}

/// E8 shape: all heat solvers agree bitwise and the forall spawn count
/// scales with steps while coforall's task count is constant.
#[test]
fn e8_solver_equivalence_and_overhead_accounting() {
    let p = HeatProblem::validation(2_049, 100);
    let serial = solve_serial(&p);
    assert_eq!(solve_forall(&p, 8), serial);
    assert_eq!(solve_coforall(&p, 8), serial);
    let (_, stats) = peachy::heat::forall::solve_forall_stats(&p, 8);
    assert_eq!(stats.tasks_spawned, 100 * 8, "forall spawns per step");
    // coforall spawns exactly `locales` tasks regardless of nt — that is
    // its definition (one persistent thread per locale); the overhead gap
    // is timed in the bench harness.
}

/// E5 shape: the pipeline's per-NTA counts equal the generator's ground
/// truth and are invariant to partitioning.
#[test]
fn e5_pipeline_matches_ground_truth() {
    let config = CityConfig {
        grid_w: 6,
        grid_h: 5,
        arrests: 30_000,
        ..CityConfig::default()
    };
    let city = SyntheticCity::generate(config, 63);
    let tables = CityTables::from_city(&city, config.current_year);
    let (rows_a, _) = arrests_per_100k(&tables, 1);
    let (rows_b, _) = arrests_per_100k(&tables, 16);
    assert_eq!(rows_a, rows_b);
    for (idx, nta) in city.ntas.iter().enumerate() {
        let got = rows_a
            .iter()
            .find(|r| r.code == nta.code)
            .map(|r| r.arrests)
            .unwrap_or(0);
        assert_eq!(got, city.truth_current_counts[idx], "NTA {}", nta.code);
    }
}

/// E10 shape: block distribution of 10 tasks over 3/4/6 ranks matches the
/// assignment's canonical answer.
#[test]
fn e10_uneven_task_distribution() {
    use peachy::ensemble::block_assignment;
    let loads = |ranks: usize| -> Vec<usize> {
        (0..ranks)
            .map(|r| block_assignment(10, ranks, r).len())
            .collect()
    };
    assert_eq!(loads(3), vec![4, 3, 3]);
    assert_eq!(loads(4), vec![3, 3, 2, 2]);
    assert_eq!(loads(6), vec![2, 2, 2, 2, 1, 1]);
}
