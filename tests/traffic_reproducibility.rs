//! Experiment E7: the §5 reproducibility contract at scale — the parallel
//! Nagel–Schreckenberg simulation is bit-identical to the serial one for
//! any thread/chunk count, while the naive per-thread-seed scheme is not.

use peachy::prng::{FastForward, Lcg64, RandomStream};
use peachy::traffic::{grid::GridRoad, AgentRoad, RoadConfig};

const E7: RoadConfig = RoadConfig {
    length: 10_000,
    cars: 2_000,
    v_max: 5,
    p: 0.2,
    seed: 99,
};

#[test]
fn e7_parallel_identical_across_chunkings_at_scale() {
    let mut serial = AgentRoad::new(&E7);
    serial.run_serial(0, 200);
    for chunks in [1usize, 2, 4, 8] {
        let mut par = AgentRoad::new(&E7);
        par.run_parallel(0, 200, chunks);
        assert_eq!(par.positions(), serial.positions(), "chunks = {chunks}");
        assert_eq!(par.velocities(), serial.velocities(), "chunks = {chunks}");
    }
}

#[test]
fn e7_grid_and_agent_representations_agree_at_scale() {
    let config = RoadConfig {
        length: 5_000,
        cars: 900,
        v_max: 5,
        p: 0.13,
        seed: 31,
    };
    let mut grid = GridRoad::new(&config);
    let mut agent = AgentRoad::new(&config);
    for step in 0..100 {
        grid.step_serial(step);
        agent.step_serial(step);
    }
    assert_eq!(grid.positions(), agent.positions());
    assert_eq!(grid.velocities(), agent.velocities());
}

#[test]
fn e7_substream_scheme_is_not_thread_count_invariant() {
    let mut two = AgentRoad::new(&E7);
    let mut four = AgentRoad::new(&E7);
    for step in 0..100 {
        two.step_parallel_substreams(step, 2);
        four.step_parallel_substreams(step, 4);
    }
    assert_ne!(two.positions(), four.positions());
}

#[test]
fn e7_fast_forward_is_sublinear() {
    // The enabling property: jumping 10^12 steps must be effectively
    // instant (O(log n) squarings), where stepping would take hours.
    let t0 = std::time::Instant::now();
    let mut rng = Lcg64::seed_from(1);
    rng.jump(1_000_000_000_000);
    let _ = rng.next_u64();
    assert!(t0.elapsed().as_millis() < 10, "jump must be O(log n)");
}

#[test]
fn e7_statistics_agree_between_schemes() {
    // The substream scheme is *statistically* valid even though it is not
    // reproducible: mean velocities should agree within a few percent.
    let config = RoadConfig {
        length: 2_000,
        cars: 400,
        v_max: 5,
        p: 0.2,
        seed: 3,
    };
    let mut repro = AgentRoad::new(&config);
    let mut sub = AgentRoad::new(&config);
    let (mut v_repro, mut v_sub) = (0u64, 0u64);
    for step in 0..400 {
        repro.step_parallel(step, 4);
        sub.step_parallel_substreams(step, 4);
        if step >= 100 {
            v_repro += repro.total_velocity();
            v_sub += sub.total_velocity();
        }
    }
    let ratio = v_repro as f64 / v_sub as f64;
    assert!((0.95..1.05).contains(&ratio), "mean-velocity ratio {ratio}");
}
