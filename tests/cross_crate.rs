//! Cross-crate integration: the assignment libraries composed with each
//! other, exactly as a course would combine them.

use peachy::data::synth::{concentric_rings, gaussian_blobs};
use peachy::data::{csv, split::train_test_split};
use peachy::dataflow::Dataset;
use peachy::kmeans::{self, Strategy};
use peachy::knn::{self, KdTree, KnnMrConfig};
use peachy::mapreduce::wordcount;

/// k-NN classifiers (brute, KD-tree, MapReduce) all agree on a dataset
/// that has gone through a CSV round-trip and a train/test split.
#[test]
fn knn_stack_end_to_end() {
    let raw = gaussian_blobs(600, 5, 3, 1.2, 50);
    // Round-trip through CSV like the assignment's file-based ingestion.
    let text = csv::write_labeled(&raw);
    let data = csv::read_labeled(&text).expect("round-trip");
    assert_eq!(data.points, raw.points);
    let tt = train_test_split(&data, 0.8, 51);

    let k = 7;
    let brute: Vec<u32> = knn::classify_batch_seq(&tt.train, &tt.test, k);
    let tree = KdTree::build(&tt.train);
    let by_tree: Vec<u32> = (0..tt.test.len())
        .map(|q| tree.classify(tt.test.points.row(q), k))
        .collect();
    let by_mr = knn::knn_mapreduce(
        &tt.train,
        &tt.test,
        KnnMrConfig {
            k,
            ranks: 3,
            map_blocks: 9,
            combine: true,
        },
    );
    assert_eq!(brute, by_tree);
    assert_eq!(brute, by_mr.predictions);
    let acc = knn::metrics::accuracy(&brute, &tt.test.labels);
    assert!(acc > 0.9, "accuracy = {acc}");
}

/// k-means recovers ring-center structure on data k-NN can classify, and
/// every parallel strategy plus the distributed version agree.
#[test]
fn kmeans_strategies_and_distributed_agree_on_shared_data() {
    let data = gaussian_blobs(1_500, 3, 5, 0.6, 52);
    let init = kmeans::kmeans_plus_plus(&data.points, 5, 53);
    let config = kmeans::KMeansConfig::default();
    let seq = kmeans::fit_seq(&data.points, &config, init.clone());
    for strategy in [Strategy::Critical, Strategy::Atomic, Strategy::Reduction] {
        let r = kmeans::fit(&data.points, &config, init.clone(), strategy);
        assert_eq!(r.assignments, seq.assignments, "{strategy:?}");
    }
    let dist = kmeans::fit_distributed(&data.points, &config, init, 4);
    assert_eq!(dist.assignments, seq.assignments);
    // Clusters broadly correspond to the generating blobs: each blob's
    // points mostly land in that blob's majority cluster. (Exact recovery
    // is not guaranteed — random centres can overlap.)
    let mut pure = 0usize;
    for label in 0..5u32 {
        let members: Vec<usize> = (0..data.len())
            .filter(|&i| data.labels[i] == label)
            .collect();
        let mut counts = [0usize; 5];
        for &i in &members {
            counts[seq.assignments[i] as usize] += 1;
        }
        pure += counts.iter().max().copied().unwrap_or(0);
    }
    let purity = pure as f64 / data.len() as f64;
    assert!(purity > 0.8, "cluster purity = {purity}");
}

/// The dataflow engine and the MapReduce engine compute the same word
/// counts — two substrates, one answer.
#[test]
fn dataflow_and_mapreduce_word_counts_agree() {
    let docs: Vec<String> = vec![
        "the peachy parallel assignments".into(),
        "parallel computing is peachy; parallel runs everywhere".into(),
        "MapReduce and Spark and MPI".into(),
    ];
    // MapReduce-MPI style.
    let mr = wordcount::word_count(&docs, 3, true);
    // Spark style.
    let mut df = Dataset::from_vec(docs.clone(), 2)
        .flat_map(|line| {
            line.split_whitespace()
                .map(|t| {
                    t.trim_matches(|c: char| !c.is_alphanumeric())
                        .to_lowercase()
                })
                .filter(|w| !w.is_empty())
                .collect::<Vec<_>>()
        })
        .key_by(|w| w.clone())
        .count_by_key()
        .collect();
    df.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    assert_eq!(mr, df);
}

/// k-NN with a KD-tree classifies ring data (not linearly separable) that
/// k-means necessarily fails to cluster by label — the classic contrast.
#[test]
fn rings_separate_knn_from_kmeans() {
    let all = concentric_rings(900, 3, 0.05, 54);
    let db = all.select(&(0..700).collect::<Vec<_>>());
    let queries = all.select(&(700..900).collect::<Vec<_>>());
    let tree = KdTree::build(&db);
    let pred: Vec<u32> = (0..queries.len())
        .map(|q| tree.classify(queries.points.row(q), 5))
        .collect();
    let knn_acc = knn::metrics::accuracy(&pred, &queries.labels);
    assert!(knn_acc > 0.95, "k-NN on rings: {knn_acc}");

    // k-means with K = 3 cannot match ring labels (centroid Voronoi cells
    // are convex; rings are not). Measure label agreement under the best
    // permutation of cluster ids and confirm it is far below k-NN.
    let init = kmeans::kmeans_plus_plus(&all.points, 3, 55);
    let r = kmeans::fit_seq(&all.points, &kmeans::KMeansConfig::default(), init);
    let mut best = 0usize;
    let perms = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for perm in perms {
        let agree = all
            .labels
            .iter()
            .zip(&r.assignments)
            .filter(|(&l, &a)| perm[a as usize] == l as usize)
            .count();
        best = best.max(agree);
    }
    let kmeans_acc = best as f64 / all.len() as f64;
    assert!(
        kmeans_acc < 0.8,
        "k-means should fail on rings: {kmeans_acc}"
    );
}

/// The dataflow engine processes the MapReduce engine's output: a
/// two-substrate pipeline (count words with MR, filter/aggregate with DF).
#[test]
fn mapreduce_feeds_dataflow() {
    let docs: Vec<String> = (0..50)
        .map(|i| format!("w{} w{} shared shared", i % 7, i % 3))
        .collect();
    let counts = wordcount::word_count(&docs, 4, true);
    let total_shared = counts.iter().find(|(w, _)| w == "shared").unwrap().1;
    assert_eq!(total_shared, 100);
    // Feed into dataflow: keep words with count ≥ 10, sum their counts.
    let big: u64 = Dataset::from_vec(counts, 3)
        .filter(|(_, c)| *c >= 10)
        .map(|(_, c)| c)
        .reduce(|a, b| a + b)
        .unwrap();
    assert!(big >= 100);
}
