//! Spec ↔ Rust equivalence (the scenario-layer tentpole law).
//!
//! The three committed `.peachy` scenarios must be *bit-identical* to
//! their hand-written Rust twins — output rows and the backend-invariant
//! shuffle counters (records, shuffles, elided, spills) — on every
//! backend. Plus the satellite laws: a chaotic spec run equals the
//! clean one under fixed seeds (including a `PEACHY_CHAOS_SEED`-style
//! reseed), and a spill-budgeted spec run spills yet answers the same.

use std::path::PathBuf;

use peachy::city::{arrests_per_100k_with, CityTables, NtaRate};
use peachy::cluster::Executor;
use peachy::data::geo::{CityConfig, SyntheticCity};
use peachy::data::iris::iris;
use peachy::data::split::train_test_split;
use peachy::dataflow::OptimizerConfig;
use peachy::knn::classify_batch_seq;
use peachy::spec::{Counters, RunOptions, Runner, ScenarioReport, Value};

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs")
}

/// The city the committed `city_rates.peachy` declares: 4×4 grid, 8 000
/// arrests, seed 99, everything else default.
fn small_city_tables() -> CityTables {
    let config = CityConfig {
        grid_w: 4,
        grid_h: 4,
        arrests: 8_000,
        ..CityConfig::default()
    };
    let city = SyntheticCity::generate(config, 99);
    CityTables::from_city(&city, config.current_year)
}

/// One spec row rendered as an [`NtaRate`] for field-wise comparison.
fn as_rate(row: &[Value]) -> NtaRate {
    let Value::Str(code) = &row[0] else { panic!("code column") };
    let (Value::Int(arrests), Value::Int(population)) = (&row[1], &row[2]) else {
        panic!("count columns")
    };
    let Value::Float(per_100k) = row[3] else { panic!("rate column") };
    NtaRate {
        code: code.clone(),
        arrests: *arrests as u64,
        population: *population as u64,
        per_100k,
    }
}

fn backends() -> Vec<Executor> {
    vec![Executor::seq(), Executor::rayon(4), Executor::cluster(4)]
}

#[test]
fn city_spec_matches_the_rust_twin_on_every_backend() {
    let (twin_rows, twin_stats) =
        arrests_per_100k_with(&small_city_tables(), 4, OptimizerConfig::default());
    let twin_counters = (
        twin_stats.records(),
        twin_stats.shuffles(),
        twin_stats.shuffles_elided(),
        twin_stats.spills(),
    );
    assert!(!twin_rows.is_empty(), "the twin must produce rates");

    let runner = Runner::from_file(specs_dir().join("city_rates.peachy")).expect("spec parses");
    let mut peaks = Vec::new();
    for exec in backends() {
        let label = format!("{exec:?}");
        let report = runner.run(&RunOptions::on(exec)).expect("spec runs");
        assert_eq!(
            report.columns,
            vec!["code", "arrests", "population", "per_100k"],
            "{label}"
        );
        assert_eq!(report.rows.len(), twin_rows.len(), "{label}");
        for (spec_row, twin) in report.rows.iter().zip(&twin_rows) {
            let spec = as_rate(spec_row);
            assert_eq!(spec.code, twin.code, "{label}");
            assert_eq!(spec.arrests, twin.arrests, "{label}");
            assert_eq!(spec.population, twin.population, "{label}");
            assert_eq!(
                spec.per_100k.to_bits(),
                twin.per_100k.to_bits(),
                "{label}: per_100k must be bit-identical ({} vs {})",
                spec.per_100k,
                twin.per_100k
            );
        }
        let c = &report.counters;
        assert_eq!(
            (c.records, c.shuffles, c.shuffles_elided, c.spills),
            twin_counters,
            "{label}: shuffle-family counters must match the twin"
        );
        peaks.push(c.peak_resident_bytes);
    }
    // Like `bytes`, the high-water meter is measured over the encoded row
    // representation (Value rows here, typed rows in the twin), so it is
    // pinned spec ≡ spec: deterministic and identical on every backend.
    assert!(peaks[0] > 0, "materializing the tables must charge the meter");
    assert!(
        peaks.iter().all(|&p| p == peaks[0]),
        "peak_resident_bytes must be backend-invariant: {peaks:?}"
    );
}

#[test]
fn iris_spec_answers_match_the_reference_classifier() {
    let tt = train_test_split(&iris(), 0.7, 2023);
    let reference = classify_batch_seq(&tt.train, &tt.test, 5);

    let runner = Runner::from_file(specs_dir().join("iris_knn.peachy")).expect("spec parses");
    for exec in backends() {
        let label = format!("{exec:?}");
        let report = runner.run(&RunOptions::on(exec)).expect("spec runs");
        assert_eq!(report.rows.len(), reference.len(), "{label}");
        for (row, want) in report.rows.iter().zip(&reference) {
            assert_eq!(row[1], Value::Int(*want as i64), "{label}: answers must match");
        }
        let serve = report.serve.expect("service scenarios carry the ledger");
        assert_eq!(serve.completed as usize, reference.len(), "{label}");
        assert_eq!(serve.failed, 0, "{label}");
    }
}

#[test]
fn elastic_spec_is_backend_invariant_under_scripted_chaos() {
    let runner = Runner::from_file(specs_dir().join("elastic_knn.peachy")).expect("spec parses");
    let seq = runner.run(&RunOptions::default()).expect("seq run");
    assert!(!seq.rows.is_empty(), "the trace must produce responses");
    assert!(
        seq.rows.iter().all(|r| matches!(r[1], Value::Int(_))),
        "replay must keep every answer clean"
    );
    let seq_serve = seq.serve.clone().expect("ledger");
    assert!(seq_serve.epochs > 0, "scripted scaling must reshard");

    let cluster = runner
        .run(&RunOptions::on(Executor::cluster(4)))
        .expect("cluster run");
    assert_eq!(cluster.rows, seq.rows, "answers must not depend on the backend");
}

/// The committed city spec with its `golden =` line dropped (in-memory
/// variants resolve goldens against the cwd, which differs per backend)
/// and `extra` spliced into `[run]`.
fn city_text(extra: &str) -> String {
    let text = std::fs::read_to_string(specs_dir().join("city_rates.peachy")).expect("spec file");
    let text: String = text
        .lines()
        .filter(|l| !l.trim_start().starts_with("golden"))
        .map(|l| format!("{l}\n"))
        .collect();
    text.replace("[run]\n", &format!("[run]\n{extra}"))
}

#[test]
fn chaotic_pipeline_run_is_bit_identical_to_clean() {
    let chaotic_text = format!(
        "{}\n[fault]\nseed = 7\ndrop_p = 0.05\ndup_p = 0.10\nreorder_p = 0.10\n",
        city_text("")
    );
    let runner = Runner::from_str(&chaotic_text).expect("spec parses");

    let clean = runner
        .run(&RunOptions {
            executor: Executor::cluster(4),
            chaos_seed: None,
            apply_fault: false,
        })
        .expect("clean run");
    let chaotic = runner
        .run(&RunOptions {
            executor: Executor::cluster(4),
            chaos_seed: None,
            apply_fault: true,
        })
        .expect("chaotic run");
    assert_eq!(chaotic.rows, clean.rows, "chaos must not change the answer");

    // The PEACHY_CHAOS_SEED convention: any reseed, same rows.
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let reseeded = runner
            .run(&RunOptions {
                executor: Executor::cluster(4),
                chaos_seed: Some(seed),
                apply_fault: true,
            })
            .expect("reseeded run");
        assert_eq!(reseeded.rows, clean.rows, "seed {seed} must not change the answer");
    }
}

#[test]
fn spill_budgeted_spec_spills_yet_answers_the_same() {
    let free = Runner::from_str(&city_text(""))
        .expect("spec parses")
        .run(&RunOptions::default())
        .expect("unbudgeted run");
    assert_eq!(free.counters.spills, 0, "no budget, no spills");

    let budgeted = Runner::from_str(&city_text("spill_budget = 1\n"))
        .expect("spec parses")
        .run(&RunOptions::default())
        .expect("budgeted run");
    assert!(budgeted.counters.spills > 0, "a 1-byte budget must spill");
    assert!(budgeted.counters.spill_bytes > 0);
    assert_eq!(budgeted.rows, free.rows, "spilling must not change the answer");
    // Streaming consumption (the default) keeps the budgeted run's
    // high-water mark at or below the mem-mode run: spilled partitions are
    // decoded row-by-row, never rebuilt whole.
    assert!(budgeted.counters.peak_resident_bytes > 0);
    assert!(
        budgeted.counters.peak_resident_bytes <= free.counters.peak_resident_bytes,
        "budgeted peak {} must not exceed mem-mode peak {}",
        budgeted.counters.peak_resident_bytes,
        free.counters.peak_resident_bytes
    );
}

#[test]
fn explain_rides_any_spec_run() {
    let report: ScenarioReport = Runner::from_str(&format!("{}[report]\nexplain = true\n", city_text("")))
        .expect("spec parses")
        .run(&RunOptions::default())
        .expect("run");
    let explain = report.explain.expect("explain requested");
    assert!(explain.contains("optimized plan"), "{explain}");
}

#[test]
fn counters_are_cheap_to_snapshot() {
    // A regression guard on the report shape the bench harness consumes.
    let report = Runner::from_str(&city_text(""))
        .expect("spec parses")
        .run(&RunOptions::default())
        .expect("run");
    let c: Counters = report.counters.clone();
    assert_eq!(c, report.counters);
    assert!(c.shuffles > 0);
}
