//! Experiment E9 (Figure 4): an ensemble trained on digits reports **high**
//! uncertainty on an ambiguous glyph and **low** uncertainty on a clean
//! one — the paper's "output 4 with uncertainty 0.4" vs "clear image,
//! very low uncertainty" contrast.

use peachy::data::digits::{digit_dataset, render, render_blend, Style, PIXELS};
use peachy::ensemble::{Ensemble, NetConfig, TrainConfig};

/// One ensemble shared by all tests in this file (training dominates the
/// test's cost; the probes are cheap).
fn trained_ensemble() -> &'static Ensemble {
    static ENS: std::sync::OnceLock<Ensemble> = std::sync::OnceLock::new();
    ENS.get_or_init(|| {
        let train = digit_dataset(1_200, 0.05, 71);
        Ensemble::train(
            &NetConfig {
                layers: vec![PIXELS, 24, 10],
            },
            &TrainConfig {
                epochs: 3,
                batch: 16,
                lr: 0.08,
                momentum: 0.9,
                seed: 72,
            },
            4,
            &train,
        )
    })
}

#[test]
fn figure4_ambiguous_beats_clean_on_every_uncertainty_axis() {
    let ens = trained_ensemble();
    let clean = render(4, &Style::clean());
    let ambiguous = render_blend(4, 9, 0.5, &Style::clean());
    let r_clean = ens.predict_with_uncertainty(&clean);
    let r_amb = ens.predict_with_uncertainty(&ambiguous);

    assert_eq!(r_clean.predicted, 4, "clean 4 must classify correctly");
    assert!(
        r_amb.predictive_entropy > 2.0 * r_clean.predictive_entropy + 0.05,
        "entropy: ambiguous {} vs clean {}",
        r_amb.predictive_entropy,
        r_clean.predictive_entropy
    );
    assert!(
        r_amb.confidence < r_clean.confidence,
        "confidence: ambiguous {} vs clean {}",
        r_amb.confidence,
        r_clean.confidence
    );
    assert!(
        r_clean.confidence > 0.9,
        "clean digit should be near-certain"
    );
}

#[test]
fn figure4_blend_sweep_raises_uncertainty_monotonically_in_trend() {
    // As the 4→9 blend deepens towards 0.5, uncertainty should rise.
    let ens = trained_ensemble();
    let at = |blend: f64| {
        ens.predict_with_uncertainty(&render_blend(4, 9, blend, &Style::clean()))
            .predictive_entropy
    };
    let h0 = at(0.0);
    let h25 = at(0.25);
    let h50 = at(0.5);
    assert!(
        h50 > h0,
        "peak ambiguity must beat the pure digit: {h50} vs {h0}"
    );
    assert!(
        h50 + 1e-9 >= h25 * 0.5,
        "mid-blend should already show uncertainty"
    );
}

#[test]
fn ensemble_handles_out_of_distribution_noise() {
    // Pure noise: the model may predict anything, but entropy should be
    // well above the clean-digit level (the "I don't know" behaviour the
    // assignment motivates).
    use peachy::prng::{Lcg64, RandomStream};
    let ens = trained_ensemble();
    let mut rng = Lcg64::seed_from(5);
    let noise: Vec<f64> = (0..PIXELS).map(|_| rng.next_f64()).collect();
    let r_noise = ens.predict_with_uncertainty(&noise);
    let r_clean = ens.predict_with_uncertainty(&render(7, &Style::clean()));
    assert!(
        r_noise.predictive_entropy > r_clean.predictive_entropy,
        "noise {} vs clean {}",
        r_noise.predictive_entropy,
        r_clean.predictive_entropy
    );
}
