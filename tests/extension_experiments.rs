//! Integration-scale checks for the paper's named variations — the
//! extension experiments listed in EXPERIMENTS.md, exercised across crate
//! boundaries at sizes the unit tests don't reach.

use peachy::data::digits::digit_dataset;
use peachy::data::iris::iris;
use peachy::data::selfdesc::SelfDescribing;
use peachy::data::split::train_test_split;
use peachy::data::synth::gaussian_blobs;
use peachy::ensemble::{
    ensemble_calibration, master_worker, model_calibration, train_with_history, EarlyStop,
    Ensemble, NetConfig, TrainConfig,
};
use peachy::cluster::{CommStats, Executor};
use peachy::heat::heat2d::{solve2d_forall, solve2d_serial, Heat2dProblem};
use peachy::kmeans::{elbow_sweep, silhouette};
use peachy::knn::cv::select_k;
use peachy::traffic::{self, output, OpenRoad, OpenRoadConfig, RoadConfig};

/// §5 sweep: capacity falls monotonically as p rises (randomness destroys
/// throughput), and the sweep is deterministic.
#[test]
fn traffic_sweep_capacity_ordering() {
    let ps = [0.0, 0.15, 0.3, 0.5];
    let densities: Vec<f64> = (1..=10).map(|i| i as f64 * 0.07).collect();
    let points = traffic::run_sweep(800, 5, 3, &ps, &densities, 300, 300);
    let curve = traffic::capacity_curve(&points, &ps);
    for w in curve.windows(2) {
        assert!(w[0].2 > w[1].2, "capacity must fall with p: {:?}", curve);
    }
}

/// §5 open boundaries at scale: long-run conservation and a throughput
/// ceiling below the closed-ring capacity.
#[test]
fn open_road_long_run() {
    let mut road = OpenRoad::new(&OpenRoadConfig {
        length: 1_000,
        v_max: 5,
        p: 0.13,
        alpha: 0.6,
        seed: 44,
    });
    road.run(10_000);
    assert_eq!(
        road.injected(),
        road.departed() + road.positions().len() as u64
    );
    let tp = road.throughput();
    assert!(tp > 0.2 && tp < 0.8, "throughput = {tp}");
}

/// §5 self-describing output at scale: byte round-trip then re-simulate
/// from the container's own metadata.
#[test]
fn selfdesc_records_verify_at_scale() {
    let config = RoadConfig {
        length: 2_000,
        cars: 400,
        v_max: 5,
        p: 0.18,
        seed: 45,
    };
    let ds = output::record_run(&config, 150);
    let bytes = ds.encode();
    assert!(bytes.len() > 150 * 400 * 8, "both trajectory arrays stored");
    let back = SelfDescribing::decode(&bytes).expect("decode");
    assert_eq!(output::verify(&back), Ok(150));
}

/// §7 master–worker at scale: heavy skew, many tasks, results in order.
#[test]
fn master_worker_scale_and_order() {
    let (results, executed) = master_worker(200, 6, |t| {
        // Task cost skew: every 50th task is 30× heavier.
        let spin = if t % 50 == 0 { 300_000 } else { 10_000 };
        let mut acc = t as u64;
        for i in 0..spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        (t, acc)
    });
    assert_eq!(results.len(), 200);
    for (i, (t, _)) in results.iter().enumerate() {
        assert_eq!(*t, i, "results must be in task order");
    }
    assert_eq!(executed.iter().sum::<usize>(), 200);
    assert_eq!(executed[0], 0, "master does not execute");
}

/// §7 calibration: the ensemble is no more confident than its own accuracy
/// warrants, relative to a single member, on an overlapping-class problem.
#[test]
fn ensemble_calibration_structure() {
    let all = gaussian_blobs(700, 6, 4, 2.2, 46);
    let train = all.select(&(0..500).collect::<Vec<_>>());
    let test = all.select(&(500..700).collect::<Vec<_>>());
    let tc = TrainConfig {
        epochs: 6,
        batch: 16,
        lr: 0.08,
        momentum: 0.9,
        seed: 47,
    };
    let ens = Ensemble::train(
        &NetConfig {
            layers: vec![6, 20, 4],
        },
        &tc,
        5,
        &train,
    );
    let ens_rep = ensemble_calibration(&ens, &test, 10);
    let one_rep = model_calibration(&ens.members()[0], &test, 10);
    assert!(ens_rep.accuracy >= one_rep.accuracy - 0.05);
    // Ensemble averaging softens confidence.
    assert!(ens_rep.mean_confidence <= one_rep.mean_confidence + 1e-9);
}

/// §7 interval evaluation on the digit problem: accuracy improves along
/// the training curve; early stopping with patience never fires while
/// still improving fast.
#[test]
fn training_curve_on_digits() {
    let all = digit_dataset(1_500, 0.05, 48);
    let tt = train_test_split(&all, 0.8, 49);
    let mut net = peachy::ensemble::DenseNet::new(&NetConfig::digits_default(32), 50);
    let tc = TrainConfig {
        epochs: 1,
        batch: 16,
        lr: 0.05,
        momentum: 0.9,
        seed: 51,
    };
    let curve = train_with_history(
        &mut net,
        &tt.train,
        &tt.test,
        &tc,
        8,
        2,
        Some(EarlyStop {
            patience: 6,
            min_delta: 0.0,
        }),
    );
    assert_eq!(curve.checkpoints.last().unwrap().epoch, 8);
    assert!(
        curve.best_accuracy() > 0.7,
        "best = {}",
        curve.best_accuracy()
    );
    let first = curve.checkpoints[0].val_accuracy;
    assert!(curve.best_accuracy() >= first);
}

/// §2 + §3 model selection on real data: CV picks a sensible k for iris,
/// and the elbow/silhouette sweep prefers K = 3 clusters on iris (the
/// botanical truth) over K = 8.
#[test]
fn model_selection_on_iris() {
    let data = iris();
    let (_, best_k) = select_k(&data, &[1, 3, 5, 9, 15], 5, 52);
    assert!((1..=15).contains(&best_k));
    let sweep = elbow_sweep(&data.points, &[2, 3, 8], 53);
    let s = |k: usize| sweep.iter().find(|p| p.k == k).unwrap().silhouette;
    assert!(s(2) > 0.5, "iris clusters cleanly: {}", s(2));
    assert!(
        s(2).max(s(3)) > s(8),
        "true structure beats over-clustering"
    );
    // And the true labels score a decent silhouette themselves.
    let truth = silhouette(&data.points, &data.labels, 3);
    assert!(truth > 0.4, "label silhouette = {truth}");
}

/// E15: one k-means, three executor backends — identical answers, and the
/// comm-volume counters rank the backends exactly as DESIGN.md says.
#[test]
fn e15_comm_volume_counters() {
    let data = gaussian_blobs(2_000, 4, 5, 1.0, 7);
    let init = peachy::kmeans::kmeans_plus_plus(&data.points, 5, 11);
    let config = peachy::kmeans::KMeansConfig {
        max_iters: 8,
        min_changes: 0,
        min_shift: 0.0,
    };
    let mut runs = Vec::new();
    for exec in [Executor::seq(), Executor::rayon(64), Executor::cluster(4)] {
        let stats = CommStats::new();
        let result =
            peachy::kmeans::fit_with_stats(&data.points, &config, init.clone(), &exec, &stats);
        runs.push((exec, result, stats));
    }
    // Identical assignments on every backend — the decomposition never
    // leaks into the answer.
    for (exec, result, _) in &runs[1..] {
        assert_eq!(
            result.assignments, runs[0].1.assignments,
            "{exec:?} diverged from Seq"
        );
    }
    let (_, _, seq) = &runs[0];
    let (_, _, rayon) = &runs[1];
    let (_, _, cluster) = &runs[2];
    // Seq moves nothing; Rayon scatters slices but no collective bytes;
    // Cluster pays for every byte through the collectives.
    assert_eq!(seq.scattered(), 0);
    assert_eq!(seq.collective_bytes(), 0);
    assert!(rayon.scattered() > 0);
    assert_eq!(rayon.collective_bytes(), 0);
    assert!(cluster.scattered() > 0);
    assert!(cluster.collective_bytes() > 0);
    // The cluster's floor: the one-time n*d*8 scatter alone.
    assert!(cluster.collective_bytes() >= (2_000 * 4 * 8) as u64);
}

/// E16: the serving layer at integration scale — one seeded open-loop
/// k-NN trace on all three backends, with and without injected worker
/// panics. Responses, batch boundaries, and the deterministic ledger are
/// bit-identical everywhere; admission control rejects the overload
/// instead of queueing it; latency percentiles are bounded by the
/// batching window.
#[test]
fn e16_serving_layer_end_to_end() {
    use peachy::cluster::RetryPolicy;
    use peachy::serve::{query_trace, ChaosPlan, KnnService, ServeConfig, Server};
    let db = gaussian_blobs(300, 6, 4, 2.0, 16);
    let pool = gaussian_blobs(80, 6, 4, 2.0, 17);
    let cfg = ServeConfig {
        capacity: 4,
        max_batch_size: 8,
        max_wait: 3,
        workers: 3,
        // Generous budget: at panic_p 0.3 sixteen attempts make an
        // exhausted batch a ~4e-9 event, so chaos runs stay comparable
        // to clean ones.
        retry: RetryPolicy {
            max_attempts: 16,
            backoff: std::time::Duration::ZERO,
        },
        ..ServeConfig::default()
    };
    let run = |exec: Executor, chaos: Option<ChaosPlan>| {
        let server = Server::start(
            KnnService::new(db.clone(), 5),
            exec,
            ServeConfig {
                chaos,
                ..cfg.clone()
            },
        );
        let out = server.run_trace(query_trace(16, 50, 5.0, &pool.points));
        (out, server.shutdown())
    };
    let (seq_out, seq_rep) = run(Executor::seq(), None);
    for exec in [Executor::rayon(4), Executor::cluster(3)] {
        for chaos in [None, Some(ChaosPlan::new(16, 0.3))] {
            let chaotic = chaos.is_some();
            let (out, rep) = run(exec.clone(), chaos);
            assert_eq!(out, seq_out, "{exec:?} chaos={chaotic} diverged");
            assert_eq!(rep.batch_log, seq_rep.batch_log);
            assert_eq!(rep.stats.latency_counts(), seq_rep.stats.latency_counts());
            assert_eq!(
                rep.stats.completed() + rep.stats.rejected(),
                rep.stats.submitted(),
                "accounting leak on {exec:?} chaos={chaotic}"
            );
        }
    }
    let s = &seq_rep.stats;
    // Offered 5/tick against capacity 4: the controller must shed load…
    assert!(s.rejected() > 0, "overload trace must reject");
    // Undispatched work (bounded ingress + the partial batch the batcher
    // is still coalescing) never exceeds capacity + max_batch_size.
    assert!(s.max_queue_depth() <= 4 + 8, "queue bounded by capacity");
    // …and what it admits completes within the batching window's latency
    // envelope (close at the latest max_wait ticks after arrival).
    let (p50, p99) = (s.p50().unwrap(), s.p99().unwrap());
    assert!(p50 <= p99 && p99 <= 3, "latency ticks p50={p50} p99={p99}");
}

/// E19: elastic sharded serving at integration scale — one scripted
/// join/kill/revive/drain story over a keyed k-NN trace, delta migration
/// vs the full-rebuild strawman, on the Seq and Cluster backends.
/// Elasticity never changes an answer; the delta path strictly beats the
/// strawman's migration bill; the kill rebuilds rather than moves.
#[test]
fn e19_elastic_resharding_end_to_end() {
    use peachy::cluster::{FaultPlan, TickBackoff};
    use peachy::serve::{
        keyed_query_trace, ReshardCause, ScaleEvent, ShardConfig, ShardedKnnService, ShardedServer,
    };
    let db = gaussian_blobs(300, 6, 4, 2.0, 19);
    let pool = gaussian_blobs(80, 6, 4, 2.0, 20);
    let trace = keyed_query_trace(19, 30, 3.0, &pool.points);
    let cfg = ShardConfig {
        num_shards: 16,
        initial_ranks: 4,
        max_batch_size: 4,
        max_wait: 2,
        backoff: TickBackoff::linear(1, 3, 19),
        plan: FaultPlan::new(19).kill(2, 2).revive(2, 3),
        scaling: vec![(8, ScaleEvent::Add(4)), (22, ScaleEvent::Drain(1))],
        ..ShardConfig::default()
    };
    let run = |exec: Executor, full_rebuild: bool| {
        let mut server = ShardedServer::start(
            ShardedKnnService::new(db.clone(), 5),
            exec,
            ShardConfig {
                full_rebuild,
                ..cfg.clone()
            },
        );
        let out = server.run_trace(trace.clone());
        (out, server.shutdown())
    };
    let (quiet_out, _) = {
        let mut server = ShardedServer::start(
            ShardedKnnService::new(db.clone(), 5),
            Executor::seq(),
            ShardConfig {
                plan: FaultPlan::none(),
                scaling: Vec::new(),
                ..cfg.clone()
            },
        );
        (server.run_trace(trace.clone()), server.shutdown())
    };
    for exec in [Executor::seq(), Executor::cluster(4)] {
        let (delta_out, delta_rep) = run(exec.clone(), false);
        let (full_out, full_rep) = run(exec.clone(), true);
        assert_eq!(delta_out, quiet_out, "{exec:?}: elasticity changed answers");
        assert_eq!(full_out, quiet_out, "{exec:?}: strawman changed answers");
        assert_eq!(delta_rep.reshard_log.len(), full_rep.reshard_log.len());
        assert!(
            delta_rep.stats.bytes_migrated() < full_rep.stats.bytes_migrated(),
            "{exec:?}: delta {} B vs full rebuild {} B",
            delta_rep.stats.bytes_migrated(),
            full_rep.stats.bytes_migrated()
        );
        assert!(delta_rep.stats.replayed() > 0, "{exec:?}: kill never fired");
        assert_eq!(delta_rep.stats.failed(), 0);
        let kill = delta_rep
            .reshard_log
            .iter()
            .find(|r| r.cause == ReshardCause::Kill(2))
            .expect("kill record");
        assert_eq!((kill.shards_moved, kill.bytes_migrated), (0, 0));
        assert!(kill.shards_rebuilt > 0);
    }
}

/// §6 2-D extension: forall equals serial at integration scale and decays
/// towards equilibrium.
#[test]
fn heat2d_scale() {
    let p = Heat2dProblem {
        w: 257,
        h: 129,
        alpha: 0.25,
        nt: 150,
        mode: (2, 1),
    };
    let serial = solve2d_serial(&p);
    assert_eq!(solve2d_forall(&p, 8), serial);
    let max_err = serial
        .iter()
        .zip(&p.exact())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_err < 1e-12, "max err = {max_err:.2e}");
}
