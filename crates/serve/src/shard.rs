//! Elastic sharded serving: consistent-hash shard maps, live resharding,
//! and rank-death failover with deterministic state migration.
//!
//! ## The shape
//!
//! The fixed-pool [`Server`](crate::Server) parallelizes *within* a
//! batch; this tier partitions the service's **state** into a fixed
//! number of shards and spreads the shards over an *elastic* membership
//! of ranks. Three maps compose:
//!
//! 1. request → shard: `owner_of_key(route_key, num_shards, seed)` —
//!    fixed for the server's lifetime, because `num_shards` never
//!    changes. Elasticity moves shards, never requests.
//! 2. shard → rank: an epoch-numbered [`ShardMap`] computed on a
//!    [`HashRing`] over the live membership — a **pure function of
//!    (membership set, epoch, seed)**, recomputable by anyone from those
//!    three values alone.
//! 3. shard → state: [`ShardedService::build_shard`] is deterministic,
//!    so a shard rebuilt after its owner died is bit-identical to the
//!    state that was lost.
//!
//! Together these give the headline robustness property: a scripted
//! join/leave/kill trace produces **bit-identical responses** across
//! `Seq`, `Rayon`, and `Cluster` executors and across chaos seeds
//! (pinned by `serve/tests/reshard_laws.rs`).
//!
//! ## Time, rounds, and failure
//!
//! Like the fixed-pool server, time is virtual: the batcher closes
//! batches on tick boundaries as a pure function of `(trace, config)`.
//! Each boundary then executes at most one **round** — all closed
//! batches whose retry backoff has elapsed — on the executor seam. On
//! the cluster backend a round is a real SPMD step over the live
//! membership: each rank computes its shards' batches, then exchanges
//! completion tokens with every peer, detecting deaths via death notices
//! and [`recv_deadline`](peachy_cluster::Comm::recv_deadline) instead of
//! blocking forever.
//!
//! A scheduled [`FaultPlan::kill`] is counted in *batches dispatched* to
//! the doomed rank — the serving tier's transport events — so the death
//! round is identical on every backend. On the cluster the kill is real:
//! the rank's `KilledByPlan` panic unwinds before its completion tokens
//! leave, survivors observe the death, and the supervisor returns its
//! slot as `Err(Killed)`. The dead rank's round batches are lost, then
//! **replayed** under the bumped epoch after a deterministic
//! [`TickBackoff`] delay — so every accepted request still resolves
//! `Ok`, and resolves *identically*, because shard routing never moved
//! and shard state is rebuild-identical.
//!
//! ## Migration cost
//!
//! A reshard moves only the shard delta the ring dictates: on a join,
//! ~`shards/n` shards transfer to the new rank; on a drain, the drained
//! rank's shards transfer out; on a kill the dead rank's shards are
//! **rebuilt** (nothing to transfer) and — the ring's law — no shard
//! moves between survivors. Transfers are accounted twice, on purpose:
//! logical [`ByteSized`] bytes in [`ServerStats::bytes_migrated`]
//! (backend-independent, so ledgers stay comparable), and measured
//! transport bytes in the comm block when the cluster backend actually
//! ships `Shared` (Arc) payloads between ranks. The
//! [`ShardConfig::full_rebuild`] strawman rebroadcasts *every* shard on
//! every epoch bump — the E19 ablation baseline that the delta path must
//! beat.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use peachy_cluster::dist::owner_of_key;
use peachy_cluster::{
    ByteSized, Cluster, Comm, Executor, FaultPlan, HashRing, RankErrorKind, RecvError, Shared,
    TickBackoff,
};
use peachy_prng::{mix_seed, SplitMix64};

use crate::server::{backend_label, BatchRecord, Response, ServeError, Slot};
use crate::stats::{CloseCause, ServerStats};

/// Tag for the per-round completion-token exchange.
const TOKEN_TAG: u32 = 0xE1A5;
/// How long a survivor waits for a peer's completion token before
/// assuming it was lost to injected delay (deaths are detected through
/// death notices, which are not subject to edge chaos).
const TOKEN_DEADLINE: Duration = Duration::from_secs(5);

/// A service whose state splits into `num_shards` independent shards.
///
/// The two purity requirements that make elasticity invisible to
/// clients:
///
/// * `build_shard(shard, num_shards)` is deterministic — rebuilding a
///   shard after its owner died yields bit-identical state;
/// * `run_shard` answers each input independently of how inputs were
///   batched — so replay after a failure cannot change an answer.
pub trait ShardedService: Send + Sync + 'static {
    /// One request's payload.
    type Input: Send + Sync + 'static;
    /// One request's answer.
    type Output: Send + ByteSized + 'static;
    /// One shard's warm state. `ByteSized` is what prices migration.
    type State: Send + Sync + ByteSized + 'static;

    /// Short name for reports and logs.
    fn name(&self) -> &'static str;

    /// The routing key deciding which shard serves `input`. Must depend
    /// only on the input value.
    fn route_key(&self, input: &Self::Input) -> u64;

    /// Deterministically build shard `shard` of `num_shards` from the
    /// service definition.
    fn build_shard(&self, shard: usize, num_shards: usize) -> Self::State;

    /// Answer every input (all routed to `shard`), in order.
    fn run_shard(
        &self,
        shard: usize,
        state: &Self::State,
        inputs: &[Self::Input],
    ) -> Vec<Self::Output>;
}

/// An epoch-numbered assignment of shards to ranks.
///
/// **Purity contract:** `ShardMap::compute(members, epoch, …)` is the
/// *only* constructor, and the assignment half depends on nothing but
/// `(members, num_shards, vnodes, seed)` — the epoch is version
/// metadata. Deliberately so: if the epoch participated in the hash,
/// every bump would reshuffle every shard, forfeiting the ring's
/// minimal-movement law. Anyone holding `(membership, epoch, seed)` can
/// recompute the exact map a server is using — the reproducibility half
/// of the acceptance contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    epoch: u64,
    seed: u64,
    vnodes: usize,
    members: Vec<usize>,
    /// `owners[shard]` = rank serving that shard.
    owners: Vec<usize>,
}

impl ShardMap {
    /// Compute the map for `members` at `epoch`.
    pub fn compute(
        members: &BTreeSet<usize>,
        epoch: u64,
        num_shards: usize,
        vnodes: usize,
        seed: u64,
    ) -> Self {
        assert!(!members.is_empty(), "a shard map needs at least one rank");
        assert!(num_shards > 0, "need at least one shard");
        let ring = HashRing::new(members.iter().copied(), vnodes, seed);
        let owners = (0..num_shards)
            .map(|s| ring.owner_of_key(&(s as u64)))
            .collect();
        Self {
            epoch,
            seed,
            vnodes,
            members: members.iter().copied().collect(),
            owners,
        }
    }

    /// The map's epoch (bumped once per membership change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards (fixed for a server's lifetime).
    pub fn num_shards(&self) -> usize {
        self.owners.len()
    }

    /// Live members, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The rank serving `shard`.
    pub fn owner(&self, shard: usize) -> usize {
        self.owners[shard]
    }

    /// Shards served by `member`, ascending.
    pub fn shards_on(&self, member: usize) -> Vec<usize> {
        (0..self.owners.len())
            .filter(|&s| self.owners[s] == member)
            .collect()
    }

    /// Shards whose owner differs between `self` and `newer`, ascending.
    /// Both maps must shard the same space.
    pub fn moved_shards(&self, newer: &ShardMap) -> Vec<usize> {
        assert_eq!(self.num_shards(), newer.num_shards(), "shard spaces differ");
        (0..self.owners.len())
            .filter(|&s| self.owners[s] != newer.owners[s])
            .collect()
    }
}

impl fmt::Display for ShardMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shard map epoch {} ({} shards over {} ranks, seed {:#x})",
            self.epoch,
            self.num_shards(),
            self.members.len(),
            self.seed
        )?;
        for &m in &self.members {
            let shards = self.shards_on(m);
            writeln!(f, "  rank {m:>3} ← {:>2} shards {shards:?}", shards.len())?;
        }
        Ok(())
    }
}

/// Why an epoch was bumped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardCause {
    /// A scripted rank joined ([`ScaleEvent::Add`]).
    Join(usize),
    /// A scripted rank drained gracefully ([`ScaleEvent::Drain`]).
    Drain(usize),
    /// A rank died to a [`FaultPlan::kill`] mid-round.
    Kill(usize),
    /// A killed rank rejoined per [`FaultPlan::revive`].
    Revive(usize),
}

/// One entry of the per-epoch reshard ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardRecord {
    /// The epoch this reshard produced.
    pub epoch: u64,
    /// Virtual tick at which the membership changed.
    pub tick: u64,
    /// What changed.
    pub cause: ReshardCause,
    /// Shards whose warm state transferred between live ranks.
    pub shards_moved: usize,
    /// Shards rebuilt from the service definition (owner died).
    pub shards_rebuilt: usize,
    /// Logical [`ByteSized`] bytes of transferred state.
    pub bytes_migrated: u64,
    /// Requests replayed because their batch was on the dead rank.
    pub requests_replayed: u64,
}

impl fmt::Display for ReshardRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "epoch {:>3} @tick {:>4} {:?}: {} moved / {} rebuilt, {} B migrated, {} replayed",
            self.epoch,
            self.tick,
            self.cause,
            self.shards_moved,
            self.shards_rebuilt,
            self.bytes_migrated,
            self.requests_replayed
        )
    }
}

/// A scripted membership change, scheduled in [`ShardConfig::scaling`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleEvent {
    /// Rank joins; the ring hands it ~`shards/n` shards, transferred
    /// from their previous owners.
    Add(usize),
    /// Rank drains gracefully; its shards transfer to the survivors.
    Drain(usize),
}

impl std::str::FromStr for ScaleEvent {
    type Err = String;

    /// `"add 4"` / `"drain 1"` — the textual form scenario specs use.
    fn from_str(s: &str) -> Result<Self, String> {
        let mut words = s.split_whitespace();
        let (verb, rank) = (words.next(), words.next());
        if words.next().is_some() {
            return Err(format!("expected `add N` or `drain N`, got `{s}`"));
        }
        let rank: usize = rank
            .ok_or_else(|| format!("missing rank in `{s}`"))?
            .parse()
            .map_err(|_| format!("bad rank in `{s}`"))?;
        match verb {
            Some("add") => Ok(ScaleEvent::Add(rank)),
            Some("drain") => Ok(ScaleEvent::Drain(rank)),
            _ => Err(format!("expected `add N` or `drain N`, got `{s}`")),
        }
    }
}

/// Tuning and scripting for a [`ShardedServer`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Shards to split the service state into. Fixed for the server's
    /// lifetime — this is what keeps request routing invariant under
    /// elasticity.
    pub num_shards: usize,
    /// Virtual nodes per rank on the [`HashRing`].
    pub vnodes: usize,
    /// Seed for both request → shard and shard → rank placement.
    pub seed: u64,
    /// Ranks at epoch 0 (members `0..initial_ranks`).
    pub initial_ranks: usize,
    /// Ingress bound, as in [`crate::ServeConfig::capacity`].
    pub capacity: usize,
    /// Largest batch the per-shard batcher will close.
    pub max_batch_size: usize,
    /// Ticks the oldest pending request may wait before a partial close.
    pub max_wait: u64,
    /// Deterministic virtual-tick delay before a lost batch replays.
    pub backoff: TickBackoff,
    /// Chaos script: edge faults ride every cluster round; kills are
    /// translated into serve-level events (batches dispatched to the
    /// doomed rank) and fire **once** — a revived rank lives on;
    /// revivals script the rank's rejoin.
    pub plan: FaultPlan,
    /// Scripted membership changes, `(tick, event)`, applied at that
    /// tick's boundary in list order. Must be sorted by tick.
    pub scaling: Vec<(u64, ScaleEvent)>,
    /// Strawman mode for the E19 ablation: rebroadcast *every* shard's
    /// state on every epoch bump instead of moving only the delta.
    pub full_rebuild: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            num_shards: 16,
            vnodes: 16,
            seed: 0x5ead_ed5e_11ce_0007,
            initial_ranks: 4,
            capacity: 256,
            max_batch_size: 8,
            max_wait: 4,
            backoff: TickBackoff::none(),
            plan: FaultPlan::none(),
            scaling: Vec::new(),
            full_rebuild: false,
        }
    }
}

impl ShardConfig {
    fn validate(&self) {
        assert!(self.num_shards > 0, "need at least one shard");
        assert!(self.vnodes > 0, "need at least one virtual node");
        assert!(self.initial_ranks > 0, "need at least one rank");
        assert!(self.capacity > 0, "capacity must be at least 1");
        assert!(self.max_batch_size > 0, "max_batch_size must be at least 1");
        assert!(self.max_wait > 0, "max_wait must be at least 1 tick");
        assert!(
            u32::try_from(self.num_shards).is_ok(),
            "shard count must fit a message tag"
        );
        let mut last = 0;
        for &(tick, _) in &self.scaling {
            assert!(tick >= last, "scaling events must be sorted by tick");
            last = tick;
        }
    }
}

/// One admitted request bound for the per-shard batcher.
type Queued<S> = (
    u64,
    u64,
    <S as ShardedService>::Input,
    Arc<Slot<<S as ShardedService>::Output>>,
);

/// A closed batch: every input routes to `shard`.
struct ShardBatch<S: ShardedService> {
    id: u64,
    shard: usize,
    attempt: u32,
    /// Earliest tick the batch may be dispatched (retry backoff gate).
    not_before: u64,
    inputs: Vec<S::Input>,
    slots: Vec<Arc<Slot<S::Output>>>,
}

/// End-of-run summary returned by [`ShardedServer::shutdown`].
pub struct ShardedReport {
    /// The service that ran.
    pub service: &'static str,
    /// Human label of the executor backend.
    pub backend: String,
    /// The full ledger (admission/batching/latency + reshard counters).
    pub stats: Arc<ServerStats>,
    /// One record per epoch bump, in order.
    pub reshard_log: Vec<ReshardRecord>,
    /// Every closed batch, in dispatch order (replays do not re-log).
    pub batch_log: Vec<BatchRecord>,
    /// The map the server ended on.
    pub final_map: ShardMap,
}

impl fmt::Display for ShardedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        writeln!(f, "sharded service {} on {}", self.service, self.backend)?;
        writeln!(
            f,
            "  submitted {:>6}  completed {:>6}  rejected {:>5}  replayed {:>5}",
            s.submitted(),
            s.completed(),
            s.rejected(),
            s.replayed()
        )?;
        writeln!(
            f,
            "  batches {:>7}  p50 {:?} p99 {:?} ticks  backoff {:>4} ticks",
            s.batches(),
            s.p50(),
            s.p99(),
            s.backoff_ticks()
        )?;
        writeln!(
            f,
            "  epochs {:>8}  shards moved {:>4} / rebuilt {:>4}  migrated {:>8} B (wire {} B)",
            s.epochs(),
            s.shards_moved(),
            s.shards_rebuilt(),
            s.bytes_migrated(),
            s.comm().bytes()
        )?;
        for r in &self.reshard_log {
            writeln!(f, "  {r}")?;
        }
        write!(f, "{}", self.final_map)
    }
}

/// The elastic sharded server.
///
/// Unlike [`crate::Server`] there is no worker pool: execution happens
/// synchronously inside [`ShardedServer::advance`] /
/// [`ShardedServer::flush`], in virtual time, on the configured
/// [`Executor`]. That is a deliberate robustness trade — every request
/// resolves before `flush` returns (nothing can hang), and the whole run
/// is a pure function of `(trace, config)` with no thread scheduling in
/// sight. The executor decides only *how* a round is computed: `Seq` and
/// `Rayon` map batches over the seam, `Cluster` runs a real SPMD round
/// per boundary with the chaos plan attached.
pub struct ShardedServer<S: ShardedService> {
    service: S,
    exec: Executor,
    cfg: ShardConfig,
    stats: Arc<ServerStats>,

    clock: u64,
    members: BTreeSet<usize>,
    dead: BTreeSet<usize>,
    epoch: u64,
    map: ShardMap,
    /// Shard → warm state. The driver is the single address space; on
    /// the cluster backend migration additionally ships the Arc'd state
    /// between ranks so the wire cost is measured, not modeled.
    states: BTreeMap<usize, Arc<S::State>>,

    next_req_id: u64,
    next_batch_id: u64,
    ingress: VecDeque<Queued<S>>,
    shard_pending: BTreeMap<usize, VecDeque<Queued<S>>>,
    /// Closed batches awaiting dispatch (their backoff may gate them).
    ready: Vec<ShardBatch<S>>,

    /// Batches dispatched to each rank so far — the serve-level "send
    /// events" that [`FaultPlan::kill`] thresholds count.
    dispatched_to: BTreeMap<usize, u64>,
    /// Ranks whose scheduled kill has already fired. A kill is one-shot:
    /// a revived rank lives on, its dispatch counter notwithstanding.
    killed: BTreeSet<usize>,
    /// Killed ranks scheduled to rejoin: `(due_tick, rank)`.
    pending_revivals: Vec<(u64, usize)>,
    /// Scripted scaling not yet applied (sorted by tick).
    scaling: VecDeque<(u64, ScaleEvent)>,
    round_no: u64,

    reshard_log: Vec<ReshardRecord>,
    batch_log: Vec<BatchRecord>,
}

impl<S: ShardedService> ShardedServer<S> {
    /// Build the epoch-0 server: compute the initial map and all shard
    /// states.
    pub fn start(service: S, exec: Executor, cfg: ShardConfig) -> Self {
        cfg.validate();
        let members: BTreeSet<usize> = (0..cfg.initial_ranks).collect();
        let map = ShardMap::compute(&members, 0, cfg.num_shards, cfg.vnodes, cfg.seed);
        let states = (0..cfg.num_shards)
            .map(|s| (s, Arc::new(service.build_shard(s, cfg.num_shards))))
            .collect();
        let stats = ServerStats::new(cfg.max_batch_size);
        let scaling = cfg.scaling.iter().copied().collect();
        Self {
            service,
            exec,
            stats,
            clock: 0,
            members,
            dead: BTreeSet::new(),
            epoch: 0,
            map,
            states,
            next_req_id: 0,
            next_batch_id: 0,
            ingress: VecDeque::new(),
            shard_pending: BTreeMap::new(),
            ready: Vec::new(),
            dispatched_to: BTreeMap::new(),
            killed: BTreeSet::new(),
            pending_revivals: Vec::new(),
            scaling,
            round_no: 0,
            reshard_log: Vec::new(),
            batch_log: Vec::new(),
            cfg,
        }
    }

    /// The current virtual tick.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The current shard map.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// Live members, ascending.
    pub fn members(&self) -> Vec<usize> {
        self.members.iter().copied().collect()
    }

    /// The per-epoch reshard ledger so far.
    pub fn reshard_log(&self) -> &[ReshardRecord] {
        &self.reshard_log
    }

    /// The ledger handle (shared; readable while the server runs).
    pub fn stats(&self) -> &Arc<ServerStats> {
        &self.stats
    }

    /// The shard serving `input` — fixed for the server's lifetime.
    pub fn shard_of(&self, input: &S::Input) -> usize {
        owner_of_key(&self.service.route_key(input), self.cfg.num_shards, self.cfg.seed)
    }

    /// Submit a request at the current tick. Rejects with
    /// [`ServeError::Overloaded`] when the ingress bound is hit.
    pub fn submit(&mut self, input: S::Input) -> Result<Response<S::Output>, ServeError> {
        if self.ingress.len() >= self.cfg.capacity {
            self.stats.record_reject();
            return Err(ServeError::Overloaded);
        }
        let id = self.next_req_id;
        self.next_req_id += 1;
        let slot = Slot::new();
        self.ingress.push_back((id, self.clock, input, Arc::clone(&slot)));
        let depth = (self.ingress.len() + self.pending_len()) as u64;
        self.stats.record_submit(depth);
        Ok(Response { id, slot })
    }

    /// Advance the virtual clock by `ticks`, running the boundary
    /// pipeline at each: revivals → scripted scaling → ingress drain →
    /// batch closes → one serving round of every due batch.
    pub fn advance(&mut self, ticks: u64) {
        for _ in 0..ticks {
            self.clock += 1;
            self.apply_revivals();
            self.apply_scaling();
            self.drain_ingress();
            self.close_batches(false);
            let due = self.take_due();
            if !due.is_empty() {
                self.execute_round(due);
            }
            let depth = (self.ingress.len() + self.pending_len()) as u64;
            self.stats.record_depth(depth);
        }
    }

    /// Close everything pending and run rounds (advancing the clock as
    /// needed for backoff gates) until every accepted request has
    /// resolved.
    pub fn flush(&mut self) {
        self.drain_ingress();
        self.close_batches(true);
        while !self.ready.is_empty() {
            let due = self.take_due();
            if due.is_empty() {
                // Everything left is gated by backoff; let time pass.
                self.clock += 1;
                self.apply_revivals();
                self.apply_scaling();
                continue;
            }
            self.execute_round(due);
        }
        self.stats.record_depth(0);
    }

    /// Drive a `(tick, input)` trace to completion and return every
    /// response in submission order. Same contract as
    /// [`crate::Server::run_trace`]; since execution is synchronous,
    /// every slot is already resolved when this returns.
    pub fn run_trace<I>(&mut self, trace: I) -> Vec<Result<S::Output, ServeError>>
    where
        I: IntoIterator<Item = (u64, S::Input)>,
    {
        let mut handles = Vec::new();
        let mut last_tick = 0;
        for (tick, input) in trace {
            assert!(tick >= last_tick, "arrival ticks must be nondecreasing");
            last_tick = tick;
            if tick > self.clock {
                let dt = tick - self.clock;
                self.advance(dt);
            }
            handles.push(self.submit(input));
        }
        self.flush();
        handles
            .into_iter()
            .map(|h| match h {
                Ok(resp) => resp.wait(),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Flush and return the end-of-run report. Consumes the server;
    /// outstanding [`Response`] handles stay valid.
    pub fn shutdown(mut self) -> ShardedReport {
        self.flush();
        ShardedReport {
            service: self.service.name(),
            backend: backend_label(&self.exec),
            stats: self.stats,
            reshard_log: self.reshard_log,
            batch_log: self.batch_log,
            final_map: self.map,
        }
    }

    fn pending_len(&self) -> usize {
        self.shard_pending.values().map(|q| q.len()).sum::<usize>()
            + self.ready.iter().map(|b| b.inputs.len()).sum::<usize>()
    }

    fn apply_revivals(&mut self) {
        let due: Vec<usize> = self
            .pending_revivals
            .iter()
            .filter(|&&(t, _)| t <= self.clock)
            .map(|&(_, r)| r)
            .collect();
        self.pending_revivals.retain(|&(t, _)| t > self.clock);
        for rank in due {
            self.dead.remove(&rank);
            self.members.insert(rank);
            self.reshard(ReshardCause::Revive(rank), None, 0);
        }
    }

    fn apply_scaling(&mut self) {
        while let Some(&(tick, event)) = self.scaling.front() {
            if tick > self.clock {
                break;
            }
            self.scaling.pop_front();
            match event {
                ScaleEvent::Add(rank) => {
                    assert!(
                        !self.members.contains(&rank) && !self.dead.contains(&rank),
                        "scripted add of rank {rank} which is already known"
                    );
                    self.members.insert(rank);
                    self.reshard(ReshardCause::Join(rank), None, 0);
                }
                ScaleEvent::Drain(rank) => {
                    assert!(
                        self.members.contains(&rank),
                        "scripted drain of rank {rank} which is not a member"
                    );
                    assert!(self.members.len() > 1, "cannot drain the last rank");
                    self.members.remove(&rank);
                    self.reshard(ReshardCause::Drain(rank), None, 0);
                }
            }
        }
    }

    fn drain_ingress(&mut self) {
        while let Some((id, arrival, input, slot)) = self.ingress.pop_front() {
            let shard = self.shard_of(&input);
            self.shard_pending
                .entry(shard)
                .or_default()
                .push_back((id, arrival, input, slot));
        }
    }

    /// Close batches per shard (ascending): size-closes first, then a
    /// wait-close once the oldest request has aged out — or everything,
    /// on `flush`.
    fn close_batches(&mut self, flush: bool) {
        let shards: Vec<usize> = self.shard_pending.keys().copied().collect();
        for shard in shards {
            loop {
                let q = self.shard_pending.get_mut(&shard).unwrap();
                if q.is_empty() {
                    break;
                }
                let cause = if q.len() >= self.cfg.max_batch_size {
                    CloseCause::Size
                } else if flush {
                    CloseCause::Flush
                } else if self.clock - q.front().unwrap().1 >= self.cfg.max_wait {
                    CloseCause::Timeout
                } else {
                    break;
                };
                let take = q.len().min(self.cfg.max_batch_size);
                let mut inputs = Vec::with_capacity(take);
                let mut slots = Vec::with_capacity(take);
                for _ in 0..take {
                    let (_, arrival, input, slot) = q.pop_front().unwrap();
                    self.stats.record_latency(self.clock - arrival);
                    inputs.push(input);
                    slots.push(slot);
                }
                let id = self.next_batch_id;
                self.next_batch_id += 1;
                self.stats.record_batch(take, cause);
                self.batch_log.push(BatchRecord {
                    id,
                    close_tick: self.clock,
                    size: take,
                    cause,
                });
                self.ready.push(ShardBatch {
                    id,
                    shard,
                    attempt: 0,
                    not_before: 0,
                    inputs,
                    slots,
                });
            }
        }
    }

    fn take_due(&mut self) -> Vec<ShardBatch<S>> {
        let clock = self.clock;
        let mut due: Vec<ShardBatch<S>> = Vec::new();
        let mut rest = Vec::new();
        for b in self.ready.drain(..) {
            if b.not_before <= clock {
                due.push(b);
            } else {
                rest.push(b);
            }
        }
        self.ready = rest;
        due.sort_by_key(|b| b.id);
        due
    }

    /// Execute one round of `due` batches; this is where kills fire,
    /// are detected, and are survived.
    fn execute_round(&mut self, mut due: Vec<ShardBatch<S>>) {
        self.round_no += 1;

        // Count dispatches and decide, deterministically, who dies this
        // round: a rank whose cumulative dispatched-batch count crosses
        // its kill threshold. All of a dying rank's round batches are
        // lost — on the cluster its results genuinely unwind with the
        // KilledByPlan panic before any completion token escapes.
        let owners: Vec<usize> = due.iter().map(|b| self.map.owner(b.shard)).collect();
        let mut dying: BTreeSet<usize> = BTreeSet::new();
        for &owner in &owners {
            *self.dispatched_to.entry(owner).or_insert(0) += 1;
            for (rank, after) in self.cfg.plan.scheduled_kills() {
                if rank == owner && !self.killed.contains(&rank) && self.dispatched_to[&owner] > after
                {
                    dying.insert(owner);
                }
            }
        }

        let mut alive: Vec<ShardBatch<S>> = Vec::new();
        // Lost batches keep their dispatch-time owner: the map is about
        // to change under the reshard, but accountability must not.
        let mut lost: Vec<(usize, ShardBatch<S>)> = Vec::new();
        for (b, owner) in due.drain(..).zip(owners) {
            if dying.contains(&owner) {
                lost.push((owner, b));
            } else {
                alive.push(b);
            }
        }

        let outputs = self.run_alive_batches(&alive, &dying);
        for (batch, outs) in alive.into_iter().zip(outputs) {
            assert_eq!(outs.len(), batch.inputs.len(), "one answer per request");
            for (slot, out) in batch.slots.iter().zip(outs) {
                slot.fill(Ok(out));
            }
            self.stats.record_completed(batch.slots.len() as u64);
        }

        // Handle deaths: epoch bump, rebuild, replay — ascending rank
        // order so every backend reshards identically.
        for rank in dying {
            let mut my_lost: Vec<ShardBatch<S>> = Vec::new();
            let mut rest: Vec<(usize, ShardBatch<S>)> = Vec::new();
            for (owner, b) in lost {
                if owner == rank {
                    my_lost.push(b);
                } else {
                    rest.push((owner, b));
                }
            }
            lost = rest;
            let replayed: u64 = my_lost.iter().map(|b| b.inputs.len() as u64).sum();
            assert!(
                self.members.len() > 1,
                "fault plan killed the last live rank"
            );
            self.members.remove(&rank);
            self.dead.insert(rank);
            self.killed.insert(rank);
            self.reshard(ReshardCause::Kill(rank), Some(rank), replayed);
            for mut b in my_lost {
                b.attempt += 1;
                let delay = self.cfg.backoff.delay_ticks(b.attempt);
                self.stats.record_backoff(delay);
                self.stats.record_replayed(b.inputs.len() as u64);
                b.not_before = self.clock + 1 + delay;
                self.ready.push(b);
            }
            if let Some(after) = self.cfg.plan.revival_of(rank) {
                self.pending_revivals.push((self.clock + 1 + after, rank));
            }
        }
        assert!(lost.is_empty(), "lost batches must all belong to dying ranks");
    }

    /// Run the surviving batches of one round on the configured backend
    /// and return per-batch outputs, aligned with `alive`.
    fn run_alive_batches(
        &self,
        alive: &[ShardBatch<S>],
        dying: &BTreeSet<usize>,
    ) -> Vec<Vec<S::Output>> {
        if alive.is_empty() && dying.is_empty() {
            return Vec::new();
        }
        match &self.exec {
            Executor::Cluster { .. } => self.run_cluster_round(alive, dying),
            exec => {
                if alive.is_empty() {
                    return Vec::new();
                }
                let dist = peachy_cluster::EvenBlocks::new(
                    alive.len(),
                    exec.parts_for(alive.len()),
                );
                let service = &self.service;
                let states = &self.states;
                exec.map_parts_counted(&dist, self.stats.comm(), |_, range| {
                    range
                        .map(|i| {
                            let b = &alive[i];
                            service.run_shard(b.shard, &states[&b.shard], &b.inputs)
                        })
                        .collect::<Vec<Vec<S::Output>>>()
                })
                .into_iter()
                .flatten()
                .collect()
            }
        }
    }

    /// One real SPMD round: every live member (dying ones included —
    /// their death must *happen*, not be skipped) computes its batches,
    /// then exchanges completion tokens. Dying ranks panic at their
    /// first token send; survivors detect the deaths via death notices
    /// under `recv_deadline` and return normally.
    fn run_cluster_round(
        &self,
        alive: &[ShardBatch<S>],
        dying: &BTreeSet<usize>,
    ) -> Vec<Vec<S::Output>> {
        let slots_to_rank: Vec<usize> = self.members.iter().copied().collect();
        let rank_to_slot: BTreeMap<usize, usize> = slots_to_rank
            .iter()
            .enumerate()
            .map(|(slot, &rank)| (rank, slot))
            .collect();
        let m = slots_to_rank.len();

        // Which alive batches each slot computes.
        let mut slot_batches: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, b) in alive.iter().enumerate() {
            slot_batches[rank_to_slot[&self.map.owner(b.shard)]].push(i);
        }

        // Fresh (reproducible) chaos each round, plus the real kills.
        let round_seed = SplitMix64::mix(mix_seed(self.cfg.plan.seed()) ^ self.round_no);
        let mut plan = self.cfg.plan.transport_only().with_seed(round_seed);
        for rank in dying {
            plan = plan.kill(rank_to_slot[rank], 0);
        }

        let service = &self.service;
        let states = &self.states;
        let comm_stats = Arc::clone(self.stats.comm());
        let results = Cluster::run_with_plan(m, &plan, move |comm: &mut Comm| {
            let me = comm.rank();
            let answers: Vec<(usize, Vec<S::Output>)> = slot_batches[me]
                .iter()
                .map(|&i| {
                    let b = &alive[i];
                    (i, service.run_shard(b.shard, &states[&b.shard], &b.inputs))
                })
                .collect();
            // Completion-token barrier with failure detection: a dying
            // rank panics at its first send, so its answers never leave
            // this scope; survivors see the death notice instead of
            // blocking.
            for dst in 0..m {
                if dst != me {
                    comm.send(dst, TOKEN_TAG, ());
                }
            }
            let mut detected: Vec<usize> = Vec::new();
            let deadline = Instant::now() + TOKEN_DEADLINE;
            for src in 0..m {
                if src == me {
                    continue;
                }
                match comm.recv_deadline::<()>(src, TOKEN_TAG, deadline) {
                    Ok(()) => {}
                    Err(RecvError::PeerDead { .. }) => detected.push(src),
                    // A token lost to injected drop/delay from a live
                    // peer: benign for this barrier.
                    Err(RecvError::Timeout | RecvError::Disconnected) => {}
                }
            }
            comm_stats.add_bytes(comm.bytes_sent());
            (answers, detected)
        });

        let mut outputs: Vec<Option<Vec<S::Output>>> = (0..alive.len()).map(|_| None).collect();
        let mut detected_union: BTreeSet<usize> = BTreeSet::new();
        for (slot, result) in results.into_iter().enumerate() {
            match result {
                Ok((answers, detected)) => {
                    for (i, outs) in answers {
                        outputs[i] = Some(outs);
                    }
                    detected_union.extend(detected);
                }
                Err(e) => {
                    let rank = slots_to_rank[slot];
                    assert!(
                        dying.contains(&rank) && matches!(e.kind, RankErrorKind::Killed),
                        "rank {rank} failed outside the fault plan: {e}"
                    );
                }
            }
        }
        if !dying.is_empty() && m > 1 {
            let dying_slots: BTreeSet<usize> =
                dying.iter().map(|r| rank_to_slot[r]).collect();
            assert_eq!(
                detected_union, dying_slots,
                "survivors must detect exactly the scheduled deaths"
            );
        }
        outputs
            .into_iter()
            .map(|o| o.expect("surviving rank lost a batch without dying"))
            .collect()
    }

    /// Bump the epoch, recompute the map, and move/rebuild exactly the
    /// shard delta (or everything, under the `full_rebuild` strawman).
    /// `dead_owner` marks a rank whose state is gone (kill) rather than
    /// transferable (drain).
    fn reshard(&mut self, cause: ReshardCause, dead_owner: Option<usize>, replayed: u64) {
        let old_map = self.map.clone();
        self.epoch += 1;
        self.map = ShardMap::compute(
            &self.members,
            self.epoch,
            self.cfg.num_shards,
            self.cfg.vnodes,
            self.cfg.seed,
        );

        let mut rebuilt: Vec<usize> = Vec::new();
        let mut transfers: Vec<(usize, usize, usize)> = Vec::new(); // (src, dst, shard)
        for shard in old_map.moved_shards(&self.map) {
            let src = old_map.owner(shard);
            let dst = self.map.owner(shard);
            if Some(src) == dead_owner {
                rebuilt.push(shard);
            } else {
                transfers.push((src, dst, shard));
            }
        }
        if self.cfg.full_rebuild {
            // Strawman: rebroadcast every shard from the lowest live
            // rank, moved or not (rebuilt shards still must be rebuilt).
            let root = *self.members.iter().next().unwrap();
            transfers = (0..self.cfg.num_shards)
                .filter(|s| !rebuilt.contains(s))
                .map(|s| (root, self.map.owner(s), s))
                .collect();
        }

        for &shard in &rebuilt {
            self.states
                .insert(shard, Arc::new(self.service.build_shard(shard, self.cfg.num_shards)));
        }
        let bytes: u64 = transfers
            .iter()
            .map(|&(_, _, s)| self.states[&s].approx_bytes() as u64)
            .sum();

        // On the cluster backend, actually ship the moved states between
        // ranks as Shared (Arc) payloads so the transport's byte meter —
        // not a model — prices the migration. Migration runs on a clean
        // transport: chaos is scripted against serving rounds.
        if matches!(self.exec, Executor::Cluster { .. }) && !transfers.is_empty() {
            let mut participants: BTreeSet<usize> = self.members.clone();
            for &(src, _, _) in &transfers {
                participants.insert(src);
            }
            let parts: Vec<usize> = participants.iter().copied().collect();
            let slot_of: BTreeMap<usize, usize> =
                parts.iter().enumerate().map(|(i, &r)| (r, i)).collect();
            let jobs: Vec<(usize, usize, u32, Shared<S::State>)> = transfers
                .iter()
                .map(|&(src, dst, s)| {
                    (slot_of[&src], slot_of[&dst], s as u32, Arc::clone(&self.states[&s]))
                })
                .collect();
            let comm_stats = Arc::clone(self.stats.comm());
            Cluster::run(parts.len(), move |comm: &mut Comm| {
                let me = comm.rank();
                for (src, dst, tag, state) in &jobs {
                    if *src == me && *dst != me {
                        comm.send(*dst, *tag, Arc::clone(state));
                    }
                }
                for (src, dst, tag, _) in &jobs {
                    if *dst == me && *src != me {
                        let _received: Shared<S::State> = comm.recv(*src, *tag);
                    }
                }
                comm_stats.add_bytes(comm.bytes_sent());
            });
        }

        self.stats
            .record_reshard(transfers.len() as u64, rebuilt.len() as u64, bytes);
        self.reshard_log.push(ReshardRecord {
            epoch: self.epoch,
            tick: self.clock,
            cause,
            shards_moved: transfers.len(),
            shards_rebuilt: rebuilt.len(),
            bytes_migrated: bytes,
            requests_replayed: replayed,
        });
    }
}
