//! The server: bounded ingress → virtual-time micro-batcher → worker pool
//! → per-request responses.
//!
//! ## Determinism contract
//!
//! Time is **virtual**: the clock only moves when [`Server::advance`] is
//! called, and the batcher only runs on tick boundaries (and on
//! [`Server::flush`]). Batch boundaries — which requests share a batch,
//! at which tick each batch closes, and why — are therefore a pure
//! function of `(arrival trace, ServeConfig)`: no wall-clock, no thread
//! races. Combined with services whose per-request output is independent
//! of how a batch is decomposed (all built-ins are), every request's
//! response is bit-identical across `Seq`, `Rayon`, and `Cluster`
//! executors, with or without injected worker panics.
//!
//! ## Failure model
//!
//! A worker executes a batch under `catch_unwind`. If the service (or an
//! injected [`ChaosPlan`]) panics, the worker thread is considered dead:
//! it re-dispatches the batch (attempt + 1) while the batch is still
//! below [`RetryPolicy::max_attempts`], spawns its own replacement, and
//! exits. A batch that exhausts its attempts answers every request with
//! [`ServeError::Failed`] — so each request resolves **exactly once**:
//! the response slot panics on a double fill, and the accounting
//! invariant `completed + failed + rejected == submitted` holds at
//! shutdown.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once};

use crossbeam::channel::{Receiver, Sender};
use peachy_cluster::{Executor, RetryPolicy, TickBackoff};
use peachy_prng::{mix_seed, Bernoulli, Lcg64, RandomStream, SplitMix64};

use crate::service::Service;
use crate::stats::{CloseCause, ServerStats};

/// Why a request was not (or could not be) answered with an output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Rejected at admission: the ingress queue was at capacity.
    Overloaded,
    /// The batch kept panicking until the retry budget ran out.
    Failed {
        /// Attempts consumed (equals the policy's `max_attempts`).
        attempts: u32,
    },
    /// The server shut down before the request could be dispatched.
    ShutDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "rejected: ingress queue at capacity"),
            ServeError::Failed { attempts } => {
                write!(f, "failed after {attempts} attempts")
            }
            ServeError::ShutDown => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Server tuning knobs. Everything that shapes batch boundaries is in
/// here, which is why runs are reproducible from `(trace, config)`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingress bound: admitted-but-undrained requests beyond this are
    /// rejected with [`ServeError::Overloaded`].
    pub capacity: usize,
    /// Largest batch the batcher will close.
    pub max_batch_size: usize,
    /// Ticks the oldest pending request may wait before the batcher
    /// closes a partial batch.
    pub max_wait: u64,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Retry budget for batches whose worker panicked. The wall-clock
    /// `backoff` half of the policy is ignored here — virtual-time
    /// serving delays retries via [`ServeConfig::retry_backoff`] instead.
    pub retry: RetryPolicy,
    /// Deterministic virtual-tick retry delay (attempt-indexed, seeded
    /// jitter); recorded in [`ServerStats::backoff_ticks`] so chaotic
    /// runs stay a pure function of `(trace, config, seed)`.
    pub retry_backoff: TickBackoff,
    /// Reproducible worker-panic injection; `None` for a clean run.
    pub chaos: Option<ChaosPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            capacity: 256,
            max_batch_size: 32,
            max_wait: 4,
            workers: 2,
            retry: RetryPolicy::default(),
            retry_backoff: TickBackoff::none(),
            chaos: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) {
        assert!(self.capacity > 0, "capacity must be at least 1");
        assert!(self.max_batch_size > 0, "max_batch_size must be at least 1");
        assert!(self.max_wait > 0, "max_wait must be at least 1 tick");
        assert!(self.workers > 0, "need at least one worker");
        assert!(self.retry.max_attempts >= 1, "need at least one attempt");
    }
}

/// Reproducible worker-panic injection, the serving counterpart of the
/// cluster's transport [`FaultPlan`](peachy_cluster::FaultPlan).
///
/// Whether a given `(batch, attempt)` execution panics is drawn from a
/// dedicated stream seeded by `(seed, batch id, attempt)` — independent of
/// which worker picks the batch up and of thread scheduling, so a chaos
/// run replays exactly from its seed on every backend.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    seed: u64,
    panic_p: f64,
}

impl ChaosPlan {
    /// Panic each batch execution with probability `panic_p`.
    pub fn new(seed: u64, panic_p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&panic_p),
            "panic_p = {panic_p} outside [0, 1]"
        );
        Self { seed, panic_p }
    }

    fn should_panic(&self, batch_id: u64, attempt: u32) -> bool {
        let mut rng = Lcg64::seed_from(SplitMix64::mix(
            mix_seed(self.seed) ^ (batch_id << 16) ^ attempt as u64,
        ));
        Bernoulli::new(self.panic_p).sample(&mut rng)
    }
}

/// Payload of an injected worker panic; recognized by the panic hook so
/// intentional chaos does not spray backtraces over test output.
struct ChaosPanic;

/// One closed batch in the server's log: enough to compare batcher
/// behaviour bit-for-bit across backends and seeds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Dispatch order (0-based).
    pub id: u64,
    /// Virtual tick at which the batch closed.
    pub close_tick: u64,
    /// Requests in the batch.
    pub size: usize,
    /// What closed it.
    pub cause: CloseCause,
}

/// End-of-run summary returned by [`Server::shutdown`].
pub struct ServerReport {
    /// The service that ran.
    pub service: &'static str,
    /// Human label of the executor backend.
    pub backend: String,
    /// The full ledger (shared with any still-held stats handles).
    pub stats: Arc<ServerStats>,
    /// Every batch the server closed, in dispatch order.
    pub batch_log: Vec<BatchRecord>,
    /// Virtual clock at shutdown.
    pub final_tick: u64,
}

impl fmt::Display for ServerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = &self.stats;
        let (by_size, by_timeout, by_flush) = s.close_causes();
        writeln!(f, "service {} on {} — {} ticks", self.service, self.backend, self.final_tick)?;
        writeln!(
            f,
            "  requests   submitted {:>6}  completed {:>6}  rejected {:>5}  failed {:>5}",
            s.submitted(),
            s.completed(),
            s.rejected(),
            s.failed()
        )?;
        writeln!(
            f,
            "  batches    closed {:>9}  by size {:>8}  by wait {:>6}  by flush {:>4}",
            s.batches(),
            by_size,
            by_timeout,
            by_flush
        )?;
        writeln!(
            f,
            "  failures   retried reqs {:>3}  worker respawns {:>3}",
            s.retried(),
            s.worker_respawns()
        )?;
        writeln!(
            f,
            "  queue      max depth {:>6}  latency ticks p50 {:?} p95 {:?} p99 {:?}",
            s.max_queue_depth(),
            s.p50(),
            s.p95(),
            s.p99()
        )?;
        write!(
            f,
            "  backend    scattered {:>6}  gathered {:>7}  collective bytes {:>8}  measured bytes {:>8}  peak resident {:>8}",
            s.comm().scattered(),
            s.comm().gathered(),
            s.comm().collective_bytes(),
            s.comm().bytes(),
            s.comm().peak_resident_bytes()
        )
    }
}

/// A blocking handle to one request's eventual answer.
///
/// The slot is filled exactly once — by the worker that completes the
/// batch, or by the retry machinery when the budget runs out. A second
/// fill panics, which is the invariant the chaos tests lean on.
pub struct Response<O> {
    pub(crate) id: u64,
    pub(crate) slot: Arc<Slot<O>>,
}

impl<O> fmt::Debug for Response<O> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Response")
            .field("id", &self.id)
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl<O> Response<O> {
    /// The server-assigned request id (submission order, 0-based).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Has the answer arrived yet? (Non-blocking.)
    pub fn is_ready(&self) -> bool {
        !matches!(*self.slot.state.lock().unwrap(), SlotState::Pending)
    }

    /// Block until the answer arrives and take it.
    pub fn wait(self) -> Result<O, ServeError> {
        self.slot.take()
    }
}

pub(crate) enum SlotState<O> {
    Pending,
    Ready(Result<O, ServeError>),
    Taken,
}

/// Exactly-once response cell, shared between [`crate::Server`] and the
/// sharded tier in [`crate::shard`].
pub(crate) struct Slot<O> {
    state: Mutex<SlotState<O>>,
    cv: Condvar,
}

impl<O> Slot<O> {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn fill(&self, v: Result<O, ServeError>) {
        let mut st = self.state.lock().unwrap();
        match *st {
            SlotState::Pending => {
                *st = SlotState::Ready(v);
                self.cv.notify_all();
            }
            _ => panic!("response slot filled twice — exactly-once violated"),
        }
    }

    pub(crate) fn take(&self) -> Result<O, ServeError> {
        let mut st = self.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *st, SlotState::Taken) {
                SlotState::Ready(v) => return v,
                SlotState::Pending => {
                    *st = SlotState::Pending;
                    st = self.cv.wait(st).unwrap();
                }
                SlotState::Taken => panic!("response already taken"),
            }
        }
    }
}

/// A closed batch travelling to (and possibly back from) the worker pool.
/// `slots[i]` is where `inputs[i]`'s answer lands.
struct BatchCore<S: Service> {
    id: u64,
    attempt: AtomicU32,
    inputs: Vec<S::Input>,
    slots: Vec<Arc<Slot<S::Output>>>,
}

/// One admitted request in flight to the batcher: `(id, arrival tick,
/// input, response slot)`.
type Queued<S> = (
    u64,
    u64,
    <S as Service>::Input,
    Arc<Slot<<S as Service>::Output>>,
);

/// Batcher state: everything the virtual clock drives, under one lock.
struct BatchState<S: Service> {
    clock: u64,
    /// Admitted, not yet seen by the batcher (drained on tick boundaries).
    ingress: VecDeque<Queued<S>>,
    /// Drained, waiting to fill a batch.
    pending: VecDeque<Queued<S>>,
    next_req_id: u64,
    next_batch_id: u64,
    batch_log: Vec<BatchRecord>,
}

struct Inner<S: Service> {
    cfg: ServeConfig,
    service: S,
    exec: Executor,
    stats: Arc<ServerStats>,
    state: Mutex<BatchState<S>>,
    /// `Some` while the server accepts dispatches; taken (and dropped) at
    /// shutdown so workers drain the channel and exit.
    dispatch_tx: Mutex<Option<Sender<Arc<BatchCore<S>>>>>,
    dispatch_rx: Receiver<Arc<BatchCore<S>>>,
    /// Dispatched batches not yet terminal (answered or failed).
    outstanding: Mutex<u64>,
    drained: Condvar,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The micro-batching request server. See the module docs for the
/// determinism and failure contracts.
pub struct Server<S: Service> {
    inner: Arc<Inner<S>>,
}

impl<S: Service> Server<S> {
    /// Spawn the worker pool and start accepting requests at tick 0.
    pub fn start(service: S, exec: Executor, cfg: ServeConfig) -> Self {
        cfg.validate();
        if cfg.chaos.is_some() {
            silence_chaos_panics();
        }
        let (tx, rx) = crossbeam::channel::unbounded();
        let inner = Arc::new(Inner {
            stats: ServerStats::new(cfg.max_batch_size),
            cfg,
            service,
            exec,
            state: Mutex::new(BatchState {
                clock: 0,
                ingress: VecDeque::new(),
                pending: VecDeque::new(),
                next_req_id: 0,
                next_batch_id: 0,
                batch_log: Vec::new(),
            }),
            dispatch_tx: Mutex::new(Some(tx)),
            dispatch_rx: rx,
            outstanding: Mutex::new(0),
            drained: Condvar::new(),
            workers: Mutex::new(Vec::new()),
        });
        for w in 0..inner.cfg.workers {
            Inner::spawn_worker(&inner, w);
        }
        Server { inner }
    }

    /// Offer one request. Admitted requests get a [`Response`] handle;
    /// beyond `capacity` the request is rejected immediately with
    /// [`ServeError::Overloaded`] — the queue never grows unbounded and
    /// the caller never blocks.
    pub fn submit(&self, input: S::Input) -> Result<Response<S::Output>, ServeError> {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();
        if st.ingress.len() >= inner.cfg.capacity {
            inner.stats.record_reject();
            return Err(ServeError::Overloaded);
        }
        let id = st.next_req_id;
        st.next_req_id += 1;
        let slot = Slot::new();
        let arrival = st.clock;
        st.ingress.push_back((id, arrival, input, Arc::clone(&slot)));
        let depth = (st.ingress.len() + st.pending.len()) as u64;
        inner.stats.record_submit(depth);
        Ok(Response { id, slot })
    }

    /// Advance the virtual clock by `ticks`, running the batcher at each
    /// boundary: drain the ingress queue, close full batches, and close a
    /// partial batch once its oldest request has waited `max_wait` ticks.
    pub fn advance(&self, ticks: u64) {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();
        for _ in 0..ticks {
            st.clock += 1;
            // Everything submitted before this boundary becomes visible
            // to the batcher now.
            while let Some(req) = st.ingress.pop_front() {
                st.pending.push_back(req);
            }
            while st.pending.len() >= inner.cfg.max_batch_size {
                inner.close_batch(&mut st, CloseCause::Size);
            }
            let expired = st
                .pending
                .front()
                .is_some_and(|(_, arrival, _, _)| st.clock - arrival >= inner.cfg.max_wait);
            if expired {
                inner.close_batch(&mut st, CloseCause::Timeout);
            }
            inner
                .stats
                .record_depth((st.ingress.len() + st.pending.len()) as u64);
        }
    }

    /// Close everything immediately (without advancing the clock): drain
    /// the ingress queue and dispatch all pending requests in
    /// `max_batch_size` chunks. Used at end-of-trace and by shutdown.
    pub fn flush(&self) {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap();
        while let Some(req) = st.ingress.pop_front() {
            st.pending.push_back(req);
        }
        while !st.pending.is_empty() {
            inner.close_batch(&mut st, CloseCause::Flush);
        }
        inner.stats.record_depth(0);
    }

    /// The current virtual tick.
    pub fn now(&self) -> u64 {
        self.inner.state.lock().unwrap().clock
    }

    /// The live ledger (shared; also returned by [`Server::shutdown`]).
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.inner.stats)
    }

    /// Drive a whole seeded trace: submit each `(tick, input)` at its
    /// tick (advancing the clock as needed), flush at the end, and block
    /// for every answer. The result vector aligns with the trace;
    /// rejected submissions yield `Err(Overloaded)` in place.
    ///
    /// Arrival ticks must be nondecreasing — the trace *is* the arrival
    /// order, which is exactly what makes the run reproducible.
    pub fn run_trace<I>(&self, trace: I) -> Vec<Result<S::Output, ServeError>>
    where
        I: IntoIterator<Item = (u64, S::Input)>,
    {
        let mut handles = Vec::new();
        let mut last_tick = 0;
        for (tick, input) in trace {
            assert!(tick >= last_tick, "arrival ticks must be nondecreasing");
            last_tick = tick;
            let now = self.now();
            if tick > now {
                self.advance(tick - now);
            }
            handles.push(self.submit(input));
        }
        self.flush();
        handles
            .into_iter()
            .map(|h| match h {
                Ok(resp) => resp.wait(),
                Err(e) => Err(e),
            })
            .collect()
    }

    /// Flush, wait until every dispatched batch is terminal, stop the
    /// workers, and return the end-of-run report. Consumes the server;
    /// outstanding [`Response`] handles stay valid.
    pub fn shutdown(self) -> ServerReport {
        let inner = &self.inner;
        self.flush();
        {
            let mut outstanding = inner.outstanding.lock().unwrap();
            while *outstanding > 0 {
                outstanding = inner.drained.wait(outstanding).unwrap();
            }
        }
        // Closing the channel lets workers drain it (it is already empty
        // — nothing is outstanding) and exit their recv loop.
        drop(inner.dispatch_tx.lock().unwrap().take());
        let handles = std::mem::take(&mut *inner.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        let st = inner.state.lock().unwrap();
        ServerReport {
            service: inner.service.name(),
            backend: backend_label(&inner.exec),
            stats: Arc::clone(&inner.stats),
            batch_log: st.batch_log.clone(),
            final_tick: st.clock,
        }
    }
}

impl<S: Service> Inner<S> {
    /// Close one batch off the front of `pending` and dispatch it.
    /// Latency is accounted here — close tick minus arrival tick — which
    /// is the deterministic queueing + batching delay.
    fn close_batch(&self, st: &mut BatchState<S>, cause: CloseCause) {
        let take = st.pending.len().min(self.cfg.max_batch_size);
        debug_assert!(take > 0, "never close an empty batch");
        let mut inputs = Vec::with_capacity(take);
        let mut slots = Vec::with_capacity(take);
        for _ in 0..take {
            let (_, arrival, input, slot) = st.pending.pop_front().expect("sized above");
            self.stats.record_latency(st.clock - arrival);
            inputs.push(input);
            slots.push(slot);
        }
        let id = st.next_batch_id;
        st.next_batch_id += 1;
        st.batch_log.push(BatchRecord {
            id,
            close_tick: st.clock,
            size: take,
            cause,
        });
        self.stats.record_batch(take, cause);
        let batch = Arc::new(BatchCore {
            id,
            attempt: AtomicU32::new(0),
            inputs,
            slots,
        });
        *self.outstanding.lock().unwrap() += 1;
        self.dispatch(batch);
    }

    fn dispatch(&self, batch: Arc<BatchCore<S>>) {
        let tx = self.dispatch_tx.lock().unwrap();
        match tx.as_ref() {
            Some(tx) => tx.send(batch).expect("workers hold the receiver"),
            // Shutdown raced a retry: the batch cannot run again.
            None => self.fail_batch(&batch, ServeError::ShutDown),
        }
    }

    fn spawn_worker(inner: &Arc<Inner<S>>, worker_id: usize) {
        let me = Arc::clone(inner);
        let handle = std::thread::Builder::new()
            .name(format!("serve-worker-{worker_id}"))
            .spawn(move || Inner::worker_main(me, worker_id))
            .expect("spawn worker thread");
        inner.workers.lock().unwrap().push(handle);
    }

    fn worker_main(inner: Arc<Inner<S>>, worker_id: usize) {
        while let Ok(batch) = inner.dispatch_rx.recv() {
            let attempt = batch.attempt.load(Ordering::Acquire);
            let outcome = catch_unwind(AssertUnwindSafe(|| inner.execute(&batch, attempt)));
            match outcome {
                Ok(outputs) => inner.complete(&batch, outputs),
                Err(_) => {
                    // Fail-stop: this worker dies with the panic. Hand the
                    // batch to the retry machinery, put a fresh worker in
                    // our slot, and exit.
                    inner.stats.record_respawn();
                    inner.handle_failure(&batch, attempt);
                    Inner::spawn_worker(&inner, worker_id);
                    return;
                }
            }
        }
    }

    /// One attempt at a batch. Panics here (chaos-injected or from the
    /// service itself) unwind into `worker_main`'s catch.
    fn execute(&self, batch: &BatchCore<S>, attempt: u32) -> Vec<S::Output> {
        if let Some(chaos) = &self.cfg.chaos {
            if chaos.should_panic(batch.id, attempt) {
                std::panic::panic_any(ChaosPanic);
            }
        }
        // Refit the backend to the batch so small batches still satisfy
        // the cluster backend's one-rank-per-part contract.
        let exec = self.exec.shrink_to(batch.inputs.len());
        let out = self
            .service
            .run_batch(&batch.inputs, &exec, self.stats.comm());
        assert_eq!(
            out.len(),
            batch.inputs.len(),
            "service must answer every request in the batch"
        );
        out
    }

    fn complete(&self, batch: &BatchCore<S>, outputs: Vec<S::Output>) {
        for (slot, out) in batch.slots.iter().zip(outputs) {
            slot.fill(Ok(out));
        }
        self.stats.record_completed(batch.slots.len() as u64);
        self.finish_batch();
    }

    fn handle_failure(&self, batch: &Arc<BatchCore<S>>, attempt: u32) {
        let next = attempt + 1;
        if next < self.cfg.retry.max_attempts {
            self.stats.record_retried(batch.slots.len() as u64);
            // Deterministic backoff: the delay is *accounted* in virtual
            // ticks (it shapes nothing observable in this fixed-pool
            // server, whose batch boundaries are already closed), never
            // slept — a wall-clock sleep inside virtual time would waste
            // real seconds without moving the virtual clock.
            self.stats
                .record_backoff(self.cfg.retry_backoff.delay_ticks(next));
            batch.attempt.store(next, Ordering::Release);
            self.dispatch(Arc::clone(batch));
        } else {
            self.fail_batch(batch, ServeError::Failed { attempts: next });
        }
    }

    fn fail_batch(&self, batch: &BatchCore<S>, err: ServeError) {
        for slot in &batch.slots {
            slot.fill(Err(err));
        }
        self.stats.record_failed(batch.slots.len() as u64);
        self.finish_batch();
    }

    fn finish_batch(&self) {
        let mut outstanding = self.outstanding.lock().unwrap();
        *outstanding -= 1;
        if *outstanding == 0 {
            self.drained.notify_all();
        }
    }
}

/// Short human label for an executor backend (report tables, benches).
pub(crate) fn backend_label(exec: &Executor) -> String {
    match exec {
        Executor::Seq => "seq".to_string(),
        Executor::Rayon { chunks } => format!("rayon({chunks})"),
        Executor::Cluster { ranks, .. } => format!("cluster({ranks})"),
    }
}

/// Install (once, process-wide) a panic hook that suppresses backtraces
/// for intentional [`ChaosPlan`] panics; real panics print as usual.
fn silence_chaos_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<ChaosPanic>() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::EchoService;
    use crate::stats::CloseCause;

    fn cfg(capacity: usize, max_batch: usize, max_wait: u64) -> ServeConfig {
        ServeConfig {
            capacity,
            max_batch_size: max_batch,
            max_wait,
            workers: 2,
            retry: RetryPolicy::default(),
            retry_backoff: TickBackoff::none(),
            chaos: None,
        }
    }

    #[test]
    fn echo_round_trip() {
        let server = Server::start(EchoService, Executor::seq(), cfg(8, 4, 2));
        let r = server.submit(41).unwrap();
        assert!(!r.is_ready());
        server.advance(2); // wait-close at tick 2
        assert_eq!(r.wait().unwrap(), 41);
        let report = server.shutdown();
        assert_eq!(report.stats.completed(), 1);
        assert_eq!(report.batch_log.len(), 1);
        assert_eq!(report.batch_log[0].cause, CloseCause::Timeout);
    }

    #[test]
    fn batch_closes_on_size_then_wait() {
        let server = Server::start(EchoService, Executor::seq(), cfg(64, 2, 3));
        for v in 0..5 {
            server.submit(v).unwrap();
        }
        server.advance(1); // drain: close [0,1] and [2,3] by size; 1 pending
        server.advance(3); // at tick 3, request 4 (arrival 0) has waited 3 ≥ 3
        let report = server.shutdown();
        let sizes: Vec<usize> = report.batch_log.iter().map(|b| b.size).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
        assert_eq!(report.batch_log[0].cause, CloseCause::Size);
        assert_eq!(report.batch_log[1].cause, CloseCause::Size);
        assert_eq!(report.batch_log[2].cause, CloseCause::Timeout);
        assert_eq!(report.batch_log[2].close_tick, 3);
        assert_eq!(report.stats.completed(), 5);
    }

    #[test]
    fn overload_rejects_and_accounts_every_request() {
        // Capacity 4, 11 offered in one tick: 7 must be rejected, nothing
        // lost, nothing blocked, accounting exact.
        let server = Server::start(EchoService, Executor::seq(), cfg(4, 4, 2));
        let results: Vec<_> = (0..11).map(|v| server.submit(v)).collect();
        let rejected = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(rejected, 7);
        assert!(
            results[..4].iter().all(|r| r.is_ok()),
            "first `capacity` submissions are admitted"
        );
        server.flush();
        for r in results.into_iter().flatten() {
            r.wait().unwrap();
        }
        let report = server.shutdown();
        let s = &report.stats;
        assert_eq!(s.submitted(), 11);
        assert_eq!(s.rejected(), 7);
        assert_eq!(s.completed(), 4);
        assert_eq!(s.completed() + s.rejected(), s.submitted());
        assert!(s.max_queue_depth() <= 4);
    }

    #[test]
    fn draining_admits_again() {
        let server = Server::start(EchoService, Executor::seq(), cfg(2, 2, 2));
        server.submit(0).unwrap();
        server.submit(1).unwrap();
        assert_eq!(server.submit(2).unwrap_err(), ServeError::Overloaded);
        server.advance(1); // batcher drains ingress → capacity frees up
        let r = server.submit(3).unwrap();
        server.flush();
        assert_eq!(r.wait().unwrap(), 3);
        server.shutdown();
    }

    #[test]
    fn chaos_panics_are_retried_to_success() {
        let mut c = cfg(64, 4, 2);
        // Seed chosen arbitrarily; determinism means ANY seed must keep
        // the invariants, specific draws only shape the retry counts.
        c.chaos = Some(ChaosPlan::new(9, 0.4));
        c.retry = RetryPolicy {
            max_attempts: 20,
            backoff: std::time::Duration::ZERO,
        };
        let server = Server::start(EchoService, Executor::rayon(2), c);
        let out = server.run_trace((0..40u64).map(|i| (i / 8, i as u32)));
        for (i, r) in out.iter().enumerate() {
            assert_eq!(*r, Ok(i as u32), "request {i} answered exactly once");
        }
        let report = server.shutdown();
        let s = &report.stats;
        assert_eq!(s.completed() + s.rejected(), s.submitted());
        assert_eq!(s.failed(), 0);
    }

    #[test]
    fn retry_backoff_is_accounted_deterministically() {
        let run = || {
            let mut c = cfg(64, 4, 2);
            c.chaos = Some(ChaosPlan::new(9, 0.4));
            c.retry = RetryPolicy {
                max_attempts: 20,
                backoff: std::time::Duration::ZERO,
            };
            c.retry_backoff = TickBackoff::linear(2, 3, 7);
            let server = Server::start(EchoService, Executor::seq(), c);
            let out = server.run_trace((0..40u64).map(|i| (i / 8, i as u32)));
            assert!(out.iter().all(|r| r.is_ok()));
            server.shutdown()
        };
        let (a, b) = (run(), run());
        assert!(a.stats.retried() > 0, "chaos must force retries");
        assert!(a.stats.backoff_ticks() > 0, "retries must charge backoff");
        assert_eq!(
            a.stats.backoff_ticks(),
            b.stats.backoff_ticks(),
            "backoff is a pure function of (trace, config, seed)"
        );
    }

    #[test]
    fn exhausted_retries_fail_cleanly() {
        let mut c = cfg(8, 8, 2);
        c.chaos = Some(ChaosPlan::new(1, 1.0)); // every attempt panics
        c.retry = RetryPolicy {
            max_attempts: 3,
            backoff: std::time::Duration::ZERO,
        };
        let server = Server::start(EchoService, Executor::seq(), c);
        let r = server.submit(5).unwrap();
        server.flush();
        assert_eq!(r.wait(), Err(ServeError::Failed { attempts: 3 }));
        let report = server.shutdown();
        let s = &report.stats;
        assert_eq!(s.failed(), 1);
        assert_eq!(s.retried(), 2, "two re-dispatches before giving up");
        assert_eq!(s.worker_respawns(), 3);
        assert_eq!(s.completed() + s.failed() + s.rejected(), s.submitted());
    }

    #[test]
    fn report_renders_a_summary_table() {
        let server = Server::start(EchoService, Executor::seq(), cfg(8, 4, 2));
        let r = server.submit(1).unwrap();
        server.flush();
        r.wait().unwrap();
        let report = server.shutdown();
        let text = format!("{report}");
        assert!(text.contains("service echo on seq"));
        assert!(text.contains("submitted"));
        assert!(text.contains("latency ticks"));
        assert!(text.contains("peak resident"));
    }
}
