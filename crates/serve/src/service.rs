//! What the server serves: the [`Service`] seam and the built-in services
//! proving it is generic across the workspace's workloads.
//!
//! A service turns a closed batch of inputs into one output per input,
//! parallelizing *within* the batch through whatever
//! [`Executor`](peachy_cluster::Executor) the server hands it. The
//! determinism requirement is the executor layer's usual one: each
//! request's output must not depend on how the batch is decomposed into
//! parts — then the server's end-to-end responses are bit-identical
//! across `Seq`, `Rayon`, and `Cluster`.
//!
//! Three built-ins wrap the assignments' inference-shaped paths:
//! [`KnnService`] (§2 k-NN classification), [`KmeansAssignService`] (§3
//! nearest-centroid assignment), [`EnsembleService`] (§7 neural-net
//! batch forward). [`EchoService`] is the unit-test identity service.

use peachy_cluster::dist::{block_range, EvenBlocks};
use peachy_cluster::{ByteSized, CommStats, Executor};
use peachy_data::kernels::Candidates;
use peachy_data::matrix::{LabeledDataset, Matrix};
use peachy_ensemble::nn::DenseNet;
use peachy_knn::brute::{classify_batch_seq, classify_batch_with_stats};

use crate::shard::ShardedService;

/// Seed for [`row_route_key`]; changing it re-routes every row-keyed
/// sharded service, so it is fixed here once.
const ROW_ROUTE_SEED: u64 = 0x0e1a_511c_0000_0001;

/// Deterministic routing key for an unlabeled feature row: the stable
/// hash of its exact bit pattern. Two bit-identical rows always land on
/// the same shard, on every backend, across Rust upgrades.
pub fn row_route_key(row: &[f64]) -> u64 {
    let bits: Vec<u64> = row.iter().map(|x| x.to_bits()).collect();
    peachy_prng::stable_hash(&bits, ROW_ROUTE_SEED)
}

/// A batch-serving workload.
///
/// `run_batch` may be retried verbatim after a worker panic, so it must
/// be pure with respect to `(inputs, exec)` — all built-ins are. The
/// `comm` block is the server ledger's embedded
/// [`CommStats`](peachy_cluster::CommStats); feed it through
/// `map_parts_counted` so backend comparisons see the service's traffic.
pub trait Service: Send + Sync + 'static {
    /// One request's payload.
    type Input: Send + Sync + 'static;
    /// One request's answer.
    type Output: Send + 'static;

    /// Short name for reports and logs.
    fn name(&self) -> &'static str;

    /// Answer every input in the batch, in order. The executor is
    /// already shrunk to the batch ([`Executor::shrink_to`]), so its
    /// part count never exceeds `inputs.len()`.
    fn run_batch(
        &self,
        inputs: &[Self::Input],
        exec: &Executor,
        comm: &CommStats,
    ) -> Vec<Self::Output>;
}

/// Identity service for unit tests: answers each request with its input.
pub struct EchoService;

impl Service for EchoService {
    type Input = u32;
    type Output = u32;

    fn name(&self) -> &'static str {
        "echo"
    }

    fn run_batch(&self, inputs: &[u32], exec: &Executor, comm: &CommStats) -> Vec<u32> {
        let dist = EvenBlocks::new(inputs.len(), exec.parts_for(inputs.len()));
        exec.map_parts_counted(&dist, comm, |_, range| {
            range.map(|i| inputs[i]).collect::<Vec<u32>>()
        })
        .concat()
    }
}

/// k-NN classification as a service: each request is a query row, each
/// answer the majority-vote class among the `k` nearest database points.
///
/// Wraps [`peachy_knn::brute::classify_batch_with_stats`], so the batch
/// is block-partitioned over the executor and per-query predictions are
/// decomposition-independent.
pub struct KnnService {
    db: LabeledDataset,
    k: usize,
}

impl KnnService {
    /// Serve classifications against `db` with neighbourhood size `k`.
    pub fn new(db: LabeledDataset, k: usize) -> Self {
        assert!(!db.is_empty(), "empty database");
        assert!(k >= 1, "k must be at least 1");
        Self { db, k }
    }
}

impl Service for KnnService {
    type Input = Vec<f64>;
    type Output = u32;

    fn name(&self) -> &'static str {
        "knn-classify"
    }

    fn run_batch(&self, inputs: &[Vec<f64>], exec: &Executor, comm: &CommStats) -> Vec<u32> {
        let queries = LabeledDataset::new(
            Matrix::from_rows(inputs),
            vec![0; inputs.len()],
            self.db.classes,
        );
        classify_batch_with_stats(&self.db, &queries, self.k, exec, comm)
    }
}

/// Nearest-centroid assignment as a service (the inference half of
/// k-means): each request is a point, each answer the index of its
/// nearest centroid, via the [`Candidates`] kernel family — ties break
/// to the lowest index, independent of decomposition.
pub struct KmeansAssignService {
    centroids: Matrix,
}

impl KmeansAssignService {
    /// Serve assignments against a fixed centroid set.
    pub fn new(centroids: Matrix) -> Self {
        assert!(!centroids.is_empty(), "no centroids");
        Self { centroids }
    }
}

impl Service for KmeansAssignService {
    type Input = Vec<f64>;
    type Output = u32;

    fn name(&self) -> &'static str {
        "kmeans-assign"
    }

    fn run_batch(&self, inputs: &[Vec<f64>], exec: &Executor, comm: &CommStats) -> Vec<u32> {
        let cand = Candidates::new(&self.centroids);
        let dist = EvenBlocks::new(inputs.len(), exec.parts_for(inputs.len()));
        exec.map_parts_counted(&dist, comm, |_, range| {
            range.map(|i| cand.nearest(&inputs[i])).collect::<Vec<u32>>()
        })
        .concat()
    }
}

/// Neural-net inference as a service: each request is an input row, each
/// answer the arg-max class of the batched forward pass — row-identical
/// to the single-row forward regardless of batching or decomposition.
pub struct EnsembleService {
    net: DenseNet,
}

impl EnsembleService {
    /// Serve predictions from a trained network.
    pub fn new(net: DenseNet) -> Self {
        Self { net }
    }
}

impl Service for EnsembleService {
    type Input = Vec<f64>;
    type Output = u32;

    fn name(&self) -> &'static str {
        "ensemble-nn"
    }

    fn run_batch(&self, inputs: &[Vec<f64>], exec: &Executor, comm: &CommStats) -> Vec<u32> {
        let dist = EvenBlocks::new(inputs.len(), exec.parts_for(inputs.len()));
        exec.map_parts_counted(&dist, comm, |_, range| {
            let part = Matrix::from_rows(&inputs[range]);
            self.net.predict_batch(&part)
        })
        .concat()
    }
}

/// One k-NN index partition: the slice of the database a shard answers
/// from.
pub struct KnnShard {
    /// The shard's block of the full database.
    pub db: LabeledDataset,
}

impl ByteSized for KnnShard {
    fn approx_bytes(&self) -> usize {
        self.db.points.rows() * self.db.points.cols() * std::mem::size_of::<f64>()
            + self.db.labels.len() * std::mem::size_of::<u32>()
            + std::mem::size_of::<u32>()
    }
}

/// k-NN classification with a **partitioned index**: the database is
/// block-split into `num_shards` index partitions, and each request
/// carries an explicit routing key deciding which partition answers it.
///
/// This is the sharded-state archetype where shards genuinely differ:
/// rebuilding partition `s` after a rank death re-slices the same block
/// of the same database, so replayed requests get bit-identical answers.
pub struct ShardedKnnService {
    db: LabeledDataset,
    k: usize,
}

impl ShardedKnnService {
    /// Partitioned serving over `db` with neighbourhood size `k`. The
    /// database must have at least one row per shard.
    pub fn new(db: LabeledDataset, k: usize) -> Self {
        assert!(!db.is_empty(), "empty database");
        assert!(k >= 1, "k must be at least 1");
        Self { db, k }
    }
}

impl ShardedService for ShardedKnnService {
    /// `(routing key, query row)`.
    type Input = (u64, Vec<f64>);
    type Output = u32;
    type State = KnnShard;

    fn name(&self) -> &'static str {
        "sharded-knn"
    }

    fn route_key(&self, input: &Self::Input) -> u64 {
        input.0
    }

    fn build_shard(&self, shard: usize, num_shards: usize) -> KnnShard {
        assert!(
            self.db.len() >= num_shards,
            "need at least one database row per shard ({} rows, {num_shards} shards)",
            self.db.len()
        );
        let range = block_range(self.db.len(), num_shards, shard);
        let indices: Vec<usize> = range.collect();
        KnnShard {
            db: self.db.select(&indices),
        }
    }

    fn run_shard(&self, _shard: usize, state: &KnnShard, inputs: &[Self::Input]) -> Vec<u32> {
        let rows: Vec<Vec<f64>> = inputs.iter().map(|(_, row)| row.clone()).collect();
        let queries = LabeledDataset::new(
            Matrix::from_rows(&rows),
            vec![0; rows.len()],
            state.db.classes,
        );
        classify_batch_seq(&state.db, &queries, self.k.min(state.db.len()))
    }
}

/// A full centroid replica — the per-shard state of
/// [`ShardedKmeansAssignService`]. Every shard holds the same centroids;
/// sharding buys elastic *throughput*, and migration ships the replica.
pub struct CentroidReplica {
    /// The centroid matrix, one centroid per row.
    pub centroids: Matrix,
}

impl ByteSized for CentroidReplica {
    fn approx_bytes(&self) -> usize {
        self.centroids.rows() * self.centroids.cols() * std::mem::size_of::<f64>()
    }
}

/// Nearest-centroid assignment with replicated shard state, routed by
/// [`row_route_key`].
pub struct ShardedKmeansAssignService {
    centroids: Matrix,
}

impl ShardedKmeansAssignService {
    /// Serve assignments against a fixed centroid set.
    pub fn new(centroids: Matrix) -> Self {
        assert!(!centroids.is_empty(), "no centroids");
        Self { centroids }
    }
}

impl ShardedService for ShardedKmeansAssignService {
    type Input = Vec<f64>;
    type Output = u32;
    type State = CentroidReplica;

    fn name(&self) -> &'static str {
        "sharded-kmeans-assign"
    }

    fn route_key(&self, input: &Self::Input) -> u64 {
        row_route_key(input)
    }

    fn build_shard(&self, _shard: usize, _num_shards: usize) -> CentroidReplica {
        CentroidReplica {
            centroids: self.centroids.clone(),
        }
    }

    fn run_shard(&self, _shard: usize, state: &CentroidReplica, inputs: &[Vec<f64>]) -> Vec<u32> {
        let cand = Candidates::new(&state.centroids);
        inputs.iter().map(|row| cand.nearest(row)).collect()
    }
}

/// Neural-net inference with replicated model shards
/// ([`DenseNet`](peachy_ensemble::nn::DenseNet) already implements
/// `ByteSized`, so migration prices the whole weight set), routed by
/// [`row_route_key`].
pub struct ShardedEnsembleService {
    net: DenseNet,
}

impl ShardedEnsembleService {
    /// Serve predictions from a trained network.
    pub fn new(net: DenseNet) -> Self {
        Self { net }
    }
}

impl ShardedService for ShardedEnsembleService {
    type Input = Vec<f64>;
    type Output = u32;
    type State = DenseNet;

    fn name(&self) -> &'static str {
        "sharded-ensemble-nn"
    }

    fn route_key(&self, input: &Self::Input) -> u64 {
        row_route_key(input)
    }

    fn build_shard(&self, _shard: usize, _num_shards: usize) -> DenseNet {
        self.net.clone()
    }

    fn run_shard(&self, _shard: usize, state: &DenseNet, inputs: &[Vec<f64>]) -> Vec<u32> {
        state.predict_batch(&Matrix::from_rows(inputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::synth::gaussian_blobs;

    fn backends() -> [Executor; 3] {
        [Executor::seq(), Executor::rayon(4), Executor::cluster(3)]
    }

    fn rows_of(m: &Matrix) -> Vec<Vec<f64>> {
        m.iter_rows().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn knn_service_matches_direct_classification() {
        let db = gaussian_blobs(200, 5, 3, 2.0, 31);
        let queries = gaussian_blobs(23, 5, 3, 2.0, 32);
        let svc = KnnService::new(db.clone(), 5);
        let inputs = rows_of(&queries.points);
        let reference = peachy_knn::brute::classify_batch_seq(&db, &queries, 5);
        for exec in backends() {
            let comm = CommStats::new();
            let out = svc.run_batch(&inputs, &exec.shrink_to(inputs.len()), &comm);
            assert_eq!(out, reference, "{exec:?}");
        }
    }

    #[test]
    fn kmeans_service_matches_candidates_assign() {
        let data = gaussian_blobs(150, 4, 3, 1.5, 33);
        let centroids = data.points.select_rows(&[0, 50, 100]);
        let svc = KmeansAssignService::new(centroids.clone());
        let inputs = rows_of(&data.points);
        let reference = Candidates::new(&centroids).assign(&data.points);
        for exec in backends() {
            let comm = CommStats::new();
            let out = svc.run_batch(&inputs, &exec.shrink_to(inputs.len()), &comm);
            assert_eq!(out, reference, "{exec:?}");
        }
    }

    #[test]
    fn ensemble_service_matches_batch_forward() {
        use peachy_ensemble::nn::NetConfig;
        let data = gaussian_blobs(60, 8, 3, 2.0, 34);
        let net = DenseNet::new(
            &NetConfig {
                layers: vec![8, 6, 3],
            },
            7,
        );
        let svc = EnsembleService::new(net.clone());
        let inputs = rows_of(&data.points);
        let reference = net.predict_batch(&data.points);
        for exec in backends() {
            let comm = CommStats::new();
            let out = svc.run_batch(&inputs, &exec.shrink_to(inputs.len()), &comm);
            assert_eq!(out, reference, "{exec:?}");
        }
    }

    #[test]
    fn sharded_knn_partitions_cover_the_database() {
        let db = gaussian_blobs(97, 4, 3, 1.5, 41);
        let svc = ShardedKnnService::new(db.clone(), 3);
        for num_shards in [1usize, 4, 16] {
            let mut covered = 0usize;
            for shard in 0..num_shards {
                let part = svc.build_shard(shard, num_shards);
                assert!(!part.db.is_empty(), "shard {shard}/{num_shards} empty");
                assert!(part.approx_bytes() > 0);
                covered += part.db.len();
            }
            assert_eq!(covered, db.len(), "{num_shards} shards");
        }
        // Single-partition serving matches the unsharded reference.
        let queries = gaussian_blobs(20, 4, 3, 1.5, 42);
        let reference = peachy_knn::brute::classify_batch_seq(&db, &queries, 3);
        let whole = svc.build_shard(0, 1);
        let inputs: Vec<(u64, Vec<f64>)> = queries
            .points
            .iter_rows()
            .enumerate()
            .map(|(i, r)| (i as u64, r.to_vec()))
            .collect();
        assert_eq!(svc.run_shard(0, &whole, &inputs), reference);
    }

    #[test]
    fn sharded_replica_services_are_decomposition_independent() {
        // Replicated shard state: any shard must give the exact answer of
        // the unsharded service, whatever the shard index or count.
        use peachy_ensemble::nn::NetConfig;
        let data = gaussian_blobs(50, 4, 3, 1.5, 43);
        let inputs = rows_of(&data.points);

        let centroids = data.points.select_rows(&[0, 25, 49]);
        let ksvc = ShardedKmeansAssignService::new(centroids.clone());
        let kref = Candidates::new(&centroids).assign(&data.points);
        let net = DenseNet::new(
            &NetConfig {
                layers: vec![4, 5, 3],
            },
            9,
        );
        let esvc = ShardedEnsembleService::new(net.clone());
        let eref = net.predict_batch(&data.points);

        for (shard, num_shards) in [(0usize, 1usize), (3, 8), (15, 16)] {
            let kstate = ksvc.build_shard(shard, num_shards);
            assert_eq!(ksvc.run_shard(shard, &kstate, &inputs), kref);
            assert!(kstate.approx_bytes() > 0);
            let estate = esvc.build_shard(shard, num_shards);
            assert_eq!(esvc.run_shard(shard, &estate, &inputs), eref);
            assert!(estate.approx_bytes() > 0);
        }
    }

    #[test]
    fn row_route_key_is_stable_and_spreads() {
        let data = gaussian_blobs(64, 4, 2, 1.5, 44);
        let keys: Vec<u64> = data.points.iter_rows().map(row_route_key).collect();
        let again: Vec<u64> = data.points.iter_rows().map(row_route_key).collect();
        assert_eq!(keys, again, "route keys must be pure");
        let distinct: std::collections::BTreeSet<u64> = keys.iter().copied().collect();
        assert!(distinct.len() > 32, "route keys collapsed: {}", distinct.len());
    }

    #[test]
    fn services_feed_the_comm_ledger() {
        let data = gaussian_blobs(40, 4, 2, 1.5, 35);
        let centroids = data.points.select_rows(&[0, 20]);
        let svc = KmeansAssignService::new(centroids);
        let inputs = rows_of(&data.points);
        let comm = CommStats::new();
        svc.run_batch(&inputs, &Executor::rayon(4), &comm);
        assert_eq!(comm.scattered(), 40);
        assert_eq!(comm.gathered(), 4);
        assert_eq!(comm.collective_bytes(), 0);
        let comm = CommStats::new();
        svc.run_batch(&inputs, &Executor::cluster(4), &comm);
        assert!(comm.collective_bytes() > 0);
    }
}
