//! What the server serves: the [`Service`] seam and the built-in services
//! proving it is generic across the workspace's workloads.
//!
//! A service turns a closed batch of inputs into one output per input,
//! parallelizing *within* the batch through whatever
//! [`Executor`](peachy_cluster::Executor) the server hands it. The
//! determinism requirement is the executor layer's usual one: each
//! request's output must not depend on how the batch is decomposed into
//! parts — then the server's end-to-end responses are bit-identical
//! across `Seq`, `Rayon`, and `Cluster`.
//!
//! Three built-ins wrap the assignments' inference-shaped paths:
//! [`KnnService`] (§2 k-NN classification), [`KmeansAssignService`] (§3
//! nearest-centroid assignment), [`EnsembleService`] (§7 neural-net
//! batch forward). [`EchoService`] is the unit-test identity service.

use peachy_cluster::dist::EvenBlocks;
use peachy_cluster::{CommStats, Executor};
use peachy_data::kernels::Candidates;
use peachy_data::matrix::{LabeledDataset, Matrix};
use peachy_ensemble::nn::DenseNet;
use peachy_knn::brute::classify_batch_with_stats;

/// A batch-serving workload.
///
/// `run_batch` may be retried verbatim after a worker panic, so it must
/// be pure with respect to `(inputs, exec)` — all built-ins are. The
/// `comm` block is the server ledger's embedded
/// [`CommStats`](peachy_cluster::CommStats); feed it through
/// `map_parts_counted` so backend comparisons see the service's traffic.
pub trait Service: Send + Sync + 'static {
    /// One request's payload.
    type Input: Send + Sync + 'static;
    /// One request's answer.
    type Output: Send + 'static;

    /// Short name for reports and logs.
    fn name(&self) -> &'static str;

    /// Answer every input in the batch, in order. The executor is
    /// already shrunk to the batch ([`Executor::shrink_to`]), so its
    /// part count never exceeds `inputs.len()`.
    fn run_batch(
        &self,
        inputs: &[Self::Input],
        exec: &Executor,
        comm: &CommStats,
    ) -> Vec<Self::Output>;
}

/// Identity service for unit tests: answers each request with its input.
pub struct EchoService;

impl Service for EchoService {
    type Input = u32;
    type Output = u32;

    fn name(&self) -> &'static str {
        "echo"
    }

    fn run_batch(&self, inputs: &[u32], exec: &Executor, comm: &CommStats) -> Vec<u32> {
        let dist = EvenBlocks::new(inputs.len(), exec.parts_for(inputs.len()));
        exec.map_parts_counted(&dist, comm, |_, range| {
            range.map(|i| inputs[i]).collect::<Vec<u32>>()
        })
        .concat()
    }
}

/// k-NN classification as a service: each request is a query row, each
/// answer the majority-vote class among the `k` nearest database points.
///
/// Wraps [`peachy_knn::brute::classify_batch_with_stats`], so the batch
/// is block-partitioned over the executor and per-query predictions are
/// decomposition-independent.
pub struct KnnService {
    db: LabeledDataset,
    k: usize,
}

impl KnnService {
    /// Serve classifications against `db` with neighbourhood size `k`.
    pub fn new(db: LabeledDataset, k: usize) -> Self {
        assert!(!db.is_empty(), "empty database");
        assert!(k >= 1, "k must be at least 1");
        Self { db, k }
    }
}

impl Service for KnnService {
    type Input = Vec<f64>;
    type Output = u32;

    fn name(&self) -> &'static str {
        "knn-classify"
    }

    fn run_batch(&self, inputs: &[Vec<f64>], exec: &Executor, comm: &CommStats) -> Vec<u32> {
        let queries = LabeledDataset::new(
            Matrix::from_rows(inputs),
            vec![0; inputs.len()],
            self.db.classes,
        );
        classify_batch_with_stats(&self.db, &queries, self.k, exec, comm)
    }
}

/// Nearest-centroid assignment as a service (the inference half of
/// k-means): each request is a point, each answer the index of its
/// nearest centroid, via the [`Candidates`] kernel family — ties break
/// to the lowest index, independent of decomposition.
pub struct KmeansAssignService {
    centroids: Matrix,
}

impl KmeansAssignService {
    /// Serve assignments against a fixed centroid set.
    pub fn new(centroids: Matrix) -> Self {
        assert!(!centroids.is_empty(), "no centroids");
        Self { centroids }
    }
}

impl Service for KmeansAssignService {
    type Input = Vec<f64>;
    type Output = u32;

    fn name(&self) -> &'static str {
        "kmeans-assign"
    }

    fn run_batch(&self, inputs: &[Vec<f64>], exec: &Executor, comm: &CommStats) -> Vec<u32> {
        let cand = Candidates::new(&self.centroids);
        let dist = EvenBlocks::new(inputs.len(), exec.parts_for(inputs.len()));
        exec.map_parts_counted(&dist, comm, |_, range| {
            range.map(|i| cand.nearest(&inputs[i])).collect::<Vec<u32>>()
        })
        .concat()
    }
}

/// Neural-net inference as a service: each request is an input row, each
/// answer the arg-max class of the batched forward pass — row-identical
/// to the single-row forward regardless of batching or decomposition.
pub struct EnsembleService {
    net: DenseNet,
}

impl EnsembleService {
    /// Serve predictions from a trained network.
    pub fn new(net: DenseNet) -> Self {
        Self { net }
    }
}

impl Service for EnsembleService {
    type Input = Vec<f64>;
    type Output = u32;

    fn name(&self) -> &'static str {
        "ensemble-nn"
    }

    fn run_batch(&self, inputs: &[Vec<f64>], exec: &Executor, comm: &CommStats) -> Vec<u32> {
        let dist = EvenBlocks::new(inputs.len(), exec.parts_for(inputs.len()));
        exec.map_parts_counted(&dist, comm, |_, range| {
            let part = Matrix::from_rows(&inputs[range]);
            self.net.predict_batch(&part)
        })
        .concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::synth::gaussian_blobs;

    fn backends() -> [Executor; 3] {
        [Executor::seq(), Executor::rayon(4), Executor::cluster(3)]
    }

    fn rows_of(m: &Matrix) -> Vec<Vec<f64>> {
        m.iter_rows().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn knn_service_matches_direct_classification() {
        let db = gaussian_blobs(200, 5, 3, 2.0, 31);
        let queries = gaussian_blobs(23, 5, 3, 2.0, 32);
        let svc = KnnService::new(db.clone(), 5);
        let inputs = rows_of(&queries.points);
        let reference = peachy_knn::brute::classify_batch_seq(&db, &queries, 5);
        for exec in backends() {
            let comm = CommStats::new();
            let out = svc.run_batch(&inputs, &exec.shrink_to(inputs.len()), &comm);
            assert_eq!(out, reference, "{exec:?}");
        }
    }

    #[test]
    fn kmeans_service_matches_candidates_assign() {
        let data = gaussian_blobs(150, 4, 3, 1.5, 33);
        let centroids = data.points.select_rows(&[0, 50, 100]);
        let svc = KmeansAssignService::new(centroids.clone());
        let inputs = rows_of(&data.points);
        let reference = Candidates::new(&centroids).assign(&data.points);
        for exec in backends() {
            let comm = CommStats::new();
            let out = svc.run_batch(&inputs, &exec.shrink_to(inputs.len()), &comm);
            assert_eq!(out, reference, "{exec:?}");
        }
    }

    #[test]
    fn ensemble_service_matches_batch_forward() {
        use peachy_ensemble::nn::NetConfig;
        let data = gaussian_blobs(60, 8, 3, 2.0, 34);
        let net = DenseNet::new(
            &NetConfig {
                layers: vec![8, 6, 3],
            },
            7,
        );
        let svc = EnsembleService::new(net.clone());
        let inputs = rows_of(&data.points);
        let reference = net.predict_batch(&data.points);
        for exec in backends() {
            let comm = CommStats::new();
            let out = svc.run_batch(&inputs, &exec.shrink_to(inputs.len()), &comm);
            assert_eq!(out, reference, "{exec:?}");
        }
    }

    #[test]
    fn services_feed_the_comm_ledger() {
        let data = gaussian_blobs(40, 4, 2, 1.5, 35);
        let centroids = data.points.select_rows(&[0, 20]);
        let svc = KmeansAssignService::new(centroids);
        let inputs = rows_of(&data.points);
        let comm = CommStats::new();
        svc.run_batch(&inputs, &Executor::rayon(4), &comm);
        assert_eq!(comm.scattered(), 40);
        assert_eq!(comm.gathered(), 4);
        assert_eq!(comm.collective_bytes(), 0);
        let comm = CommStats::new();
        svc.run_batch(&inputs, &Executor::cluster(4), &comm);
        assert!(comm.collective_bytes() > 0);
    }
}
