//! # peachy-serve
//!
//! The serving front-end over the workspace's compute substrate: the layer
//! that turns *per-request* work into *batched, scheduled, observable*
//! execution, the way an inference server fronts a model.
//!
//! The paper's assignments all end at "run the job once"; the ROADMAP's
//! north star is a system that serves heavy traffic. This crate closes the
//! gap with four pieces, each deliberately deterministic so every test can
//! pin exact behaviour:
//!
//! * **Admission control** — a bounded ingress queue. [`Server::submit`]
//!   beyond `capacity` rejects with [`ServeError::Overloaded`] instead of
//!   growing a queue without bound: backpressure is a *response*, not an
//!   OOM.
//! * **Micro-batching in virtual time** — the batcher coalesces admitted
//!   requests into batches of at most `max_batch_size`, closing early once
//!   the oldest request has waited `max_wait` **ticks**. The clock is
//!   virtual ([`Server::advance`]), so batch boundaries are a pure
//!   function of the arrival trace and the config — identical on every
//!   machine and backend.
//! * **Execution on the executor seam** — closed batches run on a worker
//!   pool; each worker hands the batch to its [`Service`] over a
//!   [`peachy_cluster::Executor`] (`Seq`/`Rayon`/`Cluster`), so one server
//!   definition serves from a plain loop, the rayon pool, or in-process
//!   ranks — with bit-identical responses. A worker that panics (chaos
//!   plans make that reproducible) is respawned and its in-flight batch
//!   retried under [`peachy_cluster::RetryPolicy`]; every request is
//!   answered exactly once.
//! * **Latency accounting** — [`ServerStats`] extends
//!   [`peachy_cluster::CommStats`] with queue-depth, batch-size and
//!   latency histograms (p50/p95/p99 in virtual ticks) and the
//!   submitted/rejected/completed/failed/retried ledger, with associative
//!   merging for out-of-order worker ledgers.
//!
//! Three built-in services prove the seam is generic: k-NN classification
//! ([`KnnService`]), nearest-centroid assignment ([`KmeansAssignService`]),
//! and neural-net inference ([`EnsembleService`]).
//!
//! The [`shard`] module adds the **elastic tier** on top: a
//! [`ShardedServer`] routes requests to consistent-hash shards
//! ([`ShardMap`], epoch-numbered and a pure function of membership ×
//! seed), survives scripted rank deaths from a
//! [`peachy_cluster::FaultPlan`] by migrating exactly the moved shards and
//! replaying in-flight requests, and scales live via scripted
//! `add_rank`/`drain_rank` events — all in virtual time, so a whole
//! join/kill/drain trace is bit-identical across backends and chaos seeds.
//!
//! ```
//! use peachy_cluster::Executor;
//! use peachy_serve::{EchoService, ServeConfig, Server};
//!
//! let server = Server::start(EchoService, Executor::seq(), ServeConfig::default());
//! let r = server.submit(7).unwrap();
//! server.flush();
//! assert_eq!(r.wait().unwrap(), 7);
//! server.shutdown();
//! ```

pub mod server;
pub mod service;
pub mod shard;
pub mod stats;
pub mod trace;

pub use server::{
    BatchRecord, ChaosPlan, Response, ServeConfig, ServeError, Server, ServerReport,
};
pub use service::{
    row_route_key, CentroidReplica, EchoService, EnsembleService, KmeansAssignService, KnnService,
    KnnShard, Service, ShardedEnsembleService, ShardedKmeansAssignService, ShardedKnnService,
};
pub use shard::{
    ReshardCause, ReshardRecord, ScaleEvent, ShardConfig, ShardMap, ShardedReport, ShardedServer,
    ShardedService,
};
pub use stats::{CloseCause, ServerStats};
pub use trace::{keyed_query_trace, open_loop_arrivals, query_trace};
