//! The serving ledger: request accounting, histograms, percentiles.
//!
//! [`ServerStats`] *extends* the cluster layer's
//! [`CommStats`](peachy_cluster::CommStats) rather than duplicating it:
//! the embedded comm block is what services feed through
//! `map_parts_counted`, so one stats object answers both "what did the
//! server do" (admission, batching, latency) and "what did the backend
//! move" (scatter/gather elements, collective bytes).
//!
//! Everything is a relaxed atomic or a fixed-shape histogram of relaxed
//! atomics, so the ledger is cheap enough to leave on, safe to update from
//! any worker, and — crucially — **associatively mergeable**:
//! [`ServerStats::merge_from`] is plain counter addition, so per-worker
//! ledgers combine in any order or grouping to the same totals (tested,
//! including the histogram math behind the percentiles).
//!
//! Latencies are measured in **virtual ticks** (close tick − arrival
//! tick): the deterministic queueing + batching delay. Wall-clock
//! execution time is real but machine-dependent, so it is deliberately
//! not part of the ledger.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use peachy_cluster::CommStats;

/// Latency histogram resolution: one bucket per tick, saturating at the
/// last bucket. 512 ticks of batching delay is far beyond any sane
/// `max_wait`, so saturation marks a bug, not a measurement.
pub const LATENCY_BUCKETS: usize = 512;

/// Why a batch was closed (recorded per batch in both the stats and the
/// server's batch log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseCause {
    /// The pending buffer reached `max_batch_size`.
    Size,
    /// The oldest pending request had waited `max_wait` ticks.
    Timeout,
    /// An explicit flush (end of trace / shutdown).
    Flush,
}

/// Monotonic serving counters plus histograms for one server run.
///
/// All increments are relaxed atomics: the values are aggregates read
/// after (or alongside) the run, not synchronization.
#[derive(Debug)]
pub struct ServerStats {
    comm: Arc<CommStats>,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    retried: AtomicU64,
    worker_respawns: AtomicU64,
    batches: AtomicU64,
    closed_by_size: AtomicU64,
    closed_by_timeout: AtomicU64,
    closed_by_flush: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    epochs: AtomicU64,
    shards_moved: AtomicU64,
    shards_rebuilt: AtomicU64,
    bytes_migrated: AtomicU64,
    replayed: AtomicU64,
    backoff_ticks: AtomicU64,
    /// `batch_hist[s]` = number of batches closed with exactly `s`
    /// requests; index 0 is unused (batches are never empty).
    batch_hist: Vec<AtomicU64>,
    /// `latency_hist[t]` = number of requests whose virtual-tick latency
    /// was `t` (last bucket saturates).
    latency_hist: Vec<AtomicU64>,
}

impl ServerStats {
    /// Fresh zeroed ledger sized for batches of at most `max_batch_size`.
    pub fn new(max_batch_size: usize) -> Arc<Self> {
        assert!(max_batch_size > 0, "batches must hold at least one request");
        Arc::new(Self {
            comm: CommStats::new(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            worker_respawns: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            closed_by_size: AtomicU64::new(0),
            closed_by_timeout: AtomicU64::new(0),
            closed_by_flush: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            epochs: AtomicU64::new(0),
            shards_moved: AtomicU64::new(0),
            shards_rebuilt: AtomicU64::new(0),
            bytes_migrated: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            backoff_ticks: AtomicU64::new(0),
            batch_hist: (0..=max_batch_size).map(|_| AtomicU64::new(0)).collect(),
            latency_hist: (0..LATENCY_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// The embedded communication counters (what the backend moved);
    /// services report into this block via `map_parts_counted`.
    pub fn comm(&self) -> &Arc<CommStats> {
        &self.comm
    }

    /// Requests offered to [`crate::Server::submit`] (admitted + rejected).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Requests refused at admission ([`crate::ServeError::Overloaded`]).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests answered with a service output.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Requests answered with [`crate::ServeError::Failed`] after retries
    /// were exhausted.
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Requests re-dispatched after a worker panic (each retry of a batch
    /// counts every request in it once).
    pub fn retried(&self) -> u64 {
        self.retried.load(Ordering::Relaxed)
    }

    /// Worker threads that died to a panic and were replaced.
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Batches closed (dispatched to the worker pool).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Batches closed by (size, timeout, flush).
    pub fn close_causes(&self) -> (u64, u64, u64) {
        (
            self.closed_by_size.load(Ordering::Relaxed),
            self.closed_by_timeout.load(Ordering::Relaxed),
            self.closed_by_flush.load(Ordering::Relaxed),
        )
    }

    /// Admitted-but-undispatched requests right now (ingress + pending
    /// buffer). A gauge, not a counter; merging sums it.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of [`ServerStats::queue_depth`].
    pub fn max_queue_depth(&self) -> u64 {
        self.max_queue_depth.load(Ordering::Relaxed)
    }

    /// Epoch bumps performed by the sharded tier (one per membership
    /// change: join, drain, kill, or revive). Zero on the fixed-pool
    /// [`crate::Server`].
    pub fn epochs(&self) -> u64 {
        self.epochs.load(Ordering::Relaxed)
    }

    /// Shards whose warm state was *transferred* between live ranks
    /// during reshards.
    pub fn shards_moved(&self) -> u64 {
        self.shards_moved.load(Ordering::Relaxed)
    }

    /// Shards rebuilt from the service definition (their old owner died,
    /// so there was nothing to transfer).
    pub fn shards_rebuilt(&self) -> u64 {
        self.shards_rebuilt.load(Ordering::Relaxed)
    }

    /// Logical payload bytes of transferred shard state
    /// ([`peachy_cluster::ByteSized`] accounting — backend-independent;
    /// the cluster backend *additionally* measures the real transport
    /// bytes in [`ServerStats::comm`]).
    pub fn bytes_migrated(&self) -> u64 {
        self.bytes_migrated.load(Ordering::Relaxed)
    }

    /// Requests replayed because a rank died while their batch was on it
    /// (each replayed batch counts every request in it once per replay).
    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::Relaxed)
    }

    /// Total virtual-tick retry delay scheduled by the deterministic
    /// backoff ([`peachy_cluster::TickBackoff`]) across all retries and
    /// replays.
    pub fn backoff_ticks(&self) -> u64 {
        self.backoff_ticks.load(Ordering::Relaxed)
    }

    /// Snapshot of the batch-size histogram (`[s]` = batches of size `s`).
    pub fn batch_size_counts(&self) -> Vec<u64> {
        self.batch_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshot of the latency histogram (`[t]` = requests with latency
    /// `t` ticks; last bucket saturates).
    pub fn latency_counts(&self) -> Vec<u64> {
        self.latency_hist
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Nearest-rank percentile of the recorded latencies, in virtual
    /// ticks: the smallest latency `t` such that at least `⌈q·N⌉` of the
    /// `N` recorded requests had latency ≤ `t`. Returns `None` before any
    /// request was dispatched.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        let counts = self.latency_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut cum = 0;
        for (t, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(t as u64);
            }
        }
        Some((counts.len() - 1) as u64)
    }

    /// Median latency in ticks.
    pub fn p50(&self) -> Option<u64> {
        self.latency_percentile(0.50)
    }

    /// 95th-percentile latency in ticks.
    pub fn p95(&self) -> Option<u64> {
        self.latency_percentile(0.95)
    }

    /// 99th-percentile latency in ticks.
    pub fn p99(&self) -> Option<u64> {
        self.latency_percentile(0.99)
    }

    pub(crate) fn record_submit(&self, depth_now: u64) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.record_depth(depth_now);
    }

    pub(crate) fn record_reject(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_depth(&self, depth_now: u64) {
        self.queue_depth.store(depth_now, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth_now, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize, cause: CloseCause) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        match cause {
            CloseCause::Size => &self.closed_by_size,
            CloseCause::Timeout => &self.closed_by_timeout,
            CloseCause::Flush => &self.closed_by_flush,
        }
        .fetch_add(1, Ordering::Relaxed);
        let slot = size.min(self.batch_hist.len() - 1);
        self.batch_hist[slot].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_latency(&self, ticks: u64) {
        let slot = (ticks as usize).min(self.latency_hist.len() - 1);
        self.latency_hist[slot].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_failed(&self, n: u64) {
        self.failed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_retried(&self, n: u64) {
        self.retried.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_reshard(&self, moved: u64, rebuilt: u64, bytes: u64) {
        self.epochs.fetch_add(1, Ordering::Relaxed);
        self.shards_moved.fetch_add(moved, Ordering::Relaxed);
        self.shards_rebuilt.fetch_add(rebuilt, Ordering::Relaxed);
        self.bytes_migrated.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_replayed(&self, n: u64) {
        self.replayed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_backoff(&self, ticks: u64) {
        self.backoff_ticks.fetch_add(ticks, Ordering::Relaxed);
    }

    /// Fold another ledger into this one. Counter and histogram addition
    /// is associative and commutative, so worker ledgers merge in any
    /// order or grouping to the same totals; the depth gauge sums and the
    /// high-water mark takes the max. Histogram shapes must match (build
    /// all ledgers with the same `max_batch_size`).
    pub fn merge_from(&self, other: &ServerStats) {
        assert_eq!(
            self.batch_hist.len(),
            other.batch_hist.len(),
            "batch histograms must share a shape to merge"
        );
        self.comm.merge_from(other.comm());
        self.submitted
            .fetch_add(other.submitted(), Ordering::Relaxed);
        self.rejected.fetch_add(other.rejected(), Ordering::Relaxed);
        self.completed
            .fetch_add(other.completed(), Ordering::Relaxed);
        self.failed.fetch_add(other.failed(), Ordering::Relaxed);
        self.retried.fetch_add(other.retried(), Ordering::Relaxed);
        self.worker_respawns
            .fetch_add(other.worker_respawns(), Ordering::Relaxed);
        self.batches.fetch_add(other.batches(), Ordering::Relaxed);
        let (s, t, fl) = other.close_causes();
        self.closed_by_size.fetch_add(s, Ordering::Relaxed);
        self.closed_by_timeout.fetch_add(t, Ordering::Relaxed);
        self.closed_by_flush.fetch_add(fl, Ordering::Relaxed);
        self.queue_depth
            .fetch_add(other.queue_depth(), Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(other.max_queue_depth(), Ordering::Relaxed);
        self.epochs.fetch_add(other.epochs(), Ordering::Relaxed);
        self.shards_moved
            .fetch_add(other.shards_moved(), Ordering::Relaxed);
        self.shards_rebuilt
            .fetch_add(other.shards_rebuilt(), Ordering::Relaxed);
        self.bytes_migrated
            .fetch_add(other.bytes_migrated(), Ordering::Relaxed);
        self.replayed.fetch_add(other.replayed(), Ordering::Relaxed);
        self.backoff_ticks
            .fetch_add(other.backoff_ticks(), Ordering::Relaxed);
        for (mine, theirs) in self.batch_hist.iter().zip(other.batch_size_counts()) {
            mine.fetch_add(theirs, Ordering::Relaxed);
        }
        for (mine, theirs) in self.latency_hist.iter().zip(other.latency_counts()) {
            mine.fetch_add(theirs, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker_ledger(latencies: &[u64], sizes: &[usize], completed: u64) -> Arc<ServerStats> {
        let s = ServerStats::new(8);
        for &l in latencies {
            s.record_latency(l);
        }
        for &b in sizes {
            s.record_batch(b, CloseCause::Size);
        }
        s.record_completed(completed);
        s.comm().add_scattered(completed);
        s
    }

    #[test]
    fn merging_out_of_order_worker_ledgers_is_associative() {
        // Three workers report their ledgers; the totals must not depend
        // on arrival order or grouping — this is what guards the
        // histogram math behind the percentiles.
        let a = worker_ledger(&[1, 1, 2], &[2, 1], 3);
        let b = worker_ledger(&[4], &[1], 1);
        let c = worker_ledger(&[2, 9, 9, 9], &[4], 4);

        let flat = |s: &ServerStats| {
            (
                s.submitted(),
                s.completed(),
                s.batches(),
                s.batch_size_counts(),
                s.latency_counts(),
                s.comm().scattered(),
            )
        };

        // (a ⊕ b) ⊕ c
        let left = ServerStats::new(8);
        left.merge_from(&a);
        left.merge_from(&b);
        left.merge_from(&c);

        // a ⊕ (c ⊕ b): different order *and* different grouping.
        let cb = ServerStats::new(8);
        cb.merge_from(&c);
        cb.merge_from(&b);
        let right = ServerStats::new(8);
        right.merge_from(&a);
        right.merge_from(&cb);

        assert_eq!(flat(&left), flat(&right));
        assert_eq!(left.completed(), 8);
        assert_eq!(left.batches(), 4);
        // Percentiles over the merged histogram: 8 latencies
        // {1,1,2,2,4,9,9,9} — p50 = 4th value = 2, p99 = 8th = 9.
        assert_eq!(left.p50(), Some(2));
        assert_eq!(left.p99(), Some(9));
        assert_eq!(left.comm().scattered(), 8);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let s = ServerStats::new(4);
        assert_eq!(s.p50(), None, "no data yet");
        for l in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10] {
            s.record_latency(l);
        }
        assert_eq!(s.latency_percentile(0.0), Some(1), "q=0 is the minimum");
        assert_eq!(s.p50(), Some(5));
        assert_eq!(s.p95(), Some(10));
        assert_eq!(s.p99(), Some(10));
        assert_eq!(s.latency_percentile(1.0), Some(10));
    }

    #[test]
    fn latency_saturates_at_last_bucket() {
        let s = ServerStats::new(2);
        s.record_latency(10_000_000);
        assert_eq!(s.p50(), Some((LATENCY_BUCKETS - 1) as u64));
    }

    #[test]
    fn reshard_counters_accumulate_and_merge() {
        let s = ServerStats::new(4);
        s.record_reshard(3, 0, 4096);
        s.record_reshard(0, 5, 0);
        s.record_replayed(7);
        s.record_backoff(12);
        assert_eq!(s.epochs(), 2);
        assert_eq!(s.shards_moved(), 3);
        assert_eq!(s.shards_rebuilt(), 5);
        assert_eq!(s.bytes_migrated(), 4096);
        assert_eq!(s.replayed(), 7);
        assert_eq!(s.backoff_ticks(), 12);
        let total = ServerStats::new(4);
        total.merge_from(&s);
        total.merge_from(&s);
        assert_eq!(
            (total.epochs(), total.shards_moved(), total.bytes_migrated()),
            (4, 6, 8192)
        );
        assert_eq!((total.replayed(), total.backoff_ticks()), (14, 24));
    }

    #[test]
    fn depth_gauge_tracks_high_water_mark() {
        let s = ServerStats::new(2);
        s.record_submit(1);
        s.record_submit(2);
        s.record_depth(0);
        assert_eq!(s.queue_depth(), 0);
        assert_eq!(s.max_queue_depth(), 2);
        assert_eq!(s.submitted(), 2);
    }
}
