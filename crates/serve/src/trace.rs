//! Seeded arrival processes: the load side of a serving experiment.
//!
//! An **open-loop** arrival process offers requests on a schedule that
//! does not react to the server (no waiting for responses) — the standard
//! way to measure latency under offered load, and the regime where
//! admission control actually matters. Arrivals are drawn per tick from a
//! seeded binomial (a discrete stand-in for Poisson traffic), so the same
//! seed replays the same trace on every machine and backend — which is
//! what the determinism tests pin.

use peachy_data::matrix::Matrix;
use peachy_prng::{mix_seed, Bernoulli, Lcg64, RandomStream, UniformU64};

/// Arrival ticks for an open-loop process over `ticks` virtual ticks with
/// mean `rate` arrivals per tick. Returns one entry per request,
/// nondecreasing — ready for [`crate::Server::run_trace`].
///
/// Per tick the arrival count is binomial: `4·⌈rate⌉` Bernoulli trials
/// with success probability `rate / trials`, so bursts above and lulls
/// below the mean both occur, reproducibly from `seed`.
pub fn open_loop_arrivals(seed: u64, ticks: u64, rate: f64) -> Vec<u64> {
    assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite and ≥ 0");
    let trials = ((rate * 4.0).ceil() as u64).max(1);
    let p = (rate / trials as f64).min(1.0);
    let bern = Bernoulli::new(p);
    let mut rng = Lcg64::seed_from(mix_seed(seed));
    let mut out = Vec::new();
    for t in 0..ticks {
        for _ in 0..trials {
            if bern.sample(&mut rng) {
                out.push(t);
            }
        }
    }
    out
}

/// A full request trace for the row-input services: each arrival from
/// [`open_loop_arrivals`] carries a row drawn uniformly (seeded) from
/// `pool` — e.g. a held-out query set.
pub fn query_trace(seed: u64, ticks: u64, rate: f64, pool: &Matrix) -> Vec<(u64, Vec<f64>)> {
    assert!(!pool.is_empty(), "empty query pool");
    let arrivals = open_loop_arrivals(seed, ticks, rate);
    let pick = UniformU64::new(0, pool.rows() as u64);
    let mut rng = Lcg64::seed_from(mix_seed(seed ^ 0x9e37_79b9_7f4a_7c15));
    arrivals
        .into_iter()
        .map(|t| (t, pool.row(pick.sample(&mut rng) as usize).to_vec()))
        .collect()
}

/// A keyed request trace for explicitly-routed sharded services (input
/// type `(key, row)`, e.g. [`crate::ShardedKnnService`]): each arrival
/// carries a uniform seeded `u64` routing key plus a row drawn from
/// `pool`. Keys and rows come from independent streams, so the same seed
/// replays the identical keyed trace everywhere.
pub fn keyed_query_trace(
    seed: u64,
    ticks: u64,
    rate: f64,
    pool: &Matrix,
) -> Vec<(u64, (u64, Vec<f64>))> {
    assert!(!pool.is_empty(), "empty query pool");
    let mut keys = Lcg64::seed_from(mix_seed(seed ^ 0x5ead_ed5e_11ce_0007));
    query_trace(seed, ticks, rate, pool)
        .into_iter()
        .map(|(t, row)| (t, (keys.next_u64(), row)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_trace() {
        let a = open_loop_arrivals(42, 100, 1.5);
        let b = open_loop_arrivals(42, 100, 1.5);
        assert_eq!(a, b);
        let c = open_loop_arrivals(43, 100, 1.5);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn arrivals_are_nondecreasing_and_near_rate() {
        let ticks = 2000;
        let rate = 2.0;
        let a = open_loop_arrivals(7, ticks, rate);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let mean = a.len() as f64 / ticks as f64;
        assert!(
            (mean - rate).abs() < 0.2 * rate,
            "offered load {mean} too far from {rate}"
        );
        assert!(a.iter().all(|&t| t < ticks));
    }

    #[test]
    fn zero_rate_offers_nothing() {
        assert!(open_loop_arrivals(1, 50, 0.0).is_empty());
    }

    #[test]
    fn query_trace_draws_rows_from_the_pool() {
        let pool = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let trace = query_trace(5, 200, 1.0, &pool);
        assert!(!trace.is_empty());
        for (_, q) in &trace {
            assert!(q == &[1.0, 2.0] || q == &[3.0, 4.0]);
        }
        assert_eq!(trace, query_trace(5, 200, 1.0, &pool), "reproducible");
    }

    #[test]
    fn keyed_trace_shares_rows_and_adds_spread_keys() {
        let pool = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let keyed = keyed_query_trace(5, 200, 1.0, &pool);
        let plain = query_trace(5, 200, 1.0, &pool);
        assert_eq!(keyed.len(), plain.len());
        for ((kt, (_, krow)), (pt, prow)) in keyed.iter().zip(&plain) {
            assert_eq!((kt, krow), (pt, prow), "keys must not disturb the trace");
        }
        let distinct: std::collections::BTreeSet<u64> =
            keyed.iter().map(|(_, (k, _))| *k).collect();
        assert!(distinct.len() > keyed.len() / 2, "routing keys collapsed");
        assert_eq!(keyed, keyed_query_trace(5, 200, 1.0, &pool), "reproducible");
    }
}
