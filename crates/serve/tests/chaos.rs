//! Serving under chaos: worker panics must never lose a request, answer
//! one twice, or break backend bit-equality.
//!
//! A [`ChaosPlan`] panics batch executions with seeded probability; the
//! server respawns the dead worker and retries the batch under its
//! `RetryPolicy`. The invariants pinned here, per seed and per backend:
//!
//! * **exactly-once** — every admitted request's `Response` resolves to
//!   exactly one value (a double fill panics the slot, so a violation
//!   cannot pass silently), and `completed + failed + rejected ==
//!   submitted`;
//! * **chaos-transparency** — responses, batch boundaries, and the
//!   deterministic ledger are bit-identical to the same trace served with
//!   chaos off (retries happen *around* the service, never inside its
//!   math), and identical across `Seq` / `Rayon` / `Cluster`;
//! * **the chaos is real** — the fixed seed matrix provably kills
//!   workers (`worker_respawns > 0`).
//!
//! The CI serve-smoke job runs the fixed seed matrix below plus one extra
//! seed from `PEACHY_CHAOS_SEED` (logged for reproduction), mirroring the
//! cluster fault-injection job.

use std::time::Duration;

use peachy_cluster::{Executor, RetryPolicy};
use peachy_data::synth::gaussian_blobs;
use peachy_serve::{query_trace, ChaosPlan, KnnService, ServeConfig, ServeError, Server};

/// Fixed regression seeds plus the CI-provided random one.
fn seed_matrix() -> Vec<u64> {
    let mut seeds: Vec<u64> = vec![1, 2, 3, 7, 42];
    if let Ok(extra) = std::env::var("PEACHY_CHAOS_SEED") {
        match extra.trim().parse::<u64>() {
            Ok(v) => seeds.push(v),
            Err(_) => panic!("PEACHY_CHAOS_SEED must be a u64, got {extra:?}"),
        }
    }
    seeds
}

fn chaos_cfg(seed: u64) -> ServeConfig {
    ServeConfig {
        capacity: 32,
        max_batch_size: 4,
        max_wait: 2,
        workers: 3,
        // Panic ~a third of executions; 16 attempts push the chance of an
        // exhausted batch below 2e-8 per batch, and the draw sequence is
        // fixed by the seed either way.
        retry: RetryPolicy {
            max_attempts: 16,
            backoff: Duration::ZERO,
        },
        chaos: Some(ChaosPlan::new(seed, 0.35)),
        ..ServeConfig::default()
    }
}

struct ChaosRun {
    responses: Vec<Result<u32, ServeError>>,
    batch_log_len: usize,
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    respawns: u64,
    latency_counts: Vec<u64>,
}

fn run_chaos_knn(seed: u64, exec: Executor, chaos: bool) -> ChaosRun {
    let db = gaussian_blobs(120, 4, 3, 1.5, 500 + seed);
    let pool = gaussian_blobs(30, 4, 3, 1.5, 600 + seed);
    let mut cfg = chaos_cfg(seed);
    if !chaos {
        cfg.chaos = None;
    }
    let server = Server::start(KnnService::new(db, 3), exec, cfg);
    let trace = query_trace(seed, 30, 1.5, &pool.points);
    let responses = server.run_trace(trace);
    let report = server.shutdown();
    let s = &report.stats;
    ChaosRun {
        responses,
        batch_log_len: report.batch_log.len(),
        submitted: s.submitted(),
        rejected: s.rejected(),
        completed: s.completed(),
        failed: s.failed(),
        respawns: s.worker_respawns(),
        latency_counts: s.latency_counts(),
    }
}

#[test]
fn chaos_seed_matrix_no_request_lost_or_answered_twice() {
    for seed in seed_matrix() {
        eprintln!("serve chaos: seed {seed}");
        let clean = run_chaos_knn(seed, Executor::rayon(4), false);
        assert_eq!(clean.respawns, 0, "clean run must not panic");

        for exec in [Executor::seq(), Executor::rayon(4), Executor::cluster(3)] {
            let label = format!("{exec:?}");
            let chaotic = run_chaos_knn(seed, exec, true);

            // Exactly-once: every admitted request resolved exactly once
            // (the Response slot panics on double fill — reaching these
            // asserts at all means no request was answered twice), and
            // the ledger covers every submission.
            assert_eq!(
                chaotic.completed + chaotic.failed + chaotic.rejected,
                chaotic.submitted,
                "accounting leak on {label}, seed {seed}"
            );
            let answered = chaotic
                .responses
                .iter()
                .filter(|r| !matches!(r, Err(ServeError::Overloaded)))
                .count() as u64;
            assert_eq!(
                answered,
                chaotic.completed + chaotic.failed,
                "response/ledger mismatch on {label}, seed {seed}"
            );
            assert_eq!(chaotic.failed, 0, "retry budget exhausted on {label}");

            // Chaos-transparency: bit-identical to the clean run.
            assert_eq!(
                chaotic.responses, clean.responses,
                "chaos changed answers on {label}, seed {seed}"
            );
            assert_eq!(chaotic.batch_log_len, clean.batch_log_len);
            assert_eq!(chaotic.latency_counts, clean.latency_counts);
            assert_eq!(
                (chaotic.submitted, chaotic.rejected, chaotic.completed),
                (clean.submitted, clean.rejected, clean.completed)
            );
        }
    }
}

#[test]
fn fixed_seeds_actually_kill_workers() {
    // Guard against the chaos plan rotting into a no-op: across the fixed
    // matrix the injected panic rate must actually fire (≈0.35 per batch
    // execution, ≥ 11 batches per run — the chance of zero panics across
    // the whole matrix is below 1e-20 and, being seeded, fixed forever).
    let total: u64 = [1u64, 2, 3, 7, 42]
        .into_iter()
        .map(|seed| run_chaos_knn(seed, Executor::rayon(4), true).respawns)
        .sum();
    assert!(total > 0, "chaos plans never killed a worker");
}

#[test]
fn retries_survive_on_the_cluster_backend_with_transport_faults() {
    // Stack the two fault layers: a chaotic transport *inside* the
    // executor (duplicates + reorders, no losses) and worker panics
    // around it. Answers must still match the clean sequential run.
    use peachy_cluster::{EdgeFault, FaultPlan};
    let db = gaussian_blobs(80, 3, 2, 1.5, 900);
    let pool = gaussian_blobs(20, 3, 2, 1.5, 901);
    let reference = {
        let server = Server::start(
            KnnService::new(db.clone(), 3),
            Executor::seq(),
            ServeConfig {
                chaos: None,
                ..chaos_cfg(11)
            },
        );
        let out = server.run_trace(query_trace(11, 20, 1.0, &pool.points));
        server.shutdown();
        out
    };
    let plan = FaultPlan::new(11).all_edges(EdgeFault {
        dup_p: 0.2,
        reorder_p: 0.2,
        ..EdgeFault::none()
    });
    let exec = Executor::Cluster { ranks: 2, plan };
    let server = Server::start(KnnService::new(db, 3), exec, chaos_cfg(11));
    let out = server.run_trace(query_trace(11, 20, 1.0, &pool.points));
    let report = server.shutdown();
    assert_eq!(out, reference);
    assert_eq!(
        report.stats.completed() + report.stats.rejected(),
        report.stats.submitted()
    );
}
