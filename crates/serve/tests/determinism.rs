//! Batcher determinism across executor backends: the serving layer's
//! bit-exactness contract, as a fixed seed × config grid.
//!
//! For a fixed seeded arrival trace and `ServeConfig`, the virtual-time
//! batcher must produce **identical batch boundaries** (ids, close ticks,
//! sizes, causes) and **identical responses** on `Seq`, `Rayon`, and
//! `Cluster` executors — batching is a pure function of `(trace, config)`
//! and services are decomposition-independent. The grid replays each
//! trace through all three backends and diffs everything observable:
//! responses, the batch log, and the deterministic half of the ledger.

use peachy_cluster::Executor;
use peachy_data::synth::gaussian_blobs;
use peachy_serve::{
    query_trace, BatchRecord, KmeansAssignService, KnnService, ServeConfig, ServeError, Server,
    ServerReport,
};

fn run_knn(
    seed: u64,
    rate: f64,
    cfg: &ServeConfig,
    exec: Executor,
) -> (Vec<Result<u32, ServeError>>, ServerReport) {
    let db = gaussian_blobs(150, 4, 3, 1.5, 100 + seed);
    let pool = gaussian_blobs(40, 4, 3, 1.5, 200 + seed);
    let server = Server::start(KnnService::new(db, 3), exec, cfg.clone());
    let trace = query_trace(seed, 40, rate, &pool.points);
    let out = server.run_trace(trace);
    (out, server.shutdown())
}

fn run_kmeans(
    seed: u64,
    cfg: &ServeConfig,
    exec: Executor,
) -> (Vec<Result<u32, ServeError>>, ServerReport) {
    let data = gaussian_blobs(120, 3, 4, 1.0, 300 + seed);
    let centroids = data.points.select_rows(&[0, 30, 60, 90]);
    let server = Server::start(KmeansAssignService::new(centroids), exec, cfg.clone());
    let trace = query_trace(seed, 40, 1.3, &data.points);
    let out = server.run_trace(trace);
    (out, server.shutdown())
}

/// The deterministic slice of the ledger (comm counters are backend-
/// dependent by design and excluded).
fn ledger_fingerprint(r: &ServerReport) -> (u64, u64, u64, u64, u64, Vec<u64>, Vec<u64>) {
    let s = &r.stats;
    (
        s.submitted(),
        s.rejected(),
        s.completed(),
        s.failed(),
        s.batches(),
        s.batch_size_counts(),
        s.latency_counts(),
    )
}

fn assert_identical_across_backends<F>(run: F)
where
    F: Fn(Executor) -> (Vec<Result<u32, ServeError>>, ServerReport),
{
    let (seq_out, seq_rep) = run(Executor::seq());
    for exec in [Executor::rayon(4), Executor::cluster(3)] {
        let label = format!("{exec:?}");
        let (out, rep) = run(exec);
        assert_eq!(out, seq_out, "responses differ on {label}");
        let seq_log: &Vec<BatchRecord> = &seq_rep.batch_log;
        assert_eq!(&rep.batch_log, seq_log, "batch boundaries differ on {label}");
        assert_eq!(
            ledger_fingerprint(&rep),
            ledger_fingerprint(&seq_rep),
            "ledger differs on {label}"
        );
    }
    // The trace actually exercised the batcher.
    assert!(seq_rep.stats.batches() > 1, "degenerate trace");
    assert!(seq_rep.stats.completed() > 0);
}

#[test]
fn knn_traces_replay_identically_on_all_backends() {
    for seed in [1, 2, 3] {
        for (max_batch, max_wait) in [(4, 2), (8, 5), (1, 1)] {
            let cfg = ServeConfig {
                capacity: 64,
                max_batch_size: max_batch,
                max_wait,
                workers: 3,
                ..ServeConfig::default()
            };
            assert_identical_across_backends(|exec| run_knn(seed, 1.3, &cfg, exec));
        }
    }
}

#[test]
fn kmeans_traces_replay_identically_on_all_backends() {
    for seed in [1, 2, 3] {
        let cfg = ServeConfig {
            capacity: 64,
            max_batch_size: 6,
            max_wait: 3,
            workers: 2,
            ..ServeConfig::default()
        };
        assert_identical_across_backends(|exec| run_kmeans(seed, &cfg, exec));
    }
}

#[test]
fn tight_capacity_rejects_identically_on_all_backends() {
    // Overload is part of the contract: the *same* requests must be
    // rejected on every backend, because admission happens in virtual
    // time, not worker time.
    for seed in [1, 2, 3] {
        let cfg = ServeConfig {
            capacity: 3,
            max_batch_size: 4,
            max_wait: 2,
            workers: 2,
            ..ServeConfig::default()
        };
        let (out, rep) = run_knn(seed, 4.0, &cfg, Executor::seq());
        assert!(
            rep.stats.rejected() > 0,
            "seed {seed}: overload trace must reject"
        );
        assert_eq!(
            rep.stats.completed() + rep.stats.rejected(),
            rep.stats.submitted()
        );
        assert_identical_across_backends(|exec| run_knn(seed, 4.0, &cfg, exec));
        let rejected_at: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Err(ServeError::Overloaded))
            .map(|(i, _)| i)
            .collect();
        assert!(!rejected_at.is_empty());
    }
}

#[test]
fn repeat_runs_are_bit_identical() {
    let cfg = ServeConfig {
        capacity: 32,
        max_batch_size: 5,
        max_wait: 3,
        ..ServeConfig::default()
    };
    let (a_out, a_rep) = run_kmeans(7, &cfg, Executor::rayon(4));
    let (b_out, b_rep) = run_kmeans(7, &cfg, Executor::rayon(4));
    assert_eq!(a_out, b_out);
    assert_eq!(a_rep.batch_log, b_rep.batch_log);
    assert_eq!(ledger_fingerprint(&a_rep), ledger_fingerprint(&b_rep));
}
