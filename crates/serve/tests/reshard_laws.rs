//! The elastic-serving acceptance laws, pinned as tests.
//!
//! A scripted join/drain/kill/revive trace served by a
//! [`ShardedServer`] must be **invisible to clients** and **cheap to
//! survive**:
//!
//! * **backend bit-equality** — responses, batch boundaries, the
//!   per-epoch reshard ledger, and the stats fingerprint are identical
//!   across `Seq` / `Rayon` / `Cluster`, per chaos seed;
//! * **elasticity-transparency** — the same trace served by a static,
//!   fault-free server yields the same responses: kills, joins, and
//!   drains never change an answer, only the reshard ledger;
//! * **zero loss** — a mid-trace kill loses no accepted request: every
//!   response resolves `Ok` (or a deterministic `Overloaded`), the
//!   ledger balances, and the lost batches are replayed;
//! * **map purity** — the final shard map is recomputable from
//!   `(membership, epoch, seed)` alone;
//! * **minimal migration** — the shard delta beats the full-rebuild
//!   strawman on both the logical and the wire byte meters, and a kill
//!   moves nothing between survivors (the ring's law).
//!
//! Chaos here is the benign transport kind (dup/reorder/delay — no
//! drops: a dropped completion token costs a 5 s wall-clock deadline,
//! which a unit suite should not pay). The CI `reshard-laws` job runs
//! the fixed seed matrix plus a logged `PEACHY_CHAOS_SEED`.

use std::collections::BTreeSet;
use std::time::Duration;

use peachy_cluster::{EdgeFault, Executor, FaultPlan, TickBackoff};
use peachy_data::synth::gaussian_blobs;
use peachy_serve::{
    keyed_query_trace, BatchRecord, ReshardCause, ReshardRecord, ScaleEvent, ServeError,
    ShardConfig, ShardMap, ShardedKnnService, ShardedServer,
};

/// Fixed regression seeds plus the CI-provided random one.
fn seed_matrix() -> Vec<u64> {
    let mut seeds: Vec<u64> = vec![1, 2, 3, 7, 42];
    if let Ok(extra) = std::env::var("PEACHY_CHAOS_SEED") {
        match extra.trim().parse::<u64>() {
            Ok(v) => seeds.push(v),
            Err(_) => panic!("PEACHY_CHAOS_SEED must be a u64, got {extra:?}"),
        }
    }
    seeds
}

/// The scripted membership story every test replays: rank 4 joins, rank
/// 2 is killed mid-round (after its third dispatched batch) and later
/// revives, rank 1 drains near the end.
fn scripted_cfg(seed: u64) -> ShardConfig {
    ShardConfig {
        num_shards: 16,
        vnodes: 16,
        initial_ranks: 4,
        max_batch_size: 4,
        max_wait: 2,
        backoff: TickBackoff::linear(1, 3, seed),
        plan: FaultPlan::new(seed)
            .all_edges(EdgeFault {
                dup_p: 0.15,
                reorder_p: 0.15,
                delay: Duration::from_millis(1),
                ..EdgeFault::none()
            })
            .kill(2, 2)
            .revive(2, 3),
        scaling: vec![(6, ScaleEvent::Add(4)), (18, ScaleEvent::Drain(1))],
        ..ShardConfig::default()
    }
}

struct ElasticRun {
    responses: Vec<Result<u32, ServeError>>,
    reshard_log: Vec<ReshardRecord>,
    batch_log: Vec<BatchRecord>,
    final_map: ShardMap,
    final_members: Vec<usize>,
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    replayed: u64,
    backoff_ticks: u64,
    epochs: u64,
    shards_moved: u64,
    shards_rebuilt: u64,
    bytes_migrated: u64,
    wire_bytes: u64,
    latency_counts: Vec<u64>,
}

fn run_elastic(seed: u64, exec: Executor, cfg: ShardConfig) -> ElasticRun {
    let db = gaussian_blobs(96, 4, 3, 1.5, 700 + seed);
    let pool = gaussian_blobs(24, 4, 3, 1.5, 800 + seed);
    let mut server = ShardedServer::start(ShardedKnnService::new(db, 3), exec, cfg);
    let responses = server.run_trace(keyed_query_trace(seed, 24, 2.0, &pool.points));
    let final_members = server.members();
    let report = server.shutdown();
    let s = &report.stats;
    ElasticRun {
        responses,
        reshard_log: report.reshard_log,
        batch_log: report.batch_log,
        final_map: report.final_map,
        final_members,
        submitted: s.submitted(),
        rejected: s.rejected(),
        completed: s.completed(),
        failed: s.failed(),
        replayed: s.replayed(),
        backoff_ticks: s.backoff_ticks(),
        epochs: s.epochs(),
        shards_moved: s.shards_moved(),
        shards_rebuilt: s.shards_rebuilt(),
        bytes_migrated: s.bytes_migrated(),
        wire_bytes: s.comm().bytes(),
        latency_counts: s.latency_counts(),
    }
}

#[test]
fn scripted_elasticity_is_bit_identical_across_backends() {
    for seed in seed_matrix() {
        eprintln!("reshard laws: seed {seed}");
        // Elasticity-transparency reference: same trace, static
        // membership, no faults.
        let quiet = run_elastic(
            seed,
            Executor::seq(),
            ShardConfig {
                plan: FaultPlan::none(),
                scaling: Vec::new(),
                ..scripted_cfg(seed)
            },
        );
        assert_eq!(quiet.epochs, 0, "the quiet run must never reshard");
        assert_eq!(quiet.failed, 0);

        let reference = run_elastic(seed, Executor::seq(), scripted_cfg(seed));
        assert_eq!(
            reference.responses, quiet.responses,
            "elasticity changed answers (seed {seed})"
        );

        for exec in [Executor::rayon(4), Executor::cluster(4)] {
            let label = format!("{exec:?}");
            let run = run_elastic(seed, exec, scripted_cfg(seed));
            assert_eq!(run.responses, reference.responses, "{label}, seed {seed}");
            assert_eq!(run.reshard_log, reference.reshard_log, "{label}, seed {seed}");
            assert_eq!(run.batch_log, reference.batch_log, "{label}, seed {seed}");
            assert_eq!(run.final_map, reference.final_map, "{label}, seed {seed}");
            assert_eq!(run.latency_counts, reference.latency_counts, "{label}");
            assert_eq!(
                (
                    run.submitted,
                    run.rejected,
                    run.completed,
                    run.failed,
                    run.replayed,
                    run.backoff_ticks,
                    run.epochs,
                    run.shards_moved,
                    run.shards_rebuilt,
                    run.bytes_migrated,
                ),
                (
                    reference.submitted,
                    reference.rejected,
                    reference.completed,
                    reference.failed,
                    reference.replayed,
                    reference.backoff_ticks,
                    reference.epochs,
                    reference.shards_moved,
                    reference.shards_rebuilt,
                    reference.bytes_migrated,
                ),
                "ledger fingerprint diverged on {label}, seed {seed}"
            );
        }
    }
}

#[test]
fn a_kill_mid_trace_loses_no_accepted_request() {
    for seed in [1u64, 7, 42] {
        for exec in [Executor::seq(), Executor::cluster(4)] {
            let label = format!("{exec:?}");
            let run = run_elastic(seed, exec, scripted_cfg(seed));

            // Every accepted request resolved Ok; the only permissible
            // error is deterministic admission control.
            for (i, r) in run.responses.iter().enumerate() {
                assert!(
                    matches!(r, Ok(_) | Err(ServeError::Overloaded)),
                    "request {i} resolved {r:?} on {label}, seed {seed}"
                );
            }
            assert_eq!(run.failed, 0, "{label}, seed {seed}");
            assert_eq!(
                run.completed + run.rejected,
                run.submitted,
                "ledger leak on {label}, seed {seed}"
            );

            // The kill actually fired, lost batches were replayed, and
            // the scripted revival brought the rank back.
            assert!(run.replayed > 0, "kill never fired on {label}, seed {seed}");
            let kill = run
                .reshard_log
                .iter()
                .find(|r| r.cause == ReshardCause::Kill(2))
                .unwrap_or_else(|| panic!("no kill record on {label}, seed {seed}"));
            assert!(kill.requests_replayed > 0);
            // The ring's law: a death rebuilds the dead rank's shards and
            // moves nothing between survivors.
            assert!(kill.shards_rebuilt > 0, "{label}, seed {seed}");
            assert_eq!(kill.shards_moved, 0, "{label}, seed {seed}");
            assert_eq!(kill.bytes_migrated, 0, "{label}, seed {seed}");
            assert!(
                run.reshard_log
                    .iter()
                    .any(|r| r.cause == ReshardCause::Revive(2)),
                "rank 2 never revived on {label}, seed {seed}"
            );
            // Join and drain both transfer warm state.
            for cause in [ReshardCause::Join(4), ReshardCause::Drain(1)] {
                let rec = run
                    .reshard_log
                    .iter()
                    .find(|r| r.cause == cause)
                    .unwrap_or_else(|| panic!("no {cause:?} record on {label}"));
                assert!(rec.shards_moved > 0, "{cause:?} moved nothing on {label}");
                assert!(rec.bytes_migrated > 0, "{cause:?} was free on {label}");
            }
        }
    }
}

#[test]
fn shard_maps_are_pure_functions_of_membership_epoch_and_seed() {
    let seed = 7;
    let cfg = scripted_cfg(seed);
    let run = run_elastic(seed, Executor::rayon(4), cfg.clone());

    // Anyone holding (membership, epoch, seed) recomputes the exact map.
    let members: BTreeSet<usize> = run.final_members.iter().copied().collect();
    let recomputed = ShardMap::compute(
        &members,
        run.final_map.epoch(),
        cfg.num_shards,
        cfg.vnodes,
        cfg.seed,
    );
    assert_eq!(recomputed, run.final_map);
    assert_eq!(run.final_map.epoch(), run.epochs);
    assert_eq!(run.final_map.members(), &run.final_members[..]);

    // Epochs are dense and the ledger tells the whole story.
    for (i, rec) in run.reshard_log.iter().enumerate() {
        assert_eq!(rec.epoch, i as u64 + 1, "epoch gap at {i}");
    }
    // Every shard is owned by a final member.
    for shard in 0..cfg.num_shards {
        assert!(members.contains(&run.final_map.owner(shard)));
    }
}

#[test]
fn delta_migration_beats_the_full_rebuild_strawman() {
    let seed = 42;
    for exec in [Executor::seq(), Executor::cluster(4)] {
        let label = format!("{exec:?}");
        let delta = run_elastic(seed, exec.clone(), scripted_cfg(seed));
        let rebuild = run_elastic(
            seed,
            exec,
            ShardConfig {
                full_rebuild: true,
                ..scripted_cfg(seed)
            },
        );
        // The strawman must not change a single answer — only the bill.
        assert_eq!(rebuild.responses, delta.responses, "{label}");
        assert_eq!(rebuild.epochs, delta.epochs, "{label}");
        assert!(
            delta.bytes_migrated < rebuild.bytes_migrated,
            "delta {} B must beat full rebuild {} B on {label}",
            delta.bytes_migrated,
            rebuild.bytes_migrated
        );
        if matches!(label.as_str(), l if l.contains("Cluster")) {
            // The wire meter agrees with the logical one: fewer shards
            // shipped, fewer bytes on the transport.
            assert!(
                delta.wire_bytes < rebuild.wire_bytes,
                "wire {} B vs {} B on {label}",
                delta.wire_bytes,
                rebuild.wire_bytes
            );
        }
    }
}
