//! A minimal self-describing binary container — the course-topic stand-in
//! for NetCDF ("file formats such as ASCII, binary, self-describing
//! formats"; the §5 variation "adapt the output to use the NetCDF
//! library").
//!
//! Layout (all integers little-endian u64, strings length-prefixed UTF-8):
//!
//! ```text
//! magic "PCDF1" | n_attrs | (name, value)*          — global attributes
//! n_dims  | (name, len)*                            — named dimensions
//! n_vars  | (name, n_dimrefs, dimref*, f64-data)*   — variables
//! ```
//!
//! A variable's data length must equal the product of its dimensions —
//! checked on write *and* on read, so a truncated or corrupted file fails
//! loudly instead of yielding garbage.

use std::fmt;

/// A named dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    /// Dimension name, e.g. `"time"`.
    pub name: String,
    /// Extent.
    pub len: usize,
}

/// A variable: named data over an ordered list of dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Variable name, e.g. `"positions"`.
    pub name: String,
    /// Indices into the container's dimension table (row-major order).
    pub dims: Vec<usize>,
    /// Row-major data; length = product of dim extents.
    pub data: Vec<f64>,
}

/// A self-describing dataset: attributes + dimensions + variables.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelfDescribing {
    /// Free-form (key, value) metadata.
    pub attrs: Vec<(String, String)>,
    /// Dimension table.
    pub dims: Vec<Dim>,
    /// Variables.
    pub vars: Vec<Variable>,
}

/// Errors raised while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic header.
    BadMagic,
    /// Input ended mid-structure.
    Truncated,
    /// A string was not valid UTF-8.
    BadString,
    /// A variable referenced a dimension that does not exist.
    BadDimRef {
        /// Variable name.
        var: String,
        /// The out-of-range dimension index.
        dim: usize,
    },
    /// A variable's data length disagrees with its dimensions.
    ShapeMismatch {
        /// Variable name.
        var: String,
        /// Values implied by the dimensions.
        expected: usize,
        /// Values actually available.
        got: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a PCDF1 container"),
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadString => write!(f, "invalid UTF-8 string"),
            DecodeError::BadDimRef { var, dim } => {
                write!(f, "variable {var:?} references unknown dimension {dim}")
            }
            DecodeError::ShapeMismatch { var, expected, got } => {
                write!(f, "variable {var:?}: expected {expected} values, got {got}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 5] = b"PCDF1";

impl SelfDescribing {
    /// Add a dimension, returning its index.
    pub fn add_dim(&mut self, name: impl Into<String>, len: usize) -> usize {
        self.dims.push(Dim {
            name: name.into(),
            len,
        });
        self.dims.len() - 1
    }

    /// Add a variable over the given dimension indices. Panics if the data
    /// length does not match the dimensions (programming error).
    pub fn add_var(&mut self, name: impl Into<String>, dims: Vec<usize>, data: Vec<f64>) {
        let name = name.into();
        let expected: usize = dims.iter().map(|&d| self.dims[d].len).product();
        assert_eq!(data.len(), expected, "variable {name:?} shape mismatch");
        self.vars.push(Variable { name, dims, data });
    }

    /// Add a (key, value) attribute.
    pub fn add_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.attrs.push((key.into(), value.into()));
    }

    /// Look up a variable by name.
    pub fn var(&self, name: &str) -> Option<&Variable> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Serialize to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(64 + self.vars.iter().map(|v| v.data.len() * 8).sum::<usize>());
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.attrs.len() as u64);
        for (k, v) in &self.attrs {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        put_u64(&mut out, self.dims.len() as u64);
        for d in &self.dims {
            put_str(&mut out, &d.name);
            put_u64(&mut out, d.len as u64);
        }
        put_u64(&mut out, self.vars.len() as u64);
        for v in &self.vars {
            put_str(&mut out, &v.name);
            put_u64(&mut out, v.dims.len() as u64);
            for &d in &v.dims {
                put_u64(&mut out, d as u64);
            }
            for &x in &v.data {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Parse from bytes, validating structure and shapes.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(5)? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let n_attrs = cur.u64()? as usize;
        let mut attrs = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            attrs.push((cur.string()?, cur.string()?));
        }
        let n_dims = cur.u64()? as usize;
        let mut dims = Vec::with_capacity(n_dims);
        for _ in 0..n_dims {
            dims.push(Dim {
                name: cur.string()?,
                len: cur.u64()? as usize,
            });
        }
        let n_vars = cur.u64()? as usize;
        let mut vars = Vec::with_capacity(n_vars);
        for _ in 0..n_vars {
            let name = cur.string()?;
            let n_dimrefs = cur.u64()? as usize;
            let mut dimrefs = Vec::with_capacity(n_dimrefs);
            for _ in 0..n_dimrefs {
                let d = cur.u64()? as usize;
                if d >= dims.len() {
                    return Err(DecodeError::BadDimRef { var: name, dim: d });
                }
                dimrefs.push(d);
            }
            let expected: usize = dimrefs.iter().map(|&d| dims[d].len).product();
            let raw = cur
                .take(expected * 8)
                .map_err(|_| DecodeError::ShapeMismatch {
                    var: name.clone(),
                    expected,
                    got: (bytes.len() - cur.pos) / 8,
                })?;
            let data: Vec<f64> = raw
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
                .collect();
            vars.push(Variable {
                name,
                dims: dimrefs,
                data,
            });
        }
        Ok(Self { attrs, dims, vars })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u64()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::BadString)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SelfDescribing {
        let mut ds = SelfDescribing::default();
        ds.add_attr("model", "nagel-schreckenberg");
        ds.add_attr("p", "0.13");
        let t = ds.add_dim("time", 3);
        let c = ds.add_dim("car", 2);
        ds.add_var("positions", vec![t, c], vec![0.0, 5.0, 1.0, 6.0, 3.0, 8.0]);
        ds.add_var("mean_v", vec![t], vec![0.5, 1.0, 2.0]);
        ds
    }

    #[test]
    fn roundtrip() {
        let ds = sample();
        let back = SelfDescribing::decode(&ds.encode()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn lookup_helpers() {
        let ds = sample();
        assert_eq!(ds.attr("p"), Some("0.13"));
        assert_eq!(ds.attr("missing"), None);
        assert_eq!(ds.var("mean_v").unwrap().data.len(), 3);
        assert!(ds.var("nope").is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            SelfDescribing::decode(b"NOPE!rest"),
            Err(DecodeError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().encode();
        for cut in [3usize, 10, bytes.len() - 1] {
            let err = SelfDescribing::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated
                        | DecodeError::ShapeMismatch { .. }
                        | DecodeError::BadMagic
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_dimref_rejected() {
        let mut ds = SelfDescribing::default();
        ds.add_dim("t", 1);
        ds.add_var("x", vec![0], vec![1.0]);
        let mut bytes = ds.encode();
        // Corrupt the dimref (last 16 bytes are dimref + one f64).
        let n = bytes.len();
        bytes[n - 16..n - 8].copy_from_slice(&99u64.to_le_bytes());
        assert!(matches!(
            SelfDescribing::decode(&bytes),
            Err(DecodeError::BadDimRef { dim: 99, .. })
        ));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_var_validates_shape() {
        let mut ds = SelfDescribing::default();
        let t = ds.add_dim("t", 4);
        ds.add_var("x", vec![t], vec![1.0, 2.0]);
    }

    #[test]
    fn empty_container_roundtrips() {
        let ds = SelfDescribing::default();
        assert_eq!(SelfDescribing::decode(&ds.encode()).unwrap(), ds);
    }
}
