//! A synthetic city: the stand-in for the NYC open-data sets of §4.
//!
//! The paper's exemplar pipeline joins four datasets published by
//! data.cityofnewyork.us — arrests (historic + current year), Neighborhood
//! Tabulation Area (NTA) boundaries, and NTA population — to produce a heat
//! map of arrests per 100 000 citizens per NTA. This module generates a
//! city with the same shape:
//!
//! * a grid of jittered polygonal **NTAs** that exactly tile the city
//!   rectangle (shared jittered vertices, so no gaps/overlaps),
//! * a **population** table keyed by NTA code,
//! * two **arrest** event tables (historic years + current year) drawn from
//!   a spatial mixture of hotspots over uniform background, with a
//!   controllable fraction of *dirty* records (missing or out-of-bounds
//!   coordinates) for the pipeline's cleaning stage,
//! * **ground truth** per-NTA arrest counts so the pipeline's output can be
//!   verified end-to-end.
//!
//! All tables can be rendered to CSV so the dataflow pipeline genuinely
//! starts from text ingestion like the real assignment.

use peachy_prng::{Bernoulli, Lcg64, Normal, RandomStream, UniformF64, UniformU64};

/// A 2-D point (city coordinates, arbitrary units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A simple (non-self-intersecting) polygon.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Create from at least three vertices.
    pub fn new(vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "a polygon needs at least 3 vertices");
        Self { vertices }
    }

    /// Borrow the vertex list.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Axis-aligned bounding box `(min, max)`.
    pub fn bbox(&self) -> (Point, Point) {
        let mut min = Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        };
        let mut max = Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        };
        for v in &self.vertices {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        (min, max)
    }

    /// Point-in-polygon by ray casting (even–odd rule). Points exactly on
    /// an edge may land on either side; the city generator never places
    /// arrests exactly on shared edges, and the pipeline treats NTAs as a
    /// partition (first match wins).
    pub fn contains(&self, p: Point) -> bool {
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Signed area (shoelace formula); positive for counter-clockwise.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += a.x * b.y - b.x * a.y;
        }
        acc / 2.0
    }
}

/// One Neighborhood Tabulation Area: a code, a display name, a boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Nta {
    /// Short code, e.g. "NTA07".
    pub code: String,
    /// Display name, e.g. "District 07".
    pub name: String,
    /// Boundary polygon.
    pub boundary: Polygon,
}

/// One arrest event record, as ingested (pre-cleaning): coordinates may be
/// missing or out of bounds for a controllable fraction of records.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrestRecord {
    /// Record id, unique across both tables.
    pub id: u64,
    /// Calendar year of the arrest.
    pub year: u32,
    /// Offense category string.
    pub offense: String,
    /// X coordinate; `None` models a missing field.
    pub x: Option<f64>,
    /// Y coordinate; `None` models a missing field.
    pub y: Option<f64>,
}

impl ArrestRecord {
    /// A record is clean when both coordinates are present and finite.
    pub fn coords(&self) -> Option<Point> {
        match (self.x, self.y) {
            (Some(x), Some(y)) if x.is_finite() && y.is_finite() => Some(Point { x, y }),
            _ => None,
        }
    }
}

/// Offense categories used by the generator.
pub const OFFENSES: [&str; 6] = [
    "larceny",
    "assault",
    "burglary",
    "fraud",
    "vandalism",
    "other",
];

/// Configuration for [`SyntheticCity::generate`].
#[derive(Debug, Clone, Copy)]
pub struct CityConfig {
    /// NTA grid width (columns).
    pub grid_w: usize,
    /// NTA grid height (rows).
    pub grid_h: usize,
    /// Total arrest events across both tables.
    pub arrests: usize,
    /// Fraction of arrest records that are dirty (missing/invalid coords).
    pub dirty_frac: f64,
    /// Number of spatial hotspots.
    pub hotspots: usize,
    /// Year treated as "current" (its records go to the current-year table).
    pub current_year: u32,
    /// Number of historic years before `current_year`.
    pub historic_years: u32,
}

impl Default for CityConfig {
    fn default() -> Self {
        Self {
            grid_w: 8,
            grid_h: 8,
            arrests: 50_000,
            dirty_frac: 0.02,
            hotspots: 5,
            current_year: 2021,
            historic_years: 4,
        }
    }
}

/// The generated city: the four "downloaded" tables plus ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticCity {
    /// NTA boundaries (dataset 1).
    pub ntas: Vec<Nta>,
    /// Population per NTA code (dataset 2).
    pub population: Vec<(String, u64)>,
    /// Historic arrests, years < current (dataset 3).
    pub arrests_historic: Vec<ArrestRecord>,
    /// Current-year arrests (dataset 4).
    pub arrests_current: Vec<ArrestRecord>,
    /// Ground truth: clean in-bounds arrest count per NTA index, current year.
    pub truth_current_counts: Vec<u64>,
    /// City bounds (max x = grid_w, max y = grid_h; min is origin).
    pub width: f64,
    /// City height.
    pub height: f64,
}

impl SyntheticCity {
    /// Generate a city deterministically from `config` and `seed`.
    pub fn generate(config: CityConfig, seed: u64) -> Self {
        let CityConfig {
            grid_w,
            grid_h,
            arrests,
            dirty_frac,
            hotspots,
            current_year,
            historic_years,
        } = config;
        assert!(grid_w >= 1 && grid_h >= 1 && arrests >= 1 && hotspots >= 1);
        assert!(historic_years >= 1, "need at least one historic year");
        let mut rng = Lcg64::seed_from(seed);

        // 1. Jitter the interior grid vertices once; boundary vertices stay
        // put so the city rectangle is preserved. Shared vertices keep the
        // NTAs a gap-free partition.
        let jitter = UniformF64::new(-0.25, 0.25);
        let mut verts = vec![vec![Point { x: 0.0, y: 0.0 }; grid_w + 1]; grid_h + 1];
        for (gy, row) in verts.iter_mut().enumerate() {
            for (gx, v) in row.iter_mut().enumerate() {
                let interior_x = gx > 0 && gx < grid_w;
                let interior_y = gy > 0 && gy < grid_h;
                v.x = gx as f64
                    + if interior_x {
                        jitter.sample(&mut rng)
                    } else {
                        0.0
                    };
                v.y = gy as f64
                    + if interior_y {
                        jitter.sample(&mut rng)
                    } else {
                        0.0
                    };
            }
        }
        let mut ntas = Vec::with_capacity(grid_w * grid_h);
        for gy in 0..grid_h {
            for gx in 0..grid_w {
                let idx = gy * grid_w + gx;
                let boundary = Polygon::new(vec![
                    verts[gy][gx],
                    verts[gy][gx + 1],
                    verts[gy + 1][gx + 1],
                    verts[gy + 1][gx],
                ]);
                ntas.push(Nta {
                    code: format!("NTA{idx:03}"),
                    name: format!("District {idx:03}"),
                    boundary,
                });
            }
        }

        // 2. Population: log-uniform-ish between 5k and 150k.
        let pop_dist = UniformF64::new(5_000f64.ln(), 150_000f64.ln());
        let population: Vec<(String, u64)> = ntas
            .iter()
            .map(|n| {
                (
                    n.code.clone(),
                    pop_dist.sample(&mut rng).exp().round() as u64,
                )
            })
            .collect();

        // 3. Hotspot mixture for arrest locations.
        let cx = UniformF64::new(0.0, grid_w as f64);
        let cy = UniformF64::new(0.0, grid_h as f64);
        let centres: Vec<Point> = (0..hotspots)
            .map(|_| Point {
                x: cx.sample(&mut rng),
                y: cy.sample(&mut rng),
            })
            .collect();
        let mut spot_noise = Normal::new(0.0, 0.6);
        let background = Bernoulli::new(0.3);
        let dirty = Bernoulli::new(dirty_frac);
        let year_dist = UniformU64::new(
            (current_year - historic_years) as u64,
            current_year as u64 + 1,
        );
        let offense_dist = UniformU64::new(0, OFFENSES.len() as u64);
        let spot_dist = UniformU64::new(0, hotspots as u64);

        let mut historic = Vec::new();
        let mut current = Vec::new();
        let mut truth = vec![0u64; ntas.len()];
        for id in 0..arrests as u64 {
            let year = year_dist.sample(&mut rng) as u32;
            let offense = OFFENSES[offense_dist.sample(&mut rng) as usize].to_string();
            let (x, y) = if background.sample(&mut rng) {
                (cx.sample(&mut rng), cy.sample(&mut rng))
            } else {
                let c = centres[spot_dist.sample(&mut rng) as usize];
                (
                    c.x + spot_noise.sample(&mut rng),
                    c.y + spot_noise.sample(&mut rng),
                )
            };
            let record = if dirty.sample(&mut rng) {
                // Three flavours of dirt: missing x, missing y, out of city.
                match rng.next_below(3) {
                    0 => ArrestRecord {
                        id,
                        year,
                        offense,
                        x: None,
                        y: Some(y),
                    },
                    1 => ArrestRecord {
                        id,
                        year,
                        offense,
                        x: Some(x),
                        y: None,
                    },
                    _ => ArrestRecord {
                        id,
                        year,
                        offense,
                        x: Some(-1000.0),
                        y: Some(-1000.0),
                    },
                }
            } else {
                ArrestRecord {
                    id,
                    year,
                    offense,
                    x: Some(x),
                    y: Some(y),
                }
            };
            // Ground truth for the current year: clean, in-bounds records.
            if year == current_year {
                if let Some(p) = record.coords() {
                    if let Some(nta_idx) = locate(&ntas, p) {
                        truth[nta_idx] += 1;
                    }
                }
            }
            if year == current_year {
                current.push(record);
            } else {
                historic.push(record);
            }
        }

        Self {
            ntas,
            population,
            arrests_historic: historic,
            arrests_current: current,
            truth_current_counts: truth,
            width: grid_w as f64,
            height: grid_h as f64,
        }
    }

    /// Render the NTA boundary table as CSV: `code,name,x0,y0,x1,y1,…`
    /// (variable-length vertex list per row, like a flattened WKT).
    pub fn boundaries_csv(&self) -> String {
        let mut out = String::new();
        for nta in &self.ntas {
            out.push_str(&nta.code);
            out.push(',');
            out.push_str(&nta.name);
            for v in nta.boundary.vertices() {
                out.push_str(&format!(",{},{}", v.x, v.y));
            }
            out.push('\n');
        }
        out
    }

    /// Render the population table as CSV: `code,population`.
    pub fn population_csv(&self) -> String {
        let mut out = String::new();
        for (code, pop) in &self.population {
            out.push_str(&format!("{code},{pop}\n"));
        }
        out
    }

    /// Render an arrest table as CSV: `id,year,offense,x,y`, with empty
    /// fields for missing coordinates — the dirty data the pipeline must
    /// clean.
    pub fn arrests_csv(records: &[ArrestRecord]) -> String {
        let mut out = String::new();
        for r in records {
            let x = r.x.map(|v| v.to_string()).unwrap_or_default();
            let y = r.y.map(|v| v.to_string()).unwrap_or_default();
            out.push_str(&format!("{},{},{},{},{}\n", r.id, r.year, r.offense, x, y));
        }
        out
    }
}

/// Index of the NTA containing `p`, if any (first match — NTAs partition
/// the city so matches are unique up to shared edges).
pub fn locate(ntas: &[Nta], p: Point) -> Option<usize> {
    ntas.iter().position(|n| n.boundary.contains(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::new(vec![
            Point { x: 0.0, y: 0.0 },
            Point { x: 1.0, y: 0.0 },
            Point { x: 1.0, y: 1.0 },
            Point { x: 0.0, y: 1.0 },
        ])
    }

    #[test]
    fn point_in_square() {
        let sq = unit_square();
        assert!(sq.contains(Point { x: 0.5, y: 0.5 }));
        assert!(!sq.contains(Point { x: 1.5, y: 0.5 }));
        assert!(!sq.contains(Point { x: -0.1, y: 0.5 }));
        assert!(!sq.contains(Point { x: 0.5, y: 2.0 }));
    }

    #[test]
    fn point_in_concave_polygon() {
        // L-shape: (0,0)-(2,0)-(2,1)-(1,1)-(1,2)-(0,2)
        let l = Polygon::new(vec![
            Point { x: 0.0, y: 0.0 },
            Point { x: 2.0, y: 0.0 },
            Point { x: 2.0, y: 1.0 },
            Point { x: 1.0, y: 1.0 },
            Point { x: 1.0, y: 2.0 },
            Point { x: 0.0, y: 2.0 },
        ]);
        assert!(l.contains(Point { x: 0.5, y: 1.5 }));
        assert!(l.contains(Point { x: 1.5, y: 0.5 }));
        assert!(!l.contains(Point { x: 1.5, y: 1.5 })); // the notch
    }

    #[test]
    fn signed_area_square() {
        assert!((unit_square().signed_area() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn degenerate_polygon_rejected() {
        Polygon::new(vec![Point { x: 0.0, y: 0.0 }, Point { x: 1.0, y: 1.0 }]);
    }

    fn small_city() -> SyntheticCity {
        SyntheticCity::generate(
            CityConfig {
                grid_w: 4,
                grid_h: 3,
                arrests: 5_000,
                ..CityConfig::default()
            },
            7,
        )
    }

    #[test]
    fn city_shape() {
        let city = small_city();
        assert_eq!(city.ntas.len(), 12);
        assert_eq!(city.population.len(), 12);
        assert_eq!(
            city.arrests_historic.len() + city.arrests_current.len(),
            5_000
        );
        assert!(!city.arrests_current.is_empty());
        assert!(!city.arrests_historic.is_empty());
    }

    #[test]
    fn city_deterministic() {
        let a = SyntheticCity::generate(CityConfig::default(), 3);
        let b = SyntheticCity::generate(CityConfig::default(), 3);
        assert_eq!(a.ntas, b.ntas);
        assert_eq!(a.arrests_current, b.arrests_current);
        assert_eq!(a.truth_current_counts, b.truth_current_counts);
    }

    #[test]
    fn ntas_tile_the_city() {
        // Every interior point belongs to at least one NTA, and areas sum
        // to the rectangle's area.
        let city = small_city();
        let total_area: f64 = city
            .ntas
            .iter()
            .map(|n| n.boundary.signed_area().abs())
            .sum();
        assert!(
            (total_area - 12.0).abs() < 1e-9,
            "areas sum to {total_area}"
        );
        // Probe a grid of points.
        for i in 0..40 {
            for j in 0..30 {
                let p = Point {
                    x: 0.05 + i as f64 * 0.1,
                    y: 0.05 + j as f64 * 0.1,
                };
                assert!(locate(&city.ntas, p).is_some(), "uncovered point {p:?}");
            }
        }
    }

    #[test]
    fn truth_counts_match_recount() {
        let city = small_city();
        let mut recount = vec![0u64; city.ntas.len()];
        for r in &city.arrests_current {
            if let Some(p) = r.coords() {
                if let Some(i) = locate(&city.ntas, p) {
                    recount[i] += 1;
                }
            }
        }
        assert_eq!(recount, city.truth_current_counts);
    }

    #[test]
    fn dirty_fraction_about_right() {
        let city = SyntheticCity::generate(
            CityConfig {
                arrests: 20_000,
                dirty_frac: 0.1,
                ..CityConfig::default()
            },
            11,
        );
        let all: Vec<&ArrestRecord> = city
            .arrests_historic
            .iter()
            .chain(&city.arrests_current)
            .collect();
        // The generator marks dirt as a missing field or the (-1000,-1000)
        // sentinel; hotspot noise may push *clean* records slightly out of
        // bounds, which is realistic and not counted here.
        let dirty = all
            .iter()
            .filter(|r| {
                r.coords()
                    .map(|p| p.x == -1000.0 && p.y == -1000.0)
                    .unwrap_or(true)
            })
            .count();
        let frac = dirty as f64 / all.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "dirty frac = {frac}");
    }

    #[test]
    fn csv_renders_missing_fields_empty() {
        let rec = ArrestRecord {
            id: 1,
            year: 2021,
            offense: "fraud".into(),
            x: None,
            y: Some(2.5),
        };
        let csv = SyntheticCity::arrests_csv(&[rec]);
        assert_eq!(csv, "1,2021,fraud,,2.5\n");
    }

    #[test]
    fn coords_rejects_partial_and_nan() {
        let r = ArrestRecord {
            id: 0,
            year: 2020,
            offense: "x".into(),
            x: Some(f64::NAN),
            y: Some(1.0),
        };
        assert_eq!(r.coords(), None);
        let r = ArrestRecord {
            id: 0,
            year: 2020,
            offense: "x".into(),
            x: None,
            y: Some(1.0),
        };
        assert_eq!(r.coords(), None);
    }
}
