//! Dense row-major matrices and labelled point sets.

use std::fmt;

/// A dense, row-major matrix of `f64`.
///
/// Rows are the natural unit (a row = one data point), so the storage is
/// one contiguous `Vec<f64>` and [`Matrix::row`] is a cheap slice — the
/// cache-friendly layout the k-means assignment's "static data structures"
/// starter code uses.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Create from a flat row-major vector. Panics if the length is not
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "flat data length must be rows*cols"
        );
        Self { data, rows, cols }
    }

    /// Create from nested rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Number of rows (points).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (dimensions).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// The flat row-major backing store.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Iterate over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Append a row. Panics if the width differs (unless the matrix is
    /// empty, in which case the width is adopted).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "row width mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// A new matrix containing the selected rows, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            out.extend_from_slice(self.row(i));
        }
        Self {
            data: out,
            rows: indices.len(),
            cols: self.cols,
        }
    }

    /// Squared Euclidean distance between row `i` and an external point.
    #[inline]
    pub fn dist2_to(&self, i: usize, point: &[f64]) -> f64 {
        squared_distance(self.row(i), point)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}×{})", self.rows, self.cols)
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// This is the Θ(d) kernel the k-NN assignment's cost model counts; the
/// square root is deliberately omitted (monotone, so nearest-neighbour
/// ordering is unchanged — a standard trick the assignment teaches).
/// The canonical implementation lives in [`crate::kernels::dist2`]; this
/// re-exported wrapper keeps the historical call sites working.
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    crate::kernels::dist2(a, b)
}

/// A labelled point set: points plus one class label per point.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDataset {
    /// The points, one per row.
    pub points: Matrix,
    /// Class label of each point, in `[0, classes)`.
    pub labels: Vec<u32>,
    /// Number of distinct classes.
    pub classes: u32,
}

impl LabeledDataset {
    /// Create a dataset, validating label range and length.
    pub fn new(points: Matrix, labels: Vec<u32>, classes: u32) -> Self {
        assert_eq!(points.rows(), labels.len(), "one label per point");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        Self {
            points,
            labels,
            classes,
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Dimensionality of the points.
    #[inline]
    pub fn dims(&self) -> usize {
        self.points.cols()
    }

    /// A new dataset containing the selected points.
    pub fn select(&self, indices: &[usize]) -> Self {
        Self {
            points: self.points.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            classes: self.classes,
        }
    }

    /// Per-class point counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes as usize];
        for &l in &self.labels {
            counts[l as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn push_row_adopts_width() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn select_rows_reorders() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[2.0]);
        assert_eq!(s.row(1), &[0.0]);
    }

    #[test]
    fn squared_distance_basics() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(squared_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn iter_rows_matches_row() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let collected: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], m.row(2));
    }

    #[test]
    fn labeled_dataset_validation() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let ds = LabeledDataset::new(m, vec![0, 1], 2);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dims(), 1);
        assert_eq!(ds.class_counts(), vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn labels_out_of_range_rejected() {
        let m = Matrix::from_rows(&[vec![0.0]]);
        LabeledDataset::new(m, vec![5], 2);
    }

    #[test]
    fn dataset_select() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let ds = LabeledDataset::new(m, vec![0, 1, 0], 2);
        let sub = ds.select(&[1, 2]);
        assert_eq!(sub.labels, vec![1, 0]);
        assert_eq!(sub.points.row(0), &[1.0]);
    }
}
