//! # peachy-data
//!
//! Datasets and data plumbing for the Peachy Parallel Assignments
//! reproduction. Each assignment consumes data the original courses pulled
//! from external sources; this crate synthesizes laptop-scale equivalents
//! with controllable parameters (documented per-module):
//!
//! * [`matrix`] — dense row-major `f64` matrices and labelled point sets,
//!   the common currency of the k-NN (§2), k-means (§3) and ensemble (§7)
//!   assignments.
//! * [`kernels`] — blocked, rayon-parallel distance/GEMM kernels (pairwise
//!   distances, fused batch argmin, matvec/matmul) shared by every
//!   distance-heavy hot path in the workspace, with scalar reference
//!   implementations kept for equivalence testing.
//! * [`csv`] — minimal, dependency-free CSV reading/writing, standing in
//!   for the datahub.io / NYC-open-data ingestion steps.
//! * [`synth`] — synthetic classification/clustering point clouds
//!   (Gaussian blobs, concentric rings, two moons) replacing the
//!   datahub.io classification instances.
//! * [`geo`] — a synthetic city (neighbourhood polygons, population,
//!   arrest events with dirty records) replacing the NYC arrests / NTA
//!   datasets of the §4 pipeline, plus point-in-polygon tests.
//! * [`digits`] — procedural 28×28 handwritten-digit images with an
//!   ambiguity knob, replacing MNIST for the §7 uncertainty experiment.
//! * [`split`] — seeded shuffles and train/test splits.
//!
//! All generators are deterministic functions of an explicit seed, so every
//! experiment in the repository is reproducible bit-for-bit.

pub mod csv;
pub mod digits;
pub mod geo;
pub mod iris;
pub mod kernels;
pub mod matrix;
pub mod selfdesc;
pub mod split;
pub mod synth;

pub use matrix::{LabeledDataset, Matrix};
pub use split::TrainTest;
