//! Seeded shuffles and train/test splits.

use peachy_prng::{Lcg64, RandomStream};

use crate::matrix::LabeledDataset;

/// A train/test partition of a labelled dataset.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// The training portion.
    pub train: LabeledDataset,
    /// The held-out test portion.
    pub test: LabeledDataset,
}

/// Fisher–Yates shuffle of `0..n` driven by a seeded generator.
pub fn shuffled_indices(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = Lcg64::seed_from(seed);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.next_below((i + 1) as u64) as usize;
        idx.swap(i, j);
    }
    idx
}

/// Split a dataset into train/test with the given training fraction,
/// after a seeded shuffle. `train_frac` must be in `(0, 1)`.
pub fn train_test_split(ds: &LabeledDataset, train_frac: f64, seed: u64) -> TrainTest {
    assert!(
        train_frac > 0.0 && train_frac < 1.0,
        "train_frac must be in (0,1)"
    );
    let idx = shuffled_indices(ds.len(), seed);
    let n_train = ((ds.len() as f64) * train_frac).round() as usize;
    let n_train = n_train.clamp(1, ds.len().saturating_sub(1));
    TrainTest {
        train: ds.select(&idx[..n_train]),
        test: ds.select(&idx[n_train..]),
    }
}

/// Deterministic `k`-fold partition: returns `k` disjoint index sets
/// covering `0..n`, sizes differing by at most one.
pub fn k_folds(n: usize, k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2 && k <= n, "need 2 <= k <= n");
    let idx = shuffled_indices(n, seed);
    let mut folds: Vec<Vec<usize>> = vec![Vec::with_capacity(n / k + 1); k];
    for (i, ix) in idx.into_iter().enumerate() {
        folds[i % k].push(ix);
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn toy(n: usize) -> LabeledDataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        LabeledDataset::new(
            Matrix::from_rows(&rows),
            (0..n as u32).map(|i| i % 3).collect(),
            3,
        )
    }

    #[test]
    fn shuffle_is_permutation() {
        let idx = shuffled_indices(100, 7);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_deterministic_by_seed() {
        assert_eq!(shuffled_indices(50, 1), shuffled_indices(50, 1));
        assert_ne!(shuffled_indices(50, 1), shuffled_indices(50, 2));
    }

    #[test]
    fn split_sizes() {
        let ds = toy(100);
        let tt = train_test_split(&ds, 0.8, 42);
        assert_eq!(tt.train.len(), 80);
        assert_eq!(tt.test.len(), 20);
    }

    #[test]
    fn split_is_a_partition() {
        let ds = toy(30);
        let tt = train_test_split(&ds, 0.5, 9);
        let mut seen: Vec<f64> = tt
            .train
            .points
            .iter_rows()
            .chain(tt.test.points.iter_rows())
            .map(|r| r[0])
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..30).map(|i| i as f64).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn split_never_empty() {
        let ds = toy(3);
        let tt = train_test_split(&ds, 0.99, 1);
        assert!(!tt.test.is_empty());
        let tt = train_test_split(&ds, 0.01, 1);
        assert!(!tt.train.is_empty());
    }

    #[test]
    fn k_folds_cover_everything() {
        let folds = k_folds(23, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
        for f in &folds {
            assert!(f.len() == 4 || f.len() == 5);
        }
    }
}
