//! Blocked, rayon-parallel compute kernels for the distance/GEMM hot paths.
//!
//! Every distance-heavy assignment in the suite — the k-means assignment
//! phase, brute-force k-NN, inertia, and the ensemble NN forward pass —
//! bottoms out in a handful of dense kernels. This module is their single
//! home; no scalar distance loop should live anywhere else (call sites use
//! these functions, and [`crate::matrix::squared_distance`] delegates to
//! [`dist2`]). The kernels come in two numeric families with different
//! equivalence guarantees:
//!
//! * **Exact family** — [`dist2`], [`dist2_scan`], [`assigned_dist2_sum`],
//!   [`matvec`], [`matvec_t`], [`matmul_nt`]. These evaluate the textbook
//!   sums (Σ(x−y)², Σw·x) with the *same left-to-right per-pair
//!   accumulation order* as the naïve scalar loops, but blocked into
//!   [`LANES`] independent accumulator chains so the CPU can overlap the
//!   FMA latency (ILP) and the compiler can vectorize across rows.
//!   Because each pair's chain is untouched, results are **bit-identical**
//!   to the scalar reference for every input — which is what lets the
//!   k-NN suite keep its "all five implementations agree exactly"
//!   property tests (the simulated-GPU classifier computes (x−y)² inline
//!   on its own device model and cannot share this code).
//!
//! * **Decomposed family** — [`Candidates`], [`argmin_dist2`],
//!   [`pairwise_dist2`]. These use the dot-product decomposition
//!   ‖x − c‖² = ‖x‖² − 2·x·c + ‖c‖², hoisting the candidate norms ‖c‖²
//!   out of the inner loop so one query row costs a k-wide GEMV instead
//!   of k subtract-square passes. Values differ from the exact family by
//!   rounding (≲ 1 ulp of the norm scale), so this family is used only
//!   where *every* consumer routes through it — the k-means assignment
//!   step across all strategies (`seq`, `strategies`, `distributed`,
//!   `locality` all share [`Candidates`], so their cross-strategy
//!   bit-equality tests still hold).
//!
//! **Tie-breaking.** All argmin kernels scan candidates in ascending index
//! order with a strict `<` comparison, so on exactly equal keys the lowest
//! index wins — the same documented contract as the scalar reference. The
//! decomposition preserves this for the ties that matter for determinism:
//! duplicate candidate rows produce bitwise-equal scores g(j) = ‖c_j‖² −
//! 2·x·c_j (g is a deterministic function of the candidate row), so they
//! still tie exactly and break low. Geometric ties between *distinct*
//! candidates may resolve differently from the exact form by ≤ 1 ulp of
//! rounding; the property tests bound that window (see
//! `tests/proptest_kernels.rs`).
//!
//! **Blocking scheme.** Batch kernels parallelize over [`ROW_BLOCK`]-row
//! chunks of the query matrix with rayon (one task per chunk, merged in
//! chunk order — deterministic for any pool size), and tile the candidate
//! axis in [`CAND_BLOCK`]-row cache blocks scanned through a [`LANES`]-wide
//! register micro-kernel (one accumulator chain per candidate row, shared
//! broadcast of the query element). `CAND_BLOCK` is a multiple of `LANES`,
//! so lane-group boundaries are identical whether a range is scanned whole
//! or in cache blocks — per-row results never depend on the blocking.

use std::ops::Range;

use rayon::prelude::*;

use crate::matrix::Matrix;

/// Query rows per rayon task (and per cache block) in the batch kernels.
pub const ROW_BLOCK: usize = 128;

/// Candidate rows per cache block in the batch argmin; must be a multiple
/// of [`LANES`] so lane groups align across block boundaries.
pub const CAND_BLOCK: usize = 256;

/// Width of the register micro-tile: independent accumulator chains the
/// inner loops keep in flight.
pub const LANES: usize = 8;

/// Squared Euclidean distance between two equal-length slices — the
/// scalar reference pair kernel (Θ(d), single accumulator chain).
///
/// The square root is deliberately omitted (monotone, so nearest-neighbour
/// ordering is unchanged). Every blocked kernel in the exact family
/// reproduces this function's accumulation order bit-for-bit.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Dot product with a single left-to-right accumulator chain — the
/// reference order every decomposed kernel reproduces per pair.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// ‖row‖² for every row of `m` (always `m.rows()` long, even for
/// zero-width matrices).
pub fn row_norms2(m: &Matrix) -> Vec<f64> {
    (0..m.rows()).map(|i| dot(m.row(i), m.row(i))).collect()
}

/// Visit `(i, dist2(rows.row(i), x))` for every `i` in `range`, in
/// ascending order.
///
/// [`LANES`] consecutive rows are accumulated concurrently (independent
/// chains → instruction-level parallelism), but each pair's sum runs
/// left-to-right exactly like [`dist2`], so every visited value is
/// **bit-identical** to the scalar loop. This is the k-NN hot path: the
/// caller streams the distances into a bounded heap or a sort buffer
/// without materializing anything per block.
pub fn dist2_scan(
    rows: &Matrix,
    range: Range<usize>,
    x: &[f64],
    mut visit: impl FnMut(usize, f64),
) {
    let d = rows.cols();
    debug_assert_eq!(x.len(), d);
    debug_assert!(range.end <= rows.rows());
    let flat = rows.as_slice();
    let mut i = range.start;
    while i + LANES <= range.end {
        let block = &flat[i * d..(i + LANES) * d];
        let mut acc = [0.0f64; LANES];
        for (p, &xp) in x.iter().enumerate() {
            for (l, a) in acc.iter_mut().enumerate() {
                let diff = block[l * d + p] - xp;
                *a += diff * diff;
            }
        }
        for (l, &a) in acc.iter().enumerate() {
            visit(i + l, a);
        }
        i += LANES;
    }
    for j in i..range.end {
        visit(j, dist2(rows.row(j), x));
    }
}

/// Σᵢ dist2(points.row(i), targets.row(assignments[i])) — the inertia /
/// objective kernel.
///
/// Rayon over fixed [`ROW_BLOCK`] chunks with block partials summed in
/// chunk order, so the total is deterministic for any thread-pool size;
/// each pair is the exact scalar [`dist2`].
pub fn assigned_dist2_sum(points: &Matrix, targets: &Matrix, assignments: &[u32]) -> f64 {
    assert_eq!(points.rows(), assignments.len(), "one assignment per row");
    let partials: Vec<f64> = assignments
        .par_chunks(ROW_BLOCK)
        .enumerate()
        .map(|(bi, chunk)| {
            let base = bi * ROW_BLOCK;
            let mut acc = 0.0;
            for (off, &a) in chunk.iter().enumerate() {
                acc += dist2(points.row(base + off), targets.row(a as usize));
            }
            acc
        })
        .collect();
    partials.iter().sum()
}

/// A candidate set prepared for repeated nearest-index queries: the rows
/// plus their hoisted ‖c‖² norms (the decomposed family's amortized part).
///
/// Build one per centroid set (k-means builds one per iteration) and reuse
/// it across every query row; [`Candidates::nearest`] on one row and
/// [`Candidates::assign_into`] on a whole matrix produce identical indices
/// row-for-row, regardless of blocking or thread count.
pub struct Candidates<'a> {
    rows: &'a Matrix,
    norms2: Vec<f64>,
}

impl<'a> Candidates<'a> {
    /// Prepare a candidate set (Θ(k·d): one pass for the norms).
    pub fn new(rows: &'a Matrix) -> Self {
        Self {
            norms2: row_norms2(rows),
            rows,
        }
    }

    /// Number of candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.rows()
    }

    /// Whether the candidate set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Dimensionality of the candidates.
    #[inline]
    pub fn dims(&self) -> usize {
        self.rows.cols()
    }

    /// The hoisted squared norms, one per candidate row.
    #[inline]
    pub fn norms2(&self) -> &[f64] {
        &self.norms2
    }

    /// Scan scores g(j) = ‖c_j‖² − 2·x·c_j for `j` in `range` (ascending),
    /// folding them into `state = (best_g, best_index)` with strict `<`.
    ///
    /// argmin over g equals argmin over distance because ‖x‖² is a
    /// constant offset per query row. The per-pair dot product runs
    /// left-to-right (identical to [`dot`]) in both the lane micro-kernel
    /// and the tail, so the visited score sequence — and therefore the
    /// winning index — is independent of how `range` was carved up, as
    /// long as cut points are multiples of [`LANES`].
    fn fold_scores(&self, x: &[f64], range: Range<usize>, state: &mut (f64, u32)) {
        let d = self.rows.cols();
        debug_assert_eq!(x.len(), d);
        let flat = self.rows.as_slice();
        let mut j = range.start;
        while j + LANES <= range.end {
            let block = &flat[j * d..(j + LANES) * d];
            let mut acc = [0.0f64; LANES];
            for (p, &xp) in x.iter().enumerate() {
                for (l, a) in acc.iter_mut().enumerate() {
                    *a += xp * block[l * d + p];
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                let g = self.norms2[j + l] - 2.0 * a;
                if g < state.0 {
                    *state = (g, (j + l) as u32);
                }
            }
            j += LANES;
        }
        for jj in j..range.end {
            let g = self.norms2[jj] - 2.0 * dot(x, self.rows.row(jj));
            if g < state.0 {
                *state = (g, jj as u32);
            }
        }
    }

    /// Index of the nearest candidate to `x` (ties break to the lowest
    /// index). One Θ(k·d) lane-blocked pass; norms are already hoisted.
    pub fn nearest(&self, x: &[f64]) -> u32 {
        assert!(!self.is_empty(), "no candidates");
        let mut state = (f64::INFINITY, 0u32);
        self.fold_scores(x, 0..self.len(), &mut state);
        state.1
    }

    /// Nearest index for every row of `x`, written into `out` — the fused
    /// batch argmin: rayon over [`ROW_BLOCK`] row chunks, candidates tiled
    /// in [`CAND_BLOCK`] cache blocks, no n×k distance matrix ever
    /// materialized. Row `i`'s result is bit-identical to
    /// `self.nearest(x.row(i))`.
    pub fn assign_into(&self, x: &Matrix, out: &mut [u32]) {
        assert_eq!(x.rows(), out.len(), "one output slot per row");
        assert_eq!(x.cols(), self.dims(), "dimensionality mismatch");
        assert!(!self.is_empty(), "no candidates");
        let k = self.len();
        let d = x.cols();
        let flat = x.as_slice();
        out.par_chunks_mut(ROW_BLOCK)
            .enumerate()
            .for_each(|(bi, chunk)| {
                let r0 = bi * ROW_BLOCK;
                let mut state = vec![(f64::INFINITY, 0u32); chunk.len()];
                let mut j0 = 0;
                while j0 < k {
                    let jend = (j0 + CAND_BLOCK).min(k);
                    for (ri, st) in state.iter_mut().enumerate() {
                        let row = &flat[(r0 + ri) * d..(r0 + ri + 1) * d];
                        self.fold_scores(row, j0..jend, st);
                    }
                    j0 = jend;
                }
                for (slot, st) in chunk.iter_mut().zip(&state) {
                    *slot = st.1;
                }
            });
    }

    /// Convenience allocating form of [`Candidates::assign_into`].
    pub fn assign(&self, x: &Matrix) -> Vec<u32> {
        let mut out = vec![0u32; x.rows()];
        self.assign_into(x, &mut out);
        out
    }

    /// Decomposed squared distances of one query row to candidates in
    /// `range`, written to `out[j - range.start]` — clamped at zero
    /// (cancellation can produce tiny negatives).
    fn dists2_range_into(&self, x: &[f64], xnorm2: f64, range: Range<usize>, out: &mut [f64]) {
        debug_assert_eq!(out.len(), range.len());
        let d = self.rows.cols();
        let flat = self.rows.as_slice();
        let mut j = range.start;
        while j + LANES <= range.end {
            let block = &flat[j * d..(j + LANES) * d];
            let mut acc = [0.0f64; LANES];
            for (p, &xp) in x.iter().enumerate() {
                for (l, a) in acc.iter_mut().enumerate() {
                    *a += xp * block[l * d + p];
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                let d2 = xnorm2 + (self.norms2[j + l] - 2.0 * a);
                out[j + l - range.start] = d2.max(0.0);
            }
            j += LANES;
        }
        for jj in j..range.end {
            let d2 = xnorm2 + (self.norms2[jj] - 2.0 * dot(x, self.rows.row(jj)));
            out[jj - range.start] = d2.max(0.0);
        }
    }
}

/// Nearest-candidate index per row of `x` — the fused batch argmin over
/// the decomposition (see [`Candidates`]). Never materializes the n×k
/// distance matrix.
pub fn argmin_dist2(x: &Matrix, c: &Matrix) -> Vec<u32> {
    Candidates::new(c).assign(x)
}

/// Scalar reference for [`argmin_dist2`]: per-row, per-candidate
/// [`dist2`] with strict `<` in ascending index order. Kept (and exported)
/// purely for equivalence testing and the flat-vs-blocked ablation bench.
pub fn argmin_dist2_ref(x: &Matrix, c: &Matrix) -> Vec<u32> {
    assert_eq!(x.cols(), c.cols(), "dimensionality mismatch");
    assert!(!c.is_empty(), "no candidates");
    (0..x.rows())
        .map(|i| {
            let row = x.row(i);
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for j in 0..c.rows() {
                let d2 = dist2(row, c.row(j));
                if d2 < best_d {
                    best_d = d2;
                    best = j as u32;
                }
            }
            best
        })
        .collect()
}

/// Full n×k matrix of squared distances between the rows of `x` and the
/// rows of `c`, via the ‖x‖² − 2x·c + ‖c‖² decomposition: rayon over row
/// blocks, candidates in cache blocks, entries clamped at zero.
pub fn pairwise_dist2(x: &Matrix, c: &Matrix) -> Matrix {
    assert_eq!(x.cols(), c.cols(), "dimensionality mismatch");
    let n = x.rows();
    let k = c.rows();
    if n == 0 || k == 0 {
        return Matrix::zeros(n, k);
    }
    let cand = Candidates::new(c);
    let xnorms = row_norms2(x);
    let d = x.cols();
    let flat = x.as_slice();
    let mut data = vec![0.0f64; n * k];
    data.par_chunks_mut(ROW_BLOCK * k)
        .enumerate()
        .for_each(|(bi, chunk)| {
            let r0 = bi * ROW_BLOCK;
            let mut j0 = 0;
            while j0 < k {
                let jend = (j0 + CAND_BLOCK).min(k);
                for (ri, orow) in chunk.chunks_mut(k).enumerate() {
                    let i = r0 + ri;
                    let row = &flat[i * d..(i + 1) * d];
                    cand.dists2_range_into(row, xnorms[i], j0..jend, &mut orow[j0..jend]);
                }
                j0 = jend;
            }
        });
    Matrix::from_vec(n, k, data)
}

/// Scalar reference for [`pairwise_dist2`] (exact Σ(x−y)² entries).
pub fn pairwise_dist2_ref(x: &Matrix, c: &Matrix) -> Matrix {
    assert_eq!(x.cols(), c.cols(), "dimensionality mismatch");
    let mut out = Matrix::zeros(x.rows(), c.rows());
    for i in 0..x.rows() {
        for j in 0..c.rows() {
            out.set(i, j, dist2(x.row(i), c.row(j)));
        }
    }
    out
}

/// Dense GEMV, `out = W·x (+ bias)`: `w` is `rows × cols` row-major.
///
/// Blocked over [`LANES`] output rows with independent accumulator
/// chains; each output element is `bias[o]` followed by the products in
/// ascending column order — bit-identical to the naïve two-loop version
/// (and to what `ensemble::nn` computed before it was rewired here).
pub fn matvec(
    w: &[f64],
    rows: usize,
    cols: usize,
    x: &[f64],
    bias: Option<&[f64]>,
    out: &mut Vec<f64>,
) {
    assert_eq!(w.len(), rows * cols, "weight shape mismatch");
    assert_eq!(x.len(), cols, "input width mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), rows, "bias width mismatch");
    }
    out.clear();
    out.resize(rows, 0.0);
    matvec_into(w, rows, cols, x, bias, out);
}

/// The non-allocating core of [`matvec`]; `out` must be `rows` long.
fn matvec_into(
    w: &[f64],
    rows: usize,
    cols: usize,
    x: &[f64],
    bias: Option<&[f64]>,
    out: &mut [f64],
) {
    debug_assert_eq!(out.len(), rows);
    let mut o = 0;
    while o + LANES <= rows {
        let block = &w[o * cols..(o + LANES) * cols];
        let mut acc = [0.0f64; LANES];
        if let Some(b) = bias {
            acc.copy_from_slice(&b[o..o + LANES]);
        }
        for (p, &xp) in x.iter().enumerate() {
            for (l, a) in acc.iter_mut().enumerate() {
                *a += block[l * cols + p] * xp;
            }
        }
        out[o..o + LANES].copy_from_slice(&acc);
        o += LANES;
    }
    for oo in o..rows {
        let row = &w[oo * cols..(oo + 1) * cols];
        let mut a = bias.map_or(0.0, |b| b[oo]);
        for (wi, xi) in row.iter().zip(x) {
            a += wi * xi;
        }
        out[oo] = a;
    }
}

/// Transposed GEMV, `out = Wᵀ·y`: accumulates row contributions in
/// ascending row order — bit-identical to the naïve nested loop the NN
/// backward pass used (`out[p] += y[o]·w[o][p]`, `o` outer).
pub fn matvec_t(w: &[f64], rows: usize, cols: usize, y: &[f64], out: &mut Vec<f64>) {
    assert_eq!(w.len(), rows * cols, "weight shape mismatch");
    assert_eq!(y.len(), rows, "input width mismatch");
    out.clear();
    out.resize(cols, 0.0);
    for (o, &yo) in y.iter().enumerate() {
        let row = &w[o * cols..(o + 1) * cols];
        for (op, wi) in out.iter_mut().zip(row) {
            *op += yo * wi;
        }
    }
}

/// Dense GEMM against a transposed right operand, `A·Wᵀ (+ bias)`:
/// `a` is n×d, `w` is `w_rows × d` row-major, result is n×`w_rows`.
///
/// This is the batch NN forward step (activations × weightsᵀ). Rayon over
/// [`ROW_BLOCK`] row chunks; each output element reproduces [`matvec`]'s
/// accumulation order exactly, so a batched forward pass is bit-identical
/// to n single-row passes.
pub fn matmul_nt(a: &Matrix, w: &[f64], w_rows: usize, bias: Option<&[f64]>) -> Matrix {
    let n = a.rows();
    let d = a.cols();
    assert_eq!(w.len(), w_rows * d, "weight shape mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), w_rows, "bias width mismatch");
    }
    if n == 0 || w_rows == 0 {
        return Matrix::zeros(n, w_rows);
    }
    let flat = a.as_slice();
    let mut data = vec![0.0f64; n * w_rows];
    data.par_chunks_mut(ROW_BLOCK * w_rows)
        .enumerate()
        .for_each(|(bi, chunk)| {
            let r0 = bi * ROW_BLOCK;
            for (ri, orow) in chunk.chunks_mut(w_rows).enumerate() {
                let i = r0 + ri;
                matvec_into(w, w_rows, d, &flat[i * d..(i + 1) * d], bias, orow);
            }
        });
    Matrix::from_vec(n, w_rows, data)
}

/// Scalar reference for [`matmul_nt`] (same accumulation order, no
/// blocking, no rayon) — for equivalence tests and the ablation bench.
pub fn matmul_nt_ref(a: &Matrix, w: &[f64], w_rows: usize, bias: Option<&[f64]>) -> Matrix {
    let n = a.rows();
    let d = a.cols();
    assert_eq!(w.len(), w_rows * d, "weight shape mismatch");
    let mut out = Matrix::zeros(n, w_rows);
    for i in 0..n {
        for o in 0..w_rows {
            let mut acc = bias.map_or(0.0, |b| b[o]);
            for (wi, xi) in w[o * d..(o + 1) * d].iter().zip(a.row(i)) {
                acc += wi * xi;
            }
            out.set(i, o, acc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::gaussian_blobs;

    fn toy(n: usize, d: usize, seed: u64) -> Matrix {
        // Deterministic continuous data without pulling in a PRNG dep here.
        let mut v = Vec::with_capacity(n * d);
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for _ in 0..n * d {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(((s >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0);
        }
        Matrix::from_vec(n, d, v)
    }

    #[test]
    fn dist2_matches_hand_values() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[1.0], &[1.0]), 0.0);
        assert_eq!(dist2(&[], &[]), 0.0);
    }

    #[test]
    fn dist2_scan_bit_identical_to_scalar() {
        // Sizes straddle the LANES boundary, including 0, 1 and non-multiples.
        for n in [0usize, 1, 7, 8, 9, 31] {
            for d in [0usize, 1, 3, 16] {
                let rows = toy(n, d, (n * 31 + d) as u64);
                let x = toy(1, d, 99);
                let mut seen = Vec::new();
                dist2_scan(&rows, 0..n, x.row(0), |i, v| seen.push((i, v)));
                assert_eq!(seen.len(), n);
                for (i, v) in seen {
                    // Bitwise equality, not approximate.
                    assert_eq!(v, dist2(rows.row(i), x.row(0)), "n={n} d={d} i={i}");
                }
            }
        }
    }

    #[test]
    fn dist2_scan_subrange_matches_full() {
        let rows = toy(30, 5, 3);
        let x = toy(1, 5, 4);
        let mut full = vec![0.0; 30];
        dist2_scan(&rows, 0..30, x.row(0), |i, v| full[i] = v);
        let mut part = Vec::new();
        dist2_scan(&rows, 11..23, x.row(0), |i, v| part.push((i, v)));
        for (i, v) in part {
            assert_eq!(v, full[i]);
        }
    }

    #[test]
    fn batch_argmin_matches_single_row_nearest() {
        let x = toy(ROW_BLOCK + 37, 6, 1); // spans multiple row blocks
        let c = toy(CAND_BLOCK + LANES + 3, 6, 2); // spans cand blocks + tail
        let cand = Candidates::new(&c);
        let batch = cand.assign(&x);
        for (i, &got) in batch.iter().enumerate() {
            assert_eq!(got, cand.nearest(x.row(i)), "row {i}");
        }
    }

    #[test]
    fn argmin_agrees_with_scalar_reference_on_continuous_data() {
        let x = toy(200, 8, 5);
        let c = toy(33, 8, 6);
        assert_eq!(argmin_dist2(&x, &c), argmin_dist2_ref(&x, &c));
    }

    #[test]
    fn argmin_tie_breaks_to_lowest_index_on_duplicates() {
        // Candidate rows duplicated: the decomposed score g is a
        // deterministic function of the row, so copies tie exactly and
        // the first copy must win.
        let base = toy(9, 4, 7);
        let mut dup_rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..base.rows() {
            dup_rows.push(base.row(i).to_vec());
        }
        for i in 0..base.rows() {
            dup_rows.push(base.row(i).to_vec());
        }
        let c = Matrix::from_rows(&dup_rows);
        let x = toy(50, 4, 8);
        for &a in &argmin_dist2(&x, &c) {
            assert!(
                (a as usize) < base.rows(),
                "must pick the first copy, got {a}"
            );
        }
    }

    #[test]
    fn argmin_symmetric_exact_tie() {
        let c = Matrix::from_rows(&[vec![-1.0], vec![1.0]]);
        let x = Matrix::from_rows(&[vec![0.0]]);
        assert_eq!(argmin_dist2(&x, &c), vec![0]);
    }

    #[test]
    fn pairwise_close_to_reference() {
        let x = toy(40, 5, 11);
        let c = toy(19, 5, 12);
        let blocked = pairwise_dist2(&x, &c);
        let exact = pairwise_dist2_ref(&x, &c);
        for i in 0..x.rows() {
            for j in 0..c.rows() {
                let (a, b) = (blocked.get(i, j), exact.get(i, j));
                let scale = 1.0 + dot(x.row(i), x.row(i)) + dot(c.row(j), c.row(j));
                assert!((a - b).abs() <= 1e-9 * scale, "({i},{j}): {a} vs {b}");
                assert!(a >= 0.0);
            }
        }
    }

    #[test]
    fn pairwise_degenerate_shapes() {
        assert_eq!(
            pairwise_dist2(&Matrix::zeros(0, 3), &toy(4, 3, 1)).rows(),
            0
        );
        let nk0 = pairwise_dist2(&toy(4, 3, 1), &Matrix::zeros(0, 3));
        assert_eq!((nk0.rows(), nk0.cols()), (4, 0));
        // d = 0: all distances are zero.
        let z = pairwise_dist2(&Matrix::zeros(3, 0), &Matrix::zeros(2, 0));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn assigned_sum_exact_on_exact_inputs() {
        let p = Matrix::from_rows(&[vec![1.0], vec![4.0]]);
        let c = Matrix::from_rows(&[vec![0.0]]);
        assert_eq!(assigned_dist2_sum(&p, &c, &[0, 0]), 17.0);
        assert_eq!(assigned_dist2_sum(&p, &p, &[0, 1]), 0.0);
    }

    #[test]
    fn matvec_bit_identical_to_naive() {
        for rows in [0usize, 1, 5, 8, 13] {
            for cols in [0usize, 1, 4, 9] {
                let w = toy(rows, cols.max(1), (rows + cols) as u64);
                let wflat = &w.as_slice()[..rows * cols];
                let x = toy(1, cols, 21);
                let b = toy(1, rows, 22);
                let mut out = Vec::new();
                matvec(wflat, rows, cols, x.row(0), Some(b.row(0)), &mut out);
                for o in 0..rows {
                    let mut acc = b.get(0, o);
                    for p in 0..cols {
                        acc += wflat[o * cols + p] * x.get(0, p);
                    }
                    assert_eq!(out[o], acc, "rows={rows} cols={cols} o={o}");
                }
            }
        }
    }

    #[test]
    fn matvec_t_transposes() {
        // W = [[1,2],[3,4],[5,6]] (3×2), y = [1,10,100] → Wᵀy = [531, 642].
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = Vec::new();
        matvec_t(&w, 3, 2, &[1.0, 10.0, 100.0], &mut out);
        assert_eq!(out, vec![531.0, 642.0]);
    }

    #[test]
    fn matmul_bit_identical_to_reference() {
        let a = toy(ROW_BLOCK + 9, 7, 31); // spans row blocks
        let w = toy(11, 7, 32);
        let b = toy(1, 11, 33);
        let blocked = matmul_nt(&a, w.as_slice(), 11, Some(b.row(0)));
        let naive = matmul_nt_ref(&a, w.as_slice(), 11, Some(b.row(0)));
        assert_eq!(blocked, naive, "bit-identical GEMM required");
        let nb = matmul_nt(&a, w.as_slice(), 11, None);
        assert_eq!(nb, matmul_nt_ref(&a, w.as_slice(), 11, None));
    }

    #[test]
    fn matmul_matches_row_matvec() {
        let a = toy(17, 4, 41);
        let w = toy(6, 4, 42);
        let b = toy(1, 6, 43);
        let full = matmul_nt(&a, w.as_slice(), 6, Some(b.row(0)));
        let mut out = Vec::new();
        for i in 0..a.rows() {
            matvec(w.as_slice(), 6, 4, a.row(i), Some(b.row(0)), &mut out);
            assert_eq!(full.row(i), &out[..], "row {i}");
        }
    }

    #[test]
    fn kernels_on_blob_data_match_references() {
        // End-to-end sanity on realistic data shapes.
        let data = gaussian_blobs(500, 6, 4, 1.0, 77);
        let c = gaussian_blobs(64, 6, 4, 1.0, 78);
        assert_eq!(
            argmin_dist2(&data.points, &c.points),
            argmin_dist2_ref(&data.points, &c.points)
        );
    }
}
