//! Synthetic classification / clustering point clouds.
//!
//! Replaces the datahub.io instances (§2) and the course-provided point
//! clouds (§3). Every generator takes explicit size/shape parameters and a
//! seed; the default experiment configurations mirror the paper's quoted
//! sizes (e.g. the 40-dimensional, 5 000-point k-NN test case).

use peachy_prng::{Lcg64, Normal, RandomStream, UniformF64};

use crate::matrix::{LabeledDataset, Matrix};

/// Isotropic Gaussian blobs: `k` class centres placed uniformly in
/// `[-10, 10]^d`, `n` points split round-robin across classes with noise
/// `spread` around each centre.
///
/// This is the workhorse dataset: well-separated for small `spread` (k-NN
/// accuracy ≈ 1), overlapping for large `spread`.
pub fn gaussian_blobs(n: usize, d: usize, k: u32, spread: f64, seed: u64) -> LabeledDataset {
    assert!(n > 0 && d > 0 && k > 0);
    let mut rng = Lcg64::seed_from(seed);
    let centre_dist = UniformF64::new(-10.0, 10.0);
    let centres: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..d).map(|_| centre_dist.sample(&mut rng)).collect())
        .collect();
    let mut noise = Normal::new(0.0, spread);
    let mut points = Matrix::zeros(0, 0);
    let mut labels = Vec::with_capacity(n);
    let mut row = vec![0.0; d];
    for i in 0..n {
        let class = (i as u32) % k;
        let centre = &centres[class as usize];
        for (j, c) in centre.iter().enumerate() {
            row[j] = c + noise.sample(&mut rng);
        }
        points.push_row(&row);
        labels.push(class);
    }
    LabeledDataset::new(points, labels, k)
}

/// Concentric rings in 2-D: class `c` lies on a circle of radius `c + 1`
/// with angular uniformity and radial noise. Not linearly separable — a
/// classic k-NN showcase.
pub fn concentric_rings(n: usize, k: u32, radial_noise: f64, seed: u64) -> LabeledDataset {
    assert!(n > 0 && k > 0);
    let mut rng = Lcg64::seed_from(seed);
    let angle = UniformF64::new(0.0, std::f64::consts::TAU);
    let mut noise = Normal::new(0.0, radial_noise);
    let mut points = Matrix::zeros(0, 0);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = (i as u32) % k;
        let r = (class as f64 + 1.0) + noise.sample(&mut rng);
        let t = angle.sample(&mut rng);
        points.push_row(&[r * t.cos(), r * t.sin()]);
        labels.push(class);
    }
    LabeledDataset::new(points, labels, k)
}

/// The two-moons dataset: two interleaving half-circles with Gaussian
/// noise. Binary, 2-D.
pub fn two_moons(n: usize, noise_sd: f64, seed: u64) -> LabeledDataset {
    assert!(n > 0);
    let mut rng = Lcg64::seed_from(seed);
    let angle = UniformF64::new(0.0, std::f64::consts::PI);
    let mut noise = Normal::new(0.0, noise_sd);
    let mut points = Matrix::zeros(0, 0);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let t = angle.sample(&mut rng);
        let (x, y, class) = if i % 2 == 0 {
            (t.cos(), t.sin(), 0u32)
        } else {
            (1.0 - t.cos(), 0.5 - t.sin(), 1u32)
        };
        points.push_row(&[x + noise.sample(&mut rng), y + noise.sample(&mut rng)]);
        labels.push(class);
    }
    LabeledDataset::new(points, labels, 2)
}

/// Uniform unlabelled cloud in `[lo, hi]^d` — for clustering stress tests
/// where no structure exists.
pub fn uniform_cloud(n: usize, d: usize, lo: f64, hi: f64, seed: u64) -> Matrix {
    assert!(n > 0 && d > 0);
    let mut rng = Lcg64::seed_from(seed);
    let dist = UniformF64::new(lo, hi);
    let mut points = Matrix::zeros(0, 0);
    let mut row = vec![0.0; d];
    for _ in 0..n {
        for v in row.iter_mut() {
            *v = dist.sample(&mut rng);
        }
        points.push_row(&row);
    }
    points
}

/// The paper's §2 k-NN benchmark instance: 40-dimensional blobs, 5 000
/// database points and 5 000 queries ("takes about 5 seconds sequentially"
/// in the original C++). Database and queries are drawn from one generation
/// (same class centres) and split, so classification accuracy is
/// meaningful. Returns `(database, queries)`.
pub fn knn_paper_instance(seed: u64) -> (LabeledDataset, LabeledDataset) {
    let all = gaussian_blobs(10_000, 40, 8, 3.0, seed);
    let db = all.select(&(0..5_000).collect::<Vec<_>>());
    let queries = all.select(&(5_000..10_000).collect::<Vec<_>>());
    (db, queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::squared_distance;

    #[test]
    fn blobs_shape_and_balance() {
        let ds = gaussian_blobs(300, 5, 3, 1.0, 1);
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.dims(), 5);
        assert_eq!(ds.classes, 3);
        assert_eq!(ds.class_counts(), vec![100, 100, 100]);
    }

    #[test]
    fn blobs_deterministic() {
        let a = gaussian_blobs(50, 3, 2, 1.0, 42);
        let b = gaussian_blobs(50, 3, 2, 1.0, 42);
        assert_eq!(a, b);
        let c = gaussian_blobs(50, 3, 2, 1.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn tight_blobs_cluster_around_centres() {
        // With tiny spread, same-class points are much closer to each other
        // than to other-class points.
        let ds = gaussian_blobs(100, 4, 2, 0.01, 7);
        let first_c0 = ds.labels.iter().position(|&l| l == 0).unwrap();
        let first_c1 = ds.labels.iter().position(|&l| l == 1).unwrap();
        for i in 0..ds.len() {
            let d0 = squared_distance(ds.points.row(i), ds.points.row(first_c0));
            let d1 = squared_distance(ds.points.row(i), ds.points.row(first_c1));
            if ds.labels[i] == 0 {
                assert!(d0 < d1);
            } else {
                assert!(d1 < d0);
            }
        }
    }

    #[test]
    fn rings_have_correct_radii() {
        let ds = concentric_rings(200, 2, 0.0, 3);
        for i in 0..ds.len() {
            let p = ds.points.row(i);
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            let expect = ds.labels[i] as f64 + 1.0;
            assert!((r - expect).abs() < 1e-9, "r={r} expect={expect}");
        }
    }

    #[test]
    fn moons_binary_and_2d() {
        let ds = two_moons(100, 0.05, 5);
        assert_eq!(ds.classes, 2);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.class_counts(), vec![50, 50]);
    }

    #[test]
    fn uniform_cloud_in_bounds() {
        let m = uniform_cloud(500, 3, -2.0, 5.0, 9);
        for row in m.iter_rows() {
            for &v in row {
                assert!((-2.0..5.0).contains(&v));
            }
        }
    }

    #[test]
    fn paper_instance_dimensions() {
        let (db, q) = knn_paper_instance(1);
        assert_eq!(db.len(), 5_000);
        assert_eq!(q.len(), 5_000);
        assert_eq!(db.dims(), 40);
        assert_eq!(q.dims(), 40);
    }
}
