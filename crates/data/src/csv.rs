//! Minimal CSV reading and writing.
//!
//! The assignments' first step is always ingestion: §2's "parse the database
//! and queries from a CSV file", §4's four NYC open-data CSVs. This module
//! is a small, dependency-free reader/writer sufficient for numeric tables
//! with a label column, plus a generic string-record reader used by the
//! pipeline's cleaning stage (which must cope with dirty rows).

use std::fmt;
use std::num::ParseFloatError;

use crate::matrix::{LabeledDataset, Matrix};

/// Errors arising while parsing CSV content.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A row had a different number of fields than the first row.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Field count of the first row.
        expected: usize,
        /// Field count of the offending row.
        got: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 0-based field index.
        field: usize,
        /// The parse error.
        source: ParseFloatError,
    },
    /// A label field was not a non-negative integer.
    BadLabel {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The input had no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::RaggedRow {
                line,
                expected,
                got,
            } => {
                write!(f, "line {line}: expected {expected} fields, got {got}")
            }
            CsvError::BadNumber {
                line,
                field,
                source,
            } => {
                write!(f, "line {line}, field {field}: {source}")
            }
            CsvError::BadLabel { line, text } => {
                write!(f, "line {line}: bad label {text:?}")
            }
            CsvError::Empty => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Split one CSV line into trimmed fields (no quoting support — the
/// assignments' data is plain numeric/word CSV).
fn split_line(line: &str) -> Vec<&str> {
    line.split(',').map(str::trim).collect()
}

/// Parse CSV text into string records, skipping blank lines. If
/// `has_header` the first non-blank line is returned separately.
pub fn read_records(text: &str, has_header: bool) -> (Option<Vec<String>>, Vec<Vec<String>>) {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = if has_header {
        lines
            .next()
            .map(|l| split_line(l).into_iter().map(String::from).collect())
    } else {
        None
    };
    let records = lines
        .map(|l| split_line(l).into_iter().map(String::from).collect())
        .collect();
    (header, records)
}

/// Parse a pure-numeric CSV (no header) into a [`Matrix`].
pub fn read_matrix(text: &str) -> Result<Matrix, CsvError> {
    let mut m = Matrix::zeros(0, 0);
    let mut width: Option<usize> = None;
    let mut row_buf: Vec<f64> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(line);
        if let Some(w) = width {
            if fields.len() != w {
                return Err(CsvError::RaggedRow {
                    line: lineno + 1,
                    expected: w,
                    got: fields.len(),
                });
            }
        } else {
            width = Some(fields.len());
        }
        row_buf.clear();
        for (i, field) in fields.iter().enumerate() {
            let v: f64 = field.parse().map_err(|source| CsvError::BadNumber {
                line: lineno + 1,
                field: i,
                source,
            })?;
            row_buf.push(v);
        }
        m.push_row(&row_buf);
    }
    if m.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(m)
}

/// Parse a labelled CSV: all columns but the last are features, the last is
/// an integer class label (the datahub.io layout §2 describes).
pub fn read_labeled(text: &str) -> Result<LabeledDataset, CsvError> {
    let full = read_matrix(text)?;
    let d = full.cols();
    assert!(
        d >= 2,
        "need at least one feature column plus the label column"
    );
    let mut points = Matrix::zeros(0, 0);
    let mut labels = Vec::with_capacity(full.rows());
    let mut max_label = 0u32;
    for (lineno, row) in full.iter_rows().enumerate() {
        let raw = row[d - 1];
        if raw < 0.0 || raw.fract() != 0.0 || raw > u32::MAX as f64 {
            return Err(CsvError::BadLabel {
                line: lineno + 1,
                text: raw.to_string(),
            });
        }
        let label = raw as u32;
        max_label = max_label.max(label);
        labels.push(label);
        points.push_row(&row[..d - 1]);
    }
    Ok(LabeledDataset::new(points, labels, max_label + 1))
}

/// Serialize a matrix as CSV text.
pub fn write_matrix(m: &Matrix) -> String {
    let mut out = String::with_capacity(m.rows() * m.cols() * 8);
    for row in m.iter_rows() {
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

/// Serialize a labelled dataset as CSV (features…, label).
pub fn write_labeled(ds: &LabeledDataset) -> String {
    let mut out = String::new();
    for (row, &label) in ds.points.iter_rows().zip(&ds.labels) {
        for v in row {
            out.push_str(&format!("{v},"));
        }
        out.push_str(&format!("{label}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.5], vec![-3.0, 0.125]]);
        let text = write_matrix(&m);
        let back = read_matrix(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn labeled_roundtrip() {
        let ds = LabeledDataset::new(
            Matrix::from_rows(&[vec![0.5, 1.5], vec![2.5, 3.5]]),
            vec![1, 0],
            2,
        );
        let text = write_labeled(&ds);
        let back = read_labeled(&text).unwrap();
        assert_eq!(ds.points, back.points);
        assert_eq!(ds.labels, back.labels);
    }

    #[test]
    fn blank_lines_skipped() {
        let m = read_matrix("1,2\n\n3,4\n\n").unwrap();
        assert_eq!(m.rows(), 2);
    }

    #[test]
    fn whitespace_trimmed() {
        let m = read_matrix(" 1 , 2 \n 3 ,4\n").unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn ragged_row_reported_with_line() {
        let err = read_matrix("1,2\n3\n").unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRow {
                line: 2,
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn bad_number_reported() {
        let err = read_matrix("1,zebra\n").unwrap_err();
        match err {
            CsvError::BadNumber {
                line: 1, field: 1, ..
            } => {}
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn bad_label_rejected() {
        let err = read_labeled("1.0,2.5\n").unwrap_err();
        match err {
            CsvError::BadLabel { line: 1, .. } => {}
            other => panic!("wrong error: {other:?}"),
        }
        let err = read_labeled("1.0,-1\n").unwrap_err();
        assert!(matches!(err, CsvError::BadLabel { .. }));
    }

    #[test]
    fn empty_input_rejected() {
        assert_eq!(read_matrix(""), Err(CsvError::Empty));
        assert_eq!(read_matrix("\n  \n"), Err(CsvError::Empty));
    }

    #[test]
    fn records_with_header() {
        let (header, recs) = read_records("a,b\n1,2\n3,4\n", true);
        assert_eq!(header, Some(vec!["a".into(), "b".into()]));
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["3", "4"]);
    }

    #[test]
    fn records_without_header() {
        let (header, recs) = read_records("1,2\n", false);
        assert_eq!(header, None);
        assert_eq!(recs.len(), 1);
    }
}
