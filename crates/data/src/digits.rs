//! Procedural handwritten-ish digits: the MNIST substitute for §7.
//!
//! The hyper-parameter-optimization assignment trains a small fully
//! connected network on MNIST and probes it with an ambiguous digit (the
//! paper's Figure 4 shows a blurry "4" that even humans find confusing).
//! This module renders 28×28 grey-scale digits from seven-segment-style
//! stroke skeletons with per-sample elastic jitter, affine distortion and
//! pixel noise — enough variation that a dense net must genuinely
//! generalize — plus a *blend* knob that interpolates two digits to create
//! controlled ambiguity for the uncertainty experiment.

use peachy_prng::{Lcg64, Normal, RandomStream, UniformF64};

use crate::matrix::{LabeledDataset, Matrix};

/// Image side length (MNIST-compatible 28×28).
pub const SIDE: usize = 28;
/// Pixels per image.
pub const PIXELS: usize = SIDE * SIDE;

/// Key points of the segment grid in the unit square (x, y), y downward.
const TL: (f64, f64) = (0.25, 0.12);
const TR: (f64, f64) = (0.75, 0.12);
const ML: (f64, f64) = (0.25, 0.50);
const MR: (f64, f64) = (0.75, 0.50);
const BL: (f64, f64) = (0.25, 0.88);
const BR: (f64, f64) = (0.75, 0.88);

/// Strokes (pairs of key-point indices into [TL, TR, ML, MR, BL, BR]) for
/// each digit, seven-segment style: A=top, B=upper-right, C=lower-right,
/// D=bottom, E=lower-left, F=upper-left, G=middle.
const POINTS: [(f64, f64); 6] = [TL, TR, ML, MR, BL, BR];

fn segments_for(digit: u32) -> &'static [(usize, usize)] {
    // Index pairs into POINTS: 0=TL 1=TR 2=ML 3=MR 4=BL 5=BR
    const A: (usize, usize) = (0, 1); // top
    const B: (usize, usize) = (1, 3); // upper right
    const C: (usize, usize) = (3, 5); // lower right
    const D: (usize, usize) = (4, 5); // bottom
    const E: (usize, usize) = (2, 4); // lower left
    const F: (usize, usize) = (0, 2); // upper left
    const G: (usize, usize) = (2, 3); // middle
    match digit {
        0 => &[A, B, C, D, E, F],
        1 => &[B, C],
        2 => &[A, B, G, E, D],
        3 => &[A, B, G, C, D],
        4 => &[F, G, B, C],
        5 => &[A, F, G, C, D],
        6 => &[A, F, G, C, D, E],
        7 => &[A, B, C],
        8 => &[A, B, C, D, E, F, G],
        9 => &[A, B, C, D, F, G],
        _ => panic!("digit must be 0..=9, got {digit}"),
    }
}

/// Distance from point `p` to segment `(a, b)`.
fn seg_distance(p: (f64, f64), a: (f64, f64), b: (f64, f64)) -> f64 {
    let (px, py) = p;
    let (ax, ay) = a;
    let (bx, by) = b;
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    let t = if len2 == 0.0 {
        0.0
    } else {
        (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
    };
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

/// Rendering style parameters; randomized per sample by [`DigitRenderer`].
#[derive(Debug, Clone, Copy)]
pub struct Style {
    /// Stroke half-width in unit-square units.
    pub stroke: f64,
    /// Anti-alias falloff width.
    pub falloff: f64,
    /// Rotation in radians.
    pub rotation: f64,
    /// Isotropic scale.
    pub scale: f64,
    /// Translation (x, y).
    pub shift: (f64, f64),
    /// Per-key-point jitter applied before rendering.
    pub jitter: [(f64, f64); 6],
    /// Additive Gaussian pixel noise standard deviation.
    pub pixel_noise: f64,
}

impl Style {
    /// A clean, centred, noise-free style (used for the "low uncertainty"
    /// probe of Figure 4).
    pub fn clean() -> Self {
        Self {
            stroke: 0.055,
            falloff: 0.03,
            rotation: 0.0,
            scale: 1.0,
            shift: (0.0, 0.0),
            jitter: [(0.0, 0.0); 6],
            pixel_noise: 0.0,
        }
    }
}

/// Render a single digit (or a blend of two) to `PIXELS` grey values in
/// `[0, 1]`.
pub fn render(digit: u32, style: &Style) -> Vec<f64> {
    render_blend(digit, digit, 0.0, style)
}

/// Render an interpolation between `digit_a` and `digit_b`.
///
/// `blend = 0` is pure `digit_a`, `blend = 1` pure `digit_b`; intermediate
/// values superimpose the two skeletons with complementary intensities,
/// producing the genuinely ambiguous gliffs of the Figure-4 experiment.
pub fn render_blend(digit_a: u32, digit_b: u32, blend: f64, style: &Style) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&blend), "blend must be in [0,1]");
    let mut points = POINTS;
    for (p, j) in points.iter_mut().zip(&style.jitter) {
        p.0 += j.0;
        p.1 += j.1;
    }
    // Pre-transform: rotate/scale about the centre, then shift.
    let (sin, cos) = style.rotation.sin_cos();
    let transform = |p: (f64, f64)| -> (f64, f64) {
        let (x, y) = (p.0 - 0.5, p.1 - 0.5);
        let (x, y) = (x * cos - y * sin, x * sin + y * cos);
        (
            x * style.scale + 0.5 + style.shift.0,
            y * style.scale + 0.5 + style.shift.1,
        )
    };
    let place = |(i, j): (usize, usize)| (transform(points[i]), transform(points[j]));
    let segs_a: Vec<_> = segments_for(digit_a).iter().map(|&s| place(s)).collect();
    let segs_b: Vec<_> = segments_for(digit_b).iter().map(|&s| place(s)).collect();

    type Seg = ((f64, f64), (f64, f64));
    let mut img = vec![0.0f64; PIXELS];
    let ink = |segs: &[Seg], p: (f64, f64)| -> f64 {
        let mut best = f64::INFINITY;
        for &(a, b) in segs {
            best = best.min(seg_distance(p, a, b));
        }
        // 1 inside the stroke, linear falloff outside.
        (1.0 - (best - style.stroke) / style.falloff).clamp(0.0, 1.0)
    };
    for (idx, v) in img.iter_mut().enumerate() {
        let px = ((idx % SIDE) as f64 + 0.5) / SIDE as f64;
        let py = ((idx / SIDE) as f64 + 0.5) / SIDE as f64;
        let a = ink(&segs_a, (px, py));
        let b = ink(&segs_b, (px, py));
        *v = ((1.0 - blend) * a + blend * b).clamp(0.0, 1.0);
    }
    img
}

/// Randomized digit renderer: draws style parameters per sample.
pub struct DigitRenderer {
    rng: Lcg64,
    noise: Normal,
}

impl DigitRenderer {
    /// Create with a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Lcg64::seed_from(seed),
            noise: Normal::standard(),
        }
    }

    /// Draw a random style: small rotation, scale, shift, per-point jitter
    /// and pixel noise.
    pub fn random_style(&mut self, pixel_noise: f64) -> Style {
        let rot = UniformF64::new(-0.18, 0.18);
        let scale = UniformF64::new(0.82, 1.08);
        let shift = UniformF64::new(-0.06, 0.06);
        let jit = UniformF64::new(-0.035, 0.035);
        let stroke = UniformF64::new(0.045, 0.075);
        let mut jitter = [(0.0, 0.0); 6];
        for j in jitter.iter_mut() {
            *j = (jit.sample(&mut self.rng), jit.sample(&mut self.rng));
        }
        Style {
            stroke: stroke.sample(&mut self.rng),
            falloff: 0.03,
            rotation: rot.sample(&mut self.rng),
            scale: scale.sample(&mut self.rng),
            shift: (shift.sample(&mut self.rng), shift.sample(&mut self.rng)),
            jitter,
            pixel_noise,
        }
    }

    /// Render one sample of `digit` with a freshly-drawn style.
    pub fn sample(&mut self, digit: u32, pixel_noise: f64) -> Vec<f64> {
        let style = self.random_style(pixel_noise);
        let mut img = render(digit, &style);
        if pixel_noise > 0.0 {
            for v in img.iter_mut() {
                *v = (*v + self.noise.sample(&mut self.rng) * pixel_noise).clamp(0.0, 1.0);
            }
        }
        img
    }
}

/// Generate a labelled 10-class digit dataset: `n` images, balanced across
/// digits, with the given pixel noise.
pub fn digit_dataset(n: usize, pixel_noise: f64, seed: u64) -> LabeledDataset {
    assert!(n > 0);
    let mut renderer = DigitRenderer::new(seed);
    let mut points = Matrix::zeros(0, 0);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let digit = (i % 10) as u32;
        points.push_row(&renderer.sample(digit, pixel_noise));
        labels.push(digit);
    }
    LabeledDataset::new(points, labels, 10)
}

/// Render an image as ASCII art (for terminal figures).
pub fn ascii_art(img: &[f64]) -> String {
    const SHADES: [char; 5] = [' ', '.', 'o', '#', '@'];
    let mut out = String::with_capacity((SIDE + 1) * SIDE);
    for y in 0..SIDE {
        for x in 0..SIDE {
            let v = img[y * SIDE + x];
            let shade = ((v * (SHADES.len() as f64 - 1.0)).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[shade]);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::squared_distance;

    #[test]
    fn render_in_unit_range() {
        for d in 0..10 {
            let img = render(d, &Style::clean());
            assert_eq!(img.len(), PIXELS);
            assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)), "digit {d}");
            // Some ink, some background.
            let ink: f64 = img.iter().sum();
            assert!(
                ink > 10.0 && ink < PIXELS as f64 * 0.8,
                "digit {d} ink = {ink}"
            );
        }
    }

    #[test]
    fn digits_are_mutually_distinct() {
        let imgs: Vec<Vec<f64>> = (0..10).map(|d| render(d, &Style::clean())).collect();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let d = squared_distance(&imgs[i], &imgs[j]);
                assert!(d > 1.0, "digits {i} and {j} too similar: {d}");
            }
        }
    }

    #[test]
    fn one_is_subset_of_eight() {
        // Segment containment sanity: every inked pixel of "1" is inked in "8".
        let one = render(1, &Style::clean());
        let eight = render(8, &Style::clean());
        for (a, b) in one.iter().zip(&eight) {
            assert!(b + 1e-9 >= *a);
        }
    }

    #[test]
    fn blend_midpoint_between_endpoints() {
        let s = Style::clean();
        let a = render(4, &s);
        let b = render(9, &s);
        let mid = render_blend(4, 9, 0.5, &s);
        for ((x, y), m) in a.iter().zip(&b).zip(&mid) {
            assert!((0.5 * x + 0.5 * y - m).abs() < 1e-9);
        }
    }

    #[test]
    fn blend_zero_is_first_digit() {
        let s = Style::clean();
        assert_eq!(render_blend(3, 7, 0.0, &s), render(3, &s));
    }

    #[test]
    #[should_panic(expected = "digit must be 0..=9")]
    fn bad_digit_panics() {
        render(10, &Style::clean());
    }

    #[test]
    fn renderer_deterministic() {
        let mut a = DigitRenderer::new(5);
        let mut b = DigitRenderer::new(5);
        assert_eq!(a.sample(3, 0.05), b.sample(3, 0.05));
    }

    #[test]
    fn samples_vary() {
        let mut r = DigitRenderer::new(5);
        let a = r.sample(3, 0.0);
        let b = r.sample(3, 0.0);
        assert_ne!(a, b, "two samples of the same digit should differ in style");
    }

    #[test]
    fn dataset_balanced() {
        let ds = digit_dataset(200, 0.05, 9);
        assert_eq!(ds.len(), 200);
        assert_eq!(ds.dims(), PIXELS);
        assert_eq!(ds.classes, 10);
        assert_eq!(ds.class_counts(), vec![20; 10]);
    }

    #[test]
    fn ascii_art_shape() {
        let art = ascii_art(&render(0, &Style::clean()));
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), SIDE);
        assert!(lines.iter().all(|l| l.chars().count() == SIDE));
    }

    #[test]
    fn nearest_template_classifies_clean_samples() {
        // A 1-NN over clean templates should classify lightly-jittered
        // samples well — the geometric sanity check that the generator
        // produces learnable classes.
        let templates: Vec<Vec<f64>> = (0..10).map(|d| render(d, &Style::clean())).collect();
        let mut r = DigitRenderer::new(123);
        let mut correct = 0;
        let total = 100;
        for i in 0..total {
            let digit = (i % 10) as u32;
            let img = r.sample(digit, 0.02);
            let best = (0..10)
                .min_by(|&a, &b| {
                    squared_distance(&img, &templates[a])
                        .partial_cmp(&squared_distance(&img, &templates[b]))
                        .unwrap()
                })
                .unwrap();
            if best as u32 == digit {
                correct += 1;
            }
        }
        assert!(
            correct >= 80,
            "template 1-NN accuracy too low: {correct}/{total}"
        );
    }
}
