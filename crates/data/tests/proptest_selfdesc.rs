//! Property tests: the self-describing container round-trips arbitrary
//! structures and rejects truncation anywhere.

use peachy_data::selfdesc::{DecodeError, SelfDescribing};
use proptest::prelude::*;

fn container_strategy() -> impl Strategy<Value = SelfDescribing> {
    let attr = ("[a-z]{1,8}", "[ -~]{0,16}");
    let dim = ("[a-z]{1,8}", 1usize..6);
    (
        prop::collection::vec(attr, 0..4),
        prop::collection::vec(dim, 0..4),
    )
        .prop_flat_map(|(attrs, dims)| {
            let dims2 = dims.clone();
            let var = (0..3usize)
                .prop_flat_map(move |_| 0usize..1)
                .prop_map(|_| ());
            let _ = var;
            // Variables: each picks a subset of dims (prefix) and data to match.
            let nvars = 0usize..4;
            (Just(attrs), Just(dims2), nvars, any::<u64>()).prop_map(
                |(attrs, dims, nvars, seed)| {
                    let mut ds = SelfDescribing::default();
                    for (k, v) in &attrs {
                        ds.add_attr(k.clone(), v.clone());
                    }
                    let dim_ids: Vec<usize> = dims
                        .iter()
                        .map(|(name, len)| ds.add_dim(name.clone(), *len))
                        .collect();
                    for vi in 0..nvars {
                        // Use the first `vi % (dims+1)` dimensions.
                        let take = if dim_ids.is_empty() {
                            0
                        } else {
                            vi % (dim_ids.len() + 1)
                        };
                        let refs: Vec<usize> = dim_ids[..take].to_vec();
                        let len: usize = refs.iter().map(|&d| ds.dims[d].len).product();
                        let data: Vec<f64> = (0..len)
                            .map(|i| {
                                ((seed ^ i as u64).wrapping_mul(2654435761) % 1000) as f64 / 8.0
                            })
                            .collect();
                        ds.add_var(format!("v{vi}"), refs, data);
                    }
                    ds
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip(ds in container_strategy()) {
        let back = SelfDescribing::decode(&ds.encode()).unwrap();
        prop_assert_eq!(ds, back);
    }

    #[test]
    fn truncation_always_detected(ds in container_strategy(), frac in 0.0f64..1.0) {
        let bytes = ds.encode();
        prop_assume!(bytes.len() > 5);
        let cut = 1 + ((bytes.len() - 2) as f64 * frac) as usize;
        let result = SelfDescribing::decode(&bytes[..cut]);
        // Truncated input must error (never succeed, never panic).
        prop_assert!(
            matches!(
                result,
                Err(DecodeError::Truncated
                    | DecodeError::BadMagic
                    | DecodeError::BadString
                    | DecodeError::ShapeMismatch { .. }
                    | DecodeError::BadDimRef { .. })
            ),
            "cut {cut}/{} gave {result:?}",
            bytes.len()
        );
    }

    #[test]
    fn junk_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = SelfDescribing::decode(&bytes);
    }
}
