//! Property tests for dataset plumbing: CSV round-trips, splits, geometry.

use peachy_data::csv;
use peachy_data::geo::{Point, Polygon};
use peachy_data::matrix::{squared_distance, LabeledDataset, Matrix};
use peachy_data::split::{k_folds, shuffled_indices, train_test_split};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    // Values that survive a text round-trip exactly.
    (-1_000_000i64..1_000_000).prop_map(|v| v as f64 / 64.0)
}

proptest! {
    #[test]
    fn csv_matrix_roundtrip(rows in 1usize..20, cols in 1usize..8, seed in any::<u64>()) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((seed.wrapping_add(i as u64).wrapping_mul(2654435761)) % 1_000_000) as f64 / 128.0)
            .collect();
        let m = Matrix::from_vec(rows, cols, data);
        let back = csv::read_matrix(&csv::write_matrix(&m)).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn csv_labeled_roundtrip(rows in prop::collection::vec((finite_f64(), finite_f64(), 0u32..5), 1..30)) {
        let points = Matrix::from_rows(&rows.iter().map(|(a, b, _)| vec![*a, *b]).collect::<Vec<_>>());
        let labels: Vec<u32> = rows.iter().map(|(_, _, l)| *l).collect();
        let classes = labels.iter().max().unwrap() + 1;
        let ds = LabeledDataset::new(points, labels, classes);
        let back = csv::read_labeled(&csv::write_labeled(&ds)).unwrap();
        prop_assert_eq!(ds.points, back.points);
        prop_assert_eq!(ds.labels, back.labels);
    }

    #[test]
    fn shuffle_is_permutation(n in 1usize..500, seed in any::<u64>()) {
        let mut idx = shuffled_indices(n, seed);
        idx.sort_unstable();
        prop_assert_eq!(idx, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn split_partitions_dataset(n in 2usize..200, frac in 0.05f64..0.95, seed in any::<u64>()) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let ds = LabeledDataset::new(Matrix::from_rows(&rows), vec![0; n], 1);
        let tt = train_test_split(&ds, frac, seed);
        prop_assert_eq!(tt.train.len() + tt.test.len(), n);
        prop_assert!(!tt.train.is_empty() && !tt.test.is_empty());
        let mut ids: Vec<f64> = tt.train.points.iter_rows().chain(tt.test.points.iter_rows()).map(|r| r[0]).collect();
        ids.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expected: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(ids, expected);
    }

    #[test]
    fn folds_partition(n in 4usize..100, k in 2usize..4, seed in any::<u64>()) {
        prop_assume!(k <= n);
        let folds = k_folds(n, k, seed);
        let mut all: Vec<usize> = folds.concat();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        let max = folds.iter().map(Vec::len).max().unwrap();
        let min = folds.iter().map(Vec::len).min().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn squared_distance_is_metric_like(a in prop::collection::vec(finite_f64(), 1..10)) {
        // d(x,x) = 0 and d(x,y) = d(y,x) ≥ 0.
        let b: Vec<f64> = a.iter().map(|v| v + 1.0).collect();
        prop_assert_eq!(squared_distance(&a, &a), 0.0);
        prop_assert_eq!(squared_distance(&a, &b), squared_distance(&b, &a));
        prop_assert!(squared_distance(&a, &b) >= 0.0);
    }

    #[test]
    fn convex_polygon_contains_centroid(n in 3usize..12, r in 0.5f64..10.0) {
        // Regular n-gon of radius r centred at (3, 4).
        let verts: Vec<Point> = (0..n)
            .map(|i| {
                let t = std::f64::consts::TAU * i as f64 / n as f64;
                Point { x: 3.0 + r * t.cos(), y: 4.0 + r * t.sin() }
            })
            .collect();
        let poly = Polygon::new(verts);
        let centroid = Point { x: 3.0, y: 4.0 };
        let outside = Point { x: 3.0 + 2.0 * r, y: 4.0 };
        prop_assert!(poly.contains(centroid));
        // A point well outside the circumradius is excluded.
        prop_assert!(!poly.contains(outside));
        // Area of a regular n-gon: (1/2) n r² sin(2π/n).
        let expected = 0.5 * n as f64 * r * r * (std::f64::consts::TAU / n as f64).sin();
        prop_assert!((poly.signed_area().abs() - expected).abs() < 1e-9 * expected.max(1.0));
    }
}
