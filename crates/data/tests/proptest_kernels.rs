//! Property tests for the blocked kernel layer: the exact family must be
//! bit-identical to the scalar loops, the decomposed family must agree
//! within the documented rounding window and preserve the lowest-index
//! tie-break — across ragged shapes (0/1/non-multiple-of-block sizes).

use peachy_data::kernels::{
    argmin_dist2, argmin_dist2_ref, dist2, dist2_scan, dot, matmul_nt, matmul_nt_ref,
    pairwise_dist2, pairwise_dist2_ref, Candidates, LANES,
};
use peachy_data::matrix::Matrix;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    // Continuous-ish values at mixed magnitudes, plus exact hits on zero.
    prop_oneof![
        5 => (-1_000_000i64..1_000_000).prop_map(|v| v as f64 / 1024.0),
        1 => Just(0.0),
    ]
}

fn matrix(rows: impl Strategy<Value = usize>, cols: usize) -> impl Strategy<Value = Matrix> {
    rows.prop_flat_map(move |n| {
        prop::collection::vec(coord(), n * cols)
            .prop_map(move |data| Matrix::from_vec(n, cols, data))
    })
}

/// Scale-aware tolerance for the ‖x‖² − 2x·c + ‖c‖² decomposition: the
/// absolute error of either form is a few ulps of the norm magnitudes.
fn dist2_tol(x: &[f64], c: &[f64]) -> f64 {
    1e-9 * (1.0 + dot(x, x) + dot(c, c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact family: the lane-blocked scan visits every index in order
    /// with values bit-identical to the scalar pair kernel.
    #[test]
    fn dist2_scan_is_bit_exact(
        (rows, x) in (0usize..20).prop_flat_map(|d| (matrix(0usize..70, d), prop::collection::vec(coord(), d))),
    ) {
        let mut visited = Vec::new();
        dist2_scan(&rows, 0..rows.rows(), &x, |i, v| visited.push((i, v)));
        prop_assert_eq!(visited.len(), rows.rows());
        for (i, v) in visited {
            prop_assert_eq!(v, dist2(rows.row(i), &x), "row {}", i);
        }
    }

    /// Exact family: scanning an interior sub-range yields the same values
    /// as the full scan (lane carve-up does not depend on the range start).
    #[test]
    fn dist2_scan_subrange_matches(
        rows in matrix(1usize..60, 3),
        x in prop::collection::vec(coord(), 3),
        (lo, hi) in (0usize..60, 0usize..60),
    ) {
        let n = rows.rows();
        let (lo, hi) = (lo.min(n), hi.min(n));
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut full = vec![f64::NAN; n];
        dist2_scan(&rows, 0..n, &x, |i, v| full[i] = v);
        dist2_scan(&rows, lo..hi, &x, |i, v| {
            assert_eq!(v, full[i], "sub-range row {i} diverged");
        });
    }

    /// Decomposed family: pairwise distances agree with the scalar
    /// reference within the documented relative window, and are ≥ 0.
    #[test]
    fn pairwise_dist2_close_to_reference(
        d in 1usize..10,
        seedx in 0usize..50,
        seedc in 0usize..40,
    ) {
        let mk = |n: usize, seed: usize| {
            let v: Vec<f64> = (0..n * d)
                .map(|i| (((seed * 7919 + i * 104729) % 2_000_001) as f64 - 1_000_000.0) / 1024.0)
                .collect();
            Matrix::from_vec(n, d, v)
        };
        let x = mk(seedx, seedx + 1);
        let c = mk(seedc, seedc + 2);
        let blocked = pairwise_dist2(&x, &c);
        let exact = pairwise_dist2_ref(&x, &c);
        prop_assert_eq!((blocked.rows(), blocked.cols()), (x.rows(), c.rows()));
        for i in 0..x.rows() {
            for j in 0..c.rows() {
                let (a, b) = (blocked.get(i, j), exact.get(i, j));
                prop_assert!(a >= 0.0);
                prop_assert!(
                    (a - b).abs() <= dist2_tol(x.row(i), c.row(j)),
                    "({}, {}): blocked {} vs exact {}", i, j, a, b
                );
            }
        }
    }

    /// Decomposed family: the fused batch argmin picks the same index as
    /// the scalar reference, or — when the two scoring forms round a
    /// near-tie differently — a candidate whose exact distance is within
    /// the rounding window of the reference winner's.
    #[test]
    fn argmin_dist2_agrees_with_reference(
        x in (1usize..8).prop_flat_map(|d| matrix(0usize..50, d)),
        k in 1usize..30,
    ) {
        let d = x.cols();
        let c = {
            // Candidates drawn from the query rows (forces exact ties and
            // duplicates) padded with shifted copies.
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(k);
            for j in 0..k {
                if x.rows() > 0 && j % 2 == 0 {
                    rows.push(x.row(j % x.rows()).to_vec());
                } else {
                    rows.push((0..d).map(|p| (j * d + p) as f64 / 8.0 - 1.5).collect());
                }
            }
            Matrix::from_rows(&rows)
        };
        let blocked = argmin_dist2(&x, &c);
        let reference = argmin_dist2_ref(&x, &c);
        prop_assert_eq!(blocked.len(), reference.len());
        for i in 0..x.rows() {
            let (a, b) = (blocked[i] as usize, reference[i] as usize);
            if a != b {
                let da = dist2(x.row(i), c.row(a));
                let db = dist2(x.row(i), c.row(b));
                prop_assert!(
                    (da - db).abs() <= dist2_tol(x.row(i), c.row(a)),
                    "row {}: blocked chose {} (d2={}) vs reference {} (d2={})",
                    i, a, da, b, db
                );
                // A legitimate near-tie flip must still not pick a higher
                // index over an exactly-equal-scoring lower one.
                prop_assert!(da != db || a < b, "row {} broke the tie upward", i);
            }
        }
    }

    /// Tie-break: with every candidate row duplicated, the decomposed
    /// scores of the copies are bitwise equal, so the first copy must win.
    #[test]
    fn argmin_duplicate_candidates_break_low(
        base in matrix(1usize..(LANES * 2 + 3), 3),
        x in matrix(0usize..40, 3),
    ) {
        prop_assume!(base.rows() >= 1);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..base.rows() {
            rows.push(base.row(i).to_vec());
        }
        for i in 0..base.rows() {
            rows.push(base.row(i).to_vec());
        }
        let c = Matrix::from_rows(&rows);
        let cand = Candidates::new(&c);
        for &a in &cand.assign(&x) {
            prop_assert!(
                (a as usize) < base.rows(),
                "picked duplicate copy {} of {} candidates", a, c.rows()
            );
        }
    }

    /// Batch assignment is bit-identical to one-row-at-a-time queries,
    /// whatever the shape (the row/candidate blocking is invisible).
    #[test]
    fn batch_assign_matches_single_rows(
        x in matrix(0usize..40, 4),
        c in matrix(1usize..25, 4),
    ) {
        let cand = Candidates::new(&c);
        let batch = cand.assign(&x);
        for i in 0..x.rows() {
            prop_assert_eq!(batch[i], cand.nearest(x.row(i)), "row {}", i);
        }
    }

    /// Exact family: the blocked GEMM is bit-identical to the scalar
    /// reference (it reproduces the per-row accumulation order).
    #[test]
    fn matmul_nt_is_bit_exact(
        a in matrix(0usize..40, 5),
        w in matrix(0usize..20, 5),
        with_bias in any::<bool>(),
    ) {
        let bias: Vec<f64> = (0..w.rows()).map(|o| o as f64 / 4.0 - 1.0).collect();
        let b = with_bias.then_some(&bias[..]);
        let blocked = matmul_nt(&a, w.as_slice(), w.rows(), b);
        let exact = matmul_nt_ref(&a, w.as_slice(), w.rows(), b);
        prop_assert_eq!(blocked, exact);
    }
}
