//! Property tests: all k-NN implementations must agree exactly.

use peachy_data::matrix::{LabeledDataset, Matrix};
use peachy_knn::{
    brute::{nearest_heap, nearest_sort},
    knn_mapreduce, KdTree, KnnMrConfig,
};
use proptest::prelude::*;

/// Arbitrary small labelled dataset with integer-ish coordinates (to
/// exercise distance ties) plus a query set.
fn dataset_strategy() -> impl Strategy<Value = (LabeledDataset, Vec<Vec<f64>>)> {
    (2usize..40, 1usize..4, 1usize..6).prop_flat_map(|(n, d, q)| {
        let point = prop::collection::vec(-8i32..8, d)
            .prop_map(|v| v.into_iter().map(|x| x as f64 / 2.0).collect::<Vec<f64>>());
        (
            prop::collection::vec((point.clone(), 0u32..3), n),
            prop::collection::vec(point, q),
        )
            .prop_map(|(rows, queries)| {
                let points =
                    Matrix::from_rows(&rows.iter().map(|(p, _)| p.clone()).collect::<Vec<_>>());
                let labels: Vec<u32> = rows.iter().map(|(_, l)| *l).collect();
                (LabeledDataset::new(points, labels, 3), queries)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Heap selection equals sort selection for every query and k.
    #[test]
    fn heap_equals_sort((db, queries) in dataset_strategy(), k in 1usize..10) {
        for q in &queries {
            prop_assert_eq!(nearest_heap(&db, q, k), nearest_sort(&db, q, k));
        }
    }

    /// KD-tree equals brute force (including tie-breaks on duplicates).
    #[test]
    fn kdtree_equals_brute((db, queries) in dataset_strategy(), k in 1usize..10) {
        let tree = KdTree::build(&db);
        for q in &queries {
            prop_assert_eq!(tree.nearest(q, k), nearest_heap(&db, q, k));
        }
    }

    /// Quad-tree equals brute force on any 2-D dataset.
    #[test]
    fn quadtree_equals_brute((db, queries) in dataset_strategy(), k in 1usize..10) {
        prop_assume!(db.dims() == 2);
        let tree = peachy_knn::QuadTree::build(&db);
        for q in &queries {
            prop_assert_eq!(tree.nearest(q, k), nearest_heap(&db, q, k));
        }
    }

    /// Neighbour distances are sorted ascending and are true distances.
    #[test]
    fn neighbours_sorted_and_consistent((db, queries) in dataset_strategy(), k in 1usize..10) {
        for q in &queries {
            let nn = nearest_heap(&db, q, k);
            prop_assert_eq!(nn.len(), k.min(db.len()));
            for w in nn.windows(2) {
                prop_assert!(w[0].cmp_key() <= w[1].cmp_key());
            }
            for n in &nn {
                let d2 = peachy_data::matrix::squared_distance(db.points.row(n.index), q);
                prop_assert_eq!(n.dist2, d2);
                prop_assert_eq!(n.label, db.labels[n.index]);
            }
        }
    }

    /// MapReduce k-NN equals sequential classification for any rank/block
    /// configuration, with or without the combiner.
    #[test]
    fn mapreduce_equals_sequential(
        (db, queries) in dataset_strategy(),
        k in 1usize..6,
        ranks in 1usize..5,
        blocks in 1usize..7,
        combine in any::<bool>(),
    ) {
        let qm = Matrix::from_rows(&queries);
        let qds = LabeledDataset::new(qm, vec![0; queries.len()], 1);
        let expected = peachy_knn::classify_batch_seq(&db, &qds, k);
        let out = knn_mapreduce(&db, &qds, KnnMrConfig { k, ranks, map_blocks: blocks, combine });
        prop_assert_eq!(out.predictions, expected);
    }
}
