//! The "whole application" variant of §2: "The new assignment would be to
//! write the whole application: parsing the database and queries from a
//! CSV file, implement the distance function with a loop and use the
//! language's built-in sorting function."
//!
//! This module is that end-to-end program as a library function: CSV text
//! in, CSV predictions out, with accuracy when the query file carries
//! ground-truth labels. Selection uses the built-in sort (per the
//! assignment text), so this is also the simplest possible reference
//! implementation for the fancier variants to be tested against.

use peachy_data::csv::{read_labeled, CsvError};

use crate::brute::classify_sort;

/// Result of one application run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppOutput {
    /// Predicted class per query, in input order.
    pub predictions: Vec<u32>,
    /// Accuracy against the query file's label column.
    pub accuracy: f64,
    /// Rendered output CSV: one `query_index,predicted_class` row per query.
    pub csv: String,
}

/// Run the full pipeline: parse both CSVs (features…, label), classify
/// every query against the database with sort-based k-NN, render output.
///
/// The query file's label column doubles as ground truth for the reported
/// accuracy (as with the datahub.io evaluation splits).
pub fn run(database_csv: &str, queries_csv: &str, k: usize) -> Result<AppOutput, CsvError> {
    assert!(k >= 1, "k must be positive");
    let db = read_labeled(database_csv)?;
    let queries = read_labeled(queries_csv)?;
    assert_eq!(
        db.dims(),
        queries.dims(),
        "database and query dimensionality differ"
    );

    let predictions: Vec<u32> = (0..queries.len())
        .map(|q| classify_sort(&db, queries.points.row(q), k))
        .collect();

    let correct = predictions
        .iter()
        .zip(&queries.labels)
        .filter(|(p, l)| p == l)
        .count();
    let mut csv = String::with_capacity(predictions.len() * 8);
    for (i, p) in predictions.iter().enumerate() {
        csv.push_str(&format!("{i},{p}\n"));
    }
    Ok(AppOutput {
        accuracy: correct as f64 / predictions.len() as f64,
        predictions,
        csv,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::csv::write_labeled;
    use peachy_data::split::train_test_split;
    use peachy_data::synth::gaussian_blobs;

    #[test]
    fn end_to_end_on_generated_csv() {
        let all = gaussian_blobs(400, 4, 3, 0.5, 70);
        let tt = train_test_split(&all, 0.75, 71);
        let out = run(&write_labeled(&tt.train), &write_labeled(&tt.test), 7).unwrap();
        assert_eq!(out.predictions.len(), tt.test.len());
        assert!(out.accuracy > 0.9, "accuracy = {}", out.accuracy);
        // Output CSV has one row per query and parses back.
        assert_eq!(out.csv.lines().count(), tt.test.len());
        for (i, line) in out.csv.lines().enumerate() {
            let (idx, pred) = line.split_once(',').unwrap();
            assert_eq!(idx.parse::<usize>().unwrap(), i);
            assert_eq!(pred.parse::<u32>().unwrap(), out.predictions[i]);
        }
    }

    #[test]
    fn matches_heap_based_library_path() {
        let all = gaussian_blobs(300, 3, 3, 1.0, 72);
        let tt = train_test_split(&all, 0.8, 73);
        let out = run(&write_labeled(&tt.train), &write_labeled(&tt.test), 5).unwrap();
        let lib = crate::classify_batch_seq(&tt.train, &tt.test, 5);
        assert_eq!(out.predictions, lib);
    }

    #[test]
    fn propagates_csv_errors() {
        assert!(run("definitely,not,numbers\n", "1,2,0\n", 3).is_err());
        assert!(run("", "1,2,0\n", 3).is_err());
    }

    #[test]
    #[should_panic(expected = "dimensionality differ")]
    fn dimension_mismatch_panics() {
        let _ = run("1,2,0\n", "1,2,3,0\n", 1);
    }
}
