//! Classification quality metrics.

/// Fraction of predictions equal to the true labels.
pub fn accuracy(predicted: &[u32], truth: &[u32]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty prediction set");
    let correct = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / predicted.len() as f64
}

/// Row-major confusion matrix: `m[truth][predicted]`.
pub fn confusion_matrix(predicted: &[u32], truth: &[u32], classes: u32) -> Vec<Vec<u64>> {
    assert_eq!(predicted.len(), truth.len(), "length mismatch");
    let c = classes as usize;
    let mut m = vec![vec![0u64; c]; c];
    for (&p, &t) in predicted.iter().zip(truth) {
        assert!((p as usize) < c && (t as usize) < c, "label out of range");
        m[t as usize][p as usize] += 1;
    }
    m
}

/// Per-class recall (diagonal over row sums); `None` for absent classes.
pub fn per_class_recall(confusion: &[Vec<u64>]) -> Vec<Option<f64>> {
    confusion
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let total: u64 = row.iter().sum();
            (total > 0).then(|| row[i] as f64 / total as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[1, 0, 3], &[1, 2, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch() {
        accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(m, vec![vec![2, 1], vec![0, 1]]);
    }

    #[test]
    fn recall_handles_absent_class() {
        let m = confusion_matrix(&[0, 0], &[0, 0], 3);
        let r = per_class_recall(&m);
        assert_eq!(r[0], Some(1.0));
        assert_eq!(r[1], None);
        assert_eq!(r[2], None);
    }
}
