//! # peachy-knn
//!
//! *k*-Nearest-Neighbor classification — the §2 Peachy assignment, in all
//! the variants the assignment text describes or suggests:
//!
//! * [`brute`] — the direct algorithm: Θ(nqd) distances, with the two
//!   top-*k* selection strategies the assignment contrasts — full sort
//!   (Θ(n log n) per query) vs. a bounded max-heap (Θ(n log k), the CLRS
//!   heap trick) — plus a rayon data-parallel batch classifier (the
//!   "shared memory programming models" adaptation).
//! * [`mapreduce`] — the assignment's actual task: k-NN on the
//!   MapReduce-MPI-style engine, with map tasks computing distances over
//!   database blocks and a reduction phase extracting nearest neighbours
//!   per query; the per-rank *combiner* (local top-k) reproduces the
//!   communication-cost optimization the assignment highlights.
//! * [`kdtree`] — the "Data Structures" adaptation: a space-partitioning
//!   tree with box lower-bound pruning, which wins at low dimension and
//!   loses to brute force at d=40 (the curse of dimensionality — measured
//!   in the benches).
//! * [`heap`] — the bounded max-heap used by all of the above.
//! * [`metrics`] — accuracy and confusion matrices.
//!
//! Ties in the majority vote are broken toward the smallest class label,
//! deterministically, in every implementation — so all variants agree
//! bit-for-bit and the test-suite can assert cross-implementation equality.

pub mod app;
pub mod brute;
pub mod cv;
pub mod gpu;
pub mod heap;
pub mod kdtree;
pub mod mapreduce;
pub mod metrics;
pub mod quadtree;

pub use brute::{
    classify_batch_par, classify_batch_seq, classify_batch_with, classify_heap, classify_sort,
};
pub use heap::BoundedMaxHeap;
pub use kdtree::KdTree;
pub use mapreduce::{knn_mapreduce, KnnMrConfig};
pub use quadtree::QuadTree;

/// One candidate neighbour: squared distance plus the database point's
/// class label (and index for deterministic tie-breaks on equal distance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Squared Euclidean distance to the query.
    pub dist2: f64,
    /// Index of the database point.
    pub index: usize,
    /// Class label of the database point.
    pub label: u32,
}

impl Neighbor {
    /// Ordering: by distance, then by database index (total and
    /// deterministic; distances are finite by construction).
    #[inline]
    pub fn cmp_key(&self) -> (f64, usize) {
        (self.dist2, self.index)
    }
}

/// Majority vote over neighbour labels; ties break toward the smallest
/// label. `classes` bounds the label range.
pub fn majority_vote(neighbors: &[Neighbor], classes: u32) -> u32 {
    assert!(!neighbors.is_empty(), "cannot vote over zero neighbours");
    let mut counts = vec![0u32; classes as usize];
    for n in neighbors {
        counts[n.label as usize] += 1;
    }
    let mut best = 0u32;
    for (label, &c) in counts.iter().enumerate() {
        if c > counts[best as usize] {
            best = label as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(label: u32) -> Neighbor {
        Neighbor {
            dist2: 1.0,
            index: 0,
            label,
        }
    }

    #[test]
    fn vote_majority_wins() {
        assert_eq!(majority_vote(&[nb(2), nb(1), nb(2)], 3), 2);
    }

    #[test]
    fn vote_tie_breaks_to_smallest_label() {
        assert_eq!(majority_vote(&[nb(3), nb(1), nb(1), nb(3)], 4), 1);
        assert_eq!(majority_vote(&[nb(0), nb(2)], 3), 0);
    }

    #[test]
    #[should_panic(expected = "zero neighbours")]
    fn vote_empty_panics() {
        majority_vote(&[], 2);
    }
}
