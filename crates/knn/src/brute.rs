//! Brute-force k-NN: the direct Θ(nqd) algorithm with both top-k selection
//! strategies and a rayon-parallel batch classifier.

use peachy_cluster::dist::EvenBlocks;
use peachy_cluster::{CommStats, Executor};
use peachy_data::kernels::dist2_scan;
use peachy_data::matrix::LabeledDataset;
use rayon::prelude::*;

use crate::heap::BoundedMaxHeap;
use crate::{majority_vote, Neighbor};

/// The k nearest database neighbours of `query`, by bounded max-heap:
/// Θ(n (d + log k)). Distances come from the lane-blocked
/// [`dist2_scan`] kernel, which visits rows in ascending order with
/// bit-identical values to the scalar loop — so heap contents (and the
/// exact-agreement guarantees with the tree/GPU backends) are unchanged.
pub fn nearest_heap(db: &LabeledDataset, query: &[f64], k: usize) -> Vec<Neighbor> {
    assert!(!db.is_empty(), "empty database");
    assert_eq!(query.len(), db.dims(), "query dimensionality mismatch");
    let k = k.min(db.len());
    let mut heap = BoundedMaxHeap::new(k);
    dist2_scan(&db.points, 0..db.len(), query, |i, d2| {
        if heap.would_keep(d2) {
            heap.offer(Neighbor {
                dist2: d2,
                index: i,
                label: db.labels[i],
            });
        }
    });
    heap.into_sorted()
}

/// The k nearest neighbours by full sort: Θ(n (d + log n)) — the baseline
/// the assignment's cost analysis compares against.
pub fn nearest_sort(db: &LabeledDataset, query: &[f64], k: usize) -> Vec<Neighbor> {
    assert!(!db.is_empty(), "empty database");
    assert_eq!(query.len(), db.dims(), "query dimensionality mismatch");
    let k = k.min(db.len());
    let mut all: Vec<Neighbor> = Vec::with_capacity(db.len());
    dist2_scan(&db.points, 0..db.len(), query, |i, d2| {
        all.push(Neighbor {
            dist2: d2,
            index: i,
            label: db.labels[i],
        });
    });
    all.sort_by(|a, b| {
        a.cmp_key()
            .partial_cmp(&b.cmp_key())
            .expect("finite distances")
    });
    all.truncate(k);
    all
}

/// Classify one query by heap-based k-NN + majority vote.
pub fn classify_heap(db: &LabeledDataset, query: &[f64], k: usize) -> u32 {
    majority_vote(&nearest_heap(db, query, k), db.classes)
}

/// Classify one query by sort-based k-NN + majority vote.
pub fn classify_sort(db: &LabeledDataset, query: &[f64], k: usize) -> u32 {
    majority_vote(&nearest_sort(db, query, k), db.classes)
}

/// Sequentially classify every query row.
pub fn classify_batch_seq(db: &LabeledDataset, queries: &LabeledDataset, k: usize) -> Vec<u32> {
    (0..queries.len())
        .map(|q| classify_heap(db, queries.points.row(q), k))
        .collect()
}

/// Classify every query row in parallel over the rayon pool — the
/// shared-memory (OpenMP-analogue) adaptation of the assignment. Queries
/// are embarrassingly parallel; output order matches input order.
pub fn classify_batch_par(db: &LabeledDataset, queries: &LabeledDataset, k: usize) -> Vec<u32> {
    (0..queries.len())
        .into_par_iter()
        .map(|q| classify_heap(db, queries.points.row(q), k))
        .collect()
}

/// Classify every query row on the chosen [`Executor`] backend: queries
/// are block-partitioned, each part classifies its own slice, and the
/// per-part predictions are concatenated in part order. Predictions are
/// per-query integers, so every backend and every decomposition produces
/// identical output to [`classify_batch_seq`].
pub fn classify_batch_with(
    db: &LabeledDataset,
    queries: &LabeledDataset,
    k: usize,
    exec: &Executor,
) -> Vec<u32> {
    classify_batch_opt_stats(db, queries, k, exec, None)
}

/// [`classify_batch_with`], also accumulating scatter/gather element
/// counts and (on the cluster backend) collective payload bytes into
/// `stats` — the same [`CommStats`] vocabulary the kmeans executor path
/// reports into, so E15/E16-style backend comparisons can include k-NN.
pub fn classify_batch_with_stats(
    db: &LabeledDataset,
    queries: &LabeledDataset,
    k: usize,
    exec: &Executor,
    stats: &CommStats,
) -> Vec<u32> {
    classify_batch_opt_stats(db, queries, k, exec, Some(stats))
}

fn classify_batch_opt_stats(
    db: &LabeledDataset,
    queries: &LabeledDataset,
    k: usize,
    exec: &Executor,
    stats: Option<&CommStats>,
) -> Vec<u32> {
    let n = queries.len();
    if n == 0 {
        return Vec::new();
    }
    // Refit the backend to the batch: a cluster executor configured with
    // more ranks than there are queries still classifies correctly.
    let exec = exec.shrink_to(n);
    let dist = EvenBlocks::new(n, exec.parts_for(n));
    let kernel = |_p: usize, range: std::ops::Range<usize>| {
        range
            .map(|q| classify_heap(db, queries.points.row(q), k))
            .collect::<Vec<u32>>()
    };
    match stats {
        Some(s) => exec.map_parts_counted(&dist, s, kernel),
        None => exec.map_parts(&dist, kernel),
    }
    .concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::matrix::Matrix;
    use peachy_data::synth::gaussian_blobs;

    fn tiny_db() -> LabeledDataset {
        // 1-D points 0..6, label = point < 3 ? 0 : 1.
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        LabeledDataset::new(Matrix::from_rows(&rows), vec![0, 0, 0, 1, 1, 1], 2)
    }

    #[test]
    fn nearest_heap_finds_true_neighbours() {
        let db = tiny_db();
        let nn = nearest_heap(&db, &[2.2], 3);
        let idx: Vec<usize> = nn.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![2, 3, 1]); // distances 0.04, 0.64, 1.44
    }

    #[test]
    fn heap_and_sort_agree_exactly() {
        let db = gaussian_blobs(400, 6, 4, 2.0, 3);
        let queries = gaussian_blobs(50, 6, 4, 2.0, 4);
        for q in 0..queries.len() {
            let query = queries.points.row(q);
            for k in [1, 5, 17] {
                assert_eq!(
                    nearest_heap(&db, query, k),
                    nearest_sort(&db, query, k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn k_larger_than_db_is_clamped() {
        let db = tiny_db();
        let nn = nearest_heap(&db, &[0.0], 100);
        assert_eq!(nn.len(), 6);
    }

    #[test]
    fn classify_respects_majority() {
        let db = tiny_db();
        assert_eq!(classify_heap(&db, &[0.5], 3), 0);
        assert_eq!(classify_heap(&db, &[4.5], 3), 1);
    }

    #[test]
    fn parallel_matches_sequential() {
        let db = gaussian_blobs(300, 8, 3, 2.5, 7);
        let queries = gaussian_blobs(80, 8, 3, 2.5, 8);
        assert_eq!(
            classify_batch_seq(&db, &queries, 7),
            classify_batch_par(&db, &queries, 7)
        );
    }

    #[test]
    fn executor_backends_match_sequential() {
        let db = gaussian_blobs(250, 6, 3, 2.0, 9);
        let queries = gaussian_blobs(61, 6, 3, 2.0, 10);
        let reference = classify_batch_seq(&db, &queries, 5);
        for exec in [Executor::seq(), Executor::rayon(8), Executor::cluster(4)] {
            assert_eq!(
                classify_batch_with(&db, &queries, 5, &exec),
                reference,
                "{exec:?}"
            );
        }
    }

    #[test]
    fn counted_batch_matches_and_feeds_stats() {
        let db = gaussian_blobs(200, 5, 3, 2.0, 13);
        let queries = gaussian_blobs(37, 5, 3, 2.0, 14);
        let reference = classify_batch_seq(&db, &queries, 5);

        let s = CommStats::new();
        let pred = classify_batch_with_stats(&db, &queries, 5, &Executor::rayon(4), &s);
        assert_eq!(pred, reference);
        assert_eq!(s.scattered(), 37, "one element per query scattered");
        assert_eq!(s.gathered(), 4, "one result per part gathered");
        assert_eq!(s.collective_bytes(), 0, "rayon borrows, moves no bytes");

        let s = CommStats::new();
        let pred = classify_batch_with_stats(&db, &queries, 5, &Executor::cluster(4), &s);
        assert_eq!(pred, reference);
        assert!(s.collective_bytes() > 0, "cluster pays for what it moves");
    }

    #[test]
    fn batch_smaller_than_rank_count_shrinks() {
        let db = gaussian_blobs(100, 4, 2, 2.0, 15);
        let queries = gaussian_blobs(2, 4, 2, 2.0, 16);
        // 8 ranks, 2 queries: must shrink instead of panicking.
        assert_eq!(
            classify_batch_with(&db, &queries, 3, &Executor::cluster(8)),
            classify_batch_seq(&db, &queries, 3)
        );
    }

    #[test]
    fn well_separated_blobs_classified_accurately() {
        // Draw db and queries from the SAME generation so class centres
        // coincide, then split.
        let all = gaussian_blobs(700, 10, 4, 0.5, 21);
        let db = all.select(&(0..500).collect::<Vec<_>>());
        let queries = all.select(&(500..700).collect::<Vec<_>>());
        let pred = classify_batch_seq(&db, &queries, 9);
        let correct = pred
            .iter()
            .zip(&queries.labels)
            .filter(|(p, l)| p == l)
            .count();
        assert!(
            correct as f64 / 200.0 > 0.95,
            "accuracy = {}",
            correct as f64 / 200.0
        );
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn query_dim_mismatch_panics() {
        nearest_heap(&tiny_db(), &[0.0, 1.0], 1);
    }

    #[test]
    #[should_panic(expected = "empty database")]
    fn empty_db_panics() {
        let db = LabeledDataset::new(Matrix::zeros(0, 0), vec![], 1);
        nearest_heap(&db, &[], 1);
    }
}
