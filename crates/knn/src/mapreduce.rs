//! k-NN on MapReduce — the §2 assignment proper.
//!
//! Mirrors the "typical implementation" the paper describes:
//!
//! * every rank loads the full query set ("assumed not to be large");
//! * the database is parsed in parallel by map tasks over blocks, each
//!   computing distances and emitting `(query → (distance, class))` pairs;
//! * the reduction phase takes each query's pairs, extracts the k nearest
//!   neighbours' classes, and emits `(query → predicted_class)`.
//!
//! The `combine` switch enables the communication optimization the
//! assignment teaches: each map block pre-selects its local top-k per
//! query, so the shuffle moves `O(q·k·blocks)` pairs instead of `O(q·n)`.

use peachy_cluster::Cluster;
use peachy_data::kernels::dist2_scan;
use peachy_data::matrix::LabeledDataset;
use peachy_mapreduce::MapReduce;

use crate::heap::BoundedMaxHeap;
use crate::{majority_vote, Neighbor};

/// Configuration for a distributed k-NN job.
#[derive(Debug, Clone, Copy)]
pub struct KnnMrConfig {
    /// Neighbours per query.
    pub k: usize,
    /// Cluster size (ranks).
    pub ranks: usize,
    /// Database blocks mapped independently (≥ ranks for load balance).
    pub map_blocks: usize,
    /// Per-block local top-k pre-selection (the combiner optimization).
    pub combine: bool,
}

impl Default for KnnMrConfig {
    fn default() -> Self {
        Self {
            k: 15,
            ranks: 4,
            map_blocks: 16,
            combine: true,
        }
    }
}

/// Outcome of a distributed k-NN job.
#[derive(Debug, Clone)]
pub struct KnnMrOutput {
    /// Predicted class per query, in query order.
    pub predictions: Vec<u32>,
    /// Key–value pairs that crossed the shuffle (communication volume).
    pub shuffled_pairs: u64,
}

/// Run the distributed k-NN job: classify every `queries` row against `db`.
pub fn knn_mapreduce(
    db: &LabeledDataset,
    queries: &LabeledDataset,
    config: KnnMrConfig,
) -> KnnMrOutput {
    assert!(!db.is_empty() && !queries.is_empty(), "need data");
    assert_eq!(db.dims(), queries.dims(), "dimensionality mismatch");
    assert!(config.k > 0 && config.ranks > 0 && config.map_blocks > 0);
    let k = config.k.min(db.len());
    let n_queries = queries.len();
    let blocks = config.map_blocks.min(db.len());
    let classes = db.classes;

    let mut outputs = Cluster::run(config.ranks, |comm| {
        let mut mr = MapReduce::new(comm);

        // Map: each task owns a contiguous database block and emits, per
        // query, candidate neighbours from that block.
        let kv = mr.map(blocks, |block, emit| {
            let range = peachy_cluster::dist::block_range(db.len(), blocks, block);
            if config.combine {
                // Local reduction: only the block-local top-k leaves the map task.
                for q in 0..n_queries {
                    let query = queries.points.row(q);
                    let mut heap = BoundedMaxHeap::new(k);
                    dist2_scan(&db.points, range.clone(), query, |i, d2| {
                        if heap.would_keep(d2) {
                            heap.offer(Neighbor {
                                dist2: d2,
                                index: i,
                                label: db.labels[i],
                            });
                        }
                    });
                    for n in heap.into_sorted() {
                        emit(q, (n.dist2, n.index, n.label));
                    }
                }
            } else {
                // Naïve: every (query, db-point) pair is emitted.
                for q in 0..n_queries {
                    let query = queries.points.row(q);
                    dist2_scan(&db.points, range.clone(), query, |i, d2| {
                        emit(q, (d2, i, db.labels[i]));
                    });
                }
            }
        });

        let shuffled = mr.global_pair_count(&kv);

        // Collate: all candidates for a query land on its owner rank.
        let grouped = mr.collate(kv);

        // Reduce: per query, keep the k nearest and vote.
        let predictions = grouped.reduce(|_, candidates| {
            let mut heap = BoundedMaxHeap::new(k);
            for (dist2, index, label) in candidates {
                heap.offer(Neighbor {
                    dist2,
                    index,
                    label,
                });
            }
            majority_vote(&heap.into_sorted(), classes)
        });

        let all = mr.gather_results(0, predictions);
        (all, shuffled)
    });

    let (gathered, shuffled_pairs) = outputs.swap_remove(0);
    let mut predictions = vec![0u32; n_queries];
    let pairs = gathered.expect("root gathered predictions");
    assert_eq!(pairs.len(), n_queries, "one prediction per query");
    for (q, label) in pairs {
        predictions[q] = label;
    }
    KnnMrOutput {
        predictions,
        shuffled_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::classify_batch_seq;
    use peachy_data::synth::gaussian_blobs;

    fn data() -> (LabeledDataset, LabeledDataset) {
        (
            gaussian_blobs(300, 8, 4, 2.0, 31),
            gaussian_blobs(60, 8, 4, 2.0, 32),
        )
    }

    #[test]
    fn matches_sequential_reference() {
        let (db, q) = data();
        let reference = classify_batch_seq(&db, &q, 7);
        for ranks in [1, 2, 4] {
            for combine in [false, true] {
                let out = knn_mapreduce(
                    &db,
                    &q,
                    KnnMrConfig {
                        k: 7,
                        ranks,
                        map_blocks: 8,
                        combine,
                    },
                );
                assert_eq!(
                    out.predictions, reference,
                    "ranks={ranks} combine={combine}"
                );
            }
        }
    }

    #[test]
    fn combiner_slashes_shuffle_volume() {
        let (db, q) = data();
        let naive = knn_mapreduce(
            &db,
            &q,
            KnnMrConfig {
                k: 5,
                ranks: 4,
                map_blocks: 8,
                combine: false,
            },
        );
        let combined = knn_mapreduce(
            &db,
            &q,
            KnnMrConfig {
                k: 5,
                ranks: 4,
                map_blocks: 8,
                combine: true,
            },
        );
        assert_eq!(naive.predictions, combined.predictions);
        // Naive shuffles q·n pairs; combined shuffles ≤ q·k·blocks.
        assert_eq!(naive.shuffled_pairs, (q.len() * db.len()) as u64);
        assert!(combined.shuffled_pairs <= (q.len() * 5 * 8) as u64);
        assert!(combined.shuffled_pairs * 4 < naive.shuffled_pairs);
    }

    #[test]
    fn single_block_single_rank() {
        let (db, q) = data();
        let out = knn_mapreduce(
            &db,
            &q,
            KnnMrConfig {
                k: 3,
                ranks: 1,
                map_blocks: 1,
                combine: true,
            },
        );
        assert_eq!(out.predictions, classify_batch_seq(&db, &q, 3));
    }

    #[test]
    fn more_blocks_than_db_points() {
        let db = gaussian_blobs(5, 2, 2, 1.0, 1);
        let q = gaussian_blobs(4, 2, 2, 1.0, 2);
        let out = knn_mapreduce(
            &db,
            &q,
            KnnMrConfig {
                k: 3,
                ranks: 2,
                map_blocks: 64,
                combine: true,
            },
        );
        assert_eq!(out.predictions, classify_batch_seq(&db, &q, 3));
    }

    #[test]
    fn k_exceeding_database_is_clamped() {
        let db = gaussian_blobs(4, 2, 2, 1.0, 5);
        let q = gaussian_blobs(3, 2, 2, 1.0, 6);
        let out = knn_mapreduce(
            &db,
            &q,
            KnnMrConfig {
                k: 99,
                ranks: 2,
                map_blocks: 2,
                combine: true,
            },
        );
        assert_eq!(out.predictions, classify_batch_seq(&db, &q, 99));
    }
}
