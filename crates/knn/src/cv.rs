//! Cross-validation for choosing `k` — how the classroom actually decides
//! the hyper-parameter the assignment leaves open ("k = ?" is the first
//! question every student asks).

use peachy_data::matrix::LabeledDataset;
use peachy_data::split::k_folds;
use rayon::prelude::*;

use crate::brute::classify_heap;

/// Mean accuracy of `folds`-fold cross-validation at a given `k`.
pub fn cv_accuracy(data: &LabeledDataset, k: usize, folds: usize, seed: u64) -> f64 {
    assert!(k >= 1 && folds >= 2);
    assert!(data.len() >= folds, "need at least one point per fold");
    let partition = k_folds(data.len(), folds, seed);
    let mut correct = 0usize;
    let mut total = 0usize;
    for held_out in 0..folds {
        let test_idx = &partition[held_out];
        let train_idx: Vec<usize> = partition
            .iter()
            .enumerate()
            .filter(|(f, _)| *f != held_out)
            .flat_map(|(_, idx)| idx.iter().copied())
            .collect();
        let train = data.select(&train_idx);
        let hits: usize = test_idx
            .par_iter()
            .filter(|&&i| classify_heap(&train, data.points.row(i), k) == data.labels[i])
            .count();
        correct += hits;
        total += test_idx.len();
    }
    correct as f64 / total as f64
}

/// Evaluate a range of `k` values and return `(k, cv_accuracy)` rows plus
/// the best `k` (ties break toward smaller `k` — simpler model wins).
pub fn select_k(
    data: &LabeledDataset,
    candidates: &[usize],
    folds: usize,
    seed: u64,
) -> (Vec<(usize, f64)>, usize) {
    assert!(!candidates.is_empty());
    let table: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&k| (k, cv_accuracy(data, k, folds, seed)))
        .collect();
    let mut best = table[0];
    for &(k, acc) in &table[1..] {
        if acc > best.1 {
            best = (k, acc);
        }
    }
    (table, best.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peachy_data::iris::iris;
    use peachy_data::synth::gaussian_blobs;

    #[test]
    fn cv_accuracy_high_on_separable_data() {
        let data = gaussian_blobs(300, 4, 3, 0.4, 140);
        let acc = cv_accuracy(&data, 5, 5, 141);
        assert!(acc > 0.95, "cv accuracy = {acc}");
    }

    #[test]
    fn cv_accuracy_near_chance_on_random_labels() {
        // Shuffle-destroyed labels: CV must not report spurious skill.
        let mut data = gaussian_blobs(200, 3, 2, 1.0, 142);
        // Blobs label round-robin (i % 2); pairing consecutive points puts
        // both blobs in both label groups — labels decoupled from geometry.
        for (i, l) in data.labels.iter_mut().enumerate() {
            *l = ((i / 2) % 2) as u32;
        }
        let acc = cv_accuracy(&data, 5, 4, 143);
        assert!((0.3..0.7).contains(&acc), "should be ≈ chance: {acc}");
    }

    #[test]
    fn select_k_on_iris_is_reasonable() {
        let data = iris();
        let (table, best) = select_k(&data, &[1, 3, 5, 9, 15, 31], 5, 144);
        assert_eq!(table.len(), 6);
        assert!(table.iter().all(|&(_, acc)| acc > 0.85), "{table:?}");
        assert!(
            (1..=15).contains(&best),
            "iris favours small-to-moderate k, got {best}"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let data = gaussian_blobs(150, 3, 3, 0.8, 145);
        assert_eq!(cv_accuracy(&data, 3, 5, 7), cv_accuracy(&data, 3, 5, 7));
    }

    #[test]
    #[should_panic(expected = "need at least one point per fold")]
    fn tiny_data_rejected() {
        let data = gaussian_blobs(3, 2, 2, 1.0, 146);
        cv_accuracy(&data, 1, 5, 1);
    }
}
