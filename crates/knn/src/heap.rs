//! A bounded max-heap for top-*k* smallest selection.
//!
//! The assignment's cost analysis hinges on this structure: "a heap-based
//! implementation reduces this to Θ(n log k)". The heap holds at most `k`
//! candidates with the *worst* (largest) at the root; a new candidate
//! replaces the root iff it beats it, costing O(log k).

use crate::Neighbor;

/// Max-heap of at most `k` [`Neighbor`]s, ordered by `(dist2, index)`.
#[derive(Debug, Clone)]
pub struct BoundedMaxHeap {
    k: usize,
    items: Vec<Neighbor>,
}

impl BoundedMaxHeap {
    /// Create an empty heap with capacity `k > 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            items: Vec::with_capacity(k),
        }
    }

    /// Capacity.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of stored candidates.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the heap holds no candidates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the heap has reached capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.k
    }

    /// The current worst retained candidate, if any.
    #[inline]
    pub fn worst(&self) -> Option<&Neighbor> {
        self.items.first()
    }

    /// Offer a candidate: inserted if the heap has room or the candidate
    /// beats the current worst. Returns whether it was retained.
    pub fn offer(&mut self, n: Neighbor) -> bool {
        if self.items.len() < self.k {
            self.items.push(n);
            self.sift_up(self.items.len() - 1);
            true
        } else if n.cmp_key() < self.items[0].cmp_key() {
            self.items[0] = n;
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// Quick rejection test without mutation: would this distance be kept?
    ///
    /// Candidates *equal* to the current worst are reported as not kept;
    /// callers that must preserve index tie-breaks (equal distance, smaller
    /// index wins) should call [`BoundedMaxHeap::offer`] directly or use
    /// [`BoundedMaxHeap::prunable`] for subtree pruning.
    #[inline]
    pub fn would_keep(&self, dist2: f64) -> bool {
        self.items.len() < self.k || dist2 < self.items[0].dist2
    }

    /// Whether a whole candidate set with lower-bound distance `bound` can
    /// be skipped: true only when the heap is full and the bound *strictly*
    /// exceeds the current worst (equal-distance candidates may still win
    /// tie-breaks by index, so they cannot be pruned).
    #[inline]
    pub fn prunable(&self, bound: f64) -> bool {
        self.items.len() == self.k && bound > self.items[0].dist2
    }

    /// Consume the heap and return candidates sorted ascending by
    /// `(dist2, index)` — the final k nearest neighbours.
    pub fn into_sorted(mut self) -> Vec<Neighbor> {
        self.items
            .sort_by(|a, b| a.cmp_key().partial_cmp(&b.cmp_key()).expect("finite"));
        self.items
    }

    /// Merge another heap's contents into this one (used by the MapReduce
    /// combiner to fuse per-block top-k sets).
    pub fn merge(&mut self, other: BoundedMaxHeap) {
        for n in other.items {
            self.offer(n);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].cmp_key() > self.items[parent].cmp_key() {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < n && self.items[l].cmp_key() > self.items[largest].cmp_key() {
                largest = l;
            }
            if r < n && self.items[r].cmp_key() > self.items[largest].cmp_key() {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.items.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(dist2: f64, index: usize) -> Neighbor {
        Neighbor {
            dist2,
            index,
            label: 0,
        }
    }

    #[test]
    fn keeps_k_smallest() {
        let mut h = BoundedMaxHeap::new(3);
        for (i, d) in [9.0, 1.0, 8.0, 2.0, 7.0, 3.0].iter().enumerate() {
            h.offer(nb(*d, i));
        }
        let sorted = h.into_sorted();
        let dists: Vec<f64> = sorted.iter().map(|n| n.dist2).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn underfull_heap_returns_everything() {
        let mut h = BoundedMaxHeap::new(10);
        h.offer(nb(5.0, 0));
        h.offer(nb(1.0, 1));
        let sorted = h.into_sorted();
        assert_eq!(sorted.len(), 2);
        assert_eq!(sorted[0].dist2, 1.0);
    }

    #[test]
    fn rejects_worse_when_full() {
        let mut h = BoundedMaxHeap::new(2);
        assert!(h.offer(nb(1.0, 0)));
        assert!(h.offer(nb(2.0, 1)));
        assert!(!h.offer(nb(3.0, 2)));
        assert!(h.offer(nb(0.5, 3)));
        let d: Vec<f64> = h.into_sorted().iter().map(|n| n.dist2).collect();
        assert_eq!(d, vec![0.5, 1.0]);
    }

    #[test]
    fn worst_tracks_root() {
        let mut h = BoundedMaxHeap::new(2);
        assert!(h.worst().is_none());
        h.offer(nb(4.0, 0));
        h.offer(nb(2.0, 1));
        assert_eq!(h.worst().unwrap().dist2, 4.0);
        h.offer(nb(1.0, 2));
        assert_eq!(h.worst().unwrap().dist2, 2.0);
    }

    #[test]
    fn equal_distances_tie_break_by_index() {
        let mut h = BoundedMaxHeap::new(2);
        h.offer(nb(1.0, 5));
        h.offer(nb(1.0, 2));
        h.offer(nb(1.0, 9)); // rejected: same dist, larger index than worst
        let sorted = h.into_sorted();
        let idx: Vec<usize> = sorted.iter().map(|n| n.index).collect();
        assert_eq!(idx, vec![2, 5]);
    }

    #[test]
    fn would_keep_is_consistent_with_offer() {
        let mut h = BoundedMaxHeap::new(2);
        h.offer(nb(1.0, 0));
        h.offer(nb(2.0, 1));
        assert!(h.would_keep(1.5));
        assert!(!h.would_keep(2.5));
        // Boundary: equal distance is rejected (index would decide, but
        // would_keep is conservative on pure distance).
        assert!(!h.would_keep(2.0));
    }

    #[test]
    fn merge_equals_offering_all() {
        let mut a = BoundedMaxHeap::new(3);
        let mut b = BoundedMaxHeap::new(3);
        let mut reference = BoundedMaxHeap::new(3);
        for i in 0..10 {
            let n = nb((i as f64 * 7.0) % 5.0, i);
            if i % 2 == 0 {
                a.offer(n);
            } else {
                b.offer(n);
            }
            reference.offer(n);
        }
        a.merge(b);
        assert_eq!(a.into_sorted(), reference.into_sorted());
    }

    #[test]
    fn matches_sort_selection_randomized() {
        use peachy_prng::{Lcg64, RandomStream};
        let mut rng = Lcg64::seed_from(11);
        for _ in 0..50 {
            let n = 1 + rng.next_below(200) as usize;
            let k = 1 + rng.next_below(20) as usize;
            let cands: Vec<Neighbor> = (0..n).map(|i| nb((rng.next_below(50)) as f64, i)).collect();
            let mut heap = BoundedMaxHeap::new(k);
            for &c in &cands {
                heap.offer(c);
            }
            let mut by_sort = cands.clone();
            by_sort.sort_by(|a, b| a.cmp_key().partial_cmp(&b.cmp_key()).unwrap());
            by_sort.truncate(k);
            assert_eq!(heap.into_sorted(), by_sort);
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        BoundedMaxHeap::new(0);
    }
}
