//! k-NN on the simulated GPU — the "accelerator programming models like
//! CUDA" adaptation of §2.
//!
//! Shape: **one thread block per query**. Each thread scans a strided
//! slice of the database keeping its private top-k (in its own shared
//! -memory slice); after the block barrier, thread 0 merges the per-thread
//! candidate sets, takes the global top-k, majority-votes, and writes the
//! prediction to global memory. Queries are independent, so blocks are the
//! natural work unit — the same decomposition the MapReduce version uses
//! with queries as keys.
//!
//! Device memory layout (f64 words unless noted):
//!
//! ```text
//! db points     n·d     row-major
//! db labels     n       u64
//! queries       q·d     row-major
//! predictions   q       u64 (output)
//! ```
//!
//! Shared memory per block: `block_dim · k · 2` words — (dist, index)
//! pairs per thread slot.

use peachy_data::matrix::LabeledDataset;
use peachy_gpu::{GlobalBuffer, Kernel, Launch, Phase, ThreadCtx};

/// The per-query kernel.
struct KnnKernel {
    n: usize,
    d: usize,
    q: usize,
    k: usize,
    classes: u32,
    labels_off: usize,
    queries_off: usize,
    preds_off: usize,
}

impl Kernel for KnnKernel {
    fn phases(&self) -> usize {
        2 // scan (per-thread top-k) | merge + vote (thread 0)
    }
    fn run(&self, phase: Phase, t: ThreadCtx, shared: &mut [f64], g: &GlobalBuffer) {
        let k = self.k;
        // Grid-stride over queries: block b handles queries b, b+grid, …
        let mut query = t.block;
        while query < self.q {
            // NOTE: the engine serializes phases within a block, but this
            // kernel re-runs both phases per grid-stride iteration, so the
            // stride loop must live *outside* in a real GPU. Here each
            // block handles exactly the queries of its stride; to keep the
            // phase semantics exact we only process the first assigned
            // query per phase invocation round — so the launch must use
            // grid ≥ q or an outer host loop. The host wrapper below
            // guarantees grid ≥ q.
            debug_assert!(
                t.grid_dim >= self.q,
                "host wrapper launches one block per query"
            );
            let base = t.thread * k * 2;
            match phase {
                0 => {
                    // Private top-k in registers, flushed to the shared slice.
                    let mut best: Vec<(f64, usize)> = vec![(f64::INFINITY, usize::MAX); k];
                    let mut i = t.thread;
                    while i < self.n {
                        let mut d2 = 0.0;
                        for j in 0..self.d {
                            let diff = g.load(i * self.d + j)
                                - g.load(self.queries_off + query * self.d + j);
                            d2 += diff * diff;
                        }
                        // Replace the current worst if better by (dist, idx).
                        let (mut worst, mut worst_at) = (best[0], 0usize);
                        for (slot, &b) in best.iter().enumerate().skip(1) {
                            if b > worst {
                                worst = b;
                                worst_at = slot;
                            }
                        }
                        if (d2, i) < worst {
                            best[worst_at] = (d2, i);
                        }
                        i += t.block_dim;
                    }
                    for (slot, (dist, idx)) in best.into_iter().enumerate() {
                        shared[base + slot * 2] = dist;
                        shared[base + slot * 2 + 1] = idx as f64;
                    }
                }
                _ => {
                    if t.thread == 0 {
                        // Merge all block_dim · k candidates, take top-k.
                        let mut all: Vec<(f64, usize)> = (0..t.block_dim * k)
                            .map(|s| (shared[s * 2], shared[s * 2 + 1] as usize))
                            .filter(|&(d, _)| d.is_finite())
                            .collect();
                        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                        all.truncate(k);
                        // Majority vote, ties to the smallest label.
                        let mut counts = vec![0u32; self.classes as usize];
                        for &(_, idx) in &all {
                            let label = g.load_u64(self.labels_off + idx) as usize;
                            counts[label] += 1;
                        }
                        let mut bestl = 0usize;
                        for (l, &c) in counts.iter().enumerate() {
                            if c > counts[bestl] {
                                bestl = l;
                            }
                        }
                        g.store_u64(self.preds_off + query, bestl as u64);
                    }
                }
            }
            query += t.grid_dim;
        }
    }
}

/// Classify every query on the simulated device; `block` threads cooperate
/// per query. Results are identical to [`crate::brute::classify_batch_seq`].
pub fn classify_batch_gpu(
    db: &LabeledDataset,
    queries: &LabeledDataset,
    k: usize,
    block: usize,
) -> Vec<u32> {
    assert!(!db.is_empty() && !queries.is_empty(), "need data");
    assert_eq!(db.dims(), queries.dims(), "dimensionality mismatch");
    assert!(k >= 1 && block >= 1);
    let k = k.min(db.len());
    let n = db.len();
    let d = db.dims();
    let q = queries.len();

    let labels_off = n * d;
    let queries_off = labels_off + n;
    let preds_off = queries_off + q * d;
    let mut host = vec![0.0f64; preds_off + q];
    host[..n * d].copy_from_slice(db.points.as_slice());
    host[queries_off..queries_off + q * d].copy_from_slice(queries.points.as_slice());
    let g = GlobalBuffer::from_f64(&host);
    for (i, &l) in db.labels.iter().enumerate() {
        g.store_u64(labels_off + i, l as u64);
    }

    let kernel = KnnKernel {
        n,
        d,
        q,
        k,
        classes: db.classes,
        labels_off,
        queries_off,
        preds_off,
    };
    // One block per query (see kernel note on phase semantics).
    Launch {
        grid: q,
        block,
        shared: block * k * 2,
    }
    .run(&kernel, &g);

    (0..q).map(|i| g.load_u64(preds_off + i) as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::classify_batch_seq;
    use peachy_data::matrix::Matrix;
    use peachy_data::synth::gaussian_blobs;

    #[test]
    fn matches_cpu_reference() {
        let all = gaussian_blobs(700, 6, 4, 1.5, 120);
        let db = all.select(&(0..600).collect::<Vec<_>>());
        let q = all.select(&(600..700).collect::<Vec<_>>());
        let cpu = classify_batch_seq(&db, &q, 9);
        for block in [1usize, 8, 32, 33] {
            let gpu = classify_batch_gpu(&db, &q, 9, block);
            assert_eq!(gpu, cpu, "block = {block}");
        }
    }

    #[test]
    fn handles_ties_like_cpu() {
        // Duplicate points at identical distances: the (dist, index)
        // ordering must match the heap implementation's.
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 5) as f64]).collect();
        let labels: Vec<u32> = (0..60).map(|i| (i % 3) as u32).collect();
        let db = LabeledDataset::new(Matrix::from_rows(&rows), labels, 3);
        let q = LabeledDataset::new(Matrix::from_rows(&[vec![2.0], vec![0.4]]), vec![0, 0], 3);
        for k in [1usize, 4, 9] {
            assert_eq!(
                classify_batch_gpu(&db, &q, k, 16),
                classify_batch_seq(&db, &q, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn k_clamped_to_database() {
        let db = gaussian_blobs(5, 2, 2, 1.0, 121);
        let q = gaussian_blobs(3, 2, 2, 1.0, 122);
        assert_eq!(
            classify_batch_gpu(&db, &q, 99, 8),
            classify_batch_seq(&db, &q, 99)
        );
    }

    #[test]
    fn more_threads_than_db_points() {
        let all = gaussian_blobs(40, 3, 2, 1.0, 123);
        let db = all.select(&(0..30).collect::<Vec<_>>());
        let q = all.select(&(30..40).collect::<Vec<_>>());
        assert_eq!(
            classify_batch_gpu(&db, &q, 5, 128),
            classify_batch_seq(&db, &q, 5)
        );
    }
}
