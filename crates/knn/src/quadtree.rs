//! Quad-tree spatial index — the §2 "Data Structures" adaptation, verbatim:
//! "the assignment could focus on space partitioning trees like
//! quad-trees. These can accelerate spatial search; for a 'box' of the
//! search space, compute a lower bound on the distance from its points to
//! a query point and decide whether to examine any point in the box."
//!
//! Strictly 2-D (that is what makes it a *quad* tree); each internal node
//! splits its square into four children at the midpoint. Exact k-NN with
//! the same `(dist², index)` tie-breaking as every other implementation in
//! this crate, so results are `assert_eq!`-able against brute force and
//! the KD-tree.

use peachy_data::matrix::{squared_distance, LabeledDataset};

use crate::heap::BoundedMaxHeap;
use crate::{majority_vote, Neighbor};

/// Points per leaf before splitting.
const LEAF_SIZE: usize = 16;
/// Maximum depth guard (duplicate-heavy data cannot split forever).
const MAX_DEPTH: usize = 32;

#[derive(Debug)]
enum Node {
    Leaf {
        points: Vec<usize>,
    },
    /// Children in quadrant order: [SW, SE, NW, NE] (x then y bit).
    Split {
        cx: f64,
        cy: f64,
        children: Box<[Node; 4]>,
    },
}

/// A quad-tree over a 2-D labelled dataset.
#[derive(Debug)]
pub struct QuadTree<'d> {
    db: &'d LabeledDataset,
    root: Node,
    min: (f64, f64),
    max: (f64, f64),
}

impl<'d> QuadTree<'d> {
    /// Build over a 2-D dataset. Panics unless `db.dims() == 2`.
    pub fn build(db: &'d LabeledDataset) -> Self {
        assert!(!db.is_empty(), "empty database");
        assert_eq!(db.dims(), 2, "a quad-tree indexes exactly 2-D data");
        let mut min = (f64::INFINITY, f64::INFINITY);
        let mut max = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for row in db.points.iter_rows() {
            min.0 = min.0.min(row[0]);
            min.1 = min.1.min(row[1]);
            max.0 = max.0.max(row[0]);
            max.1 = max.1.max(row[1]);
        }
        let indices: Vec<usize> = (0..db.len()).collect();
        let root = build_node(db, indices, min, max, 0);
        Self { db, root, min, max }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Exact k nearest neighbours, identical to
    /// [`crate::brute::nearest_heap`] including order.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), 2, "query must be 2-D");
        let k = k.min(self.db.len());
        let mut heap = BoundedMaxHeap::new(k);
        search(self.db, &self.root, query, self.min, self.max, &mut heap);
        heap.into_sorted()
    }

    /// Classify by majority vote of the k nearest.
    pub fn classify(&self, query: &[f64], k: usize) -> u32 {
        majority_vote(&self.nearest(query, k), self.db.classes)
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { children, .. } => {
                    1 + children.iter().map(d).max().expect("4 children")
                }
            }
        }
        d(&self.root)
    }
}

fn build_node(
    db: &LabeledDataset,
    indices: Vec<usize>,
    min: (f64, f64),
    max: (f64, f64),
    depth: usize,
) -> Node {
    if indices.len() <= LEAF_SIZE || depth >= MAX_DEPTH {
        return Node::Leaf { points: indices };
    }
    let cx = (min.0 + max.0) / 2.0;
    let cy = (min.1 + max.1) / 2.0;
    let mut quads: [Vec<usize>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for i in indices {
        let x = db.points.get(i, 0);
        let y = db.points.get(i, 1);
        let q = usize::from(x >= cx) | (usize::from(y >= cy) << 1);
        quads[q].push(i);
    }
    // Degenerate split (all points in one quadrant at the boundary): leaf.
    if quads.iter().filter(|q| !q.is_empty()).count() <= 1 && depth > 0 {
        let only = quads
            .into_iter()
            .find(|q| !q.is_empty())
            .unwrap_or_default();
        return Node::Leaf { points: only };
    }
    let [sw, se, nw, ne] = quads;
    let children = Box::new([
        build_node(db, sw, min, (cx, cy), depth + 1),
        build_node(db, se, (cx, min.1), (max.0, cy), depth + 1),
        build_node(db, nw, (min.0, cy), (cx, max.1), depth + 1),
        build_node(db, ne, (cx, cy), max, depth + 1),
    ]);
    Node::Split { cx, cy, children }
}

/// Squared distance from `q` to the box `[min, max]` — the assignment's
/// pruning lower bound.
fn box_bound(q: &[f64], min: (f64, f64), max: (f64, f64)) -> f64 {
    let dx = if q[0] < min.0 {
        min.0 - q[0]
    } else if q[0] > max.0 {
        q[0] - max.0
    } else {
        0.0
    };
    let dy = if q[1] < min.1 {
        min.1 - q[1]
    } else if q[1] > max.1 {
        q[1] - max.1
    } else {
        0.0
    };
    dx * dx + dy * dy
}

fn search(
    db: &LabeledDataset,
    node: &Node,
    query: &[f64],
    min: (f64, f64),
    max: (f64, f64),
    heap: &mut BoundedMaxHeap,
) {
    if heap.prunable(box_bound(query, min, max)) {
        return;
    }
    match node {
        Node::Leaf { points } => {
            for &i in points {
                let d2 = squared_distance(db.points.row(i), query);
                heap.offer(Neighbor {
                    dist2: d2,
                    index: i,
                    label: db.labels[i],
                });
            }
        }
        Node::Split { cx, cy, children } => {
            let (cx, cy) = (*cx, *cy);
            let boxes = [
                (min, (cx, cy)),
                ((cx, min.1), (max.0, cy)),
                ((min.0, cy), (cx, max.1)),
                ((cx, cy), max),
            ];
            // Visit children nearest-first for better pruning.
            let mut order: [usize; 4] = [0, 1, 2, 3];
            let bounds: Vec<f64> = boxes
                .iter()
                .map(|&(lo, hi)| box_bound(query, lo, hi))
                .collect();
            order.sort_by(|&a, &b| bounds[a].partial_cmp(&bounds[b]).expect("finite"));
            for &ci in &order {
                let (lo, hi) = boxes[ci];
                search(db, &children[ci], query, lo, hi, heap);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::nearest_heap;
    use crate::kdtree::KdTree;
    use peachy_data::matrix::Matrix;
    use peachy_data::synth::{concentric_rings, gaussian_blobs, two_moons};

    #[test]
    fn matches_brute_force_exactly() {
        let db = gaussian_blobs(800, 2, 4, 2.0, 5);
        let queries = gaussian_blobs(60, 2, 4, 2.0, 6);
        let tree = QuadTree::build(&db);
        for q in 0..queries.len() {
            let query = queries.points.row(q);
            for k in [1, 7, 25] {
                assert_eq!(
                    tree.nearest(query, k),
                    nearest_heap(&db, query, k),
                    "q={q} k={k}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_kdtree_on_rings() {
        let db = concentric_rings(700, 3, 0.1, 7);
        let queries = concentric_rings(50, 3, 0.1, 8);
        let quad = QuadTree::build(&db);
        let kd = KdTree::build(&db);
        for q in 0..queries.len() {
            let query = queries.points.row(q);
            assert_eq!(quad.nearest(query, 9), kd.nearest(query, 9));
        }
    }

    #[test]
    fn handles_duplicates_and_ties() {
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|i| vec![(i % 4) as f64, (i % 3) as f64])
            .collect();
        let db = LabeledDataset::new(Matrix::from_rows(&rows), vec![0; 120], 1);
        let tree = QuadTree::build(&db);
        let nn = tree.nearest(&[1.0, 1.0], 7);
        assert_eq!(nn, nearest_heap(&db, &[1.0, 1.0], 7));
    }

    #[test]
    fn all_identical_points_terminate() {
        let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![3.0, 3.0]).collect();
        let db = LabeledDataset::new(Matrix::from_rows(&rows), vec![0; 100], 1);
        let tree = QuadTree::build(&db);
        assert_eq!(tree.nearest(&[0.0, 0.0], 5).len(), 5);
        assert!(tree.depth() <= MAX_DEPTH + 1);
    }

    #[test]
    fn query_far_outside() {
        let db = two_moons(300, 0.05, 9);
        let tree = QuadTree::build(&db);
        let far = [500.0, -500.0];
        assert_eq!(tree.nearest(&far, 3), nearest_heap(&db, &far, 3));
    }

    #[test]
    fn classify_matches_brute() {
        let db = two_moons(400, 0.08, 10);
        let queries = two_moons(60, 0.08, 11);
        let tree = QuadTree::build(&db);
        for q in 0..queries.len() {
            let query = queries.points.row(q);
            assert_eq!(
                tree.classify(query, 5),
                crate::brute::classify_heap(&db, query, 5)
            );
        }
    }

    #[test]
    #[should_panic(expected = "exactly 2-D")]
    fn rejects_non_2d() {
        let db = gaussian_blobs(10, 3, 2, 1.0, 1);
        QuadTree::build(&db);
    }

    #[test]
    fn box_bound_cases() {
        assert_eq!(box_bound(&[0.5, 0.5], (0.0, 0.0), (1.0, 1.0)), 0.0);
        assert_eq!(box_bound(&[2.0, 0.5], (0.0, 0.0), (1.0, 1.0)), 1.0);
        assert_eq!(box_bound(&[-1.0, -1.0], (0.0, 0.0), (1.0, 1.0)), 2.0);
    }
}
