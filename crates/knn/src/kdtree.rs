//! KD-tree: the "Data Structures" adaptation of §2.
//!
//! The assignment suggests space-partitioning trees that "can accelerate
//! spatial search; for a 'box' of the search space, compute a lower bound
//! on the distance from its points to a query point and decide whether to
//! examine any point in the box". This KD-tree does exactly that: each
//! node owns an axis-aligned box; traversal prunes any subtree whose box
//! lower-bound distance cannot beat the current k-th best.
//!
//! The build recursion is parallelized with `rayon::join` (the "more
//! challenging" variant: *build the tree in parallel*).

use peachy_data::matrix::{squared_distance, LabeledDataset};

use crate::heap::BoundedMaxHeap;
use crate::{majority_vote, Neighbor};

/// Leaf size below which nodes store points directly.
const LEAF_SIZE: usize = 16;
/// Subtree size below which the parallel build goes sequential.
const PAR_BUILD_CUTOFF: usize = 4096;

#[derive(Debug)]
enum Node {
    Leaf {
        /// Indices into the dataset.
        points: Vec<usize>,
    },
    Split {
        axis: usize,
        /// Split coordinate: left ≤ value < right.
        value: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A KD-tree over a labelled dataset, for exact k-NN queries.
#[derive(Debug)]
pub struct KdTree<'d> {
    db: &'d LabeledDataset,
    root: Node,
    /// Global bounding box (min, max per dimension).
    bounds: (Vec<f64>, Vec<f64>),
}

impl<'d> KdTree<'d> {
    /// Build sequentially.
    pub fn build(db: &'d LabeledDataset) -> Self {
        Self::build_inner(db, false)
    }

    /// Build with parallel recursion over the rayon pool.
    pub fn build_par(db: &'d LabeledDataset) -> Self {
        Self::build_inner(db, true)
    }

    fn build_inner(db: &'d LabeledDataset, parallel: bool) -> Self {
        assert!(!db.is_empty(), "empty database");
        let d = db.dims();
        let mut min = vec![f64::INFINITY; d];
        let mut max = vec![f64::NEG_INFINITY; d];
        for row in db.points.iter_rows() {
            for (j, &v) in row.iter().enumerate() {
                min[j] = min[j].min(v);
                max[j] = max[j].max(v);
            }
        }
        let mut indices: Vec<usize> = (0..db.len()).collect();
        let root = build_node(db, &mut indices, 0, parallel);
        Self {
            db,
            root,
            bounds: (min, max),
        }
    }

    /// Number of points indexed.
    pub fn len(&self) -> usize {
        self.db.len()
    }

    /// Always false (construction requires a non-empty dataset).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Exact k nearest neighbours of `query`, identical (including order)
    /// to [`crate::brute::nearest_heap`].
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.db.dims(), "query dimensionality mismatch");
        let k = k.min(self.db.len());
        let mut heap = BoundedMaxHeap::new(k);
        // Working copy of the query's clamped coordinates relative to the
        // current box: tracks the lower-bound distance incrementally.
        let mut lo = self.bounds.0.clone();
        let mut hi = self.bounds.1.clone();
        let root_bound = box_lower_bound(query, &lo, &hi);
        search(
            self.db, &self.root, query, root_bound, &mut lo, &mut hi, &mut heap,
        );
        heap.into_sorted()
    }

    /// Classify by k-NN + majority vote.
    pub fn classify(&self, query: &[f64], k: usize) -> u32 {
        majority_vote(&self.nearest(query, k), self.db.classes)
    }

    /// Tree depth (for balance diagnostics).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

/// Squared distance from `query` to the axis-aligned box `[lo, hi]` —
/// the pruning lower bound the assignment describes.
fn box_lower_bound(query: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ((&q, &l), &h) in query.iter().zip(lo).zip(hi) {
        let d = if q < l {
            l - q
        } else if q > h {
            q - h
        } else {
            0.0
        };
        acc += d * d;
    }
    acc
}

fn build_node(db: &LabeledDataset, indices: &mut [usize], depth: usize, parallel: bool) -> Node {
    if indices.len() <= LEAF_SIZE {
        return Node::Leaf {
            points: indices.to_vec(),
        };
    }
    // Axis: widest spread at this node (better than round-robin for skewed
    // data); fall back to depth % d on ties.
    let d = db.dims();
    let mut best_axis = depth % d;
    let mut best_spread = -1.0;
    for axis in 0..d {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &i in indices.iter() {
            let v = db.points.get(i, axis);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let spread = hi - lo;
        if spread > best_spread {
            best_spread = spread;
            best_axis = axis;
        }
    }
    if best_spread == 0.0 {
        // All points identical in every axis: cannot split.
        return Node::Leaf {
            points: indices.to_vec(),
        };
    }
    let axis = best_axis;
    // Median split via select_nth_unstable on the axis coordinate.
    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        db.points
            .get(a, axis)
            .partial_cmp(&db.points.get(b, axis))
            .expect("finite coordinates")
            .then(a.cmp(&b))
    });
    let value = db.points.get(indices[mid], axis);
    let (left_idx, right_idx) = indices.split_at_mut(mid);
    let (left, right) = if parallel && indices_len_over_cutoff(left_idx, right_idx) {
        let (l, r) = rayon::join(
            || build_node(db, left_idx, depth + 1, true),
            || build_node(db, right_idx, depth + 1, true),
        );
        (l, r)
    } else {
        (
            build_node(db, left_idx, depth + 1, parallel),
            build_node(db, right_idx, depth + 1, parallel),
        )
    };
    Node::Split {
        axis,
        value,
        left: Box::new(left),
        right: Box::new(right),
    }
}

fn indices_len_over_cutoff(a: &[usize], b: &[usize]) -> bool {
    a.len() + b.len() > PAR_BUILD_CUTOFF
}

#[allow(clippy::too_many_arguments)]
fn search(
    db: &LabeledDataset,
    node: &Node,
    query: &[f64],
    bound: f64,
    lo: &mut [f64],
    hi: &mut [f64],
    heap: &mut BoundedMaxHeap,
) {
    if heap.prunable(bound) {
        return; // the whole box cannot beat the current k-th best
    }
    match node {
        Node::Leaf { points } => {
            for &i in points {
                let d2 = squared_distance(db.points.row(i), query);
                // Offer unconditionally: equal-distance candidates may still
                // win the (dist, index) tie-break against the current worst.
                heap.offer(Neighbor {
                    dist2: d2,
                    index: i,
                    label: db.labels[i],
                });
            }
        }
        Node::Split {
            axis,
            value,
            left,
            right,
        } => {
            let axis = *axis;
            let value = *value;
            // Visit the side containing the query first.
            let query_left = query[axis] < value;
            let (first, second) = if query_left {
                (left.as_ref(), right.as_ref())
            } else {
                (right.as_ref(), left.as_ref())
            };
            // Near side: box shrinks but the bound cannot increase past the
            // current bound on the query's own side.
            {
                let (saved_lo, saved_hi) = (lo[axis], hi[axis]);
                if query_left {
                    hi[axis] = hi[axis].min(value);
                } else {
                    lo[axis] = lo[axis].max(value);
                }
                search(db, first, query, bound, lo, hi, heap);
                lo[axis] = saved_lo;
                hi[axis] = saved_hi;
            }
            // Far side: recompute the bound with the split plane applied.
            {
                let (saved_lo, saved_hi) = (lo[axis], hi[axis]);
                if query_left {
                    lo[axis] = lo[axis].max(value);
                } else {
                    hi[axis] = hi[axis].min(value);
                }
                let far_bound = box_lower_bound(query, lo, hi);
                search(db, second, query, far_bound, lo, hi, heap);
                lo[axis] = saved_lo;
                hi[axis] = saved_hi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::nearest_heap;
    use peachy_data::matrix::Matrix;
    use peachy_data::synth::{concentric_rings, gaussian_blobs};

    #[test]
    fn matches_brute_force_exactly() {
        for (d, seed) in [(2usize, 1u64), (5, 2), (12, 3)] {
            let db = gaussian_blobs(500, d, 4, 3.0, seed);
            let queries = gaussian_blobs(40, d, 4, 3.0, seed + 100);
            let tree = KdTree::build(&db);
            for q in 0..queries.len() {
                let query = queries.points.row(q);
                for k in [1, 7, 23] {
                    assert_eq!(
                        tree.nearest(query, k),
                        nearest_heap(&db, query, k),
                        "d={d} q={q} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_build_equals_sequential_results() {
        let db = gaussian_blobs(6000, 3, 5, 2.0, 9);
        let queries = gaussian_blobs(30, 3, 5, 2.0, 10);
        let seq = KdTree::build(&db);
        let par = KdTree::build_par(&db);
        for q in 0..queries.len() {
            let query = queries.points.row(q);
            assert_eq!(seq.nearest(query, 9), par.nearest(query, 9));
        }
    }

    #[test]
    fn handles_duplicate_points() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 3) as f64, 0.0]).collect();
        let db = LabeledDataset::new(Matrix::from_rows(&rows), vec![0; 100], 1);
        let tree = KdTree::build(&db);
        let nn = tree.nearest(&[1.0, 0.0], 5);
        assert_eq!(nn.len(), 5);
        assert!(nn.iter().all(|n| n.dist2 == 0.0));
        assert_eq!(nn, nearest_heap(&db, &[1.0, 0.0], 5));
    }

    #[test]
    fn all_identical_points() {
        let rows: Vec<Vec<f64>> = (0..50).map(|_| vec![2.0, 2.0]).collect();
        let db = LabeledDataset::new(Matrix::from_rows(&rows), vec![0; 50], 1);
        let tree = KdTree::build(&db);
        assert_eq!(tree.nearest(&[0.0, 0.0], 3).len(), 3);
    }

    #[test]
    fn query_outside_bounding_box() {
        let db = gaussian_blobs(200, 2, 2, 1.0, 5);
        let tree = KdTree::build(&db);
        let far = [1000.0, -1000.0];
        assert_eq!(tree.nearest(&far, 4), nearest_heap(&db, &far, 4));
    }

    #[test]
    fn classify_agrees_with_brute() {
        let db = concentric_rings(600, 3, 0.1, 8);
        let queries = concentric_rings(100, 3, 0.1, 9);
        let tree = KdTree::build(&db);
        for q in 0..queries.len() {
            let query = queries.points.row(q);
            assert_eq!(
                tree.classify(query, 5),
                crate::brute::classify_heap(&db, query, 5)
            );
        }
    }

    #[test]
    fn depth_is_logarithmic_for_balanced_data() {
        let db = gaussian_blobs(4096, 3, 1, 5.0, 4);
        let tree = KdTree::build(&db);
        // 4096 points / leaf 16 = 256 leaves → ~8 split levels + leaf.
        assert!(tree.depth() <= 14, "depth = {}", tree.depth());
    }

    #[test]
    fn box_lower_bound_cases() {
        let lo = [0.0, 0.0];
        let hi = [1.0, 1.0];
        assert_eq!(box_lower_bound(&[0.5, 0.5], &lo, &hi), 0.0); // inside
        assert_eq!(box_lower_bound(&[2.0, 0.5], &lo, &hi), 1.0); // right of box
        assert_eq!(box_lower_bound(&[2.0, 2.0], &lo, &hi), 2.0); // corner
    }
}
