//! Property tests: collectives must agree with their sequential definitions
//! for arbitrary cluster sizes, roots, and payloads.

use peachy_cluster::{Cluster, NodeMap};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn broadcast_delivers_root_value(n in 1usize..9, root_sel in 0usize..100, payload in any::<i64>()) {
        let root = root_sel % n;
        let out = Cluster::run(n, move |comm| {
            let v = if comm.rank() == root { payload } else { i64::MIN };
            comm.broadcast(root, v)
        });
        prop_assert_eq!(out, vec![payload; n]);
    }

    #[test]
    fn reduce_equals_sequential_fold(n in 1usize..9, root_sel in 0usize..100, values in prop::collection::vec(-1000i64..1000, 9)) {
        let root = root_sel % n;
        let vals = values.clone();
        let out = Cluster::run(n, move |comm| {
            comm.reduce(root, vals[comm.rank()], |a, b| a + b)
        });
        let expected: i64 = values[..n].iter().sum();
        prop_assert_eq!(out[root], Some(expected));
    }

    #[test]
    fn allreduce_min_all_ranks_agree(n in 1usize..9, values in prop::collection::vec(any::<i32>(), 9)) {
        let vals = values.clone();
        let out = Cluster::run(n, move |comm| {
            comm.allreduce(vals[comm.rank()], |a, b| a.min(b))
        });
        let expected = *values[..n].iter().min().unwrap();
        prop_assert_eq!(out, vec![expected; n]);
    }

    #[test]
    fn allgather_preserves_rank_order(n in 1usize..9, values in prop::collection::vec(any::<u16>(), 9)) {
        let vals = values.clone();
        let out = Cluster::run(n, move |comm| comm.allgather(vals[comm.rank()]));
        let expected = values[..n].to_vec();
        for v in out {
            prop_assert_eq!(&v, &expected);
        }
    }

    #[test]
    fn scatter_gather_roundtrip(n in 1usize..9, root_sel in 0usize..100, values in prop::collection::vec(any::<i16>(), 9)) {
        let root = root_sel % n;
        let vals = values[..n].to_vec();
        let expected = vals.clone();
        let out = Cluster::run(n, move |comm| {
            let chunks = (comm.rank() == root).then(|| vals.clone());
            let mine = comm.scatter(root, chunks);
            comm.gather(root, mine)
        });
        prop_assert_eq!(out[root].clone(), Some(expected));
    }

    #[test]
    fn alltoall_is_transpose(n in 1usize..8) {
        let out = Cluster::run(n, move |comm| {
            let data: Vec<(usize, usize)> = (0..n).map(|dst| (comm.rank(), dst)).collect();
            comm.alltoall(data)
        });
        for (rank, row) in out.into_iter().enumerate() {
            for (src, (from, to)) in row.into_iter().enumerate() {
                prop_assert_eq!(from, src);
                prop_assert_eq!(to, rank);
            }
        }
    }

    #[test]
    fn scan_matches_prefix_fold(n in 1usize..9, values in prop::collection::vec(-100i64..100, 9)) {
        let vals = values.clone();
        let out = Cluster::run(n, move |comm| comm.scan(vals[comm.rank()], |a, b| a + b));
        let mut acc = 0;
        for (rank, v) in out.into_iter().enumerate() {
            acc += values[rank];
            prop_assert_eq!(v, acc);
        }
    }

    #[test]
    fn hierarchical_reduce_equals_flat(n in 1usize..10, rpn in 1usize..5, root_sel in 0usize..100, values in prop::collection::vec(-500i64..500, 10)) {
        let root = root_sel % n;
        let vals = values.clone();
        let out = Cluster::run(n, move |comm| {
            comm.hierarchical_reduce(NodeMap::block(rpn), root, vals[comm.rank()], |a, b| a + b)
        });
        let expected: i64 = values[..n].iter().sum();
        prop_assert_eq!(out[root], Some(expected));
    }
}
