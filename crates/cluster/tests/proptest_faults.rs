//! Chaos property tests: collectives under reproducible fault injection.
//!
//! Two invariants, enforced under a watchdog so a regression can only fail,
//! never hang the suite:
//!
//! * **benign chaos is invisible** — plans that delay, duplicate, or
//!   reorder messages (but never drop them or kill ranks) leave every
//!   collective's result bit-identical to the fault-free run;
//! * **death terminates the job** — plans that kill a rank mid-collective
//!   end with the victim classified `Killed` and *every* survivor
//!   returning a `PeerDead`-classified error: no deadlocks, no partial
//!   completions of the full collective suite.
//!
//! The CI fault-injection job runs the fixed seed matrix below plus one
//! extra seed from `PEACHY_CHAOS_SEED` (logged for reproduction).

use std::time::Duration;

use peachy_cluster::{
    Cluster, Comm, EdgeFault, FaultPlan, RankError, RankErrorKind, RecvError, Shared,
};
use proptest::prelude::*;

/// Hard ceiling on one chaos run; generous next to the µs-scale injected
/// delays, tiny next to a real hang.
const WATCHDOG: Duration = Duration::from_secs(60);

/// Run `f` on its own thread and panic if it outlives the watchdog —
/// turning a would-be deadlock into a clean failure.
fn with_watchdog<T, F>(f: F) -> T
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(_) => panic!("watchdog: chaos run exceeded {WATCHDOG:?} — deadlock?"),
    }
}

/// Every collective in one pass; the digest is rank-independent wherever a
/// collective returns the same value everywhere, so fault-free and chaotic
/// runs can be compared element-wise.
fn collective_suite(comm: &mut Comm) -> Vec<i64> {
    let n = comm.size();
    let rank = comm.rank();
    let mut digest = Vec::new();
    comm.barrier();
    digest.push(comm.broadcast(0, if rank == 0 { 4096 } else { 0 }));
    let reduced = comm.reduce(0, rank as i64 + 1, |a, b| a + b);
    digest.push(reduced.unwrap_or(-1));
    digest.push(comm.allreduce(rank as i64, |a, b| a.max(b)));
    let chunks = (rank == 0).then(|| (0..n as i64).map(|i| i * 3 + 1).collect::<Vec<_>>());
    digest.push(comm.scatter(0, chunks));
    let gathered = comm.gather(0, rank as i64 * 7);
    digest.push(gathered.map(|v| v.iter().sum::<i64>()).unwrap_or(-1));
    let a2a = comm.alltoall((0..n).map(|dst| (rank * n + dst) as i64).collect::<Vec<_>>());
    digest.push(a2a.iter().sum());
    digest.push(comm.allgather(rank as i64).iter().sum());
    digest
}

fn run_suite(n: usize, plan: FaultPlan) -> Vec<Result<Vec<i64>, RankError>> {
    with_watchdog(move || Cluster::run_with_plan(n, &plan, collective_suite))
}

/// The zero-copy (`Arc`-payload) collectives in one pass. Same digest idea
/// as [`collective_suite`], but every payload travels as a shared envelope
/// — the path where a fault plan's ghost duplicates must stay payload-free
/// and drop/reorder/delay must act on the `Arc` envelope as a whole.
fn shared_collective_suite(comm: &mut Comm) -> Vec<i64> {
    let n = comm.size();
    let rank = comm.rank();
    let mut digest = Vec::new();
    let bc = comm.broadcast_shared(
        0,
        Shared::new((0..8).map(|i| (i * 13) as i64).collect::<Vec<_>>()),
    );
    digest.push(bc.iter().sum());
    let ag = comm.allgather_shared(Shared::new(vec![rank as i64 * 5; 3]));
    digest.push(ag.iter().map(|piece| piece.iter().sum::<i64>()).sum());
    let ar = comm.allreduce_shared(vec![rank as i64, 1], |a, b| {
        a.iter().zip(&b).map(|(x, y)| x + y).collect()
    });
    digest.extend(ar.iter());
    digest.push(*comm.broadcast_linear_shared(0, Shared::new(if rank == 0 { 11 } else { 0 })));
    digest
}

fn run_shared_suite(n: usize, plan: FaultPlan) -> Vec<Result<Vec<i64>, RankError>> {
    with_watchdog(move || Cluster::run_with_plan(n, &plan, shared_collective_suite))
}

/// The fault-free reference digests for a cluster of `n`.
fn reference(n: usize) -> Vec<Vec<i64>> {
    run_suite(n, FaultPlan::none())
        .into_iter()
        .map(|r| r.expect("fault-free run cannot fail"))
        .collect()
}

/// Assert the death-plan postcondition: victim `Killed`, every survivor
/// `PeerDead`, nobody hung.
fn assert_death_cascade(results: &[Result<Vec<i64>, RankError>], victim: usize, ctx: &str) {
    for (rank, r) in results.iter().enumerate() {
        let err = r
            .as_ref()
            .expect_err(&format!("{ctx}: rank {rank} must not complete the suite"));
        assert_eq!(err.rank, rank, "{ctx}");
        if rank == victim {
            assert_eq!(err.kind, RankErrorKind::Killed, "{ctx}: victim classification");
        } else {
            assert!(
                matches!(err.kind, RankErrorKind::PeerDead { .. }),
                "{ctx}: rank {rank} must report a dead peer, got {err}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Delay/duplicate/reorder plans complete every collective with results
    /// bit-identical to the fault-free run, on every rank.
    #[test]
    fn benign_chaos_is_invisible(
        n in 2usize..7,
        seed in any::<u64>(),
        dup_p in 0.0f64..0.4,
        reorder_p in 0.0f64..0.4,
        delay_us in 0u64..80,
    ) {
        let plan = FaultPlan::new(seed).all_edges(EdgeFault {
            drop_p: 0.0,
            dup_p,
            reorder_p,
            delay: Duration::from_micros(delay_us),
        });
        let chaotic = run_suite(n, plan);
        let expected = reference(n);
        for (rank, r) in chaotic.into_iter().enumerate() {
            let digest = r.expect("no kills scheduled: every rank completes");
            prop_assert_eq!(digest, expected[rank].clone(), "rank {}", rank);
        }
    }

    /// The zero-copy collectives under the same benign chaos: shared
    /// (`Arc`) payloads survive duplication (ghost markers), reordering,
    /// and delay bit-identically to a clean run — fault fates are
    /// payload-agnostic.
    #[test]
    fn benign_chaos_is_invisible_to_shared_payloads(
        n in 2usize..7,
        seed in any::<u64>(),
        dup_p in 0.0f64..0.4,
        reorder_p in 0.0f64..0.4,
        delay_us in 0u64..80,
    ) {
        let plan = FaultPlan::new(seed).all_edges(EdgeFault {
            drop_p: 0.0,
            dup_p,
            reorder_p,
            delay: Duration::from_micros(delay_us),
        });
        let chaotic = run_shared_suite(n, plan);
        let expected: Vec<Vec<i64>> = run_shared_suite(n, FaultPlan::none())
            .into_iter()
            .map(|r| r.expect("fault-free run cannot fail"))
            .collect();
        for (rank, r) in chaotic.into_iter().enumerate() {
            let digest = r.expect("no kills scheduled: every rank completes");
            prop_assert_eq!(digest, expected[rank].clone(), "rank {}", rank);
        }
    }

    /// Killing one rank mid-collective terminates the whole job (watchdog):
    /// the victim reports `Killed`, every survivor `PeerDead`.
    #[test]
    fn rank_death_cascades_to_every_survivor(
        n in 3usize..7,
        seed in any::<u64>(),
        victim_sel in 0usize..100,
        kill_after in 0u64..2,
    ) {
        let victim = victim_sel % n;
        let plan = FaultPlan::new(seed).kill(victim, kill_after);
        let results = run_suite(n, plan);
        assert_death_cascade(&results, victim, &format!("seed {seed} victim {victim}"));
    }

    /// Death and benign chaos combined: survivors still all abort, still no
    /// hang, even with duplicates and reordering in flight.
    #[test]
    fn death_amid_benign_chaos_still_terminates(
        n in 3usize..6,
        seed in any::<u64>(),
        victim_sel in 0usize..100,
        dup_p in 0.0f64..0.3,
        reorder_p in 0.0f64..0.3,
    ) {
        let victim = victim_sel % n;
        let plan = FaultPlan::new(seed)
            .all_edges(EdgeFault { drop_p: 0.0, dup_p, reorder_p, delay: Duration::ZERO })
            .kill(victim, 1);
        let results = run_suite(n, plan);
        assert_death_cascade(&results, victim, &format!("seed {seed} victim {victim}"));
    }
}

/// The CI seed matrix: fixed seeds for regression pinning, plus one extra
/// from the environment (the CI job passes a random one and logs it).
#[test]
fn chaos_seed_matrix_death_plans_terminate() {
    let mut seeds: Vec<u64> = vec![1, 2, 3, 7, 42];
    if let Ok(extra) = std::env::var("PEACHY_CHAOS_SEED") {
        match extra.trim().parse::<u64>() {
            Ok(v) => seeds.push(v),
            Err(_) => panic!("PEACHY_CHAOS_SEED must be a u64, got {extra:?}"),
        }
    }
    for seed in seeds {
        eprintln!("chaos_seed_matrix: seed {seed}");
        let n = 5;
        let victim = (seed as usize % (n - 1)) + 1;
        let plan = FaultPlan::new(seed)
            .all_edges(EdgeFault {
                drop_p: 0.0,
                dup_p: 0.2,
                reorder_p: 0.2,
                delay: Duration::from_micros(20),
            })
            .kill(victim, seed % 2);
        let results = run_suite(n, plan);
        assert_death_cascade(&results, victim, &format!("matrix seed {seed}"));
    }
}

/// Dropped messages surface as timeouts on the failure-aware receive —
/// the legacy blocking receive is never used with lossy plans.
#[test]
fn full_drop_plan_times_out_cleanly() {
    let plan = FaultPlan::new(3).edge(
        0,
        1,
        EdgeFault {
            drop_p: 1.0,
            ..EdgeFault::none()
        },
    );
    let results = with_watchdog(move || {
        Cluster::run_with_plan(2, &plan, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, 123i32); // eaten by the wire
                comm.sent_count()
            } else {
                let got = comm.recv_timeout::<i32>(0, 9, Duration::from_millis(50));
                assert_eq!(got, Err(RecvError::Timeout));
                0
            }
        })
    });
    assert_eq!(results[0], Ok(1), "drop still counts as a send event");
}
