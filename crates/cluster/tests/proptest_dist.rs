//! Partition laws: property tests every `Distribution` impl must satisfy.
//!
//! For each of `Block`, `EvenBlocks`, `Cyclic`, and `BlockCyclic`:
//! * the per-part index sets are pairwise disjoint,
//! * their union covers `0..n` exactly,
//! * `owner_of(i)` agrees with the part whose `part_indices` contain `i`,
//! * the part count clips when more parts are requested than indices
//!   (every surviving part non-empty),
//! and for the contiguous impls, `range_of` tiles `0..n` in part order.

use proptest::prelude::*;

use peachy_cluster::dist::{
    block_range, Block, BlockCyclic, Contiguous, Cyclic, Distribution, EvenBlocks,
};

/// Check the partition laws for any distribution.
fn check_partition_laws<D: Distribution>(dist: &D, n: usize) {
    assert_eq!(dist.len(), n);
    assert!(!dist.is_empty(), "typed distributions are never empty");
    let parts = dist.parts();
    assert!(parts >= 1 && parts <= n, "1 <= parts={parts} <= n={n}");

    let mut seen = vec![usize::MAX; n];
    for p in 0..parts {
        let indices = dist.part_indices(p);
        assert!(!indices.is_empty(), "part {p} of {parts} must own something");
        for &i in &indices {
            assert!(i < n, "index {i} outside domain of {n}");
            assert_eq!(seen[i], usize::MAX, "index {i} owned twice");
            seen[i] = p;
            assert_eq!(dist.owner_of(i), p, "owner_of({i}) disagrees with part {p}");
        }
    }
    for (i, &owner) in seen.iter().enumerate() {
        assert_ne!(owner, usize::MAX, "index {i} unowned");
    }
}

/// Extra law for contiguous distributions: ranges tile `0..n` in order.
fn check_contiguous_tiling<D: Contiguous>(dist: &D) {
    let mut next = 0;
    for p in 0..dist.parts() {
        let r = dist.range_of(p);
        assert_eq!(r.start, next, "part {p} does not start where {} ended", p.wrapping_sub(1));
        assert!(r.end > r.start, "part {p} empty");
        next = r.end;
    }
    assert_eq!(next, dist.len());
}

proptest! {
    #[test]
    fn free_block_range_tiles_any_domain(n in 0usize..500, parts in 1usize..40) {
        // The free function is total: n = 0 and parts > n both legal,
        // trailing parts empty.
        let mut next = 0;
        for p in 0..parts {
            let r = block_range(n, parts, p);
            prop_assert_eq!(r.start, next);
            next = r.end;
            // Balanced rule: sizes differ by at most one, larger first.
            prop_assert!(r.len() == n / parts || r.len() == n / parts + 1);
        }
        prop_assert_eq!(next, n);
    }

    #[test]
    fn block_satisfies_partition_laws(n in 1usize..400, parts in 1usize..40) {
        let dist = Block::new(n, parts);
        check_partition_laws(&dist, n);
        check_contiguous_tiling(&dist);
        // Clipping: never more parts than indices.
        prop_assert_eq!(dist.parts(), parts.min(n));
        // Agreement with the free function over the clipped part count.
        for p in 0..dist.parts() {
            prop_assert_eq!(dist.range_of(p), block_range(n, dist.parts(), p));
        }
    }

    #[test]
    fn even_blocks_satisfy_partition_laws(n in 1usize..400, parts in 1usize..40) {
        let dist = EvenBlocks::new(n, parts);
        check_partition_laws(&dist, n);
        check_contiguous_tiling(&dist);
        prop_assert!(dist.parts() <= parts);
        // The par_chunks contract: all parts but the last have exactly
        // chunk_len indices, and chunk_len = ceil(n / requested).
        prop_assert_eq!(dist.chunk_len(), n.div_ceil(parts));
        for p in 0..dist.parts() - 1 {
            prop_assert_eq!(dist.range_of(p).len(), dist.chunk_len());
        }
    }

    #[test]
    fn cyclic_satisfies_partition_laws(n in 1usize..400, parts in 1usize..40) {
        let dist = Cyclic::new(n, parts);
        check_partition_laws(&dist, n);
        prop_assert_eq!(dist.parts(), parts.min(n));
    }

    #[test]
    fn block_cyclic_satisfies_partition_laws(
        n in 1usize..400,
        parts in 1usize..40,
        block in 1usize..20,
    ) {
        let dist = BlockCyclic::new(n, parts, block);
        check_partition_laws(&dist, n);
        prop_assert!(dist.parts() <= n.div_ceil(block));
    }

    #[test]
    fn block_owner_is_inverse_of_range(n in 1usize..400, parts in 1usize..40, i in 0usize..400) {
        let i = i % n;
        let dist = Block::new(n, parts);
        let p = dist.owner_of(i);
        prop_assert!(dist.local_range(p).contains(&i));
    }
}
