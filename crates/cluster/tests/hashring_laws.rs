//! Consistent-hashing stability laws for [`HashRing`].
//!
//! The ring exists for exactly one reason: membership changes must move
//! almost nothing. These tests pin that as two laws over a seed × size
//! grid:
//!
//! 1. **Monotonicity** (strict, not statistical): growing the ring from
//!    `n` to `n+1` members changes a key's owner only if the new owner
//!    *is* the new member; shrinking changes it only for keys the removed
//!    member owned. No key ever moves between two surviving members.
//! 2. **Minimal movement** (statistical, generous slack): the fraction
//!    moved on grow is close to `1/(n+1)` — and far below the mod-hash
//!    strawman `owner_of_key`, which moves ~`n/(n+1)` of everything.
//!
//! Both laws hold per seed, so the grid runs a few seeds and several ring
//! sizes; `vnodes = 64` keeps arc-length variance small enough for the
//! statistical bound without slowing the suite.

use peachy_cluster::dist::owner_of_key;
use peachy_cluster::HashRing;

const KEYS: u64 = 2000;
const VNODES: usize = 64;

fn owners(ring: &HashRing) -> Vec<usize> {
    (0..KEYS).map(|k| ring.owner_of_key(&k)).collect()
}

#[test]
fn growth_only_moves_keys_to_the_new_member() {
    for seed in [1u64, 2, 7, 42] {
        for n in [2usize, 3, 5, 8] {
            let ring = HashRing::new(0..n, VNODES, seed);
            let grown = ring.with_member(n);
            for (key, (&before, &after)) in owners(&ring).iter().zip(&owners(&grown)).enumerate() {
                if before != after {
                    assert_eq!(
                        after, n,
                        "seed {seed} n {n}: key {key} moved {before} → {after}, \
                         but only the new member may gain keys"
                    );
                }
            }
        }
    }
}

#[test]
fn shrink_only_moves_the_removed_members_keys() {
    for seed in [1u64, 2, 7, 42] {
        for n in [3usize, 5, 8] {
            let ring = HashRing::new(0..n, VNODES, seed);
            let removed = n / 2;
            let shrunk = ring.without_member(removed);
            for (key, (&before, &after)) in owners(&ring).iter().zip(&owners(&shrunk)).enumerate() {
                if before != after {
                    assert_eq!(
                        before, removed,
                        "seed {seed} n {n}: key {key} moved {before} → {after}, \
                         but only the removed member's keys may move"
                    );
                }
            }
        }
    }
}

#[test]
fn growth_moves_about_one_nth_and_beats_mod_hash() {
    for seed in [1u64, 2, 7, 42] {
        for n in [2usize, 4, 8] {
            let ring = HashRing::new(0..n, VNODES, seed);
            let grown = ring.with_member(n);
            let ring_moved = owners(&ring)
                .iter()
                .zip(&owners(&grown))
                .filter(|(b, a)| b != a)
                .count() as u64;

            // Expectation is K/(n+1); vnode arc-length variance gives
            // slack, but 2× expectation stays comfortably clear of it.
            let expected = KEYS / (n as u64 + 1);
            assert!(
                ring_moved <= 2 * expected,
                "seed {seed} n {n}: ring moved {ring_moved} of {KEYS} keys \
                 (expected ≈{expected})"
            );
            assert!(ring_moved > 0, "seed {seed} n {n}: the new member got nothing");

            // The mod-hash strawman reshuffles ≈ n/(n+1) of the keys — n×
            // the ring's share. Requiring a 1.5× margin keeps the law sharp
            // for every n ≥ 2 while leaving room for arc-length variance
            // (at n = 2 the expected ratio is exactly 2×).
            let mod_moved = (0..KEYS)
                .filter(|k| owner_of_key(k, n, seed) != owner_of_key(k, n + 1, seed))
                .count() as u64;
            assert!(
                ring_moved * 3 < mod_moved * 2,
                "seed {seed} n {n}: ring moved {ring_moved}, mod-hash moved {mod_moved} — \
                 the ring must move far fewer keys"
            );
        }
    }
}

#[test]
fn add_then_remove_restores_every_owner() {
    for seed in [3u64, 11] {
        let ring = HashRing::new([0, 2, 5, 9], VNODES, seed);
        let round_trip = ring.with_member(7).without_member(7);
        assert_eq!(owners(&ring), owners(&round_trip));
        assert_eq!(ring, round_trip);
    }
}
