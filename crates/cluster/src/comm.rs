//! The per-rank communicator: identity, point-to-point messaging.

use std::any::Any;

use crossbeam::channel::{Receiver, Sender};

use crate::message::{Envelope, Mailbox, MatchKey, ANY_SRC};

/// Wildcard source for [`Comm::recv_any`]-style matching.
pub const ANY_SOURCE: usize = ANY_SRC;

/// A rank's handle to the cluster: identity plus communication endpoints.
///
/// One `Comm` exists per rank, owned by that rank's thread. All methods
/// take `&mut self` because receives mutate the mailbox and collectives
/// advance the internal sequence counter.
pub struct Comm {
    rank: usize,
    senders: Vec<Sender<Envelope>>,
    mailbox: Mailbox,
    /// Sequence number for collectives; advances identically on every rank
    /// because MPI semantics require all ranks to call collectives in the
    /// same order.
    pub(crate) coll_seq: u64,
    /// Total messages sent by this rank (point-to-point + collective),
    /// useful for communication-cost assertions in tests and benches.
    sent_count: u64,
}

impl Comm {
    pub(crate) fn new(rank: usize, senders: Vec<Sender<Envelope>>, rx: Receiver<Envelope>) -> Self {
        Self {
            rank,
            senders,
            mailbox: Mailbox::new(rx),
            coll_seq: 0,
            sent_count: 0,
        }
    }

    /// This rank's id in `[0, size)`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Total messages this rank has sent so far.
    #[inline]
    pub fn sent_count(&self) -> u64 {
        self.sent_count
    }

    /// Send `value` to rank `dst` with a user `tag`. The value is moved —
    /// after sending, this rank no longer has access to it, exactly as in
    /// distributed memory.
    pub fn send<T: Send + 'static>(&mut self, dst: usize, tag: u32, value: T) {
        self.send_keyed(dst, MatchKey::User(tag), Box::new(value));
    }

    /// Receive a `T` from rank `src` with matching `tag`, blocking until it
    /// arrives. Panics if the arriving payload has a different type — a
    /// programming error analogous to mismatched MPI datatypes.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: u32) -> T {
        let env = self.mailbox.recv_match(src, MatchKey::User(tag));
        Self::downcast(env.payload, src, tag)
    }

    /// Receive a `T` with matching `tag` from *any* source; returns
    /// `(source, value)`.
    pub fn recv_any<T: Send + 'static>(&mut self, tag: u32) -> (usize, T) {
        let env = self.mailbox.recv_match(ANY_SOURCE, MatchKey::User(tag));
        let src = env.src;
        (src, Self::downcast(env.payload, src, tag))
    }

    /// Non-blocking check whether a message from `src` with `tag` has
    /// already arrived.
    pub fn probe(&mut self, src: usize, tag: u32) -> bool {
        self.mailbox.probe(src, MatchKey::User(tag))
    }

    // ---- internals shared with the collectives module ----

    pub(crate) fn send_keyed(&mut self, dst: usize, key: MatchKey, payload: Box<dyn Any + Send>) {
        assert!(
            dst < self.size(),
            "destination rank {dst} out of range (size {})",
            self.size()
        );
        self.sent_count += 1;
        self.senders[dst]
            .send(Envelope {
                src: self.rank,
                key,
                payload,
            })
            .expect("destination rank has already terminated");
    }

    pub(crate) fn recv_keyed<T: Send + 'static>(&mut self, src: usize, key: MatchKey) -> T {
        let env = self.mailbox.recv_match(src, key);
        *env.payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("type mismatch in collective message from rank {src}"))
    }

    fn downcast<T: 'static>(payload: Box<dyn Any + Send>, src: usize, tag: u32) -> T {
        *payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "type mismatch: message from rank {src} tag {tag} is not a {}",
                std::any::type_name::<T>()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::Cluster;

    #[test]
    fn send_recv_many_types() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 17u8);
                comm.send(1, 1, vec![1.0f64, 2.0]);
                comm.send(1, 2, ("tuple", 3usize));
            } else {
                assert_eq!(comm.recv::<u8>(0, 0), 17);
                assert_eq!(comm.recv::<Vec<f64>>(0, 1), vec![1.0, 2.0]);
                assert_eq!(comm.recv::<(&str, usize)>(0, 2), ("tuple", 3));
            }
        });
    }

    #[test]
    fn recv_matches_tag_not_arrival_order() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, "first");
                comm.send(1, 20, "second");
            } else {
                // Receive in reverse tag order.
                assert_eq!(comm.recv::<&str>(0, 20), "second");
                assert_eq!(comm.recv::<&str>(0, 10), "first");
            }
        });
    }

    #[test]
    fn recv_any_reports_source() {
        Cluster::run(4, |comm| {
            if comm.rank() == 0 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..3 {
                    let (src, v) = comm.recv_any::<usize>(5);
                    assert_eq!(src, v);
                    seen.insert(src);
                }
                assert_eq!(seen.len(), 3);
            } else {
                comm.send(0, 5, comm.rank());
            }
        });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1i32);
            } else {
                let _: String = comm.recv(0, 0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_rank_panics() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(9, 0, ());
            }
        });
    }

    #[test]
    fn sent_count_tracks_messages() {
        let counts = Cluster::run(3, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, ());
                comm.send(2, 0, ());
            } else {
                comm.recv::<()>(0, 0);
            }
            comm.sent_count()
        });
        assert_eq!(counts, vec![2, 0, 0]);
    }

    #[test]
    fn self_send_is_allowed() {
        Cluster::run(1, |comm| {
            comm.send(0, 3, 99u64);
            assert_eq!(comm.recv::<u64>(0, 3), 99);
        });
    }
}
