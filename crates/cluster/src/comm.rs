//! The per-rank communicator: identity, point-to-point messaging, and the
//! fault-injection transport seam.
//!
//! Every outgoing message passes through the rank's [`FaultState`] (built
//! from the run's [`FaultPlan`](crate::FaultPlan)), which may drop it,
//! duplicate it, hold it back behind later traffic, delay it, or kill the
//! sending rank outright (fail-stop). Receives come in two flavours: the
//! legacy blocking ones (which now abort cleanly — instead of hanging —
//! when the awaited peer dies), and timeout-aware variants returning
//! [`RecvError`] for failure-aware protocols like the task farm.

use std::any::Any;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};

use crate::fault::{FaultState, PeerDeadAbort, RecvError, SendFate};
use crate::message::{ByteSized, DupMarker, Envelope, Mailbox, MatchKey, ANY_SRC};

/// Wildcard source for [`Comm::recv_any`]-style matching.
pub const ANY_SOURCE: usize = ANY_SRC;

/// A rank's handle to the cluster: identity plus communication endpoints.
///
/// One `Comm` exists per rank, owned by that rank's thread. All methods
/// take `&mut self` because receives mutate the mailbox and collectives
/// advance the internal sequence counter.
pub struct Comm {
    rank: usize,
    senders: Vec<Sender<Envelope>>,
    mailbox: Mailbox,
    /// Injected transport faults for this rank (`None` = clean transport).
    fault: Option<FaultState>,
    /// Sequence number for collectives; advances identically on every rank
    /// because MPI semantics require all ranks to call collectives in the
    /// same order.
    pub(crate) coll_seq: u64,
    /// Total messages sent by this rank (point-to-point + collective),
    /// useful for communication-cost assertions in tests and benches.
    sent_count: u64,
    /// Approximate payload bytes sent by this rank ([`ByteSized`] estimate
    /// per message). Shared-payload collectives account the *logical* value
    /// moved per edge, so clone and zero-copy paths report identical totals.
    bytes_sent: u64,
    /// Messages that could not be delivered because the destination rank
    /// was already gone (fail-stop: they vanish, like packets to a dead
    /// host).
    undeliverable: u64,
}

impl Comm {
    pub(crate) fn new(
        rank: usize,
        senders: Vec<Sender<Envelope>>,
        rx: Receiver<Envelope>,
        fault: Option<FaultState>,
    ) -> Self {
        Self {
            rank,
            senders,
            mailbox: Mailbox::new(rx),
            fault,
            coll_seq: 0,
            sent_count: 0,
            bytes_sent: 0,
            undeliverable: 0,
        }
    }

    /// This rank's id in `[0, size)`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Total messages this rank has sent so far.
    #[inline]
    pub fn sent_count(&self) -> u64 {
        self.sent_count
    }

    /// Approximate payload bytes this rank has sent so far (point-to-point
    /// + collectives), as estimated by [`ByteSized`].
    #[inline]
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Messages swallowed because their destination rank was already dead
    /// or finished.
    #[inline]
    pub fn undeliverable_count(&self) -> u64 {
        self.undeliverable
    }

    /// Injected ghost duplicates this rank's mailbox has deduplicated.
    #[inline]
    pub fn dups_discarded(&self) -> u64 {
        self.mailbox.dups_discarded()
    }

    /// Send `value` to rank `dst` with a user `tag`. The value is moved —
    /// after sending, this rank no longer has access to it, exactly as in
    /// distributed memory.
    pub fn send<T: Send + ByteSized + 'static>(&mut self, dst: usize, tag: u32, value: T) {
        let bytes = value.approx_bytes() as u64;
        self.send_keyed(dst, MatchKey::User(tag), Box::new(value), bytes);
    }

    /// Receive a `T` from rank `src` with matching `tag`, blocking until it
    /// arrives. Panics if the arriving payload has a different type — a
    /// programming error analogous to mismatched MPI datatypes.
    ///
    /// If rank `src` dies first, this aborts the calling rank (classified
    /// as [`RankErrorKind::PeerDead`](crate::RankErrorKind::PeerDead) by
    /// the supervisor) instead of blocking forever. Failure-aware code
    /// should use [`Comm::recv_timeout`] and handle the error.
    pub fn recv<T: Send + 'static>(&mut self, src: usize, tag: u32) -> T {
        let env = self.recv_envelope(src, MatchKey::User(tag), None);
        Self::downcast(env.payload, src, tag)
    }

    /// Receive a `T` with matching `tag` from *any* source; returns
    /// `(source, value)`.
    pub fn recv_any<T: Send + 'static>(&mut self, tag: u32) -> (usize, T) {
        let env = self.recv_envelope(ANY_SOURCE, MatchKey::User(tag), None);
        let src = env.src;
        (src, Self::downcast(env.payload, src, tag))
    }

    /// Non-blocking receive: `Ok(Some(value))` if a matching message has
    /// already arrived, `Ok(None)` if not, `Err(PeerDead)` if rank `src`
    /// died with nothing matching buffered.
    pub fn try_recv<T: Send + 'static>(
        &mut self,
        src: usize,
        tag: u32,
    ) -> Result<Option<T>, RecvError> {
        let got = self.mailbox.try_recv_match(src, MatchKey::User(tag))?;
        Ok(got.map(|env| Self::downcast(env.payload, src, tag)))
    }

    /// Receive with a timeout: waits at most `timeout` for a matching
    /// message, returning [`RecvError::Timeout`] if none arrives,
    /// [`RecvError::PeerDead`] if rank `src` died first.
    pub fn recv_timeout<T: Send + 'static>(
        &mut self,
        src: usize,
        tag: u32,
        timeout: Duration,
    ) -> Result<T, RecvError> {
        self.recv_deadline(src, tag, Instant::now() + timeout)
    }

    /// Like [`Comm::recv_timeout`] with an absolute deadline.
    pub fn recv_deadline<T: Send + 'static>(
        &mut self,
        src: usize,
        tag: u32,
        deadline: Instant,
    ) -> Result<T, RecvError> {
        let env = self
            .mailbox
            .recv_match_result(src, MatchKey::User(tag), Some(deadline))?;
        let src = env.src;
        Ok(Self::downcast(env.payload, src, tag))
    }

    /// Timeout-aware wildcard receive: first message with `tag` from any
    /// source within `timeout`, as `(source, value)`.
    pub fn recv_any_timeout<T: Send + 'static>(
        &mut self,
        tag: u32,
        timeout: Duration,
    ) -> Result<(usize, T), RecvError> {
        let deadline = Instant::now() + timeout;
        let env = self
            .mailbox
            .recv_match_result(ANY_SOURCE, MatchKey::User(tag), Some(deadline))?;
        let src = env.src;
        Ok((src, Self::downcast(env.payload, src, tag)))
    }

    /// Non-blocking check whether a message from `src` with `tag` has
    /// already arrived.
    pub fn probe(&mut self, src: usize, tag: u32) -> bool {
        self.mailbox.probe(src, MatchKey::User(tag))
    }

    /// Peers whose death notices this rank has seen, ascending. Absorbs
    /// any pending traffic first, so the view is current.
    pub fn dead_peers(&mut self) -> Vec<usize> {
        self.mailbox.drain_channel();
        self.mailbox.dead_peers()
    }

    /// Has `rank`'s death notice reached this rank?
    pub fn is_dead(&mut self, rank: usize) -> bool {
        self.mailbox.drain_channel();
        self.mailbox.is_dead(rank)
    }

    // ---- internals shared with the collectives module ----

    /// Route one outgoing envelope through the fault seam. The message
    /// counts as *sent* (messages and `bytes` alike) even if the plan then
    /// drops it — that is the point of drop injection. Sends to a rank
    /// that already terminated are swallowed (fail-stop: the host is gone,
    /// the packet vanishes) and tallied in [`Comm::undeliverable_count`].
    pub(crate) fn send_keyed(
        &mut self,
        dst: usize,
        key: MatchKey,
        payload: Box<dyn Any + Send>,
        bytes: u64,
    ) {
        assert!(
            dst < self.size(),
            "destination rank {dst} out of range (size {})",
            self.size()
        );
        self.sent_count += 1;
        self.bytes_sent += bytes;
        let fate = match &mut self.fault {
            Some(state) => state.on_send(dst),
            None => SendFate::default(),
        };
        if fate.drop {
            return;
        }
        if !fate.delay.is_zero() {
            std::thread::sleep(fate.delay);
        }
        let mut env = Envelope::new(self.rank, key, payload);
        env.hold_back = fate.hold_back;
        if self.senders[dst].send(env).is_err() {
            self.undeliverable += 1;
            return;
        }
        if fate.duplicate {
            // Payloads are not cloneable, so the duplicate is a ghost the
            // receiving mailbox recognises and dedups.
            let _ = self.senders[dst].send(Envelope::new(self.rank, key, Box::new(DupMarker)));
        }
    }

    pub(crate) fn recv_keyed<T: Send + 'static>(&mut self, src: usize, key: MatchKey) -> T {
        let env = self.recv_envelope(src, key, None);
        *env.payload
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("type mismatch in collective message from rank {src}"))
    }

    /// Blocking receive used by the infallible interfaces. A dead awaited
    /// peer aborts the rank with a typed [`PeerDeadAbort`] payload that
    /// the supervisor classifies; any other failure is a plain panic.
    fn recv_envelope(&mut self, src: usize, key: MatchKey, deadline: Option<Instant>) -> Envelope {
        match self.mailbox.recv_match_result(src, key, deadline) {
            Ok(env) => env,
            Err(RecvError::PeerDead { peer }) => std::panic::panic_any(PeerDeadAbort { peer }),
            Err(e) => panic!("rank {}: receive from rank {src} failed: {e}", self.rank),
        }
    }

    fn downcast<T: 'static>(payload: Box<dyn Any + Send>, src: usize, tag: u32) -> T {
        *payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "type mismatch: message from rank {src} tag {tag} is not a {}",
                std::any::type_name::<T>()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cluster;

    #[test]
    fn send_recv_many_types() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 17u8);
                comm.send(1, 1, vec![1.0f64, 2.0]);
                comm.send(1, 2, ("tuple", 3usize));
            } else {
                assert_eq!(comm.recv::<u8>(0, 0), 17);
                assert_eq!(comm.recv::<Vec<f64>>(0, 1), vec![1.0, 2.0]);
                assert_eq!(comm.recv::<(&str, usize)>(0, 2), ("tuple", 3));
            }
        });
    }

    #[test]
    fn recv_matches_tag_not_arrival_order() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 10, "first");
                comm.send(1, 20, "second");
            } else {
                // Receive in reverse tag order.
                assert_eq!(comm.recv::<&str>(0, 20), "second");
                assert_eq!(comm.recv::<&str>(0, 10), "first");
            }
        });
    }

    #[test]
    fn recv_any_reports_source() {
        Cluster::run(4, |comm| {
            if comm.rank() == 0 {
                let mut seen = std::collections::HashSet::new();
                for _ in 0..3 {
                    let (src, v) = comm.recv_any::<usize>(5);
                    assert_eq!(src, v);
                    seen.insert(src);
                }
                assert_eq!(seen.len(), 3);
            } else {
                comm.send(0, 5, comm.rank());
            }
        });
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, 1i32);
            } else {
                let _: String = comm.recv(0, 0);
            }
        });
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_rank_panics() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(9, 0, ());
            }
        });
    }

    #[test]
    fn sent_count_tracks_messages() {
        let counts = Cluster::run(3, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, ());
                comm.send(2, 0, ());
            } else {
                comm.recv::<()>(0, 0);
            }
            comm.sent_count()
        });
        assert_eq!(counts, vec![2, 0, 0]);
    }

    #[test]
    fn bytes_sent_tracks_payload_sizes() {
        let counts = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![1.0f64, 2.0]);
                comm.send(1, 1, String::from("abc"));
            } else {
                assert_eq!(comm.recv::<Vec<f64>>(0, 0), vec![1.0, 2.0]);
                assert_eq!(comm.recv::<String>(0, 1), "abc");
            }
            comm.bytes_sent()
        });
        assert_eq!(counts, vec![16 + 3, 0]);
    }

    #[test]
    fn self_send_is_allowed() {
        Cluster::run(1, |comm| {
            comm.send(0, 3, 99u64);
            assert_eq!(comm.recv::<u64>(0, 3), 99);
        });
    }

    #[test]
    fn recv_timeout_expires_then_succeeds() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                // Wait for the go-ahead so the timeout below reliably fires.
                comm.recv::<()>(1, 1);
                comm.send(1, 0, 7i32);
            } else {
                let early = comm.recv_timeout::<i32>(0, 0, Duration::from_millis(10));
                assert_eq!(early, Err(RecvError::Timeout));
                comm.send(0, 1, ());
                let v = comm
                    .recv_timeout::<i32>(0, 0, Duration::from_secs(10))
                    .expect("message arrives after the go-ahead");
                assert_eq!(v, 7);
            }
        });
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.recv::<()>(1, 1);
                comm.send(1, 0, 42u64);
            } else {
                assert_eq!(comm.try_recv::<u64>(0, 0), Ok(None));
                comm.send(0, 1, ());
                loop {
                    if let Some(v) = comm.try_recv::<u64>(0, 0).expect("peer alive") {
                        assert_eq!(v, 42);
                        break;
                    }
                    std::thread::yield_now();
                }
            }
        });
    }

    #[test]
    fn send_to_finished_rank_is_swallowed() {
        let counts = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                // Rank 1 exits immediately; once its channel closes this
                // send becomes undeliverable and must not panic.
                loop {
                    comm.send(1, 0, ());
                    if comm.undeliverable_count() > 0 {
                        break;
                    }
                    std::thread::yield_now();
                }
            }
            comm.undeliverable_count()
        });
        assert!(counts[0] >= 1);
    }
}
