//! Fault injection and failure reporting: the chaos seam of the cluster.
//!
//! Real distributed assignments run on hardware that drops packets,
//! reorders them, and loses whole nodes; the teaching stacks the paper
//! leans on (Spark, Parsl) treat worker failure as a first-class event.
//! This module makes those adverse conditions *reproducible* at laptop
//! scale:
//!
//! * [`FaultPlan`] describes, per directed rank edge, the probability of
//!   dropping, duplicating, reordering, or delaying each message, plus
//!   scheduled **rank death** (fail-stop). Plans are driven by the
//!   seedable [`peachy_prng`] generators, so a chaos run is exactly
//!   repeatable from its seed.
//! * [`RecvError`] is what the timeout-aware receives on
//!   [`Comm`](crate::Comm) return instead of blocking forever.
//! * [`RankError`] is the per-rank failure report produced by
//!   [`Cluster::run_fallible`](crate::Cluster::run_fallible).
//! * [`RetryPolicy`] bounds the retry-with-reassignment loops built on
//!   top (the task farm, the resilient MapReduce driver, the dataflow
//!   partition executor).
//!
//! What the seam simulates — and what it does not — is documented in
//! DESIGN.md ("Failure model").

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

use peachy_prng::{mix_seed, Lcg64, RandomStream, SplitMix64};

/// Why a receive did not produce a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No matching message arrived within the allowed time (zero time for
    /// `try_recv`).
    Timeout,
    /// The awaited source rank is known to have died (fail-stop); no
    /// matching message from it is buffered, and none can ever arrive.
    PeerDead {
        /// The dead source rank.
        peer: usize,
    },
    /// The underlying channel is closed — the cluster is tearing down.
    Disconnected,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::PeerDead { peer } => write!(f, "peer rank {peer} is dead"),
            RecvError::Disconnected => write!(f, "cluster channel disconnected"),
        }
    }
}

impl std::error::Error for RecvError {}

/// How a rank failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankErrorKind {
    /// The rank's closure panicked; the payload message is preserved.
    Panicked(String),
    /// The rank was killed by a [`FaultPlan`] schedule (fail-stop).
    Killed,
    /// The rank aborted because a peer it depended on died first.
    PeerDead {
        /// The dead peer that caused the abort.
        peer: usize,
    },
}

/// A rank's failure report: which rank, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankError {
    /// The failed rank.
    pub rank: usize,
    /// Failure classification.
    pub kind: RankErrorKind,
}

impl RankError {
    /// Is this failure a secondary casualty of another rank's death
    /// (either classified [`RankErrorKind::PeerDead`], or a panic whose
    /// message reports a dead peer)?
    pub fn is_peer_dead(&self) -> bool {
        matches!(self.kind, RankErrorKind::PeerDead { .. })
    }

    /// Is this the primary failure (scheduled kill or own panic)?
    pub fn is_primary(&self) -> bool {
        !self.is_peer_dead()
    }
}

impl fmt::Display for RankError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            RankErrorKind::Panicked(msg) => write!(f, "rank {} panicked: {msg}", self.rank),
            RankErrorKind::Killed => write!(f, "rank {} killed by fault plan", self.rank),
            RankErrorKind::PeerDead { peer } => {
                write!(f, "rank {} aborted: peer rank {peer} died", self.rank)
            }
        }
    }
}

impl std::error::Error for RankError {}

/// Bounded-retry configuration for failure-aware executors (task farm,
/// resilient MapReduce, dataflow partition retry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per task (first run included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Sleep between attempts, scaled linearly by the attempt number
    /// (attempt 2 sleeps `backoff`, attempt 3 sleeps `2·backoff`, …).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// Sleep before retry number `attempt` (1-based count of *completed*
    /// attempts). No-op for a zero backoff.
    ///
    /// This is the *wall-clock* backoff used by thread-level retry loops
    /// (task farm, resilient MapReduce). Virtual-time components — the
    /// serving tier above all — must use [`TickBackoff`] instead: a real
    /// sleep inside a virtual-time replay perturbs nothing observable but
    /// wastes real seconds, and any future coupling to wall time would
    /// break the replay contract.
    pub fn sleep_before_retry(&self, attempt: u32) {
        if !self.backoff.is_zero() {
            std::thread::sleep(self.backoff.saturating_mul(attempt));
        }
    }
}

/// Deterministic retry backoff measured in **virtual ticks**, not wall
/// time: delay grows linearly with the attempt index plus seeded jitter,
/// so a chaotic serving run stays a pure function of
/// `(trace, config, seed)`.
///
/// `delay_ticks(attempt)` is a pure function — no clocks, no global RNG —
/// which is what lets the sharded serving tier schedule a replayed batch
/// at `now + delay` identically on every backend and every rerun. Jitter
/// is drawn from a [`SplitMix64`]-mixed stream keyed by `(seed, attempt)`,
/// so two servers with different seeds desynchronize their retry storms
/// while each remains reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickBackoff {
    /// Base delay in ticks; retry `a` waits `base·a` ticks before jitter.
    pub base: u64,
    /// Exclusive upper bound on the seeded jitter added per retry
    /// (`0` disables jitter).
    pub jitter: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for TickBackoff {
    fn default() -> Self {
        Self::none()
    }
}

impl TickBackoff {
    /// No delay at all: every retry is eligible at the next tick.
    pub fn none() -> Self {
        Self {
            base: 0,
            jitter: 0,
            seed: 0,
        }
    }

    /// Linear backoff of `base` ticks per attempt with `jitter` ticks of
    /// seeded noise.
    pub fn linear(base: u64, jitter: u64, seed: u64) -> Self {
        Self { base, jitter, seed }
    }

    /// Ticks to wait before retry number `attempt` (1-based count of
    /// completed attempts, matching
    /// [`RetryPolicy::sleep_before_retry`]). Pure: same `(self, attempt)`
    /// always yields the same delay.
    pub fn delay_ticks(&self, attempt: u32) -> u64 {
        let linear = self.base.saturating_mul(attempt as u64);
        if self.jitter == 0 {
            return linear;
        }
        let draw = SplitMix64::mix(mix_seed(self.seed) ^ (attempt as u64).wrapping_mul(0x9e37_79b9));
        linear + draw % self.jitter
    }
}

/// Per-directed-edge message fault rates. All probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EdgeFault {
    /// Probability a message is silently dropped (lost on the wire).
    pub drop_p: f64,
    /// Probability a message is delivered twice (the receiver-side
    /// transport dedups, so protocols above never see the copy).
    pub dup_p: f64,
    /// Probability a message is held back behind later traffic
    /// (reordering; selective receive must still match correctly).
    pub reorder_p: f64,
    /// Maximum extra latency per message; the actual delay is uniform in
    /// `[0, delay)`. Zero disables delay injection.
    pub delay: Duration,
}

impl EdgeFault {
    /// A fault-free edge.
    pub fn none() -> Self {
        Self::default()
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop_p", self.drop_p),
            ("dup_p", self.dup_p),
            ("reorder_p", self.reorder_p),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} = {p} outside [0, 1]");
        }
    }
}

/// A reproducible chaos schedule for one cluster run.
///
/// Message faults are sampled from a dedicated PRNG stream per directed
/// edge (derived from the plan seed and the `(src, dst)` pair), so the
/// same plan replays the same faults regardless of thread scheduling.
/// Rank deaths are counted in *transport events* (sends attempted by the
/// doomed rank), which is likewise scheduling-independent.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    default_edge: Option<EdgeFault>,
    edges: HashMap<(usize, usize), EdgeFault>,
    kills: HashMap<usize, u64>,
    revivals: HashMap<usize, u64>,
}

impl FaultPlan {
    /// An empty plan (no faults) — what `run_fallible` uses.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan whose edge streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Apply `fault` to every directed edge (specific [`FaultPlan::edge`]
    /// entries still take precedence).
    pub fn all_edges(mut self, fault: EdgeFault) -> Self {
        fault.validate();
        self.default_edge = Some(fault);
        self
    }

    /// Apply `fault` to the directed edge `src → dst`.
    pub fn edge(mut self, src: usize, dst: usize, fault: EdgeFault) -> Self {
        fault.validate();
        self.edges.insert((src, dst), fault);
        self
    }

    /// Schedule `rank` to die (fail-stop) once it has attempted
    /// `after_events` transport sends. `after_events = 0` kills it at its
    /// first send.
    pub fn kill(mut self, rank: usize, after_events: u64) -> Self {
        self.kills.insert(rank, after_events);
        self
    }

    /// Schedule `rank` to rejoin `after_events` supervisor events after
    /// its scheduled death.
    ///
    /// Within one SPMD run fail-stop is permanent — a killed OS thread
    /// does not come back — so the transport ignores revivals. They are
    /// consumed by supervisors that span runs, such as the elastic
    /// serving tier, which counts virtual ticks after the death as its
    /// events and re-admits the rank (with freshly built shard state)
    /// once the count elapses. `after_events = 0` rejoins at the first
    /// tick boundary after the death is handled.
    pub fn revive(mut self, rank: usize, after_events: u64) -> Self {
        self.revivals.insert(rank, after_events);
        self
    }

    /// Ranks whose scheduled death is *permanent*: killed and never
    /// revived. A rank with both a [`FaultPlan::kill`] and a
    /// [`FaultPlan::revive`] entry is expected back, so it is not doomed.
    pub fn doomed_ranks(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self
            .kills
            .keys()
            .filter(|rank| !self.revivals.contains_key(rank))
            .copied()
            .collect();
        v.sort_unstable();
        v
    }

    /// All scheduled `(rank, after_events)` deaths, ascending by rank —
    /// revived or not.
    pub fn scheduled_kills(&self) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self.kills.iter().map(|(&r, &e)| (r, e)).collect();
        v.sort_unstable();
        v
    }

    /// The scheduled revival delay for `rank`, if any.
    pub fn revival_of(&self, rank: usize) -> Option<u64> {
        self.revivals.get(&rank).copied()
    }

    /// The seed the plan's edge streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The same plan reseeded: edge fault streams re-derive from `seed`,
    /// kills and revivals are unchanged. Lets a supervisor that runs many
    /// short SPMD rounds under one plan draw fresh (but reproducible)
    /// chaos each round instead of replaying identical fates.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A copy with only the message-level chaos (drop/dup/reorder/delay):
    /// kills and revivals stripped. Supervisors that schedule deaths
    /// themselves (counting their own events) use this as the per-round
    /// base plan and re-attach kills at the translated moment.
    pub fn transport_only(&self) -> Self {
        Self {
            seed: self.seed,
            default_edge: self.default_edge,
            edges: self.edges.clone(),
            kills: HashMap::new(),
            revivals: HashMap::new(),
        }
    }

    /// Does this plan inject anything at all?
    pub fn is_empty(&self) -> bool {
        self.default_edge.is_none()
            && self.edges.is_empty()
            && self.kills.is_empty()
            && self.revivals.is_empty()
    }

    /// Build the per-rank runtime state consumed by the transport.
    pub(crate) fn state_for(&self, rank: usize, size: usize) -> FaultState {
        let edges = (0..size)
            .map(|dst| {
                let fault = self
                    .edges
                    .get(&(rank, dst))
                    .copied()
                    .or(self.default_edge)
                    .unwrap_or_default();
                // One independent, well-mixed stream per directed edge.
                let stream_seed = SplitMix64::mix(
                    mix_seed(self.seed) ^ ((rank as u64) << 32) ^ dst as u64,
                );
                EdgeState {
                    fault,
                    rng: Lcg64::seed_from(stream_seed),
                }
            })
            .collect();
        FaultState {
            edges,
            kill_after: self.kills.get(&rank).copied(),
            events: 0,
        }
    }
}

/// What the transport must do with one outgoing message.
///
/// Fates are decided per *send event* and never inspect the payload, so
/// they apply identically to deep-cloned values and to shared
/// (`Arc`-payload) envelopes from the zero-copy collectives. In
/// particular, a duplicate is delivered as a payload-free ghost marker —
/// it carries no bytes and clones no `Arc` — and drop/reorder/delay act
/// on the envelope as a whole, whatever it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) struct SendFate {
    /// Discard instead of delivering.
    pub drop: bool,
    /// Deliver a ghost duplicate alongside the original.
    pub duplicate: bool,
    /// Number of later envelopes the receiver must absorb before this one
    /// becomes matchable (0 = in order).
    pub hold_back: u32,
    /// Extra latency to impose before delivery.
    pub delay: Duration,
}

struct EdgeState {
    fault: EdgeFault,
    rng: Lcg64,
}

/// Per-rank runtime fault state: one PRNG stream per outgoing edge plus
/// the rank's own death schedule.
pub(crate) struct FaultState {
    edges: Vec<EdgeState>,
    kill_after: Option<u64>,
    events: u64,
}

/// Panic payload used for scheduled fail-stop deaths. `pub(crate)` so the
/// supervisor can classify it; never observable by user code.
pub(crate) struct KilledByPlan;

/// Panic payload used when a collective aborts on a dead peer.
pub(crate) struct PeerDeadAbort {
    pub peer: usize,
}

impl FaultState {
    /// Account one transport event and decide this message's fate.
    /// Panics with [`KilledByPlan`] when the rank's scheduled death is
    /// reached — the fail-stop moment.
    pub(crate) fn on_send(&mut self, dst: usize) -> SendFate {
        if let Some(after) = self.kill_after {
            if self.events >= after {
                std::panic::panic_any(KilledByPlan);
            }
        }
        self.events += 1;
        let edge = &mut self.edges[dst];
        let f = edge.fault;
        let mut fate = SendFate::default();
        // Always draw the same number of variates per event so fates stay
        // aligned with the edge stream regardless of rates.
        let (d, dup, reord, lat) = (
            edge.rng.next_f64(),
            edge.rng.next_f64(),
            edge.rng.next_f64(),
            edge.rng.next_f64(),
        );
        fate.drop = d < f.drop_p;
        fate.duplicate = dup < f.dup_p;
        if reord < f.reorder_p {
            fate.hold_back = 1 + (edge.rng.next_u64() % 3) as u32;
        }
        if !f.delay.is_zero() {
            fate.delay = f.delay.mul_f64(lat);
        }
        fate
    }

    /// Events attempted so far (for tests).
    #[cfg(test)]
    pub(crate) fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_replays_identically() {
        let fates = |seed: u64| {
            let plan = FaultPlan::new(seed).all_edges(EdgeFault {
                drop_p: 0.3,
                dup_p: 0.2,
                reorder_p: 0.25,
                delay: Duration::ZERO,
            });
            let mut st = plan.state_for(1, 4);
            (0..64).map(|i| st.on_send(i % 4)).collect::<Vec<_>>()
        };
        assert_eq!(fates(7), fates(7));
        assert_ne!(fates(7), fates(8), "different seeds, different chaos");
    }

    #[test]
    fn edge_override_beats_default() {
        let plan = FaultPlan::new(1)
            .all_edges(EdgeFault {
                drop_p: 1.0,
                ..EdgeFault::none()
            })
            .edge(
                0,
                2,
                EdgeFault {
                    drop_p: 0.0,
                    ..EdgeFault::none()
                },
            );
        let mut st = plan.state_for(0, 3);
        assert!(st.on_send(1).drop, "default edge drops everything");
        assert!(!st.on_send(2).drop, "override edge drops nothing");
    }

    #[test]
    fn kill_counts_events() {
        let plan = FaultPlan::new(0).kill(2, 3);
        let mut st = plan.state_for(2, 4);
        for _ in 0..3 {
            st.on_send(0);
        }
        assert_eq!(st.events(), 3);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| st.on_send(0)));
        let payload = died.expect_err("fourth event must kill");
        assert!(payload.is::<KilledByPlan>());
    }

    #[test]
    fn other_ranks_unaffected_by_kill() {
        let plan = FaultPlan::new(0).kill(2, 0);
        let mut st = plan.state_for(1, 4);
        for _ in 0..100 {
            st.on_send(3);
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = FaultPlan::new(0).all_edges(EdgeFault {
            drop_p: 1.5,
            ..EdgeFault::none()
        });
    }

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::none().is_empty());
        assert!(!FaultPlan::new(3).kill(0, 5).is_empty());
        assert_eq!(FaultPlan::new(3).kill(4, 0).kill(1, 0).doomed_ranks(), vec![1, 4]);
    }

    #[test]
    fn revive_cancels_doom_but_not_the_kill() {
        let plan = FaultPlan::new(3).kill(4, 0).kill(1, 2).revive(4, 1);
        // Rank 4 is expected back, so only rank 1 is permanently doomed…
        assert_eq!(plan.doomed_ranks(), vec![1]);
        // …but both deaths are still scheduled and visible to supervisors.
        assert_eq!(plan.scheduled_kills(), vec![(1, 2), (4, 0)]);
        assert_eq!(plan.revival_of(4), Some(1));
        assert_eq!(plan.revival_of(1), None);
        assert!(!plan.is_empty());
        // The transport still kills the revived rank within this run.
        let mut st = plan.state_for(4, 6);
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| st.on_send(0)));
        assert!(died.expect_err("kill fires despite revival").is::<KilledByPlan>());
    }

    #[test]
    fn transport_only_strips_deaths_and_keeps_chaos() {
        let plan = FaultPlan::new(9)
            .all_edges(EdgeFault {
                drop_p: 0.5,
                ..EdgeFault::none()
            })
            .kill(0, 0)
            .revive(0, 2);
        let stripped = plan.transport_only();
        assert!(stripped.scheduled_kills().is_empty());
        assert!(stripped.revival_of(0).is_none());
        assert!(!stripped.is_empty(), "edge chaos survives the strip");
        // Same seed → same edge fates (probed from an undoomed rank).
        let fates = |p: &FaultPlan| {
            let mut st = p.state_for(1, 3);
            (0..32).map(|i| st.on_send(2 * (i % 2)).drop).collect::<Vec<_>>()
        };
        assert_eq!(fates(&stripped), fates(&plan.clone().with_seed(9)));
        assert_ne!(fates(&stripped), fates(&stripped.clone().with_seed(10)));
    }

    #[test]
    fn tick_backoff_is_pure_and_attempt_indexed() {
        let b = TickBackoff::linear(3, 5, 42);
        for attempt in 1..10 {
            let d = b.delay_ticks(attempt);
            assert_eq!(d, b.delay_ticks(attempt), "pure function of attempt");
            let linear = 3 * attempt as u64;
            assert!(d >= linear && d < linear + 5, "attempt {attempt}: {d}");
        }
        // Jitter actually varies across attempts and seeds.
        let draws: Vec<u64> = (1..20).map(|a| b.delay_ticks(a) - 3 * a as u64).collect();
        assert!(draws.iter().any(|&j| j != draws[0]), "jitter is constant");
        let other = TickBackoff::linear(3, 5, 43);
        assert!(
            (1..20).any(|a| b.delay_ticks(a) != other.delay_ticks(a)),
            "seed must matter"
        );
        // Degenerate configs.
        assert_eq!(TickBackoff::none().delay_ticks(7), 0);
        assert_eq!(TickBackoff::linear(2, 0, 0).delay_ticks(4), 8);
    }

    #[test]
    fn errors_display() {
        let e = RankError {
            rank: 3,
            kind: RankErrorKind::PeerDead { peer: 1 },
        };
        assert!(e.to_string().contains("rank 3"));
        assert!(e.to_string().contains("rank 1"));
        assert!(e.is_peer_dead());
        assert!(!e.is_primary());
        assert_eq!(RecvError::Timeout.to_string(), "receive timed out");
        assert!(RecvError::PeerDead { peer: 2 }.to_string().contains('2'));
        assert!(RecvError::Disconnected.to_string().contains("disconnected"));
    }

    #[test]
    fn retry_policy_default_bounds() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 3);
        p.sleep_before_retry(1); // zero backoff: returns immediately
    }
}
