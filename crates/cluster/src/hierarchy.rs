//! Two-level (node-aware) rank topology.
//!
//! The k-NN assignment (§2) points out that "adding local reductions at each
//! rank and again at each multicore node noticeably improves the
//! communication cost". [`NodeMap`] models the rank→node mapping of a real
//! cluster, and [`Comm::hierarchical_reduce`] performs the two-phase
//! reduction: first within each node (to the node leader), then across node
//! leaders — cutting inter-node message volume from `O(ranks)` to
//! `O(nodes)`.

use crate::collectives::ReduceOp;
use crate::comm::Comm;
use crate::message::ByteSized;

/// A mapping of ranks onto simulated multicore nodes: `ranks_per_node`
/// consecutive ranks share a node (the common `mpirun` block placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeMap {
    ranks_per_node: usize,
}

impl NodeMap {
    /// Create a block placement with `ranks_per_node` ranks on each node.
    pub fn block(ranks_per_node: usize) -> Self {
        assert!(ranks_per_node > 0, "need at least one rank per node");
        Self { ranks_per_node }
    }

    /// Node id of `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Leader (lowest rank) of `rank`'s node.
    #[inline]
    pub fn leader_of(&self, rank: usize) -> usize {
        self.node_of(rank) * self.ranks_per_node
    }

    /// Is `rank` its node's leader?
    #[inline]
    pub fn is_leader(&self, rank: usize) -> bool {
        rank.is_multiple_of(self.ranks_per_node)
    }

    /// Ranks co-located with `rank` (including itself), clipped to `size`.
    pub fn node_members(&self, rank: usize, size: usize) -> std::ops::Range<usize> {
        let start = self.leader_of(rank);
        start..(start + self.ranks_per_node).min(size)
    }
}

impl Comm {
    /// Two-phase reduction honouring node locality: ranks reduce to their
    /// node leader, then leaders reduce to the global root's leader, which
    /// forwards to `root`. Returns `Some(total)` at `root`, `None` elsewhere.
    ///
    /// Semantically identical to [`Comm::reduce`]; the difference is the
    /// number of *inter-node* messages, which the test-suite asserts.
    pub fn hierarchical_reduce<T, F>(
        &mut self,
        map: NodeMap,
        root: usize,
        value: T,
        op: F,
    ) -> Option<T>
    where
        T: Send + ByteSized + 'static,
        F: ReduceOp<T>,
    {
        let n = self.size();
        assert!(root < n, "reduce root {root} out of range");
        let seq = self.coll_seq;
        self.coll_seq += 1;
        let key = |round: u32| crate::message::MatchKey::Coll { seq, round };

        let rank = self.rank();
        let leader = map.leader_of(rank);

        // Phase 1: intra-node reduction to the leader (linear within the
        // node — these are the "cheap" shared-memory messages).
        if rank != leader {
            let bytes = value.approx_bytes() as u64;
            self.send_keyed(leader, key(0), Box::new(value), bytes);
            // Non-leader, non-root ranks are done; if this rank *is* the
            // global root but not a leader, it will receive the total below.
            if rank == root {
                return Some(self.recv_keyed::<T>(map.leader_of(root), key(2)));
            }
            return None;
        }
        let mut acc = value;
        for member in map.node_members(rank, n) {
            if member != leader {
                let v = self.recv_keyed::<T>(member, key(0));
                acc = op(acc, v);
            }
        }

        // Phase 2: inter-node reduction across leaders, linear to the root's
        // leader (these are the "expensive" network messages — one per node).
        let root_leader = map.leader_of(root);
        if leader != root_leader {
            let bytes = acc.approx_bytes() as u64;
            self.send_keyed(root_leader, key(1), Box::new(acc), bytes);
            return None;
        }
        let mut node = 0;
        while node * map.ranks_per_node < n {
            let l = node * map.ranks_per_node;
            if l != root_leader {
                let v = self.recv_keyed::<T>(l, key(1));
                acc = op(acc, v);
            }
            node += 1;
        }

        // Phase 3: hand the total to the root if the root is not the leader.
        if root == root_leader {
            Some(acc)
        } else {
            let bytes = acc.approx_bytes() as u64;
            self.send_keyed(root, key(2), Box::new(acc), bytes);
            None
        }
    }

    /// Count of inter-node messages a flat linear reduce would send vs. the
    /// hierarchical one, for the given topology — the quantity §2's
    /// "architectural knowledge" remark is about.
    pub fn internode_message_counts(size: usize, map: NodeMap, root: usize) -> (usize, usize) {
        let flat = (0..size)
            .filter(|&r| r != root && map.node_of(r) != map.node_of(root))
            .count();
        let mut nodes = 0;
        let mut r = 0;
        while r < size {
            nodes += 1;
            r += map.ranks_per_node;
        }
        let hier = nodes - 1; // one message per non-root-node leader
        (flat, hier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cluster;

    #[test]
    fn node_map_geometry() {
        let map = NodeMap::block(4);
        assert_eq!(map.node_of(0), 0);
        assert_eq!(map.node_of(3), 0);
        assert_eq!(map.node_of(4), 1);
        assert_eq!(map.leader_of(6), 4);
        assert!(map.is_leader(4));
        assert!(!map.is_leader(5));
        assert_eq!(map.node_members(5, 7), 4..7);
    }

    #[test]
    fn hierarchical_reduce_matches_flat() {
        for n in [1usize, 3, 4, 8, 10] {
            for rpn in [1usize, 2, 4] {
                for root in [0, n - 1] {
                    let out = Cluster::run(n, move |comm| {
                        let v = (comm.rank() as u64 + 1) * 3;
                        let h =
                            comm.hierarchical_reduce(NodeMap::block(rpn), root, v, |a, b| a + b);
                        let f = comm.reduce(root, v, |a, b| a + b);
                        (h, f)
                    });
                    for (rank, (h, f)) in out.into_iter().enumerate() {
                        assert_eq!(h, f, "n={n} rpn={rpn} root={root} rank={rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn internode_savings() {
        // 16 ranks, 4 per node, root 0: flat sends 12 inter-node messages,
        // hierarchical sends 3 (one per other node).
        let (flat, hier) = Comm::internode_message_counts(16, NodeMap::block(4), 0);
        assert_eq!(flat, 12);
        assert_eq!(hier, 3);
    }

    #[test]
    fn root_not_leader() {
        let out = Cluster::run(6, |comm| {
            comm.hierarchical_reduce(NodeMap::block(3), 4, comm.rank() as u32, |a, b| a + b)
        });
        assert_eq!(out[4], Some(15));
        for (r, v) in out.iter().enumerate() {
            if r != 4 {
                assert_eq!(*v, None);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank per node")]
    fn zero_ranks_per_node_rejected() {
        NodeMap::block(0);
    }
}
