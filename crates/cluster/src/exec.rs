//! One backend seam for every assignment: "partition → local compute →
//! combine", expressed once.
//!
//! Every parallel leg in the repo is the same shape — decompose an index
//! space with a [`Contiguous`](crate::dist::Contiguous) distribution, run a
//! per-part kernel, merge results in part order. [`Executor`] owns that
//! shape for three backends:
//!
//! * [`Executor::Seq`] — one part, plain loop; the bit-exactness oracle.
//! * [`Executor::Rayon`] — the distribution's parts run on the rayon pool.
//!   Parts, ranges, and merge order are fixed by the *distribution*, never
//!   by the pool size, so output is bit-identical across thread counts.
//! * [`Executor::Cluster`] — each part becomes a rank on the in-process
//!   [`Cluster`]: part data is scattered, the kernel runs rank-local, and
//!   per-rank results (plus mutated data) are gathered back to part order
//!   at the root. A [`FaultPlan`] can ride along for chaos testing.
//!
//! The determinism contract: for a fixed distribution, all three backends
//! call the kernel with identical `(part, global_range, local_slice)`
//! arguments and merge the returned values in ascending part order.
//! Backends differ only in *where* the kernel runs and (on `Cluster`)
//! whether data movement is a borrow or a message — which is exactly what
//! the [`CommStats`] counters make visible.

use std::ops::Range;

use rayon::prelude::*;

use crate::dist::Contiguous;
use crate::fault::FaultPlan;
use crate::message::ByteSized;
use crate::stats::CommStats;
use crate::Cluster;

/// A compute backend for partitioned loops.
#[derive(Debug, Clone)]
pub enum Executor {
    /// Sequential reference backend: every part runs in order on the
    /// calling thread.
    Seq,
    /// Shared-memory backend: parts run on the rayon pool. `chunks` is the
    /// *requested* decomposition width handed to distribution constructors
    /// (which clip it to the domain size).
    Rayon {
        /// Requested number of parts for distributions built against this
        /// executor.
        chunks: usize,
    },
    /// Distributed-memory backend: one in-process rank per part, data moved
    /// by scatter/gather collectives.
    Cluster {
        /// Number of ranks to spawn.
        ranks: usize,
        /// Transport-fault schedule; [`FaultPlan::none`] for a clean run.
        plan: FaultPlan,
    },
}

impl std::str::FromStr for Executor {
    type Err = String;

    /// `"seq"`, `"rayon:4"`, `"cluster:4"` — the textual form CLI flags
    /// and scenario specs use. Cluster backends parse with a clean
    /// transport; attach a [`FaultPlan`] by building the variant directly.
    fn from_str(s: &str) -> Result<Self, String> {
        let parts = |rest: &str| -> Result<usize, String> {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad part count in executor `{s}`"))?;
            if n == 0 {
                return Err(format!("executor `{s}` needs at least one part"));
            }
            Ok(n)
        };
        match s.split_once(':') {
            None if s == "seq" => Ok(Executor::Seq),
            Some(("rayon", rest)) => Ok(Executor::rayon(parts(rest)?)),
            Some(("cluster", rest)) => Ok(Executor::cluster(parts(rest)?)),
            _ => Err(format!(
                "unknown executor `{s}` (want seq, rayon:N, or cluster:N)"
            )),
        }
    }
}

impl Executor {
    /// The sequential backend.
    pub fn seq() -> Self {
        Executor::Seq
    }

    /// The rayon backend with `chunks` requested parts.
    pub fn rayon(chunks: usize) -> Self {
        assert!(chunks > 0, "need at least one chunk");
        Executor::Rayon { chunks }
    }

    /// The cluster backend with `ranks` ranks and a clean transport.
    pub fn cluster(ranks: usize) -> Self {
        assert!(ranks > 0, "need at least one rank");
        Executor::Cluster {
            ranks,
            plan: FaultPlan::none(),
        }
    }

    /// This backend refitted to a domain of `n` indices: chunk/rank
    /// counts are clipped to [`Executor::parts_for`]`(n)` so that a
    /// distribution built with `parts_for` satisfies the one-rank-per-part
    /// contract of the `Cluster` backend even when `n` is smaller than the
    /// configured rank count. Serving-style callers that run many small
    /// batches through one configured executor shrink per batch; the
    /// fault plan rides along unchanged.
    pub fn shrink_to(&self, n: usize) -> Executor {
        match self {
            Executor::Seq => Executor::Seq,
            Executor::Rayon { chunks } => Executor::Rayon {
                chunks: (*chunks).min(n).max(1),
            },
            Executor::Cluster { ranks, plan } => Executor::Cluster {
                ranks: (*ranks).min(n).max(1),
                plan: plan.clone(),
            },
        }
    }

    /// The decomposition width this backend asks of a domain of `n`
    /// indices: 1 for `Seq`, the requested chunk/rank count otherwise,
    /// clipped to `n` so distribution constructors accept it as-is.
    pub fn parts_for(&self, n: usize) -> usize {
        let raw = match self {
            Executor::Seq => 1,
            Executor::Rayon { chunks } => *chunks,
            Executor::Cluster { ranks, .. } => *ranks,
        };
        raw.min(n).max(1)
    }

    /// Run `f(part, global_range, local_slice)` over every part of `dist`,
    /// mutating `data` in place, and return the per-part results in part
    /// order.
    ///
    /// `data.len()` must equal `dist.len()`; the slice passed to `f` is the
    /// part's own window of `data` (on `Cluster`, a scattered copy that is
    /// gathered back verbatim).
    pub fn map_parts_mut<D, T, A, F>(&self, dist: &D, data: &mut [T], f: F) -> Vec<A>
    where
        D: Contiguous + Sync,
        T: Clone + Send + Sync + ByteSized + 'static,
        A: Send + ByteSized + 'static,
        F: Fn(usize, Range<usize>, &mut [T]) -> A + Send + Sync,
    {
        self.map_parts_mut_inner(dist, data, None, f)
    }

    /// [`Executor::map_parts_mut`] with communication counters: elements
    /// scattered/gathered always, payload bytes only on the `Cluster`
    /// backend (shared-memory backends move no bytes).
    pub fn map_parts_mut_counted<D, T, A, F>(
        &self,
        dist: &D,
        data: &mut [T],
        stats: &CommStats,
        f: F,
    ) -> Vec<A>
    where
        D: Contiguous + Sync,
        T: Clone + Send + Sync + ByteSized + 'static,
        A: Send + ByteSized + 'static,
        F: Fn(usize, Range<usize>, &mut [T]) -> A + Send + Sync,
    {
        self.map_parts_mut_inner(dist, data, Some(stats), f)
    }

    fn map_parts_mut_inner<D, T, A, F>(
        &self,
        dist: &D,
        data: &mut [T],
        stats: Option<&CommStats>,
        f: F,
    ) -> Vec<A>
    where
        D: Contiguous + Sync,
        T: Clone + Send + Sync + ByteSized + 'static,
        A: Send + ByteSized + 'static,
        F: Fn(usize, Range<usize>, &mut [T]) -> A + Send + Sync,
    {
        let n = dist.len();
        assert_eq!(data.len(), n, "data length must match the distribution");
        let parts = dist.parts();
        if let Some(s) = stats {
            s.add_scattered(n as u64);
            s.add_gathered(n as u64);
        }
        match self {
            Executor::Seq | Executor::Rayon { .. } => {
                // Slice the buffer into the distribution's windows up
                // front; the decomposition (and thus the merge grouping)
                // comes from `dist` alone.
                let mut windows = Vec::with_capacity(parts);
                let mut rest = data;
                let mut offset = 0;
                for p in 0..parts {
                    let r = dist.range_of(p);
                    debug_assert_eq!(r.start, offset, "contiguous parts tile in order");
                    let (head, tail) = rest.split_at_mut(r.len());
                    offset = r.end;
                    windows.push((p, r, head));
                    rest = tail;
                }
                match self {
                    Executor::Seq => windows
                        .into_iter()
                        .map(|(p, r, w)| f(p, r, w))
                        .collect(),
                    // Indexed parallel collect preserves part order: the
                    // in-order merge is structural, not a race winner.
                    _ => windows
                        .into_par_iter()
                        .map(|(p, r, w)| f(p, r, w))
                        .collect(),
                }
            }
            Executor::Cluster { ranks, plan } => {
                // One rank per part; a distribution narrower than the
                // configured rank count (EvenBlocks' ceil-sized chunks can
                // collapse below `parts_for`) just leaves ranks unspawned.
                assert!(
                    parts <= *ranks,
                    "cluster executor needs one rank per part (build the \
                     distribution with parts_for)"
                );
                if let Some(s) = stats {
                    s.add_collective_bytes(
                        2 * (n * std::mem::size_of::<T>()) as u64
                            + (parts * std::mem::size_of::<A>()) as u64,
                    );
                }
                let chunks: Vec<Vec<T>> =
                    (0..parts).map(|p| data[dist.range_of(p)].to_vec()).collect();
                // The root *takes* the chunk set instead of cloning it into
                // the scatter: the closure runs once per rank, and only the
                // root reaches for the payload, so the second full copy of
                // the dataset the old `chunks.clone()` made is gone.
                let chunks = std::sync::Mutex::new(Some(chunks));
                let f = &f;
                let mut rank_results = Cluster::run_with_plan(parts, plan, move |comm| {
                    let rank = comm.rank();
                    let mut local = comm.scatter(
                        0,
                        (rank == 0).then(|| {
                            chunks
                                .lock()
                                .expect("chunk handoff")
                                .take()
                                .expect("root takes the chunks exactly once")
                        }),
                    );
                    let a = f(rank, dist.range_of(rank), &mut local);
                    let gathered = comm.gather(0, (a, local));
                    // Measured bytes: whatever this rank's transport
                    // actually moved (scatter chunks at the root, the
                    // (result, data) gather everywhere else).
                    if let Some(s) = stats {
                        s.add_bytes(comm.bytes_sent());
                    }
                    gathered
                });
                let gathered = rank_results
                    .swap_remove(0)
                    .unwrap_or_else(|e| panic!("{e}"))
                    .expect("root holds the gather");
                let mut out = Vec::with_capacity(parts);
                for (p, (a, local)) in gathered.into_iter().enumerate() {
                    data[dist.range_of(p)].clone_from_slice(&local);
                    out.push(a);
                }
                out
            }
        }
    }

    /// Run `f(part, global_range)` over every part of `dist` (no shared
    /// buffer) and return the per-part results in part order.
    pub fn map_parts<D, A, F>(&self, dist: &D, f: F) -> Vec<A>
    where
        D: Contiguous + Sync,
        A: Send + ByteSized + 'static,
        F: Fn(usize, Range<usize>) -> A + Send + Sync,
    {
        self.map_parts_inner(dist, None, f)
    }

    /// [`Executor::map_parts`] with communication counters.
    pub fn map_parts_counted<D, A, F>(&self, dist: &D, stats: &CommStats, f: F) -> Vec<A>
    where
        D: Contiguous + Sync,
        A: Send + ByteSized + 'static,
        F: Fn(usize, Range<usize>) -> A + Send + Sync,
    {
        self.map_parts_inner(dist, Some(stats), f)
    }

    fn map_parts_inner<D, A, F>(&self, dist: &D, stats: Option<&CommStats>, f: F) -> Vec<A>
    where
        D: Contiguous + Sync,
        A: Send + ByteSized + 'static,
        F: Fn(usize, Range<usize>) -> A + Send + Sync,
    {
        let parts = dist.parts();
        if let Some(s) = stats {
            s.add_scattered(dist.len() as u64);
            s.add_gathered(parts as u64);
        }
        match self {
            Executor::Seq => (0..parts).map(|p| f(p, dist.range_of(p))).collect(),
            Executor::Rayon { .. } => (0..parts)
                .into_par_iter()
                .map(|p| f(p, dist.range_of(p)))
                .collect(),
            Executor::Cluster { ranks, plan } => {
                // See map_parts_mut_inner: parts ≤ ranks, extra ranks idle.
                assert!(
                    parts <= *ranks,
                    "cluster executor needs one rank per part (build the \
                     distribution with parts_for)"
                );
                if let Some(s) = stats {
                    s.add_collective_bytes((parts * std::mem::size_of::<A>()) as u64);
                }
                let f = &f;
                let mut rank_results = Cluster::run_with_plan(parts, plan, move |comm| {
                    let rank = comm.rank();
                    let a = f(rank, dist.range_of(rank));
                    let gathered = comm.gather(0, a);
                    if let Some(s) = stats {
                        s.add_bytes(comm.bytes_sent());
                    }
                    gathered
                });
                rank_results
                    .swap_remove(0)
                    .unwrap_or_else(|e| panic!("{e}"))
                    .expect("root holds the gather")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Block, EvenBlocks};

    fn sum_kernel(_p: usize, r: Range<usize>, w: &mut [u64]) -> u64 {
        for (i, v) in r.clone().zip(w.iter_mut()) {
            *v = (i as u64) * 3;
        }
        w.iter().sum()
    }

    #[test]
    fn backends_agree_bit_for_bit() {
        let n = 101;
        for parts in [1usize, 2, 4, 7] {
            let dist = Block::new(n, parts);
            let mut seq_data = vec![0u64; n];
            let seq = Executor::seq().map_parts_mut(&dist, &mut seq_data, sum_kernel);

            let mut ray_data = vec![0u64; n];
            let ray =
                Executor::rayon(parts).map_parts_mut(&dist, &mut ray_data, sum_kernel);

            let mut clu_data = vec![0u64; n];
            let clu = Executor::cluster(dist.parts())
                .map_parts_mut(&dist, &mut clu_data, sum_kernel);

            assert_eq!(seq, ray, "parts={parts}");
            assert_eq!(seq, clu, "parts={parts}");
            assert_eq!(seq_data, ray_data);
            assert_eq!(seq_data, clu_data);
        }
    }

    #[test]
    fn cluster_writes_mutations_back() {
        let dist = Block::new(10, 3);
        let mut data: Vec<u64> = (0..10).collect();
        Executor::cluster(3).map_parts_mut(&dist, &mut data, |_, _, w| {
            for v in w.iter_mut() {
                *v += 100;
            }
        });
        let expect: Vec<u64> = (100..110).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn merge_order_is_part_order() {
        let dist = EvenBlocks::new(10, 4);
        let mut data = vec![0u8; 10];
        let parts = Executor::rayon(4).map_parts_mut(&dist, &mut data, |p, _, _| p);
        assert_eq!(parts, vec![0, 1, 2, 3]);
        let ranges = Executor::seq().map_parts(&dist, |_, r| r);
        assert_eq!(ranges, vec![0..3, 3..6, 6..9, 9..10]);
    }

    #[test]
    fn counters_see_bytes_only_on_cluster() {
        let dist = Block::new(8, 2);
        let mut data = vec![0u64; 8];

        let s = CommStats::new();
        Executor::rayon(2).map_parts_mut_counted(&dist, &mut data, &s, |_, _, _| 0u64);
        assert_eq!(s.scattered(), 8);
        assert_eq!(s.gathered(), 8);
        assert_eq!(s.collective_bytes(), 0, "borrows move no bytes");
        assert_eq!(s.bytes(), 0, "borrows move no measured bytes either");

        let s = CommStats::new();
        Executor::cluster(2).map_parts_mut_counted(&dist, &mut data, &s, |_, _, _| 0u64);
        assert_eq!(s.scattered(), 8);
        assert_eq!(s.gathered(), 8);
        // Analytic estimate: 8 u64 scattered + 8 gathered back + 2 u64
        // results, root chunk included.
        assert_eq!(s.collective_bytes(), (16 + 2) * 8);
        // Measured transport bytes exclude the root's rank-local chunk:
        // the root scatters rank 1's 4-u64 chunk (32 B) and rank 1
        // gathers back `(0u64, [u64; 4])` (8 + 32 = 40 B).
        assert_eq!(s.bytes(), 32 + 40);

        let s = CommStats::new();
        let dist3 = Block::new(9, 3);
        Executor::cluster(3).map_parts_counted(&dist3, &s, |_, _| 0u64);
        // Immutable path moves only the gathered results: two non-root
        // ranks each send one u64.
        assert_eq!(s.bytes(), 16);
    }

    #[test]
    fn immutable_map_gathers_results() {
        let dist = Block::new(9, 3);
        for exec in [Executor::seq(), Executor::rayon(3), Executor::cluster(3)] {
            let sums = exec.map_parts(&dist, |_, r| r.map(|i| i as u64).sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), 36, "{exec:?}");
            assert_eq!(sums.len(), 3);
        }
    }

    #[test]
    fn shrink_to_fits_small_domains() {
        // A 4-rank cluster executor must be usable on a 2-element batch
        // after shrinking: one rank per part, results identical to Seq.
        let exec = Executor::cluster(4).shrink_to(2);
        let dist = Block::new(2, exec.parts_for(2));
        let sums = exec.map_parts(&dist, |_, r| r.map(|i| i as u64 + 1).sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), 3);
        assert!(matches!(exec, Executor::Cluster { ranks: 2, .. }));
        assert!(matches!(
            Executor::rayon(8).shrink_to(3),
            Executor::Rayon { chunks: 3 }
        ));
        assert!(matches!(Executor::seq().shrink_to(0), Executor::Seq));
        // Shrinking never grows, and never drops below one part.
        assert!(matches!(
            Executor::cluster(4).shrink_to(0),
            Executor::Cluster { ranks: 1, .. }
        ));
        assert!(matches!(
            Executor::rayon(2).shrink_to(100),
            Executor::Rayon { chunks: 2 }
        ));
    }

    #[test]
    fn cluster_tolerates_collapsed_distributions() {
        // EvenBlocks' ceil-sized chunks can yield fewer parts than asked
        // for (4 items / 3 parts → chunks of 2 → 2 parts); the cluster
        // backend must serve the narrower distribution with idle ranks
        // rather than assert.
        let dist = EvenBlocks::new(4, 3);
        assert_eq!(dist.parts(), 2);
        for exec in [Executor::cluster(3), Executor::rayon(3), Executor::seq()] {
            let sums = exec.map_parts(&dist, |_, r| r.map(|i| i as u64).sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), 6, "{exec:?}");
            assert_eq!(sums.len(), 2);
        }
    }

    #[test]
    fn parts_for_clips_to_domain() {
        assert_eq!(Executor::seq().parts_for(100), 1);
        assert_eq!(Executor::rayon(8).parts_for(100), 8);
        assert_eq!(Executor::rayon(8).parts_for(3), 3);
        assert_eq!(Executor::cluster(4).parts_for(2), 2);
    }
}
