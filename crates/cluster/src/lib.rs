//! # peachy-cluster
//!
//! An in-process, message-passing "cluster": the distributed-memory
//! substrate for the Peachy Parallel Assignments reproduction.
//!
//! Three of the paper's six assignments are distributed-memory exercises
//! (MapReduce-MPI k-NN in §2, the MPI leg of k-means in §3, the MPI4Py task
//! farm in §7). This crate substitutes for MPI with the same *semantics* at
//! laptop scale: a fixed set of **ranks**, each running on its own OS
//! thread with **no shared mutable state**, exchanging data exclusively
//! through typed point-to-point messages and MPI-style collectives.
//!
//! What is faithfully preserved from MPI:
//!
//! * SPMD execution — every rank runs the same function, branching on
//!   [`Comm::rank`].
//! * Ownership transfer — a sent value is *moved* to the receiver; there is
//!   no back-door shared memory.
//! * Selective receive by `(source, tag)` with out-of-order buffering.
//! * The collective call discipline — all ranks must invoke collectives in
//!   the same order, matched by an internal sequence number.
//! * Algorithmic structure — broadcast/reduce use binomial trees, barrier
//!   uses dissemination, so message counts scale as `O(n log n)` like a
//!   real MPI implementation (linear variants are provided for ablation
//!   benchmarks).
//!
//! What is deliberately simulated: transport (crossbeam channels instead of
//! a network). Latency/bandwidth of a cluster are not modelled; the crate
//! is about *communication structure*, which is what the assignments teach.
//!
//! Beyond the happy path, the cluster is **failure-aware** (fail-stop
//! model, see DESIGN.md "Failure model"): [`Cluster::run_fallible`] runs
//! every rank under a supervisor that catches panics, broadcasts death
//! notices so blocked peers wake instead of deadlocking, and reports a
//! per-rank [`Result<T, RankError>`]. [`Cluster::run_with_plan`] injects
//! reproducible transport chaos ([`FaultPlan`]: message drop / duplicate /
//! reorder / delay plus scheduled rank death) for testing fault-tolerant
//! protocols such as [`farm::task_farm`].
//!
//! The crate also hosts the workspace's **distribution + executor layer**
//! ([`dist`], [`exec`], [`stats`]): the single source of block/cyclic
//! partition math, the `Seq`/`Rayon`/`Cluster` backend seam every
//! assignment's "partition → local compute → combine" loop runs through,
//! and the communication counters that make backend runs comparable.
//!
//! ```
//! use peachy_cluster::Cluster;
//!
//! // Sum of ranks via allreduce, SPMD-style.
//! let results = Cluster::run(4, |comm| {
//!     comm.allreduce(comm.rank() as u64, |a, b| a + b)
//! });
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! ```

// Rank-indexed loops in the collectives mirror MPI pseudocode on purpose.
#![allow(clippy::needless_range_loop)]

pub mod collectives;
pub mod comm;
pub mod dist;
pub mod exec;
pub mod farm;
pub mod fault;
pub mod hierarchy;
pub mod message;
pub mod stats;

pub use collectives::{ReduceOp, Shared};
pub use comm::{Comm, ANY_SOURCE};
pub use dist::{
    block_range, Block, BlockCyclic, Contiguous, Cyclic, Distribution, EvenBlocks, HashRing,
};
pub use exec::Executor;
pub use farm::{task_farm, FarmOutcome};
pub use fault::{
    EdgeFault, FaultPlan, RankError, RankErrorKind, RecvError, RetryPolicy, TickBackoff,
};
pub use hierarchy::NodeMap;
pub use message::ByteSized;
pub use stats::{CommStats, StageComm};

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use fault::{KilledByPlan, PeerDeadAbort};
use message::Envelope;

/// Entry point: run an SPMD function on `n` ranks and collect each rank's
/// return value in rank order.
pub struct Cluster;

impl Cluster {
    /// Spawn `n` ranks, each executing `f(comm)` on its own thread.
    ///
    /// The panicking convenience wrapper around [`Cluster::run_fallible`]:
    /// if any rank fails, panics with the primary failure's report (rank
    /// id + panic message) after all threads have been joined — mirroring
    /// `mpirun` aborting the whole job and naming the guilty rank.
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let results = Self::run_fallible(n, f);
        let mut out = Vec::with_capacity(results.len());
        let mut first_err: Option<RankError> = None;
        for r in results {
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    // Prefer the primary failure (a rank's own panic) over
                    // secondary peer-death casualties it caused.
                    let replace = match &first_err {
                        None => true,
                        Some(cur) => cur.is_peer_dead() && e.is_primary(),
                    };
                    if replace {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            panic!("{e}");
        }
        out
    }

    /// Supervised SPMD run: every rank's panic is caught, classified, and
    /// returned as `Err(RankError)` in that rank's slot; surviving ranks
    /// keep running. When a rank dies, a death notice is broadcast so
    /// peers blocked on it wake up (their blocking receives abort with a
    /// [`RankErrorKind::PeerDead`] classification; timeout-aware receives
    /// get [`RecvError::PeerDead`]) — a failed job terminates instead of
    /// deadlocking.
    pub fn run_fallible<T, F>(n: usize, f: F) -> Vec<Result<T, RankError>>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run_with_plan(n, &FaultPlan::none(), f)
    }

    /// [`Cluster::run_fallible`] with reproducible transport chaos: every
    /// rank's sends are filtered through `plan` (drop / duplicate /
    /// reorder / delay per directed edge, plus scheduled fail-stop rank
    /// deaths), seeded so the same plan replays the same faults.
    pub fn run_with_plan<T, F>(n: usize, plan: &FaultPlan, f: F) -> Vec<Result<T, RankError>>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        assert!(n > 0, "cluster needs at least one rank");
        silence_intentional_panics();
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..n)
            .map(|_| crossbeam::channel::unbounded::<Envelope>())
            .unzip();

        let mut results: Vec<Option<Result<T, RankError>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let senders = senders.clone();
                    let fault = (!plan.is_empty()).then(|| plan.state_for(rank, n));
                    let f = &f;
                    scope.spawn(move || {
                        let notify = senders.clone();
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            let mut comm = Comm::new(rank, senders, rx, fault);
                            f(&mut comm)
                        }));
                        match outcome {
                            Ok(v) => Ok(v),
                            Err(payload) => {
                                // Fail-stop: announce this rank's death so
                                // peers blocked on it wake up. Channel FIFO
                                // guarantees every message it actually sent
                                // is seen before the notice.
                                for (dst, tx) in notify.iter().enumerate() {
                                    if dst != rank {
                                        let _ = tx.send(Envelope::death(rank));
                                    }
                                }
                                Err(classify_panic(rank, payload))
                            }
                        }
                    })
                })
                .collect();
            for (rank, handle) in handles.into_iter().enumerate() {
                // The closure never unwinds (panics are caught inside), but
                // classify defensively rather than poisoning the spawner.
                results[rank] = Some(
                    handle
                        .join()
                        .unwrap_or_else(|payload| Err(classify_panic(rank, payload))),
                );
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect()
    }
}

/// Turn a caught panic payload into a classified per-rank failure report.
fn classify_panic(rank: usize, payload: Box<dyn Any + Send>) -> RankError {
    let kind = if payload.is::<KilledByPlan>() {
        RankErrorKind::Killed
    } else if let Some(abort) = payload.downcast_ref::<PeerDeadAbort>() {
        RankErrorKind::PeerDead { peer: abort.peer }
    } else if let Some(msg) = payload.downcast_ref::<&'static str>() {
        RankErrorKind::Panicked((*msg).to_string())
    } else if let Some(msg) = payload.downcast_ref::<String>() {
        RankErrorKind::Panicked(msg.clone())
    } else {
        RankErrorKind::Panicked("<non-string panic payload>".to_string())
    };
    RankError { rank, kind }
}

/// Install (once, process-wide) a panic hook that suppresses the default
/// stderr backtrace for the cluster's *intentional* panics — scheduled
/// fault-plan kills and peer-death aborts — which are caught and reported
/// as [`RankError`]s, not bugs. All other panics print as usual.
fn silence_intentional_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<KilledByPlan>() || p.is::<PeerDeadAbort>() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Cluster::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_in_rank_order() {
        let out = Cluster::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Cluster::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "rank 3 exploded")]
    fn rank_panic_propagates() {
        Cluster::run(4, |comm| {
            if comm.rank() == 3 {
                panic!("rank 3 exploded");
            }
        });
    }

    #[test]
    fn ping_pong() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, String::from("ping"));
                comm.recv::<String>(1, 8)
            } else {
                let msg = comm.recv::<String>(0, 7);
                comm.send(0, 8, format!("{msg}-pong"));
                msg
            }
        });
        assert_eq!(out, vec!["ping-pong".to_string(), "ping".to_string()]);
    }

    #[test]
    fn run_fallible_reports_rank_and_message() {
        let results = Cluster::run_fallible(3, |comm| {
            if comm.rank() == 1 {
                panic!("boom at rank {}", comm.rank());
            }
            comm.rank()
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(results[2], Ok(2));
        let err = results[1].as_ref().expect_err("rank 1 panicked");
        assert_eq!(err.rank, 1);
        assert_eq!(err.kind, RankErrorKind::Panicked("boom at rank 1".into()));
    }

    #[test]
    fn peer_blocked_on_dead_rank_wakes_up() {
        // Rank 1 dies before sending; rank 0 is blocked in recv and must
        // abort with a PeerDead classification instead of hanging.
        let results = Cluster::run_fallible(2, |comm| {
            if comm.rank() == 0 {
                comm.recv::<u32>(1, 0)
            } else {
                panic!("rank 1 dies before sending");
            }
        });
        let e0 = results[0].as_ref().expect_err("rank 0 aborted");
        assert_eq!(e0.kind, RankErrorKind::PeerDead { peer: 1 });
        assert!(results[1].as_ref().unwrap_err().is_primary());
    }

    #[test]
    fn legacy_run_reports_primary_failure_not_casualty() {
        let caught = std::panic::catch_unwind(|| {
            Cluster::run(2, |comm| {
                if comm.rank() == 0 {
                    comm.recv::<u32>(1, 0);
                } else {
                    panic!("original failure");
                }
            })
        });
        let payload = caught.expect_err("job failed");
        let msg = payload.downcast_ref::<String>().expect("formatted report");
        assert!(
            msg.contains("rank 1") && msg.contains("original failure"),
            "must name the primary failure, got: {msg}"
        );
    }

    #[test]
    fn scheduled_kill_classified_as_killed() {
        let plan = FaultPlan::new(11).kill(1, 0);
        let results = Cluster::run_with_plan(2, &plan, |comm| {
            if comm.rank() == 1 {
                comm.send(0, 0, ()); // first send event triggers the kill
            }
            comm.rank()
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(
            results[1].as_ref().unwrap_err().kind,
            RankErrorKind::Killed
        );
    }

    #[test]
    fn chaos_plan_without_kills_preserves_results() {
        use std::time::Duration;
        let plan = FaultPlan::new(5).all_edges(EdgeFault {
            dup_p: 0.3,
            reorder_p: 0.3,
            delay: Duration::from_micros(50),
            ..EdgeFault::none()
        });
        let results = Cluster::run_with_plan(4, &plan, |comm| {
            comm.allreduce(comm.rank() as u64 + 1, |a, b| a + b)
        });
        for r in results {
            assert_eq!(r, Ok(10));
        }
    }
}
