//! # peachy-cluster
//!
//! An in-process, message-passing "cluster": the distributed-memory
//! substrate for the Peachy Parallel Assignments reproduction.
//!
//! Three of the paper's six assignments are distributed-memory exercises
//! (MapReduce-MPI k-NN in §2, the MPI leg of k-means in §3, the MPI4Py task
//! farm in §7). This crate substitutes for MPI with the same *semantics* at
//! laptop scale: a fixed set of **ranks**, each running on its own OS
//! thread with **no shared mutable state**, exchanging data exclusively
//! through typed point-to-point messages and MPI-style collectives.
//!
//! What is faithfully preserved from MPI:
//!
//! * SPMD execution — every rank runs the same function, branching on
//!   [`Comm::rank`].
//! * Ownership transfer — a sent value is *moved* to the receiver; there is
//!   no back-door shared memory.
//! * Selective receive by `(source, tag)` with out-of-order buffering.
//! * The collective call discipline — all ranks must invoke collectives in
//!   the same order, matched by an internal sequence number.
//! * Algorithmic structure — broadcast/reduce use binomial trees, barrier
//!   uses dissemination, so message counts scale as `O(n log n)` like a
//!   real MPI implementation (linear variants are provided for ablation
//!   benchmarks).
//!
//! What is deliberately simulated: transport (crossbeam channels instead of
//! a network). Latency/bandwidth of a cluster are not modelled; the crate
//! is about *communication structure*, which is what the assignments teach.
//!
//! ```
//! use peachy_cluster::Cluster;
//!
//! // Sum of ranks via allreduce, SPMD-style.
//! let results = Cluster::run(4, |comm| {
//!     comm.allreduce(comm.rank() as u64, |a, b| a + b)
//! });
//! assert_eq!(results, vec![6, 6, 6, 6]);
//! ```

// Rank-indexed loops in the collectives mirror MPI pseudocode on purpose.
#![allow(clippy::needless_range_loop)]

pub mod collectives;
pub mod comm;
pub mod hierarchy;
pub mod message;

pub use collectives::ReduceOp;
pub use comm::{Comm, ANY_SOURCE};
pub use hierarchy::NodeMap;

use message::Envelope;

/// Entry point: run an SPMD function on `n` ranks and collect each rank's
/// return value in rank order.
pub struct Cluster;

impl Cluster {
    /// Spawn `n` ranks, each executing `f(comm)` on its own thread.
    ///
    /// Panics in any rank propagate to the caller after all threads have
    /// been joined (mirroring `mpirun` aborting the job).
    pub fn run<T, F>(n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        assert!(n > 0, "cluster needs at least one rank");
        let (senders, receivers): (Vec<_>, Vec<_>) = (0..n)
            .map(|_| crossbeam::channel::unbounded::<Envelope>())
            .unzip();

        let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let senders = senders.clone();
                    let f = &f;
                    scope.spawn(move || {
                        let mut comm = Comm::new(rank, senders, rx);
                        f(&mut comm)
                    })
                })
                .collect();
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(v) => results[rank] = Some(v),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("rank produced no result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Cluster::run(1, |comm| {
            assert_eq!(comm.rank(), 0);
            assert_eq!(comm.size(), 1);
            42
        });
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn results_in_rank_order() {
        let out = Cluster::run(8, |comm| comm.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Cluster::run(0, |_| ());
    }

    #[test]
    #[should_panic(expected = "rank 3 exploded")]
    fn rank_panic_propagates() {
        Cluster::run(4, |comm| {
            if comm.rank() == 3 {
                panic!("rank 3 exploded");
            }
        });
    }

    #[test]
    fn ping_pong() {
        let out = Cluster::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, String::from("ping"));
                comm.recv::<String>(1, 8)
            } else {
                let msg = comm.recv::<String>(0, 7);
                comm.send(0, 8, format!("{msg}-pong"));
                msg
            }
        });
        assert_eq!(out, vec!["ping-pong".to_string(), "ping".to_string()]);
    }
}
