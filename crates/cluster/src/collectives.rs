//! MPI-style collective operations.
//!
//! Every collective advances the communicator's internal sequence number,
//! which is folded into the message match key — so consecutive collectives
//! cannot interfere even when fast ranks race ahead, and user point-to-point
//! traffic can never be mistaken for collective traffic.
//!
//! The default algorithms mirror production MPI structure:
//!
//! * [`Comm::barrier`] — dissemination, `⌈log₂ n⌉` rounds;
//! * [`Comm::broadcast`] / [`Comm::reduce`] — binomial tree, `O(log n)` depth;
//! * [`Comm::allreduce`] — reduce + broadcast;
//! * [`Comm::allgather`] — ring, `n − 1` rounds;
//! * [`Comm::alltoall`] — direct pairwise exchange.
//!
//! Linear variants ([`Comm::broadcast_linear`], [`Comm::reduce_linear`]) are
//! kept for the ablation benchmark comparing flat vs. tree collectives — the
//! "architectural knowledge can help design faster code" lesson of §2.
//!
//! **Zero-copy payloads**: every deep-cloning collective has a [`Shared`]
//! (`Arc`) twin — [`Comm::broadcast_shared`], [`Comm::allgather_shared`],
//! [`Comm::allreduce_shared`], [`Comm::broadcast_linear_shared`] — whose
//! fan-out moves one reference-counted handle per tree edge instead of one
//! deep clone per child, so the per-child cost is independent of the
//! payload size. The shared payload is immutable, so distributed-memory
//! semantics are preserved; results are bit-identical to the clone path
//! (same topology, same seq/key bookkeeping, proven by a grid test), and
//! byte accounting charges the *logical* value per edge on both paths.
//!
//! **Failure semantics** (fail-stop, see DESIGN.md "Failure model"): a
//! collective has no partial-completion story. If a participating rank dies
//! mid-collective, every rank blocked on a message from it aborts with a
//! peer-death classification instead of hanging; the abort cascades along
//! the communication tree (each aborting rank broadcasts its own death
//! notice), so under [`Cluster::run_fallible`](crate::Cluster::run_fallible)
//! the whole job terminates with the victim reported as the primary failure
//! and every survivor as a `PeerDead` casualty — mirroring how MPI tears
//! down a communicator after a member fails. Plans that only delay,
//! duplicate, or reorder messages leave collective results bit-identical:
//! matching is by `(source, seq, round)`, never by arrival order.

use std::sync::Arc;

use crate::comm::Comm;
use crate::message::{ByteSized, MatchKey};

/// A zero-copy collective payload: one allocation, reference-counted
/// across the ranks of the in-process cluster. Sharing is immutable, so
/// the "no shared mutable state" discipline holds — an `Arc` hop models
/// handing a peer a read-only buffer instead of serializing a copy.
pub type Shared<T> = Arc<T>;

/// Binary reduction operator. Must be associative; commutativity is also
/// assumed (operands may be combined in rank-tree order, not rank order).
pub trait ReduceOp<T>: Fn(T, T) -> T + Sync {}
impl<T, F: Fn(T, T) -> T + Sync> ReduceOp<T> for F {}

impl Comm {
    #[inline]
    fn next_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }

    #[inline]
    fn coll_key(seq: u64, round: u32) -> MatchKey {
        MatchKey::Coll { seq, round }
    }

    /// The `(source rank, round)` a non-root rank receives from in a
    /// binomial-tree broadcast rooted at `root` (rotated vrank space).
    fn bcast_source(&self, root: usize, vrank: usize) -> (usize, u32) {
        debug_assert_ne!(vrank, 0, "the root receives from nobody");
        let n = self.size();
        let recv_round = usize::BITS - 1 - vrank.leading_zeros(); // floor(log2(vrank))
        let src_vrank = vrank - (1 << recv_round);
        ((src_vrank + root) % n, recv_round)
    }

    /// Destinations `(round, dst)` this rank forwards to in a binomial-tree
    /// broadcast rooted at `root`. One topology function feeds the clone
    /// and the zero-copy variants, so their seq/key bookkeeping is
    /// identical by construction.
    fn bcast_children(&self, root: usize, vrank: usize) -> Vec<(u32, usize)> {
        let n = self.size();
        let rounds = usize::BITS - (n - 1).leading_zeros();
        let first_send_round = if vrank == 0 {
            0
        } else {
            usize::BITS - vrank.leading_zeros()
        };
        let mut children: Vec<(u32, usize)> = Vec::new();
        for k in first_send_round..rounds {
            let dst_vrank = vrank + (1usize << k);
            if dst_vrank < n {
                children.push((k, (dst_vrank + root) % n));
            }
        }
        children
    }

    /// Round-0 destinations of a flat (linear) broadcast: every rank but
    /// the root, one envelope each — shared by [`Comm::broadcast_linear`]
    /// and [`Comm::broadcast_linear_shared`] so the E17 flat-vs-tree-vs-
    /// shared ablation compares identical bookkeeping.
    fn linear_dsts(&self, root: usize) -> Vec<(u32, usize)> {
        (0..self.size())
            .filter(|&d| d != root)
            .map(|d| (0, d))
            .collect()
    }

    /// Send `value` to every destination `(round, dst)`, cloning for all
    /// but the last, which receives the original allocation moved into the
    /// message; the caller keeps a clone made just before that final send.
    /// (The collective APIs return `T` at every rank, so the clone count
    /// is unchanged — but the original buffer now travels to a child
    /// instead of idling at the sender, and the send loop lives in one
    /// place for all broadcast variants.)
    fn fan_out<T: Send + Clone + ByteSized + 'static>(
        &mut self,
        seq: u64,
        dsts: &[(u32, usize)],
        value: T,
    ) -> T {
        let Some((&(last_round, last_dst), rest)) = dsts.split_last() else {
            return value;
        };
        let bytes = value.approx_bytes() as u64;
        for &(round, dst) in rest {
            self.send_keyed(dst, Self::coll_key(seq, round), Box::new(value.clone()), bytes);
        }
        let keep = value.clone();
        self.send_keyed(last_dst, Self::coll_key(seq, last_round), Box::new(value), bytes);
        keep
    }

    /// Zero-copy fan-out: one `Arc` clone per edge instead of one deep
    /// clone per child. The payload size is measured **once**, before the
    /// edge loop — the per-child cost is a pointer hop, independent of the
    /// payload — while byte accounting still charges the logical value on
    /// every edge, keeping clone and shared totals identical.
    fn fan_out_shared<T: Send + Sync + ByteSized + 'static>(
        &mut self,
        seq: u64,
        dsts: &[(u32, usize)],
        value: Shared<T>,
    ) -> Shared<T> {
        let bytes = value.approx_bytes() as u64;
        for &(round, dst) in dsts {
            self.send_keyed(
                dst,
                Self::coll_key(seq, round),
                Box::new(Shared::clone(&value)),
                bytes,
            );
        }
        value
    }

    /// Dissemination barrier: no rank leaves until every rank has entered.
    pub fn barrier(&mut self) {
        let n = self.size();
        let seq = self.next_seq();
        if n == 1 {
            return;
        }
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let dst = (self.rank() + dist) % n;
            let src = (self.rank() + n - dist) % n;
            self.send_keyed(dst, Self::coll_key(seq, round), Box::new(()), 0);
            self.recv_keyed::<()>(src, Self::coll_key(seq, round));
            dist <<= 1;
            round += 1;
        }
    }

    /// Binomial-tree broadcast of `value` from `root` to all ranks.
    ///
    /// Every rank passes its own `value` argument (ignored except at root,
    /// as in MPI) and receives the root's value back.
    pub fn broadcast<T: Send + Clone + ByteSized + 'static>(&mut self, root: usize, value: T) -> T {
        let n = self.size();
        assert!(root < n, "broadcast root {root} out of range");
        let seq = self.next_seq();
        if n == 1 {
            return value;
        }
        // Work in a rotated space where the root is rank 0. Receive first
        // (if not root), then forward to children in subsequent rounds.
        let vrank = (self.rank() + n - root) % n;
        let value = if vrank == 0 {
            value
        } else {
            let (src, round) = self.bcast_source(root, vrank);
            self.recv_keyed::<T>(src, Self::coll_key(seq, round))
        };
        let children = self.bcast_children(root, vrank);
        self.fan_out(seq, &children, value)
    }

    /// Zero-copy binomial-tree broadcast: identical topology and seq/key
    /// bookkeeping to [`Comm::broadcast`], but the payload travels as one
    /// [`Shared`] handle per tree edge — no deep clones anywhere. Every
    /// rank passes its own (ignored except at root) handle and receives
    /// the root's, all pointing at the root's single allocation.
    pub fn broadcast_shared<T: Send + Sync + ByteSized + 'static>(
        &mut self,
        root: usize,
        value: Shared<T>,
    ) -> Shared<T> {
        let n = self.size();
        assert!(root < n, "broadcast root {root} out of range");
        let seq = self.next_seq();
        if n == 1 {
            return value;
        }
        let vrank = (self.rank() + n - root) % n;
        let value = if vrank == 0 {
            value
        } else {
            let (src, round) = self.bcast_source(root, vrank);
            self.recv_keyed::<Shared<T>>(src, Self::coll_key(seq, round))
        };
        let children = self.bcast_children(root, vrank);
        self.fan_out_shared(seq, &children, value)
    }

    /// Linear broadcast (root sends to every rank): the naïve baseline.
    pub fn broadcast_linear<T: Send + Clone + ByteSized + 'static>(
        &mut self,
        root: usize,
        value: T,
    ) -> T {
        let n = self.size();
        assert!(root < n, "broadcast root {root} out of range");
        let seq = self.next_seq();
        if self.rank() == root {
            let dsts = self.linear_dsts(root);
            self.fan_out(seq, &dsts, value)
        } else {
            self.recv_keyed::<T>(root, Self::coll_key(seq, 0))
        }
    }

    /// Zero-copy linear broadcast: the flat ablation baseline with a
    /// [`Shared`] payload. Same destination list, sequence advance, and
    /// round-0 keys as [`Comm::broadcast_linear`] (one envelope per
    /// non-root rank, no extras), so the E17 flat-vs-tree-vs-shared
    /// comparison is apples-to-apples.
    pub fn broadcast_linear_shared<T: Send + Sync + ByteSized + 'static>(
        &mut self,
        root: usize,
        value: Shared<T>,
    ) -> Shared<T> {
        let n = self.size();
        assert!(root < n, "broadcast root {root} out of range");
        let seq = self.next_seq();
        if self.rank() == root {
            let dsts = self.linear_dsts(root);
            self.fan_out_shared(seq, &dsts, value)
        } else {
            self.recv_keyed::<Shared<T>>(root, Self::coll_key(seq, 0))
        }
    }

    /// Binomial-tree reduction to `root`. Returns `Some(total)` at the root
    /// and `None` elsewhere.
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + ByteSized + 'static,
        F: ReduceOp<T>,
    {
        let n = self.size();
        assert!(root < n, "reduce root {root} out of range");
        let seq = self.next_seq();
        let vrank = (self.rank() + n - root) % n;
        let mut acc = value;
        // Binomial tree gather: in round k, vranks that are odd multiples of
        // 2^k send to vrank - 2^k.
        let mut k = 0u32;
        loop {
            let bit = 1usize << k;
            if bit >= n {
                break;
            }
            if vrank & bit != 0 {
                // Sender this round, then done.
                let dst_vrank = vrank - bit;
                let dst = (dst_vrank + root) % n;
                let bytes = acc.approx_bytes() as u64;
                self.send_keyed(dst, Self::coll_key(seq, k), Box::new(acc), bytes);
                return None;
            } else if vrank + bit < n {
                let src = ((vrank + bit) + root) % n;
                let other = self.recv_keyed::<T>(src, Self::coll_key(seq, k));
                acc = op(acc, other);
            }
            k += 1;
        }
        debug_assert_eq!(vrank, 0);
        Some(acc)
    }

    /// Linear reduction baseline: every rank sends straight to the root.
    pub fn reduce_linear<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + ByteSized + 'static,
        F: ReduceOp<T>,
    {
        let n = self.size();
        assert!(root < n, "reduce root {root} out of range");
        let seq = self.next_seq();
        if self.rank() == root {
            let mut acc = value;
            // Combine in rank order for determinism.
            for src in 0..n {
                if src != root {
                    let v = self.recv_keyed::<T>(src, Self::coll_key(seq, 0));
                    acc = op(acc, v);
                }
            }
            Some(acc)
        } else {
            let bytes = value.approx_bytes() as u64;
            self.send_keyed(root, Self::coll_key(seq, 0), Box::new(value), bytes);
            None
        }
    }

    /// Reduce-to-root followed by broadcast: every rank gets the total.
    pub fn allreduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Send + Clone + ByteSized + 'static,
        F: ReduceOp<T>,
    {
        let total = self.reduce(0, value, op);
        match total {
            Some(t) => self.broadcast(0, t),
            // Non-root ranks have surrendered their value to the reduction
            // and cannot construct a T, so they join the broadcast as pure
            // receivers.
            None => self.broadcast_recv_only(0),
        }
    }

    /// Allreduce with a zero-copy result distribution: the reduction tree
    /// moves owned operands exactly like [`Comm::allreduce`] (the partial
    /// sums are consumed, nothing to share), but the total travels back
    /// down as one [`Shared`] allocation — every rank ends holding a
    /// handle to the same reduced value, with zero deep clones in the
    /// broadcast phase.
    pub fn allreduce_shared<T, F>(&mut self, value: T, op: F) -> Shared<T>
    where
        T: Send + Sync + ByteSized + 'static,
        F: ReduceOp<T>,
    {
        match self.reduce(0, value, op) {
            Some(t) => self.broadcast_shared(0, Shared::new(t)),
            None => self.broadcast_shared_recv_only(0),
        }
    }

    /// Participate in a broadcast as a pure receiver (used by ranks that
    /// have no value of their own, e.g. non-roots in [`Comm::allreduce`]).
    fn broadcast_recv_only<T: Send + Clone + ByteSized + 'static>(&mut self, root: usize) -> T {
        let n = self.size();
        let seq = self.next_seq();
        let vrank = (self.rank() + n - root) % n;
        debug_assert_ne!(
            vrank, 0,
            "root must call broadcast, not broadcast_recv_only"
        );
        let (src, round) = self.bcast_source(root, vrank);
        let value = self.recv_keyed::<T>(src, Self::coll_key(seq, round));
        let children = self.bcast_children(root, vrank);
        self.fan_out(seq, &children, value)
    }

    /// Shared-payload twin of [`Comm::broadcast_recv_only`], for non-root
    /// ranks of [`Comm::allreduce_shared`].
    fn broadcast_shared_recv_only<T: Send + Sync + ByteSized + 'static>(
        &mut self,
        root: usize,
    ) -> Shared<T> {
        let n = self.size();
        let seq = self.next_seq();
        let vrank = (self.rank() + n - root) % n;
        debug_assert_ne!(
            vrank, 0,
            "root must call broadcast_shared, not broadcast_shared_recv_only"
        );
        let (src, round) = self.bcast_source(root, vrank);
        let value = self.recv_keyed::<Shared<T>>(src, Self::coll_key(seq, round));
        let children = self.bcast_children(root, vrank);
        self.fan_out_shared(seq, &children, value)
    }

    /// Scatter: root distributes one chunk per rank; every rank (including
    /// the root) receives its chunk. Non-root ranks pass `None`.
    pub fn scatter<T: Send + ByteSized + 'static>(
        &mut self,
        root: usize,
        chunks: Option<Vec<T>>,
    ) -> T {
        let n = self.size();
        assert!(root < n, "scatter root {root} out of range");
        let seq = self.next_seq();
        if self.rank() == root {
            let chunks = chunks.expect("root must provide chunks to scatter");
            assert_eq!(chunks.len(), n, "scatter needs exactly one chunk per rank");
            let mut own: Option<T> = None;
            for (dst, chunk) in chunks.into_iter().enumerate() {
                if dst == root {
                    own = Some(chunk);
                } else {
                    let bytes = chunk.approx_bytes() as u64;
                    self.send_keyed(dst, Self::coll_key(seq, 0), Box::new(chunk), bytes);
                }
            }
            own.expect("root chunk present")
        } else {
            assert!(chunks.is_none(), "only the root provides chunks");
            self.recv_keyed::<T>(root, Self::coll_key(seq, 0))
        }
    }

    /// Gather: every rank contributes one value; the root receives all of
    /// them in rank order (`Some(vec)` at root, `None` elsewhere).
    pub fn gather<T: Send + ByteSized + 'static>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        let n = self.size();
        assert!(root < n, "gather root {root} out of range");
        let seq = self.next_seq();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            out[root] = Some(value);
            for src in 0..n {
                if src != root {
                    out[src] = Some(self.recv_keyed::<T>(src, Self::coll_key(seq, 0)));
                }
            }
            Some(out.into_iter().map(|v| v.expect("all gathered")).collect())
        } else {
            let bytes = value.approx_bytes() as u64;
            self.send_keyed(root, Self::coll_key(seq, 0), Box::new(value), bytes);
            None
        }
    }

    /// Ring allgather: every rank ends with all contributions in rank order.
    pub fn allgather<T: Send + Clone + ByteSized + 'static>(&mut self, value: T) -> Vec<T> {
        let n = self.size();
        let seq = self.next_seq();
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        out[self.rank()] = Some(value);
        let next = (self.rank() + 1) % n;
        let prev = (self.rank() + n - 1) % n;
        // In round r we forward the piece that originated at rank - r.
        for r in 0..n.saturating_sub(1) {
            let send_origin = (self.rank() + n - r) % n;
            let piece = out[send_origin].clone().expect("piece present to forward");
            let bytes = piece.approx_bytes() as u64;
            self.send_keyed(next, Self::coll_key(seq, r as u32), Box::new(piece), bytes);
            let recv_origin = (prev + n - r) % n;
            let got = self.recv_keyed::<T>(prev, Self::coll_key(seq, r as u32));
            out[recv_origin] = Some(got);
        }
        out.into_iter()
            .map(|v| v.expect("allgather complete"))
            .collect()
    }

    /// Zero-copy ring allgather: same ring, same `(seq, round)` keys as
    /// [`Comm::allgather`], but every forwarded piece is an `Arc` clone of
    /// the handle that arrived — each rank's contribution is allocated
    /// once and shared by all `n` ranks at the end.
    pub fn allgather_shared<T: Send + Sync + ByteSized + 'static>(
        &mut self,
        value: Shared<T>,
    ) -> Vec<Shared<T>> {
        let n = self.size();
        let seq = self.next_seq();
        let mut out: Vec<Option<Shared<T>>> = (0..n).map(|_| None).collect();
        out[self.rank()] = Some(value);
        let next = (self.rank() + 1) % n;
        let prev = (self.rank() + n - 1) % n;
        for r in 0..n.saturating_sub(1) {
            let send_origin = (self.rank() + n - r) % n;
            let piece = Shared::clone(out[send_origin].as_ref().expect("piece present to forward"));
            let bytes = piece.approx_bytes() as u64;
            self.send_keyed(next, Self::coll_key(seq, r as u32), Box::new(piece), bytes);
            let recv_origin = (prev + n - r) % n;
            let got = self.recv_keyed::<Shared<T>>(prev, Self::coll_key(seq, r as u32));
            out[recv_origin] = Some(got);
        }
        out.into_iter()
            .map(|v| v.expect("allgather complete"))
            .collect()
    }

    /// All-to-all personalized exchange: `data[i]` goes to rank `i`;
    /// returns the vector whose `i`-th entry came from rank `i`.
    pub fn alltoall<T: Send + ByteSized + 'static>(&mut self, data: Vec<T>) -> Vec<T> {
        let n = self.size();
        assert_eq!(data.len(), n, "alltoall needs exactly one item per rank");
        let seq = self.next_seq();
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (dst, item) in data.into_iter().enumerate() {
            if dst == self.rank() {
                out[dst] = Some(item);
            } else {
                let bytes = item.approx_bytes() as u64;
                self.send_keyed(dst, Self::coll_key(seq, 0), Box::new(item), bytes);
            }
        }
        for src in 0..n {
            if src != self.rank() {
                out[src] = Some(self.recv_keyed::<T>(src, Self::coll_key(seq, 0)));
            }
        }
        out.into_iter()
            .map(|v| v.expect("alltoall complete"))
            .collect()
    }

    /// Inclusive prefix scan: rank `i` receives `op(v₀, …, vᵢ)`.
    /// Linear pipeline implementation (adequate at laptop rank counts).
    pub fn scan<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Send + Clone + ByteSized + 'static,
        F: ReduceOp<T>,
    {
        let n = self.size();
        let seq = self.next_seq();
        let rank = self.rank();
        let acc = if rank == 0 {
            value
        } else {
            let prefix = self.recv_keyed::<T>(rank - 1, Self::coll_key(seq, 0));
            op(prefix, value)
        };
        if rank + 1 < n {
            let bytes = acc.approx_bytes() as u64;
            self.send_keyed(rank + 1, Self::coll_key(seq, 0), Box::new(acc.clone()), bytes);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::Shared;
    use crate::message::ByteSized;
    use crate::Cluster;

    #[test]
    fn barrier_many_times() {
        Cluster::run(7, |comm| {
            for _ in 0..50 {
                comm.barrier();
            }
        });
    }

    #[test]
    fn broadcast_from_each_root() {
        for n in [1usize, 2, 3, 5, 8] {
            for root in 0..n {
                let out = Cluster::run(n, move |comm| {
                    let v = if comm.rank() == root { 1000 + root } else { 0 };
                    comm.broadcast(root, v)
                });
                assert_eq!(out, vec![1000 + root; n], "n={n} root={root}");
            }
        }
    }

    #[test]
    fn broadcast_linear_matches_tree() {
        let out = Cluster::run(6, |comm| {
            let v = if comm.rank() == 2 { "hello" } else { "" };
            let a = comm.broadcast(2, v);
            let b = comm.broadcast_linear(2, v);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, "hello");
            assert_eq!(b, "hello");
        }
    }

    #[test]
    fn reduce_sum_all_roots_all_sizes() {
        for n in [1usize, 2, 4, 5, 9] {
            let expected: u64 = (0..n as u64).sum();
            for root in 0..n {
                let out = Cluster::run(n, move |comm| {
                    comm.reduce(root, comm.rank() as u64, |a, b| a + b)
                });
                for (rank, r) in out.into_iter().enumerate() {
                    if rank == root {
                        assert_eq!(r, Some(expected), "n={n} root={root}");
                    } else {
                        assert_eq!(r, None);
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_linear_matches_tree() {
        let out = Cluster::run(5, |comm| {
            let a = comm.reduce(0, comm.rank() as i64, |x, y| x + y);
            let b = comm.reduce_linear(0, comm.rank() as i64, |x, y| x + y);
            (a, b)
        });
        assert_eq!(out[0], (Some(10), Some(10)));
    }

    #[test]
    fn allreduce_max() {
        let out = Cluster::run(6, |comm| {
            comm.allreduce((comm.rank() * 7) % 5, |a, b| a.max(b))
        });
        let expected = (0..6).map(|r| (r * 7) % 5).max().unwrap();
        assert_eq!(out, vec![expected; 6]);
    }

    #[test]
    fn allreduce_vector_sum() {
        let out = Cluster::run(4, |comm| {
            let v = vec![comm.rank() as f64; 3];
            comm.allreduce(v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect())
        });
        for v in out {
            assert_eq!(v, vec![6.0, 6.0, 6.0]);
        }
    }

    #[test]
    fn scatter_and_gather_roundtrip() {
        let out = Cluster::run(4, |comm| {
            let chunks = if comm.rank() == 1 {
                Some((0..4).map(|i| i * i).collect())
            } else {
                None
            };
            let mine: usize = comm.scatter(1, chunks);
            assert_eq!(mine, comm.rank() * comm.rank());
            comm.gather(1, mine * 2)
        });
        assert_eq!(out[1], Some(vec![0, 2, 8, 18]));
        assert_eq!(out[0], None);
    }

    #[test]
    fn allgather_rank_order() {
        for n in [1usize, 2, 3, 6] {
            let out = Cluster::run(n, |comm| comm.allgather(comm.rank() * 100));
            let expected: Vec<usize> = (0..n).map(|r| r * 100).collect();
            for v in out {
                assert_eq!(v, expected, "n={n}");
            }
        }
    }

    #[test]
    fn alltoall_transpose() {
        let n = 5;
        let out = Cluster::run(n, move |comm| {
            let data: Vec<(usize, usize)> = (0..n).map(|dst| (comm.rank(), dst)).collect();
            comm.alltoall(data)
        });
        for (rank, row) in out.into_iter().enumerate() {
            for (src, pair) in row.into_iter().enumerate() {
                assert_eq!(pair, (src, rank));
            }
        }
    }

    #[test]
    fn scan_prefix_sums() {
        let out = Cluster::run(6, |comm| comm.scan(comm.rank() as u32 + 1, |a, b| a + b));
        assert_eq!(out, vec![1, 3, 6, 10, 15, 21]);
    }

    #[test]
    fn mixed_collectives_and_p2p_do_not_interfere() {
        Cluster::run(4, |comm| {
            // Interleave user traffic with collectives.
            let next = (comm.rank() + 1) % 4;
            let prev = (comm.rank() + 3) % 4;
            comm.send(next, 99, comm.rank());
            let total = comm.allreduce(1usize, |a, b| a + b);
            assert_eq!(total, 4);
            comm.barrier();
            let got: usize = comm.recv(prev, 99);
            assert_eq!(got, prev);
            let all = comm.allgather(got);
            assert_eq!(all, vec![3, 0, 1, 2]);
        });
    }

    /// Run every broadcast/allgather variant on one cluster and require
    /// the shared-payload results to be bit-identical to the clone path.
    fn assert_shared_matches_clone<T>(n: usize, make: impl Fn(usize) -> T + Copy + Send + Sync)
    where
        T: Send + Sync + Clone + ByteSized + PartialEq + std::fmt::Debug + 'static,
    {
        for root in [0, n - 1] {
            let out = Cluster::run(n, move |comm| {
                let v = make(comm.rank());
                let tree = comm.broadcast(root, v.clone());
                let tree_shared = comm.broadcast_shared(root, Shared::new(v.clone()));
                let lin = comm.broadcast_linear(root, v.clone());
                let lin_shared = comm.broadcast_linear_shared(root, Shared::new(v.clone()));
                let ag = comm.allgather(v.clone());
                let ag_shared = comm.allgather_shared(Shared::new(v));
                (tree, tree_shared, lin, lin_shared, ag, ag_shared)
            });
            for (tree, tree_shared, lin, lin_shared, ag, ag_shared) in out {
                assert_eq!(*tree_shared, tree, "n={n} root={root}");
                assert_eq!(*lin_shared, lin, "n={n} root={root}");
                assert_eq!(lin, tree, "n={n} root={root}");
                let unwrapped: Vec<T> = ag_shared.iter().map(|a| (**a).clone()).collect();
                assert_eq!(unwrapped, ag, "n={n} root={root}");
            }
        }
    }

    #[test]
    fn shared_collectives_bit_identical_grid() {
        for n in [1usize, 2, 4, 8] {
            // Vector, matrix-shaped, and String payloads.
            assert_shared_matches_clone(n, |r| {
                vec![r as f64 * 0.5, -(r as f64), 1.0 / (r as f64 + 1.0)]
            });
            assert_shared_matches_clone(n, |r| vec![vec![r as f64 + 0.25; 3]; 2]);
            assert_shared_matches_clone(n, |r| format!("rank-{r}-payload"));
        }
    }

    #[test]
    fn allreduce_shared_matches_clone_grid() {
        let vecsum = |a: Vec<f64>, b: Vec<f64>| -> Vec<f64> {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        };
        for n in [1usize, 2, 4, 8] {
            let out = Cluster::run(n, move |comm| {
                let v = vec![comm.rank() as f64, 1.0, 0.5];
                let owned = comm.allreduce(v.clone(), vecsum);
                let shared = comm.allreduce_shared(v, vecsum);
                (owned, shared)
            });
            for (owned, shared) in out {
                assert_eq!(*shared, owned, "n={n}");
            }
        }
    }

    #[test]
    fn shared_broadcast_moves_one_allocation() {
        // The zero-copy guarantee itself: after a shared broadcast, every
        // rank's handle points at the root's single allocation.
        let out = Cluster::run(8, |comm| {
            let shared = comm.broadcast_shared(0, Shared::new(vec![comm.rank() as u64; 8]));
            Shared::as_ptr(&shared) as usize
        });
        assert!(
            out.iter().all(|&p| p == out[0]),
            "all ranks must share the root's allocation"
        );
    }

    #[test]
    fn shared_and_clone_collectives_report_identical_bytes() {
        // Pinned: vec![f64; 4] = 32 bytes per edge, a binomial tree on n
        // ranks has n-1 edges, so both paths account 32·(n-1) in total and
        // identical amounts per rank.
        let n = 4usize;
        let out = Cluster::run(n, move |comm| {
            let v = vec![1.0f64; 4];
            let before = comm.bytes_sent();
            comm.broadcast(0, v.clone());
            let clone_bytes = comm.bytes_sent() - before;
            let before = comm.bytes_sent();
            comm.broadcast_shared(0, Shared::new(v));
            let shared_bytes = comm.bytes_sent() - before;
            (clone_bytes, shared_bytes)
        });
        for (rank, (c, s)) in out.iter().enumerate() {
            assert_eq!(c, s, "rank {rank}: per-rank byte parity");
        }
        let total: u64 = out.iter().map(|(c, _)| c).sum();
        assert_eq!(total, 32 * (n as u64 - 1));
        assert_eq!(out[0].0, 64, "root of a 4-rank tree feeds 2 children");
    }

    #[test]
    fn linear_clone_and_shared_share_bookkeeping() {
        // The E17 apples-to-apples guarantee: flat clone and flat shared
        // broadcasts advance the collective sequence once each, send
        // exactly n-1 envelopes from the root (no extra envelope per
        // round), and report identical byte totals.
        let n = 8usize;
        let out = Cluster::run(n, move |comm| {
            let v = vec![7u64; 16]; // 128 bytes
            let (c0, b0) = (comm.sent_count(), comm.bytes_sent());
            comm.broadcast_linear(0, v.clone());
            let (c1, b1) = (comm.sent_count(), comm.bytes_sent());
            comm.broadcast_linear_shared(0, Shared::new(v));
            let (c2, b2) = (comm.sent_count(), comm.bytes_sent());
            ((c1 - c0, b1 - b0), (c2 - c1, b2 - b1))
        });
        let (clone_root, shared_root) = out[0];
        assert_eq!(clone_root, ((n - 1) as u64, 128 * (n as u64 - 1)));
        assert_eq!(shared_root, clone_root, "identical seq/key bookkeeping");
        for &(c, s) in &out[1..] {
            assert_eq!(c, (0, 0), "non-roots send nothing on the flat path");
            assert_eq!(s, (0, 0));
        }
    }

    #[test]
    fn tree_broadcast_message_count_scales_logarithmically() {
        // Root's send count: linear broadcast sends n-1; tree sends ⌈log₂ n⌉.
        let n = 16;
        let out = Cluster::run(n, move |comm| {
            let before = comm.sent_count();
            comm.broadcast(0, 1u8);
            let tree = comm.sent_count() - before;
            let before = comm.sent_count();
            comm.broadcast_linear(0, 1u8);
            let linear = comm.sent_count() - before;
            (tree, linear)
        });
        let (tree_root, linear_root) = out[0];
        assert_eq!(linear_root, (n - 1) as u64);
        assert_eq!(
            tree_root, 4,
            "root of a 16-rank binomial tree sends log2(16) messages"
        );
    }
}
