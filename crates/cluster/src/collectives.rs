//! MPI-style collective operations.
//!
//! Every collective advances the communicator's internal sequence number,
//! which is folded into the message match key — so consecutive collectives
//! cannot interfere even when fast ranks race ahead, and user point-to-point
//! traffic can never be mistaken for collective traffic.
//!
//! The default algorithms mirror production MPI structure:
//!
//! * [`Comm::barrier`] — dissemination, `⌈log₂ n⌉` rounds;
//! * [`Comm::broadcast`] / [`Comm::reduce`] — binomial tree, `O(log n)` depth;
//! * [`Comm::allreduce`] — reduce + broadcast;
//! * [`Comm::allgather`] — ring, `n − 1` rounds;
//! * [`Comm::alltoall`] — direct pairwise exchange.
//!
//! Linear variants ([`Comm::broadcast_linear`], [`Comm::reduce_linear`]) are
//! kept for the ablation benchmark comparing flat vs. tree collectives — the
//! "architectural knowledge can help design faster code" lesson of §2.
//!
//! **Failure semantics** (fail-stop, see DESIGN.md "Failure model"): a
//! collective has no partial-completion story. If a participating rank dies
//! mid-collective, every rank blocked on a message from it aborts with a
//! peer-death classification instead of hanging; the abort cascades along
//! the communication tree (each aborting rank broadcasts its own death
//! notice), so under [`Cluster::run_fallible`](crate::Cluster::run_fallible)
//! the whole job terminates with the victim reported as the primary failure
//! and every survivor as a `PeerDead` casualty — mirroring how MPI tears
//! down a communicator after a member fails. Plans that only delay,
//! duplicate, or reorder messages leave collective results bit-identical:
//! matching is by `(source, seq, round)`, never by arrival order.

use crate::comm::Comm;
use crate::message::MatchKey;

/// Binary reduction operator. Must be associative; commutativity is also
/// assumed (operands may be combined in rank-tree order, not rank order).
pub trait ReduceOp<T>: Fn(T, T) -> T + Sync {}
impl<T, F: Fn(T, T) -> T + Sync> ReduceOp<T> for F {}

impl Comm {
    #[inline]
    fn next_seq(&mut self) -> u64 {
        let s = self.coll_seq;
        self.coll_seq += 1;
        s
    }

    #[inline]
    fn coll_key(seq: u64, round: u32) -> MatchKey {
        MatchKey::Coll { seq, round }
    }

    /// Send `value` to every destination `(round, dst)`, cloning for all
    /// but the last, which receives the original allocation moved into the
    /// message; the caller keeps a clone made just before that final send.
    /// (The collective APIs return `T` at every rank, so the clone count
    /// is unchanged — but the original buffer now travels to a child
    /// instead of idling at the sender, and the send loop lives in one
    /// place for all broadcast variants.)
    fn fan_out<T: Send + Clone + 'static>(
        &mut self,
        seq: u64,
        dsts: &[(u32, usize)],
        value: T,
    ) -> T {
        let Some((&(last_round, last_dst), rest)) = dsts.split_last() else {
            return value;
        };
        for &(round, dst) in rest {
            self.send_keyed(dst, Self::coll_key(seq, round), Box::new(value.clone()));
        }
        let keep = value.clone();
        self.send_keyed(last_dst, Self::coll_key(seq, last_round), Box::new(value));
        keep
    }

    /// Dissemination barrier: no rank leaves until every rank has entered.
    pub fn barrier(&mut self) {
        let n = self.size();
        let seq = self.next_seq();
        if n == 1 {
            return;
        }
        let mut round = 0u32;
        let mut dist = 1usize;
        while dist < n {
            let dst = (self.rank() + dist) % n;
            let src = (self.rank() + n - dist) % n;
            self.send_keyed(dst, Self::coll_key(seq, round), Box::new(()));
            self.recv_keyed::<()>(src, Self::coll_key(seq, round));
            dist <<= 1;
            round += 1;
        }
    }

    /// Binomial-tree broadcast of `value` from `root` to all ranks.
    ///
    /// Every rank passes its own `value` argument (ignored except at root,
    /// as in MPI) and receives the root's value back.
    pub fn broadcast<T: Send + Clone + 'static>(&mut self, root: usize, value: T) -> T {
        let n = self.size();
        assert!(root < n, "broadcast root {root} out of range");
        let seq = self.next_seq();
        if n == 1 {
            return value;
        }
        // Work in a rotated space where the root is rank 0.
        let vrank = (self.rank() + n - root) % n;
        let mut received: Option<T> = if vrank == 0 { Some(value) } else { None };

        // Rounds from high to low: in round k, ranks with vrank < 2^k that
        // hold the value send to vrank + 2^k.
        let rounds = usize::BITS - (n - 1).leading_zeros();
        // Receive first (if not root): find which round delivers to us.
        if vrank != 0 {
            let recv_round = usize::BITS - 1 - vrank.leading_zeros(); // floor(log2(vrank))
            let src_vrank = vrank - (1 << recv_round);
            let src = (src_vrank + root) % n;
            let v = self.recv_keyed::<T>(src, Self::coll_key(seq, recv_round));
            received = Some(v);
        }
        let value = received.expect("broadcast value must be set by now");
        // Forward to children in subsequent rounds.
        let first_send_round = if vrank == 0 {
            0
        } else {
            usize::BITS - vrank.leading_zeros()
        };
        let mut children: Vec<(u32, usize)> = Vec::new();
        for k in first_send_round..rounds {
            let dst_vrank = vrank + (1usize << k);
            if dst_vrank < n {
                children.push((k, (dst_vrank + root) % n));
            }
        }
        self.fan_out(seq, &children, value)
    }

    /// Linear broadcast (root sends to every rank): the naïve baseline.
    pub fn broadcast_linear<T: Send + Clone + 'static>(&mut self, root: usize, value: T) -> T {
        let n = self.size();
        assert!(root < n, "broadcast root {root} out of range");
        let seq = self.next_seq();
        if self.rank() == root {
            let dsts: Vec<(u32, usize)> = (0..n).filter(|&d| d != root).map(|d| (0, d)).collect();
            self.fan_out(seq, &dsts, value)
        } else {
            self.recv_keyed::<T>(root, Self::coll_key(seq, 0))
        }
    }

    /// Binomial-tree reduction to `root`. Returns `Some(total)` at the root
    /// and `None` elsewhere.
    pub fn reduce<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: ReduceOp<T>,
    {
        let n = self.size();
        assert!(root < n, "reduce root {root} out of range");
        let seq = self.next_seq();
        let vrank = (self.rank() + n - root) % n;
        let mut acc = value;
        // Binomial tree gather: in round k, vranks that are odd multiples of
        // 2^k send to vrank - 2^k.
        let mut k = 0u32;
        loop {
            let bit = 1usize << k;
            if bit >= n {
                break;
            }
            if vrank & bit != 0 {
                // Sender this round, then done.
                let dst_vrank = vrank - bit;
                let dst = (dst_vrank + root) % n;
                self.send_keyed(dst, Self::coll_key(seq, k), Box::new(acc));
                return None;
            } else if vrank + bit < n {
                let src = ((vrank + bit) + root) % n;
                let other = self.recv_keyed::<T>(src, Self::coll_key(seq, k));
                acc = op(acc, other);
            }
            k += 1;
        }
        debug_assert_eq!(vrank, 0);
        Some(acc)
    }

    /// Linear reduction baseline: every rank sends straight to the root.
    pub fn reduce_linear<T, F>(&mut self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Send + 'static,
        F: ReduceOp<T>,
    {
        let n = self.size();
        assert!(root < n, "reduce root {root} out of range");
        let seq = self.next_seq();
        if self.rank() == root {
            let mut acc = value;
            // Combine in rank order for determinism.
            for src in 0..n {
                if src != root {
                    let v = self.recv_keyed::<T>(src, Self::coll_key(seq, 0));
                    acc = op(acc, v);
                }
            }
            Some(acc)
        } else {
            self.send_keyed(root, Self::coll_key(seq, 0), Box::new(value));
            None
        }
    }

    /// Reduce-to-root followed by broadcast: every rank gets the total.
    pub fn allreduce<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Send + Clone + 'static,
        F: ReduceOp<T>,
    {
        let total = self.reduce(0, value, op);
        match total {
            Some(t) => self.broadcast(0, t),
            // Non-root ranks have surrendered their value to the reduction
            // and cannot construct a T, so they join the broadcast as pure
            // receivers.
            None => self.broadcast_recv_only(0),
        }
    }

    /// Participate in a broadcast as a pure receiver (used by ranks that
    /// have no value of their own, e.g. non-roots in [`Comm::allreduce`]).
    fn broadcast_recv_only<T: Send + Clone + 'static>(&mut self, root: usize) -> T {
        let n = self.size();
        let seq = self.next_seq();
        let vrank = (self.rank() + n - root) % n;
        debug_assert_ne!(
            vrank, 0,
            "root must call broadcast, not broadcast_recv_only"
        );
        let rounds = usize::BITS - (n - 1).leading_zeros();
        let recv_round = usize::BITS - 1 - vrank.leading_zeros();
        let src_vrank = vrank - (1 << recv_round);
        let src = (src_vrank + root) % n;
        let value = self.recv_keyed::<T>(src, Self::coll_key(seq, recv_round));
        let first_send_round = usize::BITS - vrank.leading_zeros();
        let mut children: Vec<(u32, usize)> = Vec::new();
        for k in first_send_round..rounds {
            let dst_vrank = vrank + (1usize << k);
            if dst_vrank < n {
                children.push((k, (dst_vrank + root) % n));
            }
        }
        self.fan_out(seq, &children, value)
    }

    /// Scatter: root distributes one chunk per rank; every rank (including
    /// the root) receives its chunk. Non-root ranks pass `None`.
    pub fn scatter<T: Send + 'static>(&mut self, root: usize, chunks: Option<Vec<T>>) -> T {
        let n = self.size();
        assert!(root < n, "scatter root {root} out of range");
        let seq = self.next_seq();
        if self.rank() == root {
            let chunks = chunks.expect("root must provide chunks to scatter");
            assert_eq!(chunks.len(), n, "scatter needs exactly one chunk per rank");
            let mut own: Option<T> = None;
            for (dst, chunk) in chunks.into_iter().enumerate() {
                if dst == root {
                    own = Some(chunk);
                } else {
                    self.send_keyed(dst, Self::coll_key(seq, 0), Box::new(chunk));
                }
            }
            own.expect("root chunk present")
        } else {
            assert!(chunks.is_none(), "only the root provides chunks");
            self.recv_keyed::<T>(root, Self::coll_key(seq, 0))
        }
    }

    /// Gather: every rank contributes one value; the root receives all of
    /// them in rank order (`Some(vec)` at root, `None` elsewhere).
    pub fn gather<T: Send + 'static>(&mut self, root: usize, value: T) -> Option<Vec<T>> {
        let n = self.size();
        assert!(root < n, "gather root {root} out of range");
        let seq = self.next_seq();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            out[root] = Some(value);
            for src in 0..n {
                if src != root {
                    out[src] = Some(self.recv_keyed::<T>(src, Self::coll_key(seq, 0)));
                }
            }
            Some(out.into_iter().map(|v| v.expect("all gathered")).collect())
        } else {
            self.send_keyed(root, Self::coll_key(seq, 0), Box::new(value));
            None
        }
    }

    /// Ring allgather: every rank ends with all contributions in rank order.
    pub fn allgather<T: Send + Clone + 'static>(&mut self, value: T) -> Vec<T> {
        let n = self.size();
        let seq = self.next_seq();
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        out[self.rank()] = Some(value);
        let next = (self.rank() + 1) % n;
        let prev = (self.rank() + n - 1) % n;
        // In round r we forward the piece that originated at rank - r.
        for r in 0..n.saturating_sub(1) {
            let send_origin = (self.rank() + n - r) % n;
            let piece = out[send_origin].clone().expect("piece present to forward");
            self.send_keyed(next, Self::coll_key(seq, r as u32), Box::new(piece));
            let recv_origin = (prev + n - r) % n;
            let got = self.recv_keyed::<T>(prev, Self::coll_key(seq, r as u32));
            out[recv_origin] = Some(got);
        }
        out.into_iter()
            .map(|v| v.expect("allgather complete"))
            .collect()
    }

    /// All-to-all personalized exchange: `data[i]` goes to rank `i`;
    /// returns the vector whose `i`-th entry came from rank `i`.
    pub fn alltoall<T: Send + 'static>(&mut self, data: Vec<T>) -> Vec<T> {
        let n = self.size();
        assert_eq!(data.len(), n, "alltoall needs exactly one item per rank");
        let seq = self.next_seq();
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (dst, item) in data.into_iter().enumerate() {
            if dst == self.rank() {
                out[dst] = Some(item);
            } else {
                self.send_keyed(dst, Self::coll_key(seq, 0), Box::new(item));
            }
        }
        for src in 0..n {
            if src != self.rank() {
                out[src] = Some(self.recv_keyed::<T>(src, Self::coll_key(seq, 0)));
            }
        }
        out.into_iter()
            .map(|v| v.expect("alltoall complete"))
            .collect()
    }

    /// Inclusive prefix scan: rank `i` receives `op(v₀, …, vᵢ)`.
    /// Linear pipeline implementation (adequate at laptop rank counts).
    pub fn scan<T, F>(&mut self, value: T, op: F) -> T
    where
        T: Send + Clone + 'static,
        F: ReduceOp<T>,
    {
        let n = self.size();
        let seq = self.next_seq();
        let rank = self.rank();
        let acc = if rank == 0 {
            value
        } else {
            let prefix = self.recv_keyed::<T>(rank - 1, Self::coll_key(seq, 0));
            op(prefix, value)
        };
        if rank + 1 < n {
            self.send_keyed(rank + 1, Self::coll_key(seq, 0), Box::new(acc.clone()));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use crate::Cluster;

    #[test]
    fn barrier_many_times() {
        Cluster::run(7, |comm| {
            for _ in 0..50 {
                comm.barrier();
            }
        });
    }

    #[test]
    fn broadcast_from_each_root() {
        for n in [1usize, 2, 3, 5, 8] {
            for root in 0..n {
                let out = Cluster::run(n, move |comm| {
                    let v = if comm.rank() == root { 1000 + root } else { 0 };
                    comm.broadcast(root, v)
                });
                assert_eq!(out, vec![1000 + root; n], "n={n} root={root}");
            }
        }
    }

    #[test]
    fn broadcast_linear_matches_tree() {
        let out = Cluster::run(6, |comm| {
            let v = if comm.rank() == 2 { "hello" } else { "" };
            let a = comm.broadcast(2, v);
            let b = comm.broadcast_linear(2, v);
            (a, b)
        });
        for (a, b) in out {
            assert_eq!(a, "hello");
            assert_eq!(b, "hello");
        }
    }

    #[test]
    fn reduce_sum_all_roots_all_sizes() {
        for n in [1usize, 2, 4, 5, 9] {
            let expected: u64 = (0..n as u64).sum();
            for root in 0..n {
                let out = Cluster::run(n, move |comm| {
                    comm.reduce(root, comm.rank() as u64, |a, b| a + b)
                });
                for (rank, r) in out.into_iter().enumerate() {
                    if rank == root {
                        assert_eq!(r, Some(expected), "n={n} root={root}");
                    } else {
                        assert_eq!(r, None);
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_linear_matches_tree() {
        let out = Cluster::run(5, |comm| {
            let a = comm.reduce(0, comm.rank() as i64, |x, y| x + y);
            let b = comm.reduce_linear(0, comm.rank() as i64, |x, y| x + y);
            (a, b)
        });
        assert_eq!(out[0], (Some(10), Some(10)));
    }

    #[test]
    fn allreduce_max() {
        let out = Cluster::run(6, |comm| {
            comm.allreduce((comm.rank() * 7) % 5, |a, b| a.max(b))
        });
        let expected = (0..6).map(|r| (r * 7) % 5).max().unwrap();
        assert_eq!(out, vec![expected; 6]);
    }

    #[test]
    fn allreduce_vector_sum() {
        let out = Cluster::run(4, |comm| {
            let v = vec![comm.rank() as f64; 3];
            comm.allreduce(v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect())
        });
        for v in out {
            assert_eq!(v, vec![6.0, 6.0, 6.0]);
        }
    }

    #[test]
    fn scatter_and_gather_roundtrip() {
        let out = Cluster::run(4, |comm| {
            let chunks = if comm.rank() == 1 {
                Some((0..4).map(|i| i * i).collect())
            } else {
                None
            };
            let mine: usize = comm.scatter(1, chunks);
            assert_eq!(mine, comm.rank() * comm.rank());
            comm.gather(1, mine * 2)
        });
        assert_eq!(out[1], Some(vec![0, 2, 8, 18]));
        assert_eq!(out[0], None);
    }

    #[test]
    fn allgather_rank_order() {
        for n in [1usize, 2, 3, 6] {
            let out = Cluster::run(n, |comm| comm.allgather(comm.rank() * 100));
            let expected: Vec<usize> = (0..n).map(|r| r * 100).collect();
            for v in out {
                assert_eq!(v, expected, "n={n}");
            }
        }
    }

    #[test]
    fn alltoall_transpose() {
        let n = 5;
        let out = Cluster::run(n, move |comm| {
            let data: Vec<(usize, usize)> = (0..n).map(|dst| (comm.rank(), dst)).collect();
            comm.alltoall(data)
        });
        for (rank, row) in out.into_iter().enumerate() {
            for (src, pair) in row.into_iter().enumerate() {
                assert_eq!(pair, (src, rank));
            }
        }
    }

    #[test]
    fn scan_prefix_sums() {
        let out = Cluster::run(6, |comm| comm.scan(comm.rank() as u32 + 1, |a, b| a + b));
        assert_eq!(out, vec![1, 3, 6, 10, 15, 21]);
    }

    #[test]
    fn mixed_collectives_and_p2p_do_not_interfere() {
        Cluster::run(4, |comm| {
            // Interleave user traffic with collectives.
            let next = (comm.rank() + 1) % 4;
            let prev = (comm.rank() + 3) % 4;
            comm.send(next, 99, comm.rank());
            let total = comm.allreduce(1usize, |a, b| a + b);
            assert_eq!(total, 4);
            comm.barrier();
            let got: usize = comm.recv(prev, 99);
            assert_eq!(got, prev);
            let all = comm.allgather(got);
            assert_eq!(all, vec![3, 0, 1, 2]);
        });
    }

    #[test]
    fn tree_broadcast_message_count_scales_logarithmically() {
        // Root's send count: linear broadcast sends n-1; tree sends ⌈log₂ n⌉.
        let n = 16;
        let out = Cluster::run(n, move |comm| {
            let before = comm.sent_count();
            comm.broadcast(0, 1u8);
            let tree = comm.sent_count() - before;
            let before = comm.sent_count();
            comm.broadcast_linear(0, 1u8);
            let linear = comm.sent_count() - before;
            (tree, linear)
        });
        let (tree_root, linear_root) = out[0];
        assert_eq!(linear_root, (n - 1) as u64);
        assert_eq!(
            tree_root, 4,
            "root of a 16-rank binomial tree sends log2(16) messages"
        );
    }
}
