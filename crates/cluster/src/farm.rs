//! A fault-tolerant, self-scheduling task farm (the paper's §7 pattern,
//! hardened).
//!
//! Rank 0 is the **manager**: it hands out task indices one at a time to
//! whichever worker asks next (self-scheduling, so fast workers take more
//! tasks). Workers request work, compute, and return the result with
//! their next request. On top of the classic pattern, the farm is
//! **failure-aware**:
//!
//! * a worker that dies (panic or scheduled [`FaultPlan`](crate::FaultPlan)
//!   kill) is detected via its death notice; the task it was holding is
//!   reassigned to a surviving worker, bounded by [`RetryPolicy`];
//! * once a task's retry budget is exhausted — or no workers remain — the
//!   manager runs it locally, so the farm degrades gracefully all the way
//!   down to serial execution;
//! * results are keyed by task index, so the output is **bit-identical**
//!   to a fault-free run for deterministic task functions, no matter which
//!   rank ends up computing what.
//!
//! The farm tolerates rank death, message delay, duplication, and
//! reordering. It does *not* implement retransmission, so plans that
//! **drop** messages can stall it — drop injection is for exercising the
//! timeout-aware receives, not the farm.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

use crate::comm::Comm;
use crate::fault::{RecvError, RetryPolicy};
use crate::message::ByteSized;

/// Tags reserved by the farm protocol (chosen high to stay out of the way
/// of application tags).
const TAG_REQUEST: u32 = 0xFAE0_0001;
const TAG_ASSIGN: u32 = 0xFAE0_0002;

/// Assignment sentinel: no more work, worker may leave.
const DONE: usize = usize::MAX;

/// Manager rank of the farm.
const MANAGER: usize = 0;

/// How long the manager waits for worker traffic before re-checking for
/// deaths, and how long workers wait before re-polling the manager.
const POLL: Duration = Duration::from_millis(2);

/// What the farm produced, reported by the manager rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarmOutcome<T> {
    /// Per-task results, indexed by task id — independent of which rank
    /// computed each task.
    pub results: Vec<T>,
    /// Tasks completed per rank (index 0 counts the manager's last-resort
    /// local executions).
    pub executed: Vec<usize>,
    /// Tasks re-dispatched after their assigned worker died.
    pub reassigned: u64,
}

/// Run `n_tasks` independent tasks through the farm; every rank of the
/// cluster must call this collectively. The manager (rank 0) returns
/// `Some(outcome)`, workers return `None`.
///
/// `work` must be deterministic for the bit-identical-under-failure
/// guarantee to hold; it runs on whichever rank the task lands on.
pub fn task_farm<T, F>(
    comm: &mut Comm,
    n_tasks: usize,
    policy: &RetryPolicy,
    work: F,
) -> Option<FarmOutcome<T>>
where
    T: Send + ByteSized + 'static,
    F: Fn(usize) -> T,
{
    assert!(policy.max_attempts >= 1, "max_attempts must be >= 1");
    if comm.rank() == MANAGER {
        Some(run_manager(comm, n_tasks, policy, work))
    } else {
        run_worker(comm, work);
        None
    }
}

fn run_manager<T, F>(comm: &mut Comm, n_tasks: usize, policy: &RetryPolicy, work: F) -> FarmOutcome<T>
where
    T: Send + ByteSized + 'static,
    F: Fn(usize) -> T,
{
    let size = comm.size();
    let mut results: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    let mut executed = vec![0usize; size];
    let mut attempts = vec![0u32; n_tasks];
    let mut pending: VecDeque<usize> = (0..n_tasks).collect();
    // worker -> task currently assigned to it
    let mut outstanding: HashMap<usize, usize> = HashMap::new();
    let mut idle: VecDeque<usize> = VecDeque::new();
    let mut alive: HashSet<usize> = (1..size).collect();
    let mut done = 0usize;
    let mut reassigned = 0u64;

    while done < n_tasks {
        // Absorb worker deaths and recover the tasks they were holding.
        for w in comm.dead_peers() {
            if alive.remove(&w) {
                idle.retain(|&x| x != w);
                if let Some(t) = outstanding.remove(&w) {
                    if attempts[t] >= policy.max_attempts {
                        // Retry budget exhausted: last resort, run it here.
                        results[t] = Some(work(t));
                        executed[MANAGER] += 1;
                        done += 1;
                    } else {
                        policy.sleep_before_retry(attempts[t]);
                        pending.push_front(t);
                        reassigned += 1;
                    }
                }
            }
        }
        // No workers left: degrade gracefully to serial on the manager.
        if alive.is_empty() {
            while let Some(t) = pending.pop_front() {
                results[t] = Some(work(t));
                executed[MANAGER] += 1;
                done += 1;
            }
            continue;
        }
        // Hand pending tasks to idle workers, one each (self-scheduling).
        while !pending.is_empty() && !idle.is_empty() {
            let w = idle.pop_front().expect("idle non-empty");
            if !alive.contains(&w) {
                continue;
            }
            let t = pending.pop_front().expect("pending non-empty");
            attempts[t] += 1;
            outstanding.insert(w, t);
            comm.send(w, TAG_ASSIGN, t);
        }
        // Wait briefly for worker traffic, then re-check for deaths.
        match comm.recv_any_timeout::<Option<(usize, T)>>(TAG_REQUEST, POLL) {
            Ok((w, report)) => {
                if let Some((t, v)) = report {
                    if outstanding.get(&w) == Some(&t) {
                        outstanding.remove(&w);
                    }
                    if results[t].is_none() {
                        results[t] = Some(v);
                        executed[w] += 1;
                        done += 1;
                    }
                }
                idle.push_back(w);
            }
            Err(RecvError::Timeout) => {}
            Err(_) => {} // teardown or spurious failure: the death scan above decides
        }
    }

    // All results are in: dismiss the survivors. Workers still computing a
    // task can only exist if that task was completed elsewhere after their
    // death — i.e. they are dead — so every live worker will request again.
    let mut to_dismiss = alive;
    while let Some(w) = idle.pop_front() {
        if to_dismiss.remove(&w) {
            comm.send(w, TAG_ASSIGN, DONE);
        }
    }
    while !to_dismiss.is_empty() {
        for w in comm.dead_peers() {
            to_dismiss.remove(&w);
        }
        if let Ok((w, _late_report)) = comm.recv_any_timeout::<Option<(usize, T)>>(TAG_REQUEST, POLL)
        {
            if to_dismiss.remove(&w) {
                comm.send(w, TAG_ASSIGN, DONE);
            }
        }
    }

    FarmOutcome {
        results: results
            .into_iter()
            .map(|r| r.expect("every task completed"))
            .collect(),
        executed,
        reassigned,
    }
}

fn run_worker<T, F>(comm: &mut Comm, work: F)
where
    T: Send + ByteSized + 'static,
    F: Fn(usize) -> T,
{
    let mut report: Option<(usize, T)> = None;
    loop {
        comm.send(MANAGER, TAG_REQUEST, report.take());
        loop {
            match comm.recv_timeout::<usize>(MANAGER, TAG_ASSIGN, POLL) {
                Ok(t) if t == DONE => return,
                Ok(t) => {
                    report = Some((t, work(t)));
                    break;
                }
                Err(RecvError::Timeout) => continue,
                // Manager dead or cluster tearing down: nothing left to do.
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, RankErrorKind};
    use crate::Cluster;

    fn square(t: usize) -> u64 {
        (t as u64) * (t as u64)
    }

    fn farm_results(outcomes: Vec<Option<FarmOutcome<u64>>>) -> FarmOutcome<u64> {
        outcomes
            .into_iter()
            .flatten()
            .next()
            .expect("manager reported")
    }

    #[test]
    fn farm_matches_serial() {
        let n = 37;
        let expected: Vec<u64> = (0..n).map(square).collect();
        let out = Cluster::run(4, |comm| {
            task_farm(comm, n, &RetryPolicy::default(), square)
        });
        let outcome = farm_results(out);
        assert_eq!(outcome.results, expected);
        assert_eq!(outcome.reassigned, 0);
        assert_eq!(outcome.executed.iter().sum::<usize>(), n);
        assert_eq!(outcome.executed[0], 0, "manager computes nothing when workers live");
    }

    #[test]
    fn farm_single_rank_runs_serially() {
        let out = Cluster::run(1, |comm| {
            task_farm(comm, 5, &RetryPolicy::default(), square)
        });
        let outcome = farm_results(out);
        assert_eq!(outcome.results, vec![0, 1, 4, 9, 16]);
        assert_eq!(outcome.executed, vec![5]);
    }

    #[test]
    fn farm_zero_tasks() {
        let out = Cluster::run(3, |comm| {
            task_farm(comm, 0, &RetryPolicy::default(), square)
        });
        let outcome = farm_results(out);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.executed.iter().sum::<usize>(), 0);
    }

    #[test]
    fn killed_worker_tasks_are_absorbed_bit_identically() {
        let n = 24;
        let expected: Vec<u64> = (0..n).map(square).collect();
        for seed in [1, 2, 3] {
            // Worker 2 dies on its 4th transport send (mid-farm).
            let plan = FaultPlan::new(seed).kill(2, 3);
            let results = Cluster::run_with_plan(4, &plan, |comm| {
                task_farm(comm, n, &RetryPolicy::default(), square)
            });
            let outcome = results[0]
                .as_ref()
                .expect("manager survives")
                .clone()
                .expect("manager reports");
            assert_eq!(outcome.results, expected, "seed {seed}: bit-identical");
            assert!(outcome.reassigned >= 1, "seed {seed}: dead worker's task reassigned");
            assert_eq!(
                results[2].as_ref().unwrap_err().kind,
                RankErrorKind::Killed
            );
            for rank in [1, 3] {
                assert!(results[rank].is_ok(), "seed {seed}: rank {rank} survives");
            }
        }
    }

    #[test]
    fn farm_degrades_to_manager_when_all_workers_die() {
        let n = 9;
        let expected: Vec<u64> = (0..n).map(square).collect();
        // Every worker dies at its very first send (the initial request).
        let plan = FaultPlan::new(7).kill(1, 0).kill(2, 0);
        let results = Cluster::run_with_plan(3, &plan, |comm| {
            task_farm(comm, n, &RetryPolicy::default(), square)
        });
        let outcome = results[0]
            .as_ref()
            .expect("manager survives")
            .clone()
            .expect("manager reports");
        assert_eq!(outcome.results, expected);
        assert_eq!(outcome.executed[0], n, "manager absorbed everything");
    }
}
