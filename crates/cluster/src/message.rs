//! Message envelopes and the selective-receive mailbox.
//!
//! MPI's `MPI_Recv(source, tag)` may have to skip past messages that arrived
//! earlier but match a different `(source, tag)`. The [`Mailbox`] reproduces
//! that: unmatched envelopes are parked in a local buffer and re-examined by
//! later receives, so message *matching* order is decoupled from *arrival*
//! order exactly as in MPI.

use std::any::Any;
use std::collections::VecDeque;

use crossbeam::channel::Receiver;

/// Message identity used for matching. User messages carry a `u32` tag;
/// collective-internal messages carry a (sequence, round) pair so that
/// consecutive collectives can never be confused with each other or with
/// user traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchKey {
    /// Application-level tag.
    User(u32),
    /// Internal collective traffic: (collective sequence number, round).
    Coll {
        /// Collective sequence number (advances per collective call).
        seq: u64,
        /// Algorithm round within the collective.
        round: u32,
    },
}

/// A message in flight: source rank, match key, type-erased payload.
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Matching identity (user tag or collective sequence).
    pub key: MatchKey,
    /// Type-erased message body.
    pub payload: Box<dyn Any + Send>,
}

/// Wildcard used by [`Mailbox::recv_match`] to accept any source.
pub const ANY_SRC: usize = usize::MAX;

/// Per-rank incoming-message store with selective receive.
pub struct Mailbox {
    rx: Receiver<Envelope>,
    parked: VecDeque<Envelope>,
}

impl Mailbox {
    /// Wrap a rank's receive channel.
    pub fn new(rx: Receiver<Envelope>) -> Self {
        Self {
            rx,
            parked: VecDeque::new(),
        }
    }

    /// Block until a message matching `(src, key)` is available and return
    /// it. `src == ANY_SRC` matches any source. Non-matching messages are
    /// parked for later receives in arrival order.
    pub fn recv_match(&mut self, src: usize, key: MatchKey) -> Envelope {
        // First look through parked messages.
        if let Some(pos) = self
            .parked
            .iter()
            .position(|e| (src == ANY_SRC || e.src == src) && e.key == key)
        {
            return self.parked.remove(pos).expect("position just found");
        }
        // Then pull from the channel, parking mismatches.
        loop {
            let env = self
                .rx
                .recv()
                .expect("cluster channel closed while a rank was still receiving");
            if (src == ANY_SRC || env.src == src) && env.key == key {
                return env;
            }
            self.parked.push_back(env);
        }
    }

    /// Non-blocking probe: is a matching message already available?
    pub fn probe(&mut self, src: usize, key: MatchKey) -> bool {
        // Drain the channel into the parked queue without blocking, then scan.
        while let Ok(env) = self.rx.try_recv() {
            self.parked.push_back(env);
        }
        self.parked
            .iter()
            .any(|e| (src == ANY_SRC || e.src == src) && e.key == key)
    }

    /// Number of parked (arrived but unmatched) messages.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn env(src: usize, tag: u32, v: i32) -> Envelope {
        Envelope {
            src,
            key: MatchKey::User(tag),
            payload: Box::new(v),
        }
    }

    #[test]
    fn out_of_order_matching() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(1, 10, 100)).unwrap();
        tx.send(env(2, 20, 200)).unwrap();
        // Ask for the second-arrived first.
        let got = mb.recv_match(2, MatchKey::User(20));
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 200);
        assert_eq!(mb.parked_len(), 1);
        let got = mb.recv_match(1, MatchKey::User(10));
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 100);
        assert_eq!(mb.parked_len(), 0);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(5, 1, 55)).unwrap();
        let got = mb.recv_match(ANY_SRC, MatchKey::User(1));
        assert_eq!(got.src, 5);
    }

    #[test]
    fn fifo_between_matching_messages() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(1, 9, 1)).unwrap();
        tx.send(env(1, 9, 2)).unwrap();
        let a = mb.recv_match(1, MatchKey::User(9));
        let b = mb.recv_match(1, MatchKey::User(9));
        assert_eq!(*a.payload.downcast::<i32>().unwrap(), 1);
        assert_eq!(*b.payload.downcast::<i32>().unwrap(), 2);
    }

    #[test]
    fn coll_keys_do_not_match_user_keys() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(Envelope {
            src: 0,
            key: MatchKey::Coll { seq: 3, round: 0 },
            payload: Box::new(7i32),
        })
        .unwrap();
        tx.send(env(0, 3, 8)).unwrap();
        // User tag 3 must not match Coll seq 3.
        let got = mb.recv_match(0, MatchKey::User(3));
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 8);
        let got = mb.recv_match(0, MatchKey::Coll { seq: 3, round: 0 });
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 7);
    }

    #[test]
    fn probe_sees_arrived_message() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        assert!(!mb.probe(1, MatchKey::User(4)));
        tx.send(env(1, 4, 0)).unwrap();
        assert!(mb.probe(1, MatchKey::User(4)));
        // Probe must not consume.
        assert!(mb.probe(1, MatchKey::User(4)));
        mb.recv_match(1, MatchKey::User(4));
        assert!(!mb.probe(1, MatchKey::User(4)));
    }
}
