//! Message envelopes and the selective-receive mailbox.
//!
//! MPI's `MPI_Recv(source, tag)` may have to skip past messages that arrived
//! earlier but match a different `(source, tag)`. The [`Mailbox`] reproduces
//! that: unmatched envelopes are parked, **indexed by `(source, key)`**, and
//! re-examined by later receives, so message *matching* order is decoupled
//! from *arrival* order exactly as in MPI — at `O(1)` per match even under
//! heavy out-of-order traffic (the parked store is a hash map of per-key
//! FIFO queues, with a per-key arrival index serving wildcard receives).
//!
//! The mailbox is also the receiver half of the fault-tolerant transport:
//!
//! * **death notices** ([`Envelope::death`]) mark a source rank dead, so
//!   receives targeting it wake with [`RecvError::PeerDead`] instead of
//!   blocking forever;
//! * **ghost duplicates** (injected by a [`FaultPlan`](crate::FaultPlan))
//!   are discarded here, modelling the receiver-side dedup of a reliable
//!   transport;
//! * **held-back envelopes** (`hold_back > 0`) become matchable only after
//!   later traffic has been absorbed, modelling network reordering while
//!   guaranteeing progress (a held message is force-released whenever the
//!   channel has nothing newer to offer).

use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};

use crate::fault::RecvError;

/// Message identity used for matching. User messages carry a `u32` tag;
/// collective-internal messages carry a (sequence, round) pair so that
/// consecutive collectives can never be confused with each other or with
/// user traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKey {
    /// Application-level tag.
    User(u32),
    /// Internal collective traffic: (collective sequence number, round).
    Coll {
        /// Collective sequence number (advances per collective call).
        seq: u64,
        /// Algorithm round within the collective.
        round: u32,
    },
    /// Transport control traffic (death notices). Never matched by user
    /// receives; consumed by the mailbox itself.
    Ctrl,
}

/// Payload of a ghost duplicate injected by the fault transport. The
/// mailbox discards these at absorption time (receiver-side dedup).
pub(crate) struct DupMarker;

/// A message in flight: source rank, match key, type-erased payload.
pub struct Envelope {
    /// Sending rank.
    pub src: usize,
    /// Matching identity (user tag or collective sequence).
    pub key: MatchKey,
    /// Type-erased message body.
    pub payload: Box<dyn Any + Send>,
    /// Number of later envelopes the receiver must absorb before this one
    /// becomes matchable (reorder injection; 0 = deliver in order).
    pub(crate) hold_back: u32,
}

impl Envelope {
    /// An ordinary, in-order envelope.
    pub fn new(src: usize, key: MatchKey, payload: Box<dyn Any + Send>) -> Self {
        Self {
            src,
            key,
            payload,
            hold_back: 0,
        }
    }

    /// A death notice announcing that `rank` has failed (fail-stop).
    pub(crate) fn death(rank: usize) -> Self {
        Self::new(rank, MatchKey::Ctrl, Box::new(()))
    }
}

/// Wildcard used by [`Mailbox::recv_match`] to accept any source.
pub const ANY_SRC: usize = usize::MAX;

/// Approximate payload size in bytes, used for communication accounting.
///
/// Implementations estimate the size of the *logical* value a message
/// moves — for `Arc<T>` payloads this is the size of the shared `T`, not
/// the pointer, so the zero-copy collectives report the same byte totals
/// as their deep-cloning counterparts. The estimate is advisory: heap
/// headers, capacity slack, and enum discriminants are ignored, because
/// the counters it feeds compare communication *volume* between backends
/// and algorithms, not allocator behaviour.
pub trait ByteSized {
    /// Approximate number of bytes this value would occupy on the wire.
    fn approx_bytes(&self) -> usize;
}

macro_rules! bytesized_fixed {
    ($($t:ty),* $(,)?) => {$(
        impl ByteSized for $t {
            #[inline]
            fn approx_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

bytesized_fixed!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char,
);

impl ByteSized for () {
    #[inline]
    fn approx_bytes(&self) -> usize {
        0
    }
}

impl ByteSized for str {
    #[inline]
    fn approx_bytes(&self) -> usize {
        self.len()
    }
}

impl ByteSized for String {
    #[inline]
    fn approx_bytes(&self) -> usize {
        self.len()
    }
}

impl<T: ByteSized + ?Sized> ByteSized for &T {
    #[inline]
    fn approx_bytes(&self) -> usize {
        (**self).approx_bytes()
    }
}

impl<T: ByteSized + ?Sized> ByteSized for Box<T> {
    #[inline]
    fn approx_bytes(&self) -> usize {
        (**self).approx_bytes()
    }
}

/// An `Arc` payload is sized by its shared contents: the collective moved
/// the *value* (logically), even though only a pointer hopped the edge.
impl<T: ByteSized + ?Sized> ByteSized for std::sync::Arc<T> {
    #[inline]
    fn approx_bytes(&self) -> usize {
        (**self).approx_bytes()
    }
}

impl<T: ByteSized> ByteSized for [T] {
    fn approx_bytes(&self) -> usize {
        self.iter().map(ByteSized::approx_bytes).sum()
    }
}

impl<T: ByteSized, const N: usize> ByteSized for [T; N] {
    fn approx_bytes(&self) -> usize {
        self.as_slice().approx_bytes()
    }
}

impl<T: ByteSized> ByteSized for Vec<T> {
    fn approx_bytes(&self) -> usize {
        self.as_slice().approx_bytes()
    }
}

impl<T: ByteSized> ByteSized for Option<T> {
    fn approx_bytes(&self) -> usize {
        self.as_ref().map_or(0, ByteSized::approx_bytes)
    }
}

impl<T: ByteSized> ByteSized for std::ops::Range<T> {
    fn approx_bytes(&self) -> usize {
        self.start.approx_bytes() + self.end.approx_bytes()
    }
}

macro_rules! bytesized_tuple {
    ($($name:ident)+) => {
        #[allow(non_snake_case)]
        impl<$($name: ByteSized),+> ByteSized for ($($name,)+) {
            fn approx_bytes(&self) -> usize {
                let ($($name,)+) = self;
                0 $(+ $name.approx_bytes())+
            }
        }
    };
}

bytesized_tuple!(A);
bytesized_tuple!(A B);
bytesized_tuple!(A B C);
bytesized_tuple!(A B C D);
bytesized_tuple!(A B C D E);
bytesized_tuple!(A B C D E F);

/// A parked envelope plus its arrival sequence number (for wildcard
/// receives, which must match in arrival order across sources).
struct Parked {
    seq: u64,
    env: Envelope,
}

/// Per-rank incoming-message store with selective receive.
pub struct Mailbox {
    rx: Receiver<Envelope>,
    /// Parked envelopes indexed by `(src, key)`; each queue is FIFO in
    /// arrival order, so same-key streams keep MPI's ordered semantics.
    parked: HashMap<(usize, MatchKey), VecDeque<Parked>>,
    /// Arrival-ordered `(seq, src)` index per key, serving `ANY_SRC`
    /// receives in O(1) amortized (stale entries pruned lazily).
    by_key: HashMap<MatchKey, VecDeque<(u64, usize)>>,
    /// Envelopes under reorder hold-back, not yet matchable.
    delayed: VecDeque<Envelope>,
    /// Ranks known to have died.
    dead: HashSet<usize>,
    arrivals: u64,
    parked_count: usize,
    dups_discarded: u64,
}

impl Mailbox {
    /// Wrap a rank's receive channel.
    pub fn new(rx: Receiver<Envelope>) -> Self {
        Self {
            rx,
            parked: HashMap::new(),
            by_key: HashMap::new(),
            delayed: VecDeque::new(),
            dead: HashSet::new(),
            arrivals: 0,
            parked_count: 0,
            dups_discarded: 0,
        }
    }

    /// Block until a message matching `(src, key)` is available and return
    /// it. `src == ANY_SRC` matches any source. Non-matching messages are
    /// parked for later receives in arrival order.
    ///
    /// Panics if the awaited peer is dead or the cluster is tearing down —
    /// the legacy infallible interface. Failure-aware code should use
    /// [`Mailbox::recv_match_result`].
    pub fn recv_match(&mut self, src: usize, key: MatchKey) -> Envelope {
        match self.recv_match_result(src, key, None) {
            Ok(env) => env,
            Err(e) => panic!("recv_match({src}, {key:?}): {e}"),
        }
    }

    /// Like [`Mailbox::recv_match`], but failure-aware: returns
    /// [`RecvError::PeerDead`] if the awaited source died, or
    /// [`RecvError::Timeout`] once `deadline` passes (`None` = wait
    /// forever), or [`RecvError::Disconnected`] on teardown.
    pub fn recv_match_result(
        &mut self,
        src: usize,
        key: MatchKey,
        deadline: Option<Instant>,
    ) -> Result<Envelope, RecvError> {
        loop {
            if let Some(env) = self.take_parked(src, key) {
                return Ok(env);
            }
            // Drain whatever has already arrived without blocking.
            match self.rx.try_recv() {
                Ok(env) => {
                    self.absorb(env);
                    continue;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    if let Some(env) = self.release_one_delayed() {
                        self.absorb_released(env);
                        continue;
                    }
                    return Err(RecvError::Disconnected);
                }
            }
            // Channel momentarily empty: release held-back traffic before
            // blocking, so reorder injection can never cause a hang.
            if let Some(env) = self.release_one_delayed() {
                self.absorb_released(env);
                continue;
            }
            if src != ANY_SRC && self.dead.contains(&src) {
                return Err(RecvError::PeerDead { peer: src });
            }
            let env = match deadline {
                None => self
                    .rx
                    .recv()
                    .map_err(|_| RecvError::Disconnected)?,
                Some(d) => match self.rx.recv_deadline(d) {
                    Ok(env) => env,
                    Err(RecvTimeoutError::Timeout) => return Err(RecvError::Timeout),
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(RecvError::Disconnected)
                    }
                },
            };
            self.absorb(env);
        }
    }

    /// Non-blocking receive: `Ok(Some)` if a matching message is already
    /// available, `Ok(None)` if not, `Err(PeerDead)` if the awaited source
    /// is dead with nothing buffered from it.
    pub fn try_recv_match(
        &mut self,
        src: usize,
        key: MatchKey,
    ) -> Result<Option<Envelope>, RecvError> {
        self.drain_channel();
        if let Some(env) = self.take_parked(src, key) {
            return Ok(Some(env));
        }
        if src != ANY_SRC && self.dead.contains(&src) {
            return Err(RecvError::PeerDead { peer: src });
        }
        Ok(None)
    }

    /// Non-blocking probe: is a matching message already available?
    pub fn probe(&mut self, src: usize, key: MatchKey) -> bool {
        self.drain_channel();
        if src == ANY_SRC {
            return self.peek_any(key);
        }
        self.parked
            .get(&(src, key))
            .is_some_and(|q| !q.is_empty())
    }

    /// Number of parked (arrived but unmatched) messages, including
    /// held-back ones.
    pub fn parked_len(&self) -> usize {
        self.parked_count + self.delayed.len()
    }

    /// Ghost duplicates discarded by receiver-side dedup so far.
    pub fn dups_discarded(&self) -> u64 {
        self.dups_discarded
    }

    /// Ranks this mailbox has seen death notices for, ascending.
    pub fn dead_peers(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.dead.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Has `rank`'s death notice arrived?
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.contains(&rank)
    }

    // ---- internals ----

    /// Pull everything already queued on the channel into the parked
    /// store (releasing hold-backs as traffic flows past them).
    pub(crate) fn drain_channel(&mut self) {
        while let Ok(env) = self.rx.try_recv() {
            self.absorb(env);
        }
        while let Some(env) = self.release_one_delayed() {
            self.absorb_released(env);
            // Only force-release while nothing newer is pending.
            if !self.rx.is_empty() {
                break;
            }
        }
    }

    /// Classify one incoming envelope: control traffic updates the dead
    /// set, ghost duplicates are dropped, held-back envelopes are staged,
    /// everything else parks. Absorbing real traffic ages the hold-backs.
    fn absorb(&mut self, env: Envelope) {
        if env.key == MatchKey::Ctrl {
            self.dead.insert(env.src);
            return;
        }
        if env.payload.is::<DupMarker>() {
            self.dups_discarded += 1;
            return;
        }
        for d in &mut self.delayed {
            d.hold_back = d.hold_back.saturating_sub(1);
        }
        if env.hold_back > 0 {
            self.delayed.push_back(env);
            self.flush_ripe_delayed();
            return;
        }
        self.park(env);
        self.flush_ripe_delayed();
    }

    /// Park an envelope released from the hold-back stage (must not age
    /// the remaining held traffic again).
    fn absorb_released(&mut self, env: Envelope) {
        self.park(env);
    }

    fn park(&mut self, mut env: Envelope) {
        env.hold_back = 0;
        let seq = self.arrivals;
        self.arrivals += 1;
        self.by_key
            .entry(env.key)
            .or_default()
            .push_back((seq, env.src));
        self.parked
            .entry((env.src, env.key))
            .or_default()
            .push_back(Parked { seq, env });
        self.parked_count += 1;
    }

    /// Move every fully-aged held envelope into the parked store.
    fn flush_ripe_delayed(&mut self) {
        while let Some(pos) = self.delayed.iter().position(|d| d.hold_back == 0) {
            let env = self.delayed.remove(pos).expect("position just found");
            self.park(env);
        }
    }

    /// Force-release the oldest held envelope (progress guarantee).
    fn release_one_delayed(&mut self) -> Option<Envelope> {
        self.delayed.pop_front()
    }

    fn take_parked(&mut self, src: usize, key: MatchKey) -> Option<Envelope> {
        if src == ANY_SRC {
            return self.take_any(key);
        }
        let q = self.parked.get_mut(&(src, key))?;
        let p = q.pop_front()?;
        if q.is_empty() {
            self.parked.remove(&(src, key));
        }
        self.parked_count -= 1;
        Some(p.env)
    }

    /// Oldest parked envelope with `key` from any source, via the per-key
    /// arrival index. Entries whose envelope was already taken by a
    /// source-specific receive are stale and skipped (lazy pruning).
    fn take_any(&mut self, key: MatchKey) -> Option<Envelope> {
        loop {
            let (seq, src) = match self.by_key.get_mut(&key) {
                None => return None,
                Some(index) => match index.pop_front() {
                    None => {
                        self.by_key.remove(&key);
                        return None;
                    }
                    Some(entry) => entry,
                },
            };
            let Some(q) = self.parked.get_mut(&(src, key)) else {
                continue; // stale: queue fully consumed
            };
            // The queue head is newer than this index entry exactly when a
            // source-specific receive already consumed the envelope — then
            // the entry is stale and skipped.
            if !matches!(q.front(), Some(p) if p.seq == seq) {
                continue;
            }
            let p = q.pop_front().expect("front just checked");
            if q.is_empty() {
                self.parked.remove(&(src, key));
            }
            if self.by_key.get(&key).is_some_and(|i| i.is_empty()) {
                self.by_key.remove(&key);
            }
            self.parked_count -= 1;
            return Some(p.env);
        }
    }

    fn peek_any(&self, key: MatchKey) -> bool {
        self.parked
            .iter()
            .any(|((_, k), q)| *k == key && !q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use std::time::Duration;

    fn env(src: usize, tag: u32, v: i32) -> Envelope {
        Envelope::new(src, MatchKey::User(tag), Box::new(v))
    }

    #[test]
    fn out_of_order_matching() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(1, 10, 100)).unwrap();
        tx.send(env(2, 20, 200)).unwrap();
        // Ask for the second-arrived first.
        let got = mb.recv_match(2, MatchKey::User(20));
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 200);
        assert_eq!(mb.parked_len(), 1);
        let got = mb.recv_match(1, MatchKey::User(10));
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 100);
        assert_eq!(mb.parked_len(), 0);
    }

    #[test]
    fn any_source_matches_first_arrival() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(5, 1, 55)).unwrap();
        let got = mb.recv_match(ANY_SRC, MatchKey::User(1));
        assert_eq!(got.src, 5);
    }

    #[test]
    fn any_source_arrival_order_across_sources() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(3, 1, 30)).unwrap();
        tx.send(env(1, 1, 10)).unwrap();
        tx.send(env(2, 1, 20)).unwrap();
        let order: Vec<usize> = (0..3)
            .map(|_| mb.recv_match(ANY_SRC, MatchKey::User(1)).src)
            .collect();
        assert_eq!(order, vec![3, 1, 2], "wildcard receives in arrival order");
    }

    #[test]
    fn any_source_skips_stale_index_entries() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(1, 7, 11)).unwrap();
        tx.send(env(2, 7, 22)).unwrap();
        // A source-specific receive consumes rank 1's envelope, leaving a
        // stale entry at the head of the key index.
        let got = mb.recv_match(1, MatchKey::User(7));
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 11);
        let got = mb.recv_match(ANY_SRC, MatchKey::User(7));
        assert_eq!(got.src, 2);
        assert_eq!(mb.parked_len(), 0);
    }

    #[test]
    fn fifo_between_matching_messages() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(1, 9, 1)).unwrap();
        tx.send(env(1, 9, 2)).unwrap();
        let a = mb.recv_match(1, MatchKey::User(9));
        let b = mb.recv_match(1, MatchKey::User(9));
        assert_eq!(*a.payload.downcast::<i32>().unwrap(), 1);
        assert_eq!(*b.payload.downcast::<i32>().unwrap(), 2);
    }

    #[test]
    fn coll_keys_do_not_match_user_keys() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(Envelope::new(
            0,
            MatchKey::Coll { seq: 3, round: 0 },
            Box::new(7i32),
        ))
        .unwrap();
        tx.send(env(0, 3, 8)).unwrap();
        // User tag 3 must not match Coll seq 3.
        let got = mb.recv_match(0, MatchKey::User(3));
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 8);
        let got = mb.recv_match(0, MatchKey::Coll { seq: 3, round: 0 });
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 7);
    }

    #[test]
    fn probe_sees_arrived_message() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        assert!(!mb.probe(1, MatchKey::User(4)));
        tx.send(env(1, 4, 0)).unwrap();
        assert!(mb.probe(1, MatchKey::User(4)));
        // Probe must not consume.
        assert!(mb.probe(1, MatchKey::User(4)));
        mb.recv_match(1, MatchKey::User(4));
        assert!(!mb.probe(1, MatchKey::User(4)));
    }

    #[test]
    fn death_notice_wakes_pending_receive() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(Envelope::death(3)).unwrap();
        let err = mb
            .recv_match_result(3, MatchKey::User(0), None)
            .err()
            .expect("peer is dead");
        assert_eq!(err, RecvError::PeerDead { peer: 3 });
        assert!(mb.is_dead(3));
        assert_eq!(mb.dead_peers(), vec![3]);
    }

    #[test]
    fn buffered_message_from_dead_peer_still_delivered() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(2, 5, 42)).unwrap();
        tx.send(Envelope::death(2)).unwrap();
        // The in-flight message outruns the death notice: deliver it.
        let got = mb
            .recv_match_result(2, MatchKey::User(5), None)
            .expect("message was buffered");
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 42);
        // Nothing more from rank 2: now the death surfaces.
        let err = mb.recv_match_result(2, MatchKey::User(5), None).err();
        assert_eq!(err, Some(RecvError::PeerDead { peer: 2 }));
    }

    #[test]
    fn timeout_when_nothing_arrives() {
        let (_tx, rx) = unbounded::<Envelope>();
        let mut mb = Mailbox::new(rx);
        let deadline = Instant::now() + Duration::from_millis(20);
        let err = mb.recv_match_result(0, MatchKey::User(1), Some(deadline)).err();
        assert_eq!(err, Some(RecvError::Timeout));
    }

    #[test]
    fn disconnected_when_all_senders_gone() {
        let (tx, rx) = unbounded::<Envelope>();
        let mut mb = Mailbox::new(rx);
        drop(tx);
        let err = mb.recv_match_result(0, MatchKey::User(1), None).err();
        assert_eq!(err, Some(RecvError::Disconnected));
    }

    #[test]
    fn try_recv_match_nonblocking() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        assert_eq!(
            mb.try_recv_match(1, MatchKey::User(2)).map(|o| o.is_some()),
            Ok(false)
        );
        tx.send(env(1, 2, 9)).unwrap();
        let got = mb.try_recv_match(1, MatchKey::User(2)).unwrap().unwrap();
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 9);
    }

    #[test]
    fn ghost_duplicates_are_discarded() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        tx.send(env(0, 1, 5)).unwrap();
        tx.send(Envelope::new(0, MatchKey::User(1), Box::new(DupMarker)))
            .unwrap();
        let got = mb.recv_match(0, MatchKey::User(1));
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 5);
        assert!(!mb.probe(0, MatchKey::User(1)), "ghost must not match");
        assert_eq!(mb.dups_discarded(), 1);
    }

    #[test]
    fn held_back_envelope_reorders_but_arrives() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        let mut held = env(1, 9, 1);
        held.hold_back = 1;
        tx.send(held).unwrap();
        tx.send(env(1, 9, 2)).unwrap();
        // Same (src, key) stream: the held first message is overtaken.
        let a = mb.recv_match(1, MatchKey::User(9));
        let b = mb.recv_match(1, MatchKey::User(9));
        assert_eq!(*a.payload.downcast::<i32>().unwrap(), 2, "overtaken");
        assert_eq!(*b.payload.downcast::<i32>().unwrap(), 1, "still delivered");
    }

    #[test]
    fn approx_bytes_of_common_payloads() {
        assert_eq!(3u8.approx_bytes(), 1);
        assert_eq!(1.5f64.approx_bytes(), 8);
        assert_eq!(().approx_bytes(), 0);
        assert_eq!("hello".approx_bytes(), 5);
        assert_eq!(String::from("hé").approx_bytes(), 3, "UTF-8 bytes, not chars");
        assert_eq!(vec![1.0f64; 4].approx_bytes(), 32);
        assert_eq!(vec![vec![1u32; 3]; 2].approx_bytes(), 24, "nested sums");
        assert_eq!(("tag", 7usize).approx_bytes(), 3 + 8);
        assert_eq!(Some(5u16).approx_bytes(), 2);
        assert_eq!(None::<u16>.approx_bytes(), 0);
        assert_eq!([1u64, 2, 3].approx_bytes(), 24);
    }

    #[test]
    fn arc_payload_sized_by_contents() {
        // Zero-copy payloads must account the logical value they share, so
        // shared and clone collectives report identical byte totals.
        let v = vec![0u8; 100];
        assert_eq!(std::sync::Arc::new(v.clone()).approx_bytes(), 100);
        assert_eq!(Box::new(v).approx_bytes(), 100);
    }

    #[test]
    fn held_back_envelope_released_when_channel_idle() {
        let (tx, rx) = unbounded();
        let mut mb = Mailbox::new(rx);
        let mut held = env(0, 3, 77);
        held.hold_back = 5;
        tx.send(held).unwrap();
        // No later traffic ever arrives; the hold-back must not hang.
        let got = mb.recv_match(0, MatchKey::User(3));
        assert_eq!(*got.payload.downcast::<i32>().unwrap(), 77);
    }
}
