//! One partitioning vocabulary for every assignment.
//!
//! The paper's six assignments all make the same first move — partition an
//! index space over workers — and before this module existed the repo
//! spelled that move out five different ways (heat's `BlockDist`, traffic's
//! and mapreduce's hand-rolled `block_range`, kmeans' flat-chunk scatter
//! math, ensemble's `block_assignment`). This module is now the **single
//! source of partition truth**:
//!
//! * [`block_range`] — the Chapel balanced-block rule as a total free
//!   function (empty domains and empty parts allowed), used directly by
//!   scatter math that needs exactly one chunk per rank;
//! * [`cyclic_indices`] — the round-robin rule as a total free function;
//! * the [`Distribution`] trait with [`Block`], [`Cyclic`], [`BlockCyclic`]
//!   and [`EvenBlocks`] impls — typed distributions whose constructors clip
//!   the part count so **every part is non-empty by construction** (the
//!   type-level guarantee that replaced the old `BlockDist::is_empty`
//!   dead branch);
//! * [`owner_of_key`] — seeded, version-stable key → part routing on
//!   [`peachy_prng::StableHash64`], shared by the dataflow shuffle and the
//!   MapReduce collate so placement survives Rust upgrades.
//!
//! `Block` and `EvenBlocks` differ only in *grouping*: `Block` balances
//! sizes (first `n % parts` parts one element larger — rank/locale
//! decomposition), while `EvenBlocks` fixes the chunk length at
//! `⌈n/parts⌉` with a short final chunk — exactly rayon's
//! `par_chunks` rule. The distinction matters because floating-point
//! reductions merge per-part partials in part order: the grouping *is* the
//! answer, bit for bit, so rewiring an existing `par_chunks_mut` loop must
//! use `EvenBlocks` to stay bit-identical.

use std::hash::Hash;
use std::ops::Range;

/// Seed for the repo-wide default key → part routing (dataflow shuffle,
/// MapReduce collate). Changing it reshuffles every hash-partitioned
/// pipeline, so it is fixed here once.
pub const ROUTE_SEED: u64 = 0x5eed_cafe_f00d_0042;

/// The Chapel balanced-block rule: part `part` of `parts` owns a contiguous
/// range of `0..n`, the first `n % parts` parts owning one extra element.
///
/// Total over its domain: `n` may be zero and `parts` may exceed `n`, in
/// which case trailing parts own empty ranges — what scatter math needs
/// when it must produce exactly one (possibly empty) chunk per rank.
#[inline]
pub fn block_range(n: usize, parts: usize, part: usize) -> Range<usize> {
    assert!(parts > 0, "need at least one part");
    assert!(part < parts, "part {part} out of range for {parts} parts");
    let base = n / parts;
    let extra = n % parts;
    let start = part * base + part.min(extra);
    start..(start + base + usize::from(part < extra))
}

/// Round-robin (cyclic) rule: part `part` of `parts` owns indices
/// `part, part + parts, part + 2·parts, …` — total like [`block_range`]
/// (a part past the end of a short domain owns nothing).
#[inline]
pub fn cyclic_indices(n: usize, parts: usize, part: usize) -> impl Iterator<Item = usize> {
    assert!(parts > 0, "need at least one part");
    assert!(part < parts, "part {part} out of range for {parts} parts");
    (part..n).step_by(parts)
}

/// Seeded, version-stable key → part routing: `stable_hash(key) % parts`.
///
/// Every caller that computes ownership of a hashed key (shuffle buckets,
/// MapReduce key owners) goes through here, so all of them agree and none
/// of them depend on `DefaultHasher`'s unstable internals.
#[inline]
pub fn owner_of_key<K: Hash + ?Sized>(key: &K, parts: usize, seed: u64) -> usize {
    assert!(parts > 0, "need at least one part");
    (peachy_prng::stable_hash(key, seed) % parts as u64) as usize
}

/// A partition of the index space `0..len()` into `parts()` disjoint,
/// collectively exhaustive index sets.
///
/// Laws (pinned by the `proptest_dist` suite):
/// * `part_indices(p)` for `p in 0..parts()` are pairwise disjoint and
///   their union is exactly `0..len()`;
/// * `owner_of(i) == p` iff `part_indices(p)` contains `i`;
/// * every part is non-empty (constructors clip `parts` when asked for
///   more parts than indices).
pub trait Distribution {
    /// Domain size.
    fn len(&self) -> usize;

    /// Whether the domain is empty. Derived from [`Distribution::len`] —
    /// honest for every impl (the typed constructors below require
    /// non-empty domains, so there it is `false` by *invariant*, not by a
    /// hardcoded branch).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of parts actually used (after clipping).
    fn parts(&self) -> usize;

    /// The part owning global index `i`.
    fn owner_of(&self, i: usize) -> usize;

    /// All indices owned by `part`, in ascending order.
    fn part_indices(&self, part: usize) -> Vec<usize>;
}

/// A distribution whose parts are contiguous ranges tiling `0..n` in part
/// order — the shape the executor needs to split a slice with
/// `split_at_mut`.
pub trait Contiguous: Distribution {
    /// The contiguous range owned by `part`.
    fn range_of(&self, part: usize) -> Range<usize>;
}

/// Chapel-style balanced block distribution (`Block.createDomain({0..<n})`):
/// contiguous parts whose sizes differ by at most one.
///
/// **Invariant (type-level):** `new` requires a non-empty domain and clips
/// the part count to `min(parts, n)`, so every constructed `Block` has
/// `1 ≤ parts ≤ n` and every part owns at least one index. There is no
/// `is_empty` escape hatch to consult — emptiness is unrepresentable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    n: usize,
    parts: usize,
}

// No inherent `is_empty`: `new` rejects n = 0, so it could only ever
// return false — the dead branch this type exists to make unrepresentable.
#[allow(clippy::len_without_is_empty)]
impl Block {
    /// Create a distribution; requires at least one index and one part.
    /// Asking for more parts than indices clips to one index per part.
    pub fn new(n: usize, parts: usize) -> Self {
        assert!(n > 0, "empty domain");
        assert!(parts > 0, "need at least one part");
        Self {
            n,
            parts: parts.min(n),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Number of parts actually used (clipped to `n`).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The contiguous range owned by `part` (first `n % parts` parts hold
    /// one extra element — the balanced block rule, via [`block_range`]).
    pub fn local_range(&self, part: usize) -> Range<usize> {
        assert!(part < self.parts, "part {part} out of range");
        block_range(self.n, self.parts, part)
    }

    /// The part owning global index `i` (inverse of [`Block::local_range`]).
    pub fn owner_of(&self, i: usize) -> usize {
        assert!(i < self.n, "index {i} out of domain");
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        let boundary = extra * (base + 1);
        if i < boundary {
            i / (base + 1)
        } else {
            extra + (i - boundary) / base
        }
    }
}

impl Distribution for Block {
    fn len(&self) -> usize {
        self.n
    }
    fn parts(&self) -> usize {
        self.parts
    }
    fn owner_of(&self, i: usize) -> usize {
        Block::owner_of(self, i)
    }
    fn part_indices(&self, part: usize) -> Vec<usize> {
        self.local_range(part).collect()
    }
}

impl Contiguous for Block {
    fn range_of(&self, part: usize) -> Range<usize> {
        self.local_range(part)
    }
}

/// Fixed-chunk-length blocks: chunk length `⌈n/parts⌉`, last chunk short —
/// **exactly** rayon's `par_chunks`/`par_chunks_mut` decomposition.
///
/// Use this (not [`Block`]) when rewiring an existing `par_chunks` loop:
/// the per-part grouping of a floating-point reduction is part of its
/// bit-exact output, and the two rules group differently whenever
/// `n % parts != 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvenBlocks {
    n: usize,
    chunk_len: usize,
    parts: usize,
}

// Same as `Block`: n > 0 by construction, so `is_empty` would be dead.
#[allow(clippy::len_without_is_empty)]
impl EvenBlocks {
    /// Split `0..n` into chunks of length `⌈n/max_parts⌉`; the actual part
    /// count is `⌈n/chunk_len⌉ ≤ max_parts`, every part non-empty.
    /// Requires a non-empty domain, like [`Block::new`].
    pub fn new(n: usize, max_parts: usize) -> Self {
        assert!(n > 0, "empty domain");
        assert!(max_parts > 0, "need at least one part");
        let chunk_len = n.div_ceil(max_parts).max(1);
        Self {
            n,
            chunk_len,
            parts: n.div_ceil(chunk_len),
        }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// The fixed chunk length (`⌈n/max_parts⌉`).
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Number of parts actually used.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The contiguous range owned by `part` (the final part may be short).
    pub fn local_range(&self, part: usize) -> Range<usize> {
        assert!(part < self.parts, "part {part} out of range");
        let start = part * self.chunk_len;
        start..(start + self.chunk_len).min(self.n)
    }
}

impl Distribution for EvenBlocks {
    fn len(&self) -> usize {
        self.n
    }
    fn parts(&self) -> usize {
        self.parts
    }
    fn owner_of(&self, i: usize) -> usize {
        assert!(i < self.n, "index {i} out of domain");
        i / self.chunk_len
    }
    fn part_indices(&self, part: usize) -> Vec<usize> {
        self.local_range(part).collect()
    }
}

impl Contiguous for EvenBlocks {
    fn range_of(&self, part: usize) -> Range<usize> {
        self.local_range(part)
    }
}

/// Cyclic (round-robin) distribution: index `i` belongs to part
/// `i % parts`. Clips `parts` to `min(parts, n)`, so every part owns at
/// least index `part` itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cyclic {
    n: usize,
    parts: usize,
}

impl Cyclic {
    /// Create a cyclic distribution; requires a non-empty domain.
    pub fn new(n: usize, parts: usize) -> Self {
        assert!(n > 0, "empty domain");
        assert!(parts > 0, "need at least one part");
        Self {
            n,
            parts: parts.min(n),
        }
    }
}

impl Distribution for Cyclic {
    fn len(&self) -> usize {
        self.n
    }
    fn parts(&self) -> usize {
        self.parts
    }
    fn owner_of(&self, i: usize) -> usize {
        assert!(i < self.n, "index {i} out of domain");
        i % self.parts
    }
    fn part_indices(&self, part: usize) -> Vec<usize> {
        cyclic_indices(self.n, self.parts, part).collect()
    }
}

/// Block-cyclic distribution: blocks of `block` consecutive indices dealt
/// round-robin to parts — Chapel's `BlockCyclic`, the compromise between
/// locality (within a block) and load balance (across blocks). Clips
/// `parts` to the number of blocks, so every part owns a whole block at
/// minimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCyclic {
    n: usize,
    parts: usize,
    block: usize,
}

impl BlockCyclic {
    /// Create a block-cyclic distribution with the given block length.
    pub fn new(n: usize, parts: usize, block: usize) -> Self {
        assert!(n > 0, "empty domain");
        assert!(parts > 0, "need at least one part");
        assert!(block > 0, "need a positive block length");
        let blocks = n.div_ceil(block);
        Self {
            n,
            parts: parts.min(blocks),
            block,
        }
    }

    /// The block length.
    pub fn block_len(&self) -> usize {
        self.block
    }
}

impl Distribution for BlockCyclic {
    fn len(&self) -> usize {
        self.n
    }
    fn parts(&self) -> usize {
        self.parts
    }
    fn owner_of(&self, i: usize) -> usize {
        assert!(i < self.n, "index {i} out of domain");
        (i / self.block) % self.parts
    }
    fn part_indices(&self, part: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut b = part;
        loop {
            let start = b * self.block;
            if start >= self.n {
                break;
            }
            out.extend(start..(start + self.block).min(self.n));
            b += self.parts;
        }
        out
    }
}

/// Consistent-hash ring with virtual nodes: seeded, version-stable
/// key → member routing that stays *almost entirely* put when membership
/// changes.
///
/// [`owner_of_key`] (`hash % parts`) reshuffles ~`n/(n+1)` of all keys
/// when the part count grows from `n` to `n+1` — fine for a shuffle that
/// rebuilds every partition anyway, fatal for a serving tier whose parts
/// carry warm state. The ring fixes this: each member contributes
/// `vnodes` points at `stable_hash((member, vnode), seed)` on a `u64`
/// circle, and a key belongs to the first point at or after its own hash
/// (wrapping). Adding a member only claims the arcs its new points cut;
/// every other key keeps its owner — the minimal-movement law pinned by
/// `cluster/tests/hashring_laws.rs`.
///
/// Determinism contract: the ring is a pure function of
/// `(members, vnodes, seed)`. Member order at construction is irrelevant
/// (members are sorted and deduplicated), point-hash ties break by member
/// id, and hashing goes through [`peachy_prng::StableHash64`], so
/// placement survives Rust upgrades and replays bit-identically — the
/// property the sharded serving tier's epoch maps are built on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    seed: u64,
    vnodes: usize,
    members: Vec<usize>,
    /// `(point_hash, member)`, sorted — the circle, flattened.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Build the ring for `members` with `vnodes` points per member.
    ///
    /// Panics if `members` is empty or `vnodes` is zero. Duplicate member
    /// ids are collapsed.
    pub fn new<I: IntoIterator<Item = usize>>(members: I, vnodes: usize, seed: u64) -> Self {
        let mut members: Vec<usize> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "a hash ring needs at least one member");
        assert!(vnodes > 0, "need at least one virtual node per member");
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for &m in &members {
            for v in 0..vnodes {
                points.push((peachy_prng::stable_hash(&(m as u64, v as u64), seed), m));
            }
        }
        points.sort_unstable();
        Self {
            seed,
            vnodes,
            members,
            points,
        }
    }

    /// The members on the ring, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The routing seed the ring was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether `member` is on the ring.
    pub fn contains(&self, member: usize) -> bool {
        self.members.binary_search(&member).is_ok()
    }

    /// The member owning `key`: the first ring point at or after
    /// `stable_hash(key, seed)`, wrapping past the top of the circle.
    pub fn owner_of_key<K: Hash + ?Sized>(&self, key: &K) -> usize {
        let h = peachy_prng::stable_hash(key, self.seed);
        // First point with hash >= h; ties already ordered by member id
        // because `points` is sorted on the full (hash, member) pair.
        let idx = self.points.partition_point(|&(p, _)| p < h);
        if idx == self.points.len() {
            self.points[0].1
        } else {
            self.points[idx].1
        }
    }

    /// A new ring with `member` added (no-op clone if already present).
    pub fn with_member(&self, member: usize) -> Self {
        if self.contains(member) {
            return self.clone();
        }
        let mut members = self.members.clone();
        members.push(member);
        Self::new(members, self.vnodes, self.seed)
    }

    /// A new ring with `member` removed.
    ///
    /// Panics if `member` is the last one — an empty ring routes nothing.
    pub fn without_member(&self, member: usize) -> Self {
        let members: Vec<usize> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != member)
            .collect();
        assert!(
            !members.is_empty(),
            "removing member {member} would empty the ring"
        );
        Self::new(members, self.vnodes, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_covers_everything_including_empty() {
        for n in [0usize, 1, 7, 10, 100, 1001] {
            for parts in [1usize, 2, 3, 8, 16] {
                let mut next = 0;
                for p in 0..parts {
                    let r = block_range(n, parts, p);
                    assert_eq!(r.start, next, "n={n} parts={parts} p={p}");
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn block_ranges_partition_domain() {
        for n in [1usize, 7, 10, 100, 1001] {
            for parts in [1usize, 2, 3, 8, 16] {
                let dist = Block::new(n, parts);
                let mut next = 0;
                for p in 0..dist.parts() {
                    let r = dist.local_range(p);
                    assert_eq!(r.start, next, "n={n} parts={parts} p={p}");
                    next = r.end;
                    assert!(!r.is_empty(), "every used part owns something");
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn block_owner_agrees_with_ranges() {
        for n in [5usize, 17, 64] {
            for parts in [1usize, 2, 5, 7] {
                let dist = Block::new(n, parts);
                for i in 0..n {
                    let p = dist.owner_of(i);
                    assert!(dist.local_range(p).contains(&i), "n={n} parts={parts} i={i}");
                }
            }
        }
    }

    #[test]
    fn block_more_parts_than_indices_clipped() {
        let dist = Block::new(3, 10);
        assert_eq!(dist.parts(), 3);
        assert_eq!(dist.local_range(0), 0..1);
        assert_eq!(dist.local_range(2), 2..3);
    }

    #[test]
    fn block_balanced_sizes() {
        let dist = Block::new(10, 4);
        let sizes: Vec<usize> = (0..4).map(|p| dist.local_range(p).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn even_blocks_match_par_chunks_rule() {
        // 10 over 4 parts: par_chunks rule gives ⌈10/4⌉ = 3 → [3,3,3,1],
        // unlike Block's balanced [3,3,2,2].
        let dist = EvenBlocks::new(10, 4);
        assert_eq!(dist.chunk_len(), 3);
        assert_eq!(dist.parts(), 4);
        let sizes: Vec<usize> = (0..4).map(|p| dist.local_range(p).len()).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        // Decomposition == exactly what slice::chunks produces.
        let data: Vec<usize> = (0..10).collect();
        let chunks: Vec<&[usize]> = data.chunks(dist.chunk_len()).collect();
        assert_eq!(chunks.len(), dist.parts());
        for (p, c) in chunks.iter().enumerate() {
            assert_eq!(&data[dist.local_range(p)], *c);
        }
    }

    #[test]
    fn even_blocks_clip_when_parts_exceed_n() {
        let dist = EvenBlocks::new(3, 64);
        assert_eq!(dist.chunk_len(), 1);
        assert_eq!(dist.parts(), 3);
    }

    #[test]
    fn cyclic_deals_round_robin() {
        let dist = Cyclic::new(10, 3);
        assert_eq!(dist.part_indices(0), vec![0, 3, 6, 9]);
        assert_eq!(dist.part_indices(1), vec![1, 4, 7]);
        assert_eq!(dist.part_indices(2), vec![2, 5, 8]);
        for i in 0..10 {
            assert_eq!(dist.owner_of(i), i % 3);
        }
    }

    #[test]
    fn block_cyclic_interleaves_blocks() {
        let dist = BlockCyclic::new(10, 2, 2);
        // Blocks [0,1][2,3][4,5][6,7][8,9] dealt to parts 0,1,0,1,0.
        assert_eq!(dist.part_indices(0), vec![0, 1, 4, 5, 8, 9]);
        assert_eq!(dist.part_indices(1), vec![2, 3, 6, 7]);
        assert_eq!(dist.owner_of(5), 0);
        assert_eq!(dist.owner_of(6), 1);
    }

    #[test]
    fn route_is_stable_and_in_range() {
        for key in 0..1000u64 {
            let p = owner_of_key(&key, 7, ROUTE_SEED);
            assert!(p < 7);
            assert_eq!(p, owner_of_key(&key, 7, ROUTE_SEED));
        }
        // Seed participates in placement.
        let moved = (0..1000u64)
            .filter(|k| owner_of_key(k, 7, 1) != owner_of_key(k, 7, 2))
            .count();
        assert!(moved > 500, "reseeding must reshuffle: {moved}/1000 moved");
    }

    #[test]
    fn hash_ring_is_order_insensitive_and_stable() {
        let a = HashRing::new([4, 0, 2, 0], 16, 99);
        let b = HashRing::new([0, 2, 4], 16, 99);
        assert_eq!(a, b);
        assert_eq!(a.members(), &[0, 2, 4]);
        for key in 0..500u64 {
            let owner = a.owner_of_key(&key);
            assert!(a.contains(owner));
            assert_eq!(owner, b.owner_of_key(&key));
        }
    }

    #[test]
    fn hash_ring_spreads_keys_over_all_members() {
        let ring = HashRing::new(0..5, 64, ROUTE_SEED);
        let mut counts = [0usize; 5];
        for key in 0..2000u64 {
            counts[ring.owner_of_key(&key)] += 1;
        }
        for (m, &c) in counts.iter().enumerate() {
            assert!(c > 0, "member {m} owns nothing");
        }
    }

    #[test]
    fn hash_ring_membership_edits_round_trip() {
        let ring = HashRing::new(0..3, 8, 7);
        let grown = ring.with_member(3);
        assert_eq!(grown.members(), &[0, 1, 2, 3]);
        assert_eq!(grown.without_member(3), ring);
        // Adding an existing member is a no-op.
        assert_eq!(ring.with_member(1), ring);
    }

    #[test]
    #[should_panic(expected = "empty the ring")]
    fn hash_ring_refuses_to_empty() {
        HashRing::new([5], 4, 0).without_member(5);
    }
}
