//! Lightweight communication-volume counters shared by every backend.
//!
//! One counter block serves the whole workspace: the executor's
//! scatter/gather bookkeeping, the collectives' byte accounting in the
//! kmeans cluster path, and the dataflow shuffle (whose `ShuffleStats` is
//! now an alias of [`CommStats`]). Counters are relaxed atomics behind an
//! `Arc` — cheap enough to leave on, precise enough to compare backends in
//! the E15 experiment.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-stage communication totals: the labeled slice of
/// [`CommStats::records`]/[`CommStats::bytes`] attributed to one lineage
/// stage (one shuffle boundary). The dataflow optimizer's cost model reads
/// these to price a subtree by what it actually moved, instead of one
/// global counter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StageComm {
    /// Records that crossed this stage's boundary.
    pub records: u64,
    /// Measured payload bytes that crossed this stage's boundary.
    pub bytes: u64,
}

/// Monotonic communication counters for one run.
///
/// All increments use relaxed ordering: the counts are aggregates read
/// after the run completes, not synchronization. The per-stage ledger is a
/// mutex-guarded map — it is touched once per shuffle materialization, not
/// per record, so contention is negligible.
#[derive(Debug, Default)]
pub struct CommStats {
    scattered: AtomicU64,
    gathered: AtomicU64,
    collective_bytes: AtomicU64,
    records: AtomicU64,
    shuffles: AtomicU64,
    bytes: AtomicU64,
    shuffles_elided: AtomicU64,
    spills: AtomicU64,
    spill_bytes: AtomicU64,
    unspill_bytes: AtomicU64,
    peak_resident_bytes: AtomicU64,
    stages: Mutex<BTreeMap<u32, StageComm>>,
}

impl CommStats {
    /// Fresh zeroed counters, shared via `Arc` so workers and the caller
    /// see the same block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Elements distributed from a root / source view out to parts.
    pub fn scattered(&self) -> u64 {
        self.scattered.load(Ordering::Relaxed)
    }

    /// Elements (or per-part results) collected back in part order.
    pub fn gathered(&self) -> u64 {
        self.gathered.load(Ordering::Relaxed)
    }

    /// Payload bytes moved through cluster collectives
    /// (scatter/gather/broadcast/allreduce). Zero on shared-memory
    /// backends, where "communication" is a slice borrow.
    pub fn collective_bytes(&self) -> u64 {
        self.collective_bytes.load(Ordering::Relaxed)
    }

    /// Records repartitioned by shuffles.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Number of shuffle operations performed.
    pub fn shuffles(&self) -> u64 {
        self.shuffles.load(Ordering::Relaxed)
    }

    /// Measured payload bytes moved, as estimated by
    /// [`ByteSized`](crate::ByteSized) at every send/shuffle site. Unlike
    /// [`CommStats::collective_bytes`] (an analytic per-algorithm formula
    /// kept for E15 continuity), this counter is fed by the transport and
    /// shuffle layers themselves, so it covers collectives, dataflow
    /// shuffles, and the executor paths uniformly.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Count `n` elements scattered.
    pub fn add_scattered(&self, n: u64) {
        self.scattered.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` elements gathered.
    pub fn add_gathered(&self, n: u64) {
        self.gathered.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` payload bytes through a collective.
    pub fn add_collective_bytes(&self, n: u64) {
        self.collective_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one shuffle that moved `records` records.
    pub fn add_shuffle(&self, records: u64) {
        self.records.fetch_add(records, Ordering::Relaxed);
        self.shuffles.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` measured payload bytes.
    pub fn add_bytes(&self, n: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Shuffles whose data movement the plan optimizer removed entirely
    /// (upstream already hash-partitioned by the same seed and count).
    pub fn shuffles_elided(&self) -> u64 {
        self.shuffles_elided.load(Ordering::Relaxed)
    }

    /// Count one shuffle elided by the optimizer (zero records moved).
    pub fn add_elided_shuffle(&self) {
        self.shuffles_elided.fetch_add(1, Ordering::Relaxed);
    }

    /// Partitions spilled to disk by byte-budgeted partition stores.
    pub fn spills(&self) -> u64 {
        self.spills.load(Ordering::Relaxed)
    }

    /// Encoded bytes written to spill files.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes.load(Ordering::Relaxed)
    }

    /// Encoded bytes read back (replayed) from spill files.
    pub fn unspill_bytes(&self) -> u64 {
        self.unspill_bytes.load(Ordering::Relaxed)
    }

    /// Count one partition spilled to disk with `bytes` encoded bytes.
    pub fn add_spill(&self, bytes: u64) {
        self.spills.fetch_add(1, Ordering::Relaxed);
        self.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count `bytes` replayed from a spill file.
    pub fn add_unspill(&self, bytes: u64) {
        self.unspill_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// High-water mark of the largest single resident materialization
    /// (decoded partition, shuffle bucket, or streamed row) charged so far.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident_bytes.load(Ordering::Relaxed)
    }

    /// Raise the resident high-water mark to at least `bytes`.
    ///
    /// Unlike every other counter this is a `max`, not a sum: the meter
    /// records the biggest thing that was ever held in memory at once, so
    /// charging the same materialization twice is harmless and the final
    /// value is independent of charge order (and therefore of schedule).
    pub fn charge_resident(&self, bytes: u64) {
        self.peak_resident_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// Attribute `records`/`bytes` to the labeled stage `stage` (in
    /// addition to the global counters — call [`CommStats::add_shuffle`] /
    /// [`CommStats::add_bytes`] separately for those).
    pub fn add_stage(&self, stage: u32, records: u64, bytes: u64) {
        let mut stages = self.stages.lock().unwrap_or_else(|e| e.into_inner());
        let entry = stages.entry(stage).or_default();
        entry.records += records;
        entry.bytes += bytes;
    }

    /// The labeled totals for one stage, if anything was attributed to it.
    pub fn stage_comm(&self, stage: u32) -> Option<StageComm> {
        let stages = self.stages.lock().unwrap_or_else(|e| e.into_inner());
        stages.get(&stage).copied()
    }

    /// All labeled stage totals, ascending by stage id.
    pub fn stages(&self) -> Vec<(u32, StageComm)> {
        let stages = self.stages.lock().unwrap_or_else(|e| e.into_inner());
        stages.iter().map(|(&id, &c)| (id, c)).collect()
    }

    /// Fold another counter block into this one.
    ///
    /// Merging is associative and commutative (plain counter addition,
    /// per-stage entries added key-wise), so per-worker ledgers can be
    /// combined in any order — or any grouping — and reach the same totals.
    /// `other` is read, not drained: merging the same ledger twice
    /// double-counts, which is on the caller.
    pub fn merge_from(&self, other: &CommStats) {
        self.add_scattered(other.scattered());
        self.add_gathered(other.gathered());
        self.add_collective_bytes(other.collective_bytes());
        self.records.fetch_add(other.records(), Ordering::Relaxed);
        self.shuffles.fetch_add(other.shuffles(), Ordering::Relaxed);
        self.add_bytes(other.bytes());
        self.shuffles_elided
            .fetch_add(other.shuffles_elided(), Ordering::Relaxed);
        self.spills.fetch_add(other.spills(), Ordering::Relaxed);
        self.spill_bytes
            .fetch_add(other.spill_bytes(), Ordering::Relaxed);
        self.unspill_bytes
            .fetch_add(other.unspill_bytes(), Ordering::Relaxed);
        // The peak meter merges by max, not addition: ranks run
        // concurrently, so the fleet-wide high-water mark is the largest
        // single rank's, not their sum. Max is associative and commutative,
        // so the merge law below still holds.
        self.peak_resident_bytes
            .fetch_max(other.peak_resident_bytes(), Ordering::Relaxed);
        for (id, c) in other.stages() {
            self.add_stage(id, c.records, c.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let s = CommStats::new();
        s.add_scattered(10);
        s.add_scattered(5);
        s.add_gathered(7);
        s.add_collective_bytes(1024);
        s.add_shuffle(100);
        s.add_shuffle(23);
        s.add_bytes(512);
        s.add_bytes(8);
        assert_eq!(s.scattered(), 15);
        assert_eq!(s.gathered(), 7);
        assert_eq!(s.collective_bytes(), 1024);
        assert_eq!(s.records(), 123);
        assert_eq!(s.shuffles(), 2);
        assert_eq!(s.bytes(), 520);
    }

    #[test]
    fn stage_ledger_attributes_bytes() {
        let s = CommStats::new();
        assert_eq!(s.stage_comm(3), None);
        s.add_stage(3, 10, 160);
        s.add_stage(7, 5, 40);
        s.add_stage(3, 2, 32);
        assert_eq!(
            s.stage_comm(3),
            Some(StageComm {
                records: 12,
                bytes: 192
            })
        );
        assert_eq!(
            s.stages(),
            vec![
                (
                    3,
                    StageComm {
                        records: 12,
                        bytes: 192
                    }
                ),
                (
                    7,
                    StageComm {
                        records: 5,
                        bytes: 40
                    }
                ),
            ]
        );
        // Stage attribution is a label, not a second count: the global
        // counters move only through add_shuffle/add_bytes.
        assert_eq!(s.records(), 0);
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn elided_shuffles_count_and_merge() {
        let s = CommStats::new();
        s.add_elided_shuffle();
        s.add_elided_shuffle();
        assert_eq!(s.shuffles_elided(), 2);
        assert_eq!(s.shuffles(), 0, "an elided shuffle is not a shuffle");
        let total = CommStats::new();
        total.merge_from(&s);
        total.merge_from(&s);
        assert_eq!(total.shuffles_elided(), 4);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let ledger = |sc: u64, ga: u64, by: u64, rec: u64, bytes: u64| {
            let s = CommStats::new();
            s.add_scattered(sc);
            s.add_gathered(ga);
            s.add_collective_bytes(by);
            s.add_shuffle(rec);
            s.add_bytes(bytes);
            s.add_stage(1, rec, bytes);
            s.add_stage(2, rec * 2, bytes * 2);
            s.add_elided_shuffle();
            s.add_spill(bytes * 3);
            s.add_unspill(bytes * 3);
            s.add_unspill(bytes * 3);
            s.charge_resident(bytes * 4);
            s.charge_resident(bytes); // lower charge never lowers the peak
            s
        };
        let flat = |s: &CommStats| {
            (
                s.scattered(),
                s.gathered(),
                s.collective_bytes(),
                s.records(),
                s.shuffles(),
                s.bytes(),
                s.shuffles_elided(),
                s.spills(),
                s.spill_bytes(),
                s.unspill_bytes(),
                s.peak_resident_bytes(),
                s.stages(),
            )
        };
        let a = ledger(1, 2, 3, 4, 5);
        let b = ledger(10, 20, 30, 40, 50);
        let c = ledger(100, 200, 300, 400, 500);

        // (a ⊕ b) ⊕ c
        let left = CommStats::new();
        left.merge_from(&a);
        left.merge_from(&b);
        left.merge_from(&c);

        // a ⊕ (b ⊕ c), built in reversed (out-of-order) arrival order.
        let bc = CommStats::new();
        bc.merge_from(&c);
        bc.merge_from(&b);
        let right = CommStats::new();
        right.merge_from(&bc);
        right.merge_from(&a);

        assert_eq!(flat(&left), flat(&right));
        assert_eq!(
            flat(&left),
            (
                111,
                222,
                333,
                444,
                3,
                555,
                3,
                3,
                1665,
                3330,
                // max across the three ledgers (500 * 4), not their sum.
                2000,
                vec![
                    (
                        1,
                        StageComm {
                            records: 444,
                            bytes: 555
                        }
                    ),
                    (
                        2,
                        StageComm {
                            records: 888,
                            bytes: 1110
                        }
                    ),
                ]
            )
        );
    }

    #[test]
    fn shared_across_threads() {
        let s = CommStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.add_scattered(1);
                    }
                });
            }
        });
        assert_eq!(s.scattered(), 4000);
    }
}
