//! Lightweight communication-volume counters shared by every backend.
//!
//! One counter block serves the whole workspace: the executor's
//! scatter/gather bookkeeping, the collectives' byte accounting in the
//! kmeans cluster path, and the dataflow shuffle (whose `ShuffleStats` is
//! now an alias of [`CommStats`]). Counters are relaxed atomics behind an
//! `Arc` — cheap enough to leave on, precise enough to compare backends in
//! the E15 experiment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic communication counters for one run.
///
/// All increments use relaxed ordering: the counts are aggregates read
/// after the run completes, not synchronization.
#[derive(Debug, Default)]
pub struct CommStats {
    scattered: AtomicU64,
    gathered: AtomicU64,
    collective_bytes: AtomicU64,
    records: AtomicU64,
    shuffles: AtomicU64,
    bytes: AtomicU64,
}

impl CommStats {
    /// Fresh zeroed counters, shared via `Arc` so workers and the caller
    /// see the same block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Elements distributed from a root / source view out to parts.
    pub fn scattered(&self) -> u64 {
        self.scattered.load(Ordering::Relaxed)
    }

    /// Elements (or per-part results) collected back in part order.
    pub fn gathered(&self) -> u64 {
        self.gathered.load(Ordering::Relaxed)
    }

    /// Payload bytes moved through cluster collectives
    /// (scatter/gather/broadcast/allreduce). Zero on shared-memory
    /// backends, where "communication" is a slice borrow.
    pub fn collective_bytes(&self) -> u64 {
        self.collective_bytes.load(Ordering::Relaxed)
    }

    /// Records repartitioned by shuffles.
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Number of shuffle operations performed.
    pub fn shuffles(&self) -> u64 {
        self.shuffles.load(Ordering::Relaxed)
    }

    /// Measured payload bytes moved, as estimated by
    /// [`ByteSized`](crate::ByteSized) at every send/shuffle site. Unlike
    /// [`CommStats::collective_bytes`] (an analytic per-algorithm formula
    /// kept for E15 continuity), this counter is fed by the transport and
    /// shuffle layers themselves, so it covers collectives, dataflow
    /// shuffles, and the executor paths uniformly.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Count `n` elements scattered.
    pub fn add_scattered(&self, n: u64) {
        self.scattered.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` elements gathered.
    pub fn add_gathered(&self, n: u64) {
        self.gathered.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` payload bytes through a collective.
    pub fn add_collective_bytes(&self, n: u64) {
        self.collective_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one shuffle that moved `records` records.
    pub fn add_shuffle(&self, records: u64) {
        self.records.fetch_add(records, Ordering::Relaxed);
        self.shuffles.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` measured payload bytes.
    pub fn add_bytes(&self, n: u64) {
        self.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold another counter block into this one.
    ///
    /// Merging is associative and commutative (plain counter addition), so
    /// per-worker ledgers can be combined in any order — or any grouping —
    /// and reach the same totals. `other` is read, not drained: merging the
    /// same ledger twice double-counts, which is on the caller.
    pub fn merge_from(&self, other: &CommStats) {
        self.add_scattered(other.scattered());
        self.add_gathered(other.gathered());
        self.add_collective_bytes(other.collective_bytes());
        self.records.fetch_add(other.records(), Ordering::Relaxed);
        self.shuffles.fetch_add(other.shuffles(), Ordering::Relaxed);
        self.add_bytes(other.bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_independently() {
        let s = CommStats::new();
        s.add_scattered(10);
        s.add_scattered(5);
        s.add_gathered(7);
        s.add_collective_bytes(1024);
        s.add_shuffle(100);
        s.add_shuffle(23);
        s.add_bytes(512);
        s.add_bytes(8);
        assert_eq!(s.scattered(), 15);
        assert_eq!(s.gathered(), 7);
        assert_eq!(s.collective_bytes(), 1024);
        assert_eq!(s.records(), 123);
        assert_eq!(s.shuffles(), 2);
        assert_eq!(s.bytes(), 520);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let ledger = |sc: u64, ga: u64, by: u64, rec: u64, bytes: u64| {
            let s = CommStats::new();
            s.add_scattered(sc);
            s.add_gathered(ga);
            s.add_collective_bytes(by);
            s.add_shuffle(rec);
            s.add_bytes(bytes);
            s
        };
        let flat = |s: &CommStats| {
            (
                s.scattered(),
                s.gathered(),
                s.collective_bytes(),
                s.records(),
                s.shuffles(),
                s.bytes(),
            )
        };
        let a = ledger(1, 2, 3, 4, 5);
        let b = ledger(10, 20, 30, 40, 50);
        let c = ledger(100, 200, 300, 400, 500);

        // (a ⊕ b) ⊕ c
        let left = CommStats::new();
        left.merge_from(&a);
        left.merge_from(&b);
        left.merge_from(&c);

        // a ⊕ (b ⊕ c), built in reversed (out-of-order) arrival order.
        let bc = CommStats::new();
        bc.merge_from(&c);
        bc.merge_from(&b);
        let right = CommStats::new();
        right.merge_from(&bc);
        right.merge_from(&a);

        assert_eq!(flat(&left), flat(&right));
        assert_eq!(flat(&left), (111, 222, 333, 444, 3, 555));
    }

    #[test]
    fn shared_across_threads() {
        let s = CommStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.add_scattered(1);
                    }
                });
            }
        });
        assert_eq!(s.scattered(), 4000);
    }
}
