//! # peachy-prng
//!
//! Pseudo-random number generation for the Peachy Parallel Assignments
//! reproduction, centred on the requirement of the Nagel–Schreckenberg
//! traffic assignment (EduHPC 2023, §5): *a parallel simulation must produce
//! output bit-identical to the serial code for any number of threads*.
//!
//! That requirement is met by generators that can **fast-forward** ("move
//! ahead") their internal state by `n` steps in `O(log n)` time, so that a
//! worker responsible for the `i`-th chunk of a shared random sequence can
//! jump directly to its starting offset instead of generating (and
//! discarding) everything before it.
//!
//! The crate provides:
//!
//! * [`Lcg64`] — a 64-bit linear congruential generator with a power-of-two
//!   modulus and `O(log n)` [`FastForward::jump`], the workhorse generator.
//! * [`Lcg31`] — the classic MINSTD (Lehmer) generator, `x ← 48271·x mod
//!   2³¹−1`, matching the C++ `std::minstd_rand` that the assignment's
//!   starter code fast-forwards; jump-ahead via modular exponentiation.
//! * [`SplitMix64`] — a trivially-jumpable counter-based mixer, used for
//!   seeding and as a comparator.
//! * [`XorShift64Star`] — a small non-jumpable generator used as a negative
//!   control in benchmarks (fast, but *cannot* support reproducible
//!   chunked parallelism without replaying the stream).
//! * [`dist`] — distributions built on any [`RandomStream`]: uniform
//!   integers without modulo bias, uniform floats, Bernoulli, and normal
//!   variates.
//! * [`stats`] — χ², Kolmogorov–Smirnov, and serial-correlation self-tests
//!   used by the test-suite to keep all generators honest.
//! * [`hashing`] — [`StableHash64`], a seeded version-stable hasher built
//!   on the SplitMix64 finalizer, used wherever hash *placement* must be
//!   reproducible across Rust releases (shuffle routing, key → rank maps).
//!
//! ## Quick example: chunked reproducibility
//!
//! ```
//! use peachy_prng::{Lcg64, RandomStream, FastForward};
//!
//! // Serial reference: 100 draws from one stream.
//! let mut serial = Lcg64::seed_from(42);
//! let reference: Vec<u64> = (0..100).map(|_| serial.next_u64()).collect();
//!
//! // "Parallel": four workers each fast-forward to their chunk.
//! let mut chunked = Vec::new();
//! for w in 0..4 {
//!     let mut rng = Lcg64::seed_from(42);
//!     rng.jump(w * 25);
//!     for _ in 0..25 { chunked.push(rng.next_u64()); }
//! }
//! assert_eq!(reference, chunked);
//! ```

// Numeric kernels below use explicit index loops deliberately: they mirror
// the assignments' pseudocode and keep stencil/neighbour indexing visible.
#![allow(clippy::needless_range_loop)]

pub mod dist;
pub mod hashing;
pub mod lcg;
pub mod philox;
pub mod splitmix;
pub mod stats;
pub mod stream;
pub mod xorshift;

pub use dist::{Bernoulli, Normal, UniformF64, UniformU64};
pub use hashing::{stable_hash, StableHash64};
pub use lcg::{Lcg31, Lcg64};
pub use philox::Philox;
pub use splitmix::SplitMix64;
pub use stream::{FastForward, RandomStream, StreamSplit};
pub use xorshift::XorShift64Star;

/// Convenience: the default generator used across the Peachy crates.
pub type DefaultStream = Lcg64;

/// Derive a well-mixed 64-bit seed from an arbitrary integer, so that
/// adjacent user seeds (0, 1, 2, …) do not produce correlated LCG states.
#[inline]
pub fn mix_seed(seed: u64) -> u64 {
    SplitMix64::new(seed).next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_changes_adjacent_seeds() {
        let a = mix_seed(0);
        let b = mix_seed(1);
        assert_ne!(a, b);
        let dist = (a ^ b).count_ones();
        assert!(
            dist > 16,
            "adjacent seeds too similar: {dist} differing bits"
        );
    }

    #[test]
    fn default_stream_is_fast_forwardable() {
        let mut a = DefaultStream::seed_from(7);
        let mut b = DefaultStream::seed_from(7);
        for _ in 0..1000 {
            a.next_u64();
        }
        b.jump(1000);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
