//! Statistical self-tests for generators.
//!
//! The traffic assignment (§5) notes that a PRNG's output "should be nearly
//! indistinguishable from being uniformly distributed". These helpers give
//! the test-suite teeth: a χ² test for equidistribution over bins, a
//! Kolmogorov–Smirnov statistic for the `[0,1)` float stream, and a lag-1
//! serial-correlation estimate. They are deliberately simple, dependency-free
//! implementations — the goal is sanity enforcement, not TestU01.

use crate::stream::RandomStream;

/// Result of a χ² equidistribution test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquare {
    /// The test statistic Σ (observed − expected)² / expected.
    pub statistic: f64,
    /// Degrees of freedom (bins − 1).
    pub dof: usize,
}

impl ChiSquare {
    /// Whether the statistic is within `z` standard deviations of its mean
    /// under H₀ (χ² with `dof` degrees of freedom has mean `dof` and
    /// variance `2·dof`). `z = 4.0` is a forgiving bound suitable for CI.
    pub fn is_plausible(&self, z: f64) -> bool {
        let mean = self.dof as f64;
        let sd = (2.0 * self.dof as f64).sqrt();
        (self.statistic - mean).abs() <= z * sd
    }
}

/// χ² test of `n` draws bucketed into `bins` equal-width bins via
/// [`RandomStream::next_below`].
pub fn chi_square_uniform<R: RandomStream>(rng: &mut R, bins: usize, n: usize) -> ChiSquare {
    assert!(bins >= 2, "need at least two bins");
    let mut counts = vec![0u64; bins];
    for _ in 0..n {
        counts[rng.next_below(bins as u64) as usize] += 1;
    }
    let expected = n as f64 / bins as f64;
    let statistic = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    ChiSquare {
        statistic,
        dof: bins - 1,
    }
}

/// One-sample Kolmogorov–Smirnov statistic of `n` draws of
/// [`RandomStream::next_f64`] against the uniform CDF.
pub fn ks_uniform<R: RandomStream>(rng: &mut R, n: usize) -> f64 {
    assert!(n > 0);
    let mut xs: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs from next_f64"));
    let n_f = n as f64;
    let mut d = 0.0f64;
    for (i, &x) in xs.iter().enumerate() {
        let lo = i as f64 / n_f;
        let hi = (i + 1) as f64 / n_f;
        d = d.max((x - lo).abs()).max((hi - x).abs());
    }
    d
}

/// Critical KS value at significance ~α for sample size n (asymptotic
/// formula `c(α)/√n`, with c(0.001) ≈ 1.95).
pub fn ks_critical(n: usize, c_alpha: f64) -> f64 {
    c_alpha / (n as f64).sqrt()
}

/// Lag-1 serial correlation of the float stream. Near 0 for a good
/// generator.
pub fn serial_correlation<R: RandomStream>(rng: &mut R, n: usize) -> f64 {
    assert!(n >= 3);
    let xs: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let mean = xs.iter().sum::<f64>() / n as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        let d = xs[i] - mean;
        den += d * d;
        if i + 1 < n {
            num += d * (xs[i + 1] - mean);
        }
    }
    num / den
}

/// Count of monotone runs in the float stream, normalized as a z-score
/// against the expected `(2n−1)/3` runs with variance `(16n−29)/90`.
pub fn runs_test_z<R: RandomStream>(rng: &mut R, n: usize) -> f64 {
    assert!(n >= 10);
    let xs: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
    let mut runs = 1usize;
    for i in 2..n {
        let up_prev = xs[i - 1] > xs[i - 2];
        let up_now = xs[i] > xs[i - 1];
        if up_prev != up_now {
            runs += 1;
        }
    }
    let n_f = n as f64;
    let mean = (2.0 * n_f - 1.0) / 3.0;
    let var = (16.0 * n_f - 29.0) / 90.0;
    (runs as f64 - mean) / var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lcg31, Lcg64, RandomStream, SplitMix64, XorShift64Star};

    fn check_generator<R: RandomStream>(mut rng: R, name: &str) {
        let chi = chi_square_uniform(&mut rng, 64, 64_000);
        assert!(chi.is_plausible(4.5), "{name}: chi² = {:?}", chi);
        let d = ks_uniform(&mut rng, 10_000);
        assert!(d < ks_critical(10_000, 1.95), "{name}: KS d = {d}");
        let r = serial_correlation(&mut rng, 20_000);
        assert!(r.abs() < 0.03, "{name}: serial corr = {r}");
        let z = runs_test_z(&mut rng, 20_000);
        assert!(z.abs() < 4.5, "{name}: runs z = {z}");
    }

    #[test]
    fn lcg64_passes_battery() {
        check_generator(Lcg64::seed_from(2023), "Lcg64");
    }

    #[test]
    fn lcg31_passes_battery() {
        check_generator(Lcg31::seed_from(2023), "Lcg31");
    }

    #[test]
    fn splitmix_passes_battery() {
        check_generator(SplitMix64::seed_from(2023), "SplitMix64");
    }

    #[test]
    fn xorshift_passes_battery() {
        check_generator(XorShift64Star::seed_from(2023), "XorShift64Star");
    }

    #[test]
    fn chi_square_detects_constant_stream() {
        struct Stuck;
        impl RandomStream for Stuck {
            fn seed_from(_: u64) -> Self {
                Stuck
            }
            fn next_u64(&mut self) -> u64 {
                0
            }
        }
        let chi = chi_square_uniform(&mut Stuck, 16, 1600);
        assert!(!chi.is_plausible(4.0), "constant stream must fail χ²");
    }

    #[test]
    fn ks_detects_skewed_stream() {
        struct Skewed(Lcg64);
        impl RandomStream for Skewed {
            fn seed_from(s: u64) -> Self {
                Skewed(Lcg64::seed_from(s))
            }
            fn next_u64(&mut self) -> u64 {
                self.0.next_u64() | (1 << 63) // force next_f64 >= 0.5
            }
        }
        let d = ks_uniform(&mut Skewed::seed_from(1), 2000);
        assert!(
            d > ks_critical(2000, 1.95) * 5.0,
            "skewed stream must fail KS, d = {d}"
        );
    }
}
