//! A seeded, version-stable hasher built on the SplitMix64 finalizer.
//!
//! `std::collections::hash_map::DefaultHasher` makes no stability promise
//! across Rust releases, which is fatal for anything that *pins* hash
//! placement — shuffle routing, key → rank ownership, regression tests that
//! record which bucket a key landed in. [`StableHash64`] is the repo-wide
//! replacement: a tiny sponge over [`SplitMix64::mix`] (Stafford's Mix13)
//! whose output is a pure function of the seed and the absorbed bytes —
//! independent of the Rust release, the platform word size, and the
//! process (no randomized per-instance state).
//!
//! Multi-byte integer writes are absorbed as little-endian words and
//! `usize`/`isize` are widened to 64 bits, so the same key hashes the same
//! on every platform.

use std::hash::Hasher;

use crate::splitmix::SplitMix64;

/// Domain-separation tag folded in with the byte length of every raw
/// `write`, so zero-padding a partial word cannot collide with explicit
/// trailing zero bytes.
const LEN_TAG: u64 = 0x51ab_1e4a_54e5_0001;

/// A seeded, deterministic 64-bit [`Hasher`].
///
/// ```
/// use std::hash::{Hash, Hasher};
/// use peachy_prng::StableHash64;
///
/// let mut h = StableHash64::seeded(42);
/// "peachy".hash(&mut h);
/// let a = h.finish();
///
/// let mut h2 = StableHash64::seeded(42);
/// "peachy".hash(&mut h2);
/// assert_eq!(a, h2.finish());          // same seed + bytes → same hash
///
/// let mut h3 = StableHash64::seeded(43);
/// "peachy".hash(&mut h3);
/// assert_ne!(a, h3.finish());          // seed participates
/// ```
#[derive(Debug, Clone)]
pub struct StableHash64 {
    state: u64,
}

impl StableHash64 {
    /// Hasher with the default (zero) seed.
    pub fn new() -> Self {
        Self::seeded(0)
    }

    /// Hasher whose output is keyed by `seed`.
    pub fn seeded(seed: u64) -> Self {
        // Mix the seed so adjacent seeds give unrelated streams.
        Self {
            state: SplitMix64::mix(seed ^ LEN_TAG),
        }
    }

    /// Absorb one 64-bit word (xor-then-mix sponge; `mix` is bijective, so
    /// each absorbed word permutes the whole state).
    #[inline]
    fn absorb(&mut self, word: u64) {
        self.state = SplitMix64::mix(self.state ^ word);
    }
}

impl Default for StableHash64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for StableHash64 {
    #[inline]
    fn finish(&self) -> u64 {
        SplitMix64::mix(self.state)
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.absorb(u64::from_le_bytes(buf));
        }
        self.absorb(bytes.len() as u64 ^ LEN_TAG);
    }

    // Fixed-width integer writes skip the length tag: each absorbs a fixed
    // number of words, always little-endian, with usize widened to u64 so
    // 32- and 64-bit targets agree.
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.absorb(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.absorb(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.absorb(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.absorb(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.absorb(v as u64);
        self.absorb((v >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.absorb(v as u64);
    }
}

/// Hash `key` with a [`StableHash64`] keyed by `seed`.
pub fn stable_hash<K: std::hash::Hash + ?Sized>(key: &K, seed: u64) -> u64 {
    let mut h = StableHash64::seeded(seed);
    key.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn deterministic_across_instances() {
        for key in ["", "a", "hello world", "peachy-parallel"] {
            assert_eq!(stable_hash(key, 7), stable_hash(key, 7), "{key:?}");
        }
        assert_eq!(stable_hash(&123456u64, 1), stable_hash(&123456u64, 1));
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(stable_hash("key", 0), stable_hash("key", 1));
        assert_ne!(stable_hash(&42u32, 0), stable_hash(&42u32, 0x5eed));
    }

    #[test]
    fn padding_does_not_collide_with_zeros() {
        // Raw byte writes of "ab" vs "ab\0" must differ (length is absorbed).
        let mut a = StableHash64::new();
        a.write(b"ab");
        let mut b = StableHash64::new();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn integer_widths_are_distinguished_by_hash_impl() {
        // u32 and u64 of the same value may collide or not — what matters
        // is determinism; but distinct values must spread.
        let outs: std::collections::HashSet<u64> =
            (0..10_000u64).map(|i| stable_hash(&i, 0)).collect();
        assert_eq!(outs.len(), 10_000, "no collisions on small ints");
    }

    #[test]
    fn tuples_and_strings_hash() {
        let a = stable_hash(&("x", 3u64), 9);
        let b = stable_hash(&("x", 4u64), 9);
        assert_ne!(a, b);
    }

    #[test]
    fn usize_matches_u64_widening() {
        // Cross-platform contract: usize is absorbed as a 64-bit word.
        let mut h1 = StableHash64::seeded(3);
        h1.write_usize(77);
        let mut h2 = StableHash64::seeded(3);
        h2.write_u64(77);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn derived_hash_goes_through_overrides() {
        #[derive(Hash)]
        struct Key {
            id: u64,
            name: &'static str,
        }
        let k = Key {
            id: 5,
            name: "five",
        };
        assert_eq!(stable_hash(&k, 2), stable_hash(&k, 2));
    }
}
