//! XorShift64*: a fast generator **without** a practical fast-forward.
//!
//! Included as the negative control the assignment implies: a generator
//! that is perfectly fine statistically and very fast, but whose state
//! update is not an affine map, so reproducible chunked parallelism would
//! require replaying the stream (O(n) "jump"). Benchmarks use it to show
//! why the LCG-with-jump design is the one that scales.

use crate::stream::{RandomStream, StreamSplit};
use crate::SplitMix64;

/// Marsaglia's xorshift64* generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Construct from a raw nonzero state; zero is remapped (an all-zero
    /// xorshift state is absorbing).
    #[inline]
    pub fn from_state(state: u64) -> Self {
        Self {
            state: if state == 0 {
                0x9e3779b97f4a7c15
            } else {
                state
            },
        }
    }

    /// Advance by `n` steps the only way possible: one at a time. Provided
    /// (deliberately) as `slow_jump` rather than `FastForward::jump` so the
    /// type system records that this generator cannot fast-forward.
    pub fn slow_jump(&mut self, n: u64) {
        for _ in 0..n {
            self.next_u64();
        }
    }
}

impl RandomStream for XorShift64Star {
    #[inline]
    fn seed_from(seed: u64) -> Self {
        Self::from_state(SplitMix64::new(seed).next())
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

impl StreamSplit for XorShift64Star {
    fn substream(&self, i: u64) -> Self {
        let mut mixer = SplitMix64::new(self.state ^ SplitMix64::mix(i));
        Self::from_state(mixer.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_remapped() {
        let mut rng = XorShift64Star::from_state(0);
        assert_ne!(rng.next_u64(), 0);
        // And the sequence keeps moving.
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn deterministic() {
        let mut a = XorShift64Star::seed_from(42);
        let mut b = XorShift64Star::seed_from(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn slow_jump_matches_stepping() {
        let mut a = XorShift64Star::seed_from(7);
        let mut b = XorShift64Star::seed_from(7);
        a.slow_jump(100);
        for _ in 0..100 {
            b.next_u64();
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn nonzero_forever_spot_check() {
        // xorshift never reaches the zero state from a nonzero one.
        let mut rng = XorShift64Star::seed_from(1);
        for _ in 0..100_000 {
            rng.next_u64();
        }
        assert_ne!(rng.state, 0);
    }
}
