//! Philox4x32-10: a counter-based PRNG (Salmon et al., SC 2011).
//!
//! Counter-based generators are the standard answer to the traffic
//! assignment's problem *on GPUs*: the n-th draw is a pure function of
//! `(key, counter = n)`, so "fast-forward" is a single assignment and any
//! thread can produce any element of the stream independently — no state
//! to carry, no jump algebra needed. This implementation passes the
//! reference test vectors from the Random123 distribution.

use crate::stream::{FastForward, RandomStream, StreamSplit};

/// Number of bumped-key rounds.
const ROUNDS: usize = 10;
/// Round multipliers.
const M0: u32 = 0xD2511F53;
const M1: u32 = 0xCD9E8D57;
/// Weyl key increments.
const W0: u32 = 0x9E3779B9;
const W1: u32 = 0xBB67AE85;

/// One Philox4x32-10 block function: 4 words of counter, 2 words of key →
/// 4 words of output.
pub fn philox4x32(counter: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let mut ctr = counter;
    let mut k = key;
    for _ in 0..ROUNDS {
        let p0 = (M0 as u64) * (ctr[0] as u64);
        let p1 = (M1 as u64) * (ctr[2] as u64);
        ctr = [
            ((p1 >> 32) as u32) ^ ctr[1] ^ k[0],
            p1 as u32,
            ((p0 >> 32) as u32) ^ ctr[3] ^ k[1],
            p0 as u32,
        ];
        k[0] = k[0].wrapping_add(W0);
        k[1] = k[1].wrapping_add(W1);
    }
    ctr
}

/// A Philox stream: key = seed, counter = draw index. Each counter value
/// yields four 32-bit words = two 64-bit outputs; the generator caches the
/// second.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Philox {
    key: [u32; 2],
    /// Next block index (counter words 0..1; words 2..3 are the substream id).
    block: u64,
    substream: u64,
    /// Cached second half of the current block.
    spare: Option<u64>,
}

impl Philox {
    /// Construct with an explicit key and substream.
    pub fn with_key(key: u64, substream: u64) -> Self {
        Self {
            key: [key as u32, (key >> 32) as u32],
            block: 0,
            substream,
            spare: None,
        }
    }

    /// The n-th 64-bit output of this stream, *statelessly* — what a GPU
    /// thread computes to get draw `n` without any shared state.
    pub fn at(&self, n: u64) -> u64 {
        let block = n / 2;
        let counter = [
            block as u32,
            (block >> 32) as u32,
            self.substream as u32,
            (self.substream >> 32) as u32,
        ];
        let out = philox4x32(counter, self.key);
        if n.is_multiple_of(2) {
            (out[0] as u64) << 32 | out[1] as u64
        } else {
            (out[2] as u64) << 32 | out[3] as u64
        }
    }

    /// Current position (draws consumed).
    pub fn position(&self) -> u64 {
        self.block * 2 - u64::from(self.spare.is_some())
    }
}

impl RandomStream for Philox {
    fn seed_from(seed: u64) -> Self {
        Self::with_key(seed, 0)
    }

    fn next_u64(&mut self) -> u64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        let counter = [
            self.block as u32,
            (self.block >> 32) as u32,
            self.substream as u32,
            (self.substream >> 32) as u32,
        ];
        let out = philox4x32(counter, self.key);
        self.block += 1;
        self.spare = Some((out[2] as u64) << 32 | out[3] as u64);
        (out[0] as u64) << 32 | out[1] as u64
    }
}

impl FastForward for Philox {
    fn jump(&mut self, n: u64) {
        // Counter arithmetic: position += n.
        let pos = self.position() + n;
        self.block = pos / 2;
        self.spare = None;
        if pos % 2 == 1 {
            // Mid-block: regenerate the block and keep its second half.
            let counter = [
                self.block as u32,
                (self.block >> 32) as u32,
                self.substream as u32,
                (self.substream >> 32) as u32,
            ];
            let out = philox4x32(counter, self.key);
            self.block += 1;
            self.spare = Some((out[2] as u64) << 32 | out[3] as u64);
        }
    }
}

impl StreamSplit for Philox {
    fn substream(&self, i: u64) -> Self {
        let mut s = self.clone();
        s.substream = i;
        s.block = 0;
        s.spare = None;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Random123 kat_vectors: philox4x32-10.
        // counter = 0, key = 0:
        assert_eq!(
            philox4x32([0, 0, 0, 0], [0, 0]),
            [0x6627e8d5, 0xe169c58d, 0xbc57ac4c, 0x9b00dbd8]
        );
        // counter = ff.., key = ff..:
        assert_eq!(
            philox4x32(
                [0xffffffff, 0xffffffff, 0xffffffff, 0xffffffff],
                [0xffffffff, 0xffffffff]
            ),
            [0x408f276d, 0x41c83b0e, 0xa20bc7c6, 0x6d5451fd]
        );
        // counter = 243f6a88 85a308d3 13198a2e 03707344, key = a4093822 299f31d0:
        assert_eq!(
            philox4x32(
                [0x243f6a88, 0x85a308d3, 0x13198a2e, 0x03707344],
                [0xa4093822, 0x299f31d0]
            ),
            [0xd16cfe09, 0x94fdcceb, 0x5001e420, 0x24126ea1]
        );
    }

    #[test]
    fn stateless_at_matches_stream() {
        let reference = Philox::seed_from(42);
        let mut stream = Philox::seed_from(42);
        for n in 0..64 {
            assert_eq!(stream.next_u64(), reference.at(n), "n = {n}");
        }
    }

    #[test]
    fn jump_matches_stepping() {
        for n in [0u64, 1, 2, 3, 7, 100, 12345] {
            let mut stepped = Philox::seed_from(9);
            for _ in 0..n {
                stepped.next_u64();
            }
            let mut jumped = Philox::seed_from(9);
            jumped.jump(n);
            assert_eq!(stepped.next_u64(), jumped.next_u64(), "n = {n}");
        }
    }

    #[test]
    fn jump_after_consuming_odd_count() {
        let mut a = Philox::seed_from(5);
        let mut b = Philox::seed_from(5);
        a.next_u64();
        a.jump(3);
        for _ in 0..4 {
            b.next_u64();
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn substreams_are_independent() {
        let base = Philox::seed_from(7);
        let mut s0 = base.substream(0);
        let mut s1 = base.substream(1);
        let w0: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let w1: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_ne!(w0, w1);
    }

    #[test]
    fn passes_stat_battery() {
        let mut rng = Philox::seed_from(2023);
        let chi = crate::stats::chi_square_uniform(&mut rng, 64, 64_000);
        assert!(chi.is_plausible(4.5), "{chi:?}");
        let d = crate::stats::ks_uniform(&mut rng, 10_000);
        assert!(d < crate::stats::ks_critical(10_000, 1.95));
    }
}
