//! SplitMix64: a counter-based mixer (Steele, Lea & Flood 2014).
//!
//! The state is a plain counter advanced by a fixed odd constant; each output
//! is a strong 64-bit hash of the state. Because the state is a counter,
//! fast-forwarding is a single multiply — SplitMix is the degenerate
//! best-case for the "move ahead" requirement and serves as (a) the seed
//! expander for the other generators and (b) a comparator in benchmarks.

use crate::stream::{FastForward, RandomStream, StreamSplit};

/// SplitMix64 generator. `Clone`-cheap; `jump` is O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

/// Weyl-sequence increment (odd, ≈ 2⁶⁴/φ).
const GAMMA: u64 = 0x9e3779b97f4a7c15;

impl SplitMix64 {
    /// Construct directly from a seed (no further mixing needed — the output
    /// function is itself a strong mixer).
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next value (convenience alias for [`RandomStream::next_u64`]).
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.next_u64()
    }

    /// The mixing finalizer (Stafford's Mix13 variant), exposed for reuse.
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

impl RandomStream for SplitMix64 {
    #[inline]
    fn seed_from(seed: u64) -> Self {
        Self::new(seed)
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        Self::mix(self.state)
    }
}

impl FastForward for SplitMix64 {
    #[inline]
    fn jump(&mut self, n: u64) {
        self.state = self.state.wrapping_add(GAMMA.wrapping_mul(n));
    }
}

impl StreamSplit for SplitMix64 {
    fn substream(&self, i: u64) -> Self {
        // Hash (state, i) into a fresh seed; mix twice for avalanche.
        Self::new(Self::mix(self.state ^ Self::mix(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c test vector lineage.
        let mut rng = SplitMix64::new(1234567);
        let a = rng.next();
        let b = rng.next();
        assert_ne!(a, b);
        // Determinism across constructions.
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(rng2.next(), a);
        assert_eq!(rng2.next(), b);
    }

    #[test]
    fn jump_equals_stepping() {
        for n in [0u64, 1, 17, 1000] {
            let mut stepped = SplitMix64::new(9);
            for _ in 0..n {
                stepped.next();
            }
            let mut jumped = SplitMix64::new(9);
            jumped.jump(n);
            assert_eq!(stepped.next(), jumped.next(), "n = {n}");
        }
    }

    #[test]
    fn mix_is_bijective_on_samples() {
        // Distinct inputs must give distinct outputs (spot check).
        let mut outs = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(outs.insert(SplitMix64::mix(i)));
        }
    }

    #[test]
    fn substream_independence_spot_check() {
        let base = SplitMix64::new(0);
        let mut s: Vec<_> = (0..4).map(|i| base.substream(i)).collect();
        let firsts: Vec<u64> = s.iter_mut().map(|r| r.next()).collect();
        let unique: std::collections::HashSet<_> = firsts.iter().collect();
        assert_eq!(unique.len(), firsts.len());
    }
}
