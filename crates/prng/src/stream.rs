//! Core generator traits.
//!
//! The traffic assignment distinguishes between generators that can merely
//! produce numbers ([`RandomStream`]) and generators that can additionally
//! *move ahead* in their own sequence in sub-linear time ([`FastForward`]) —
//! the property that makes thread-count-invariant parallel simulation
//! practical. [`StreamSplit`] covers the alternative (non-reproducible
//! across thread counts) strategy of handing each worker an independent
//! substream; it is provided so the two strategies can be compared, as the
//! assignment asks students to do.

/// A deterministic stream of pseudo-random numbers.
///
/// Implementations must be *reproducible*: two generators constructed with
/// the same seed yield identical sequences.
pub trait RandomStream {
    /// Construct from a raw seed. Implementations should tolerate any value
    /// (including 0) and internally remap degenerate seeds.
    fn seed_from(seed: u64) -> Self
    where
        Self: Sized;

    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next 32-bit output (upper bits of [`Self::next_u64`] by default —
    /// for LCGs the high bits are the good ones).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; divide by 2^53.
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Uniform integer in `[0, bound)` without modulo bias, by rejection on
    /// the widening-multiply method (Lemire).
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Fill a slice with raw outputs.
    fn fill_u64(&mut self, out: &mut [u64]) {
        for v in out {
            *v = self.next_u64();
        }
    }

    /// Fill a slice with uniform `[0,1)` doubles.
    fn fill_f64(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.next_f64();
        }
    }
}

/// Generators whose state can be advanced by `n` steps in `O(log n)`.
///
/// Law: `jump(n)` must leave the generator in exactly the state reached by
/// calling [`RandomStream::next_u64`] `n` times (this is property-tested in
/// the crate's test-suite for every implementation).
pub trait FastForward: RandomStream {
    /// Advance the internal state by `n` draws without producing output.
    fn jump(&mut self, n: u64);

    /// A copy of this generator already advanced by `n` draws.
    #[inline]
    fn jumped(&self, n: u64) -> Self
    where
        Self: Clone + Sized,
    {
        let mut c = self.clone();
        c.jump(n);
        c
    }
}

/// Generators that can spawn statistically-independent substreams.
///
/// This models the "give each thread its own seed" strategy the assignment
/// contrasts with fast-forwarding: simple, but the program's output then
/// depends on the number of threads.
pub trait StreamSplit: RandomStream {
    /// Derive the `i`-th substream of this generator. Substreams with
    /// different `i` must produce (statistically) independent sequences.
    fn substream(&self, i: u64) -> Self
    where
        Self: Sized;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lcg64;

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Lcg64::seed_from(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "out of range: {x}");
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Lcg64::seed_from(2);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_bound_one_is_zero() {
        let mut rng = Lcg64::seed_from(3);
        for _ in 0..100 {
            assert_eq!(rng.next_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut rng = Lcg64::seed_from(4);
        rng.next_below(0);
    }

    #[test]
    fn fill_matches_individual_draws() {
        let mut a = Lcg64::seed_from(5);
        let mut b = Lcg64::seed_from(5);
        let mut buf = [0u64; 32];
        a.fill_u64(&mut buf);
        for v in buf {
            assert_eq!(v, b.next_u64());
        }
    }

    #[test]
    fn jumped_leaves_original_untouched() {
        let rng = Lcg64::seed_from(6);
        let mut orig = rng.clone();
        let mut j = rng.jumped(10);
        let mut manual = rng.clone();
        for _ in 0..10 {
            manual.next_u64();
        }
        assert_eq!(j.next_u64(), manual.next_u64());
        // Original still at position 0.
        assert_eq!(orig.next_u64(), Lcg64::seed_from(6).next_u64());
    }
}
