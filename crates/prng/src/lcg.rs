//! Linear congruential generators with `O(log n)` fast-forward.
//!
//! An LCG's update `x ← a·x + c (mod m)` is an affine map, and affine maps
//! compose into affine maps:
//!
//! ```text
//! f(x)      = a·x + c
//! f²(x)     = a²·x + c·(a + 1)
//! fⁿ(x)     = aⁿ·x + c·(aⁿ⁻¹ + … + a + 1)
//! ```
//!
//! So `n` steps can be taken at once by computing the composed coefficients
//! `(aⁿ, c·Σaⁱ)` with `O(log n)` squarings — the "fast-forward" trick the
//! EduHPC 2023 traffic assignment implements for one of the C++ linear
//! congruential generators. [`Lcg64`] does this with wrapping arithmetic
//! (modulus 2⁶⁴); [`Lcg31`] is the multiplicative MINSTD generator where the
//! same idea reduces to modular exponentiation of the multiplier.

use crate::stream::{FastForward, RandomStream, StreamSplit};
use crate::SplitMix64;

/// 64-bit LCG, `x ← a·x + c (mod 2⁶⁴)`, with MMIX multiplier.
///
/// Raw output is the full state; consumers wanting high-quality low bits
/// should use [`RandomStream::next_u32`] / [`RandomStream::next_f64`],
/// which take the high bits. The generator is `Clone + Copy`-cheap, and
/// [`FastForward::jump`] runs in `O(log n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lcg64 {
    state: u64,
}

impl Lcg64 {
    /// Knuth's MMIX multiplier.
    pub const A: u64 = 6364136223846793005;
    /// Knuth's MMIX increment.
    pub const C: u64 = 1442695040888963407;

    /// Construct with an explicit raw state (no seed mixing).
    #[inline]
    pub fn from_state(state: u64) -> Self {
        Self { state }
    }

    /// Current raw state — exposed so tests can assert exact positions.
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Compose the affine update with itself `n` times:
    /// returns `(a_n, c_n)` such that `state_after = a_n·state + c_n`.
    #[inline]
    pub fn affine_power(n: u64) -> (u64, u64) {
        // Binary decomposition of n over the monoid of affine maps.
        let (mut a_acc, mut c_acc) = (1u64, 0u64); // identity map
        let (mut a, mut c) = (Self::A, Self::C); // single step
        let mut n = n;
        while n > 0 {
            if n & 1 == 1 {
                // acc ∘ step: x ↦ a·(a_acc·x + c_acc) + c
                a_acc = a.wrapping_mul(a_acc);
                c_acc = a.wrapping_mul(c_acc).wrapping_add(c);
            }
            // step ∘ step
            c = a.wrapping_mul(c).wrapping_add(c);
            a = a.wrapping_mul(a);
            n >>= 1;
        }
        (a_acc, c_acc)
    }
}

impl RandomStream for Lcg64 {
    #[inline]
    fn seed_from(seed: u64) -> Self {
        // Mix the seed so that seeds 0,1,2,… start in well-separated states.
        Self {
            state: SplitMix64::new(seed).next(),
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = Self::A.wrapping_mul(self.state).wrapping_add(Self::C);
        // Output mixing (xorshift of the high bits) so that raw state's weak
        // low bits do not leak into consumers that use the full word.
        let x = self.state;
        let x = x ^ (x >> 33);
        x.wrapping_mul(0xff51afd7ed558ccd)
    }
}

impl FastForward for Lcg64 {
    #[inline]
    fn jump(&mut self, n: u64) {
        let (a_n, c_n) = Self::affine_power(n);
        self.state = a_n.wrapping_mul(self.state).wrapping_add(c_n);
    }
}

impl StreamSplit for Lcg64 {
    fn substream(&self, i: u64) -> Self {
        // Independent substream: re-mix (state, i) through SplitMix64.
        let mut mixer = SplitMix64::new(self.state ^ i.wrapping_mul(0x9e3779b97f4a7c15));
        Self {
            state: mixer.next(),
        }
    }
}

/// The MINSTD Lehmer generator: `x ← 48271·x mod (2³¹ − 1)`.
///
/// This mirrors C++'s `std::minstd_rand`, the generator family for which the
/// assignment's starter code implements fast-forwarding. Because the map is
/// purely multiplicative, `n` steps compose to multiplication by
/// `48271ⁿ mod m`, computed by modular exponentiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lcg31 {
    state: u32,
}

impl Lcg31 {
    /// MINSTD multiplier (Park–Miller revised).
    pub const A: u32 = 48271;
    /// Mersenne prime modulus 2³¹ − 1.
    pub const M: u32 = 0x7fff_ffff;

    /// Construct from a raw state in `[1, M)`. Values are reduced and a zero
    /// state (which would be absorbing) is remapped to 1.
    #[inline]
    pub fn from_state(state: u32) -> Self {
        let s = state % Self::M;
        Self {
            state: if s == 0 { 1 } else { s },
        }
    }

    /// Current raw state.
    #[inline]
    pub fn state(&self) -> u32 {
        self.state
    }

    /// `A^n mod M` by repeated squaring.
    #[inline]
    pub fn mult_power(n: u64) -> u32 {
        let m = Self::M as u64;
        let mut result = 1u64;
        let mut base = Self::A as u64;
        let mut n = n;
        while n > 0 {
            if n & 1 == 1 {
                result = result * base % m;
            }
            base = base * base % m;
            n >>= 1;
        }
        result as u32
    }

    /// One raw MINSTD step, returning the new state in `[1, M)`.
    #[inline]
    pub fn raw_next(&mut self) -> u32 {
        self.state = ((self.state as u64 * Self::A as u64) % Self::M as u64) as u32;
        self.state
    }
}

impl RandomStream for Lcg31 {
    #[inline]
    fn seed_from(seed: u64) -> Self {
        let mixed = SplitMix64::new(seed).next();
        Self::from_state((mixed % (Self::M as u64 - 1) + 1) as u32)
    }

    /// Each 64-bit output consumes **two** raw 31-bit draws (high ∥ low),
    /// zero-padded to 62 significant bits then spread by a finalizer.
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let hi = self.raw_next() as u64;
        let lo = self.raw_next() as u64;
        let x = (hi << 31) | lo;
        // Finalize to use all 64 output bits.
        let x = x ^ (x >> 30);
        x.wrapping_mul(0xbf58476d1ce4e5b9)
    }
}

impl FastForward for Lcg31 {
    #[inline]
    fn jump(&mut self, n: u64) {
        // Each logical draw is two raw steps.
        let raw_steps = n.checked_mul(2).expect("jump distance overflow");
        let a_n = Self::mult_power(raw_steps) as u64;
        self.state = ((self.state as u64 * a_n) % Self::M as u64) as u32;
    }
}

impl StreamSplit for Lcg31 {
    fn substream(&self, i: u64) -> Self {
        let mut mixer = SplitMix64::new(self.state as u64 ^ i.wrapping_mul(0x9e3779b97f4a7c15));
        Self::from_state((mixer.next() % (Self::M as u64 - 1) + 1) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg64_jump_equals_stepping() {
        for n in [0u64, 1, 2, 3, 7, 64, 1000, 123_456] {
            let mut stepped = Lcg64::seed_from(99);
            for _ in 0..n {
                stepped.next_u64();
            }
            let mut jumped = Lcg64::seed_from(99);
            jumped.jump(n);
            assert_eq!(stepped.state(), jumped.state(), "n = {n}");
        }
    }

    #[test]
    fn lcg64_jump_is_additive() {
        let mut a = Lcg64::seed_from(5);
        a.jump(300);
        let mut b = Lcg64::seed_from(5);
        b.jump(100);
        b.jump(200);
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn lcg64_affine_power_identity() {
        assert_eq!(Lcg64::affine_power(0), (1, 0));
        assert_eq!(Lcg64::affine_power(1), (Lcg64::A, Lcg64::C));
    }

    #[test]
    fn lcg64_jump_huge_distance_terminates() {
        let mut rng = Lcg64::seed_from(1);
        rng.jump(u64::MAX); // must be O(log n), instant
        rng.next_u64();
    }

    #[test]
    fn lcg31_state_stays_in_range() {
        let mut rng = Lcg31::seed_from(3);
        for _ in 0..10_000 {
            let s = rng.raw_next();
            assert!((1..Lcg31::M).contains(&s));
        }
    }

    #[test]
    fn lcg31_jump_equals_stepping() {
        for n in [0u64, 1, 2, 5, 33, 1000] {
            let mut stepped = Lcg31::seed_from(7);
            for _ in 0..n {
                stepped.next_u64();
            }
            let mut jumped = Lcg31::seed_from(7);
            jumped.jump(n);
            assert_eq!(stepped.state(), jumped.state(), "n = {n}");
        }
    }

    #[test]
    fn lcg31_zero_state_remapped() {
        let rng = Lcg31::from_state(0);
        assert_eq!(rng.state(), 1);
        let rng = Lcg31::from_state(Lcg31::M);
        assert_eq!(rng.state(), 1);
    }

    #[test]
    fn lcg31_matches_minstd_reference() {
        // First values of std::minstd_rand from state 1: 48271, 182605794, …
        let mut rng = Lcg31::from_state(1);
        assert_eq!(rng.raw_next(), 48271);
        assert_eq!(rng.raw_next(), 182605794);
        assert_eq!(rng.raw_next(), 1291394886);
    }

    #[test]
    fn substreams_differ() {
        let base = Lcg64::seed_from(11);
        let mut s0 = base.substream(0);
        let mut s1 = base.substream(1);
        let a: Vec<u64> = (0..16).map(|_| s0.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| s1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Lcg64::seed_from(123);
        let mut b = Lcg64::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_sequences() {
        let mut a = Lcg64::seed_from(123);
        let mut b = Lcg64::seed_from(124);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
