//! Distributions over any [`RandomStream`].
//!
//! Small, allocation-free samplers covering exactly what the six
//! assignments need: uniform integers (dataset shuffling, task assignment),
//! uniform floats (k-means init, traffic decelerations), Bernoulli (the
//! Nagel–Schreckenberg random slow-down with probability `p`), and normal
//! variates (Gaussian blob datasets, NN weight init).

use crate::stream::RandomStream;

/// Uniform integers in `[lo, hi)` (half-open), bias-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformU64 {
    lo: u64,
    span: u64,
}

impl UniformU64 {
    /// Create a sampler over `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        Self { lo, span: hi - lo }
    }

    /// Draw one value.
    #[inline]
    pub fn sample<R: RandomStream>(&self, rng: &mut R) -> u64 {
        self.lo + rng.next_below(self.span)
    }
}

/// Uniform floats in `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformF64 {
    lo: f64,
    scale: f64,
}

impl UniformF64 {
    /// Create a sampler over `[lo, hi)`. Panics unless `lo < hi` and both
    /// bounds are finite.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad range [{lo}, {hi})"
        );
        Self { lo, scale: hi - lo }
    }

    /// Draw one value.
    #[inline]
    pub fn sample<R: RandomStream>(&self, rng: &mut R) -> f64 {
        self.lo + rng.next_f64() * self.scale
    }
}

/// Bernoulli trials with success probability `p`.
///
/// Implemented by comparing a 53-bit uniform draw against `p`, exactly as
/// the traffic model's `rand01() < p` idiom; this consumes **one** draw per
/// trial, which is what makes the per-car random-deceleration draw count
/// predictable (one draw per car per step) — the property the fast-forward
/// parallelization of §5 depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Create a sampler; `p` is clamped to `[0, 1]`.
    #[inline]
    pub fn new(p: f64) -> Self {
        assert!(p.is_finite(), "p must be finite");
        Self {
            p: p.clamp(0.0, 1.0),
        }
    }

    /// The success probability.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Draw one trial, consuming exactly one generator draw.
    #[inline]
    pub fn sample<R: RandomStream>(&self, rng: &mut R) -> bool {
        rng.next_f64() < self.p
    }
}

/// Normal (Gaussian) variates via the Marsaglia polar method.
///
/// The sampler caches the spare variate, so on average it consumes ~1.27
/// uniform draws per normal draw. Code that requires a *fixed* draw count
/// per event (like the traffic model) must not use this sampler; it is for
/// dataset generation and NN weight init where draw-count invariance is not
/// needed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Create a sampler with the given mean and standard deviation.
    /// Panics if `std_dev` is negative or either parameter is non-finite.
    #[inline]
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(
            mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0,
            "bad normal params"
        );
        Self {
            mean,
            std_dev,
            spare: None,
        }
    }

    /// Standard normal (mean 0, std 1).
    #[inline]
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Draw one variate.
    pub fn sample<R: RandomStream>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std_dev * z;
        }
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * factor);
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lcg64, RandomStream};

    #[test]
    fn uniform_u64_in_range() {
        let mut rng = Lcg64::seed_from(1);
        let d = UniformU64::new(10, 20);
        for _ in 0..5000 {
            let x = d.sample(&mut rng);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn uniform_u64_hits_all_values() {
        let mut rng = Lcg64::seed_from(2);
        let d = UniformU64::new(0, 8);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[d.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_u64_empty_range_panics() {
        UniformU64::new(5, 5);
    }

    #[test]
    fn uniform_f64_in_range() {
        let mut rng = Lcg64::seed_from(3);
        let d = UniformF64::new(-2.5, 7.5);
        for _ in 0..5000 {
            let x = d.sample(&mut rng);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = Lcg64::seed_from(4);
        let never = Bernoulli::new(0.0);
        let always = Bernoulli::new(1.0);
        for _ in 0..1000 {
            assert!(!never.sample(&mut rng));
            assert!(always.sample(&mut rng));
        }
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut rng = Lcg64::seed_from(5);
        let d = Bernoulli::new(0.13); // the paper's traffic probability
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut rng)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.13).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn bernoulli_consumes_one_draw() {
        let mut a = Lcg64::seed_from(6);
        let mut b = Lcg64::seed_from(6);
        let d = Bernoulli::new(0.5);
        for _ in 0..100 {
            d.sample(&mut a);
            b.next_f64();
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bernoulli_clamps_out_of_range() {
        assert_eq!(Bernoulli::new(2.0).p(), 1.0);
        assert_eq!(Bernoulli::new(-1.0).p(), 0.0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Lcg64::seed_from(7);
        let mut d = Normal::new(3.0, 2.0);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = Lcg64::seed_from(8);
        let mut d = Normal::new(5.0, 0.0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }
}
