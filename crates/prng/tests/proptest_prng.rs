//! Property-based tests for the PRNG crate's core laws.

use peachy_prng::{
    Bernoulli, FastForward, Lcg31, Lcg64, RandomStream, SplitMix64, StreamSplit, UniformU64,
};
use proptest::prelude::*;

proptest! {
    /// jump(n) must land exactly where n sequential draws land (Lcg64).
    #[test]
    fn lcg64_jump_law(seed in any::<u64>(), n in 0u64..5_000) {
        let mut stepped = Lcg64::seed_from(seed);
        for _ in 0..n { stepped.next_u64(); }
        let mut jumped = Lcg64::seed_from(seed);
        jumped.jump(n);
        prop_assert_eq!(stepped.next_u64(), jumped.next_u64());
    }

    /// jump(a); jump(b) == jump(a + b) (Lcg64).
    #[test]
    fn lcg64_jump_additive(seed in any::<u64>(), a in 0u64..1u64 << 30, b in 0u64..1u64 << 30) {
        let mut two = Lcg64::seed_from(seed);
        two.jump(a);
        two.jump(b);
        let mut one = Lcg64::seed_from(seed);
        one.jump(a + b);
        prop_assert_eq!(two.state(), one.state());
    }

    /// jump(n) law for the MINSTD generator.
    #[test]
    fn lcg31_jump_law(seed in any::<u64>(), n in 0u64..2_000) {
        let mut stepped = Lcg31::seed_from(seed);
        for _ in 0..n { stepped.next_u64(); }
        let mut jumped = Lcg31::seed_from(seed);
        jumped.jump(n);
        prop_assert_eq!(stepped.state(), jumped.state());
    }

    /// jump law for SplitMix64.
    #[test]
    fn splitmix_jump_law(seed in any::<u64>(), n in 0u64..5_000) {
        let mut stepped = SplitMix64::seed_from(seed);
        for _ in 0..n { stepped.next_u64(); }
        let mut jumped = SplitMix64::seed_from(seed);
        jumped.jump(n);
        prop_assert_eq!(stepped.next_u64(), jumped.next_u64());
    }

    /// Chunked generation over any partition reproduces the serial stream.
    #[test]
    fn chunked_equals_serial(seed in any::<u64>(), chunks in prop::collection::vec(1usize..50, 1..8)) {
        let total: usize = chunks.iter().sum();
        let mut serial = Lcg64::seed_from(seed);
        let reference: Vec<u64> = (0..total).map(|_| serial.next_u64()).collect();

        let mut out = Vec::with_capacity(total);
        let mut offset = 0u64;
        for &len in &chunks {
            let mut rng = Lcg64::seed_from(seed);
            rng.jump(offset);
            for _ in 0..len { out.push(rng.next_u64()); }
            offset += len as u64;
        }
        prop_assert_eq!(reference, out);
    }

    /// next_below is always within bounds.
    #[test]
    fn next_below_in_bounds(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = Lcg64::seed_from(seed);
        prop_assert!(rng.next_below(bound) < bound);
    }

    /// UniformU64 stays in its half-open range.
    #[test]
    fn uniform_in_range(seed in any::<u64>(), lo in 0u64..1000, width in 1u64..1000) {
        let mut rng = Lcg64::seed_from(seed);
        let d = UniformU64::new(lo, lo + width);
        let x = d.sample(&mut rng);
        prop_assert!(x >= lo && x < lo + width);
    }

    /// Bernoulli consumes exactly one draw regardless of outcome.
    #[test]
    fn bernoulli_draw_count(seed in any::<u64>(), p in 0.0f64..=1.0, n in 1usize..200) {
        let mut a = Lcg64::seed_from(seed);
        let mut b = Lcg64::seed_from(seed);
        let d = Bernoulli::new(p);
        for _ in 0..n {
            d.sample(&mut a);
            b.next_f64();
        }
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Substreams with distinct indices start with distinct outputs.
    #[test]
    fn substreams_distinct(seed in any::<u64>(), i in 0u64..1000, j in 0u64..1000) {
        prop_assume!(i != j);
        let base = Lcg64::seed_from(seed);
        let mut a = base.substream(i);
        let mut b = base.substream(j);
        // Compare a window, not a single draw, to make collision essentially impossible.
        let wa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let wb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        prop_assert_ne!(wa, wb);
    }

    /// MINSTD raw state remains in [1, M).
    #[test]
    fn lcg31_state_range(seed in any::<u64>(), n in 0usize..500) {
        let mut rng = Lcg31::seed_from(seed);
        for _ in 0..n {
            let s = rng.raw_next();
            prop_assert!((1..Lcg31::M).contains(&s));
        }
    }
}
