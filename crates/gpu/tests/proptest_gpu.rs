//! Property tests: launch-geometry invariance and kernel correctness for
//! arbitrary grids/blocks.

use peachy_gpu::kernels::device_sum;
use peachy_gpu::{GlobalBuffer, Kernel, Launch, Phase, ThreadCtx};
use proptest::prelude::*;

/// Every (block, thread) pair executes exactly once per phase.
struct CountVisits {
    n: usize,
}
impl Kernel for CountVisits {
    fn phases(&self) -> usize {
        3
    }
    fn run(&self, _p: Phase, t: ThreadCtx, _s: &mut [f64], g: &GlobalBuffer) {
        let mut i = t.global_id();
        while i < self.n {
            g.atomic_add_u64(i, 1);
            i += t.grid_span();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grid-stride coverage: every element visited exactly phases × once,
    /// for any geometry.
    #[test]
    fn grid_stride_covers_exactly(n in 1usize..500, grid in 1usize..10, block in 1usize..33) {
        let g = GlobalBuffer::from_u64(&vec![0u64; n]);
        Launch { grid, block, shared: 0 }.run(&CountVisits { n }, &g);
        prop_assert!(g.to_u64().iter().all(|&c| c == 3), "geometry {grid}x{block}");
    }

    /// Device sums equal the host sum for any geometry and either
    /// reduction style.
    #[test]
    fn sums_geometry_invariant(
        data in prop::collection::vec(-100i32..100, 1..2000),
        grid in 1usize..8,
        block in 1usize..65,
        tree in any::<bool>(),
    ) {
        let xs: Vec<f64> = data.iter().map(|&v| v as f64).collect();
        let expected: f64 = xs.iter().sum();
        let got = device_sum(&xs, grid, block, tree);
        prop_assert!((got - expected).abs() < 1e-6, "{got} vs {expected}");
    }

    /// ThreadCtx arithmetic is consistent.
    #[test]
    fn thread_ctx_arithmetic(grid in 1usize..20, block in 1usize..64) {
        for b in 0..grid {
            for th in 0..block {
                let ctx = ThreadCtx { block: b, thread: th, block_dim: block, grid_dim: grid };
                prop_assert_eq!(ctx.global_id(), b * block + th);
                prop_assert_eq!(ctx.grid_span(), grid * block);
            }
        }
    }
}
