//! The launch engine: grids, blocks, threads, phase barriers.

use rayon::prelude::*;

use crate::memory::GlobalBuffer;

/// A phase index; the engine guarantees a block-wide barrier between
/// consecutive phases (CUDA's `__syncthreads()`).
pub type Phase = usize;

/// A thread's coordinates within a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadCtx {
    /// Block index in `[0, grid)`.
    pub block: usize,
    /// Thread index within the block, `[0, block_dim)`.
    pub thread: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Blocks in the grid.
    pub grid_dim: usize,
}

impl ThreadCtx {
    /// Flat global thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn global_id(&self) -> usize {
        self.block * self.block_dim + self.thread
    }

    /// Total threads in the launch — the stride of a grid-stride loop.
    #[inline]
    pub fn grid_span(&self) -> usize {
        self.block_dim * self.grid_dim
    }
}

/// A phase-structured kernel.
///
/// Contract (the CUDA contract, restated): within one phase, distinct
/// threads must write disjoint shared/global locations or use atomics;
/// values written in phase `p` are visible to all of the block's threads
/// in phase `p + 1`.
pub trait Kernel: Sync {
    /// Number of barrier-separated phases. May depend on `block_dim`
    /// via [`Kernel::phases_for`].
    fn phases(&self) -> usize;

    /// Override when the phase count depends on the launch geometry
    /// (e.g. tree reductions need `log2(block_dim)` rounds).
    fn phases_for(&self, _block_dim: usize) -> usize {
        self.phases()
    }

    /// Execute one thread's slice of one phase. `shared` is this block's
    /// shared memory (zeroed at block start, persistent across phases).
    fn run(&self, phase: Phase, ctx: ThreadCtx, shared: &mut [f64], global: &GlobalBuffer);
}

/// Launch geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Launch {
    /// Number of blocks.
    pub grid: usize,
    /// Threads per block.
    pub block: usize,
    /// Shared-memory words per block.
    pub shared: usize,
}

impl Launch {
    /// Run `kernel` over `global`. Blocks run concurrently; inside a
    /// block, threads of each phase run in thread order, with a barrier
    /// between phases. Deterministic for contract-abiding kernels.
    pub fn run<K: Kernel>(&self, kernel: &K, global: &GlobalBuffer) {
        assert!(self.grid >= 1 && self.block >= 1, "empty launch");
        let phases = kernel.phases_for(self.block);
        (0..self.grid).into_par_iter().for_each(|block| {
            let mut shared = vec![0.0f64; self.shared];
            for phase in 0..phases {
                for thread in 0..self.block {
                    let ctx = ThreadCtx {
                        block,
                        thread,
                        block_dim: self.block,
                        grid_dim: self.grid,
                    };
                    kernel.run(phase, ctx, &mut shared, global);
                }
                // Implicit __syncthreads(): the next phase's threads see
                // everything this phase wrote (trivially true under
                // serialization; blocks never share `shared`).
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each thread writes its global id — exercises geometry.
    struct WriteIds;
    impl Kernel for WriteIds {
        fn phases(&self) -> usize {
            1
        }
        fn run(&self, _p: Phase, t: ThreadCtx, _s: &mut [f64], g: &GlobalBuffer) {
            g.store(t.global_id(), t.global_id() as f64);
        }
    }

    #[test]
    fn geometry_covers_all_threads() {
        let g = GlobalBuffer::zeroed(12);
        Launch {
            grid: 3,
            block: 4,
            shared: 0,
        }
        .run(&WriteIds, &g);
        assert_eq!(g.to_f64(), (0..12).map(|i| i as f64).collect::<Vec<_>>());
    }

    /// Two-phase kernel: phase 0 writes shared, phase 1 reads another
    /// thread's value — fails without a real barrier between phases.
    struct SwapViaShared;
    impl Kernel for SwapViaShared {
        fn phases(&self) -> usize {
            2
        }
        fn run(&self, p: Phase, t: ThreadCtx, s: &mut [f64], g: &GlobalBuffer) {
            match p {
                0 => s[t.thread] = (t.global_id() * 10) as f64,
                _ => {
                    let partner = t.block_dim - 1 - t.thread;
                    g.store(t.global_id(), s[partner]);
                }
            }
        }
    }

    #[test]
    fn phase_barrier_makes_shared_writes_visible() {
        let g = GlobalBuffer::zeroed(8);
        Launch {
            grid: 2,
            block: 4,
            shared: 4,
        }
        .run(&SwapViaShared, &g);
        // Block 0 threads 0..4 read partners 3..0 → 30,20,10,0.
        assert_eq!(g.to_f64()[..4], [30.0, 20.0, 10.0, 0.0]);
        // Block 1: global ids 4..8 → 70,60,50,40.
        assert_eq!(g.to_f64()[4..], [70.0, 60.0, 50.0, 40.0]);
    }

    /// Histogram with global atomics: racy by design, correct via atomics.
    struct Histogram {
        n: usize,
        bins: usize,
    }
    impl Kernel for Histogram {
        fn phases(&self) -> usize {
            1
        }
        fn run(&self, _p: Phase, t: ThreadCtx, _s: &mut [f64], g: &GlobalBuffer) {
            let mut i = t.global_id();
            while i < self.n {
                let value = g.load_u64(i) as usize % self.bins;
                g.atomic_add_u64(self.n + value, 1);
                i += t.grid_span();
            }
        }
    }

    #[test]
    fn histogram_via_atomics() {
        let n = 1000;
        let bins = 7;
        let data: Vec<u64> = (0..n as u64).map(|i| i * 13 % 100).collect();
        let mut init = data.clone();
        init.extend(vec![0u64; bins]);
        let g = GlobalBuffer::from_u64(&init);
        Launch {
            grid: 8,
            block: 32,
            shared: 0,
        }
        .run(&Histogram { n, bins }, &g);
        let got = &g.to_u64()[n..];
        let mut expected = vec![0u64; bins];
        for &v in &data {
            expected[v as usize % bins] += 1;
        }
        assert_eq!(got, &expected[..]);
    }

    #[test]
    #[should_panic(expected = "empty launch")]
    fn zero_grid_rejected() {
        Launch {
            grid: 0,
            block: 1,
            shared: 0,
        }
        .run(&WriteIds, &GlobalBuffer::zeroed(1));
    }
}
