//! Reference kernels: the building blocks the GPU assignments compose.
//!
//! [`BlockReduceSum`] is the canonical shared-memory tree reduction — the
//! pattern §3 asks students to weigh against atomics ("determine the
//! situations when atomic operations or reductions are more profitable").

use crate::exec::{Kernel, Launch, Phase, ThreadCtx};
use crate::memory::GlobalBuffer;

/// Grid-stride sum with **global atomics**: every thread atomically adds
/// its partial sum straight into `global[out]`.
pub struct AtomicSum {
    /// Input length (words `0..n` are the input).
    pub n: usize,
    /// Output word index.
    pub out: usize,
}

impl Kernel for AtomicSum {
    fn phases(&self) -> usize {
        1
    }
    fn run(&self, _p: Phase, t: ThreadCtx, _s: &mut [f64], g: &GlobalBuffer) {
        let mut acc = 0.0;
        let mut i = t.global_id();
        while i < self.n {
            acc += g.load(i);
            i += t.grid_span();
        }
        g.atomic_add(self.out, acc);
    }
}

/// Grid-stride sum with a **shared-memory tree reduction** per block:
/// phase 0 accumulates per-thread partials into shared memory; phases
/// `1..=log2(block)` halve the active threads each round; the final phase
/// has thread 0 add the block total to `global[out]` (one atomic per
/// block instead of one per thread).
pub struct BlockReduceSum {
    /// Input length.
    pub n: usize,
    /// Output word index.
    pub out: usize,
}

impl BlockReduceSum {
    fn rounds(block_dim: usize) -> usize {
        // ceil(log2(block_dim))
        (usize::BITS - (block_dim - 1).leading_zeros()) as usize
    }
}

impl Kernel for BlockReduceSum {
    fn phases(&self) -> usize {
        unreachable!("phase count depends on block_dim; use phases_for")
    }
    fn phases_for(&self, block_dim: usize) -> usize {
        // load + log2(block) tree rounds + final write.
        1 + Self::rounds(block_dim) + 1
    }
    fn run(&self, phase: Phase, t: ThreadCtx, shared: &mut [f64], g: &GlobalBuffer) {
        let rounds = Self::rounds(t.block_dim);
        if phase == 0 {
            let mut acc = 0.0;
            let mut i = t.global_id();
            while i < self.n {
                acc += g.load(i);
                i += t.grid_span();
            }
            shared[t.thread] = acc;
        } else if phase <= rounds {
            // Tree round r (1-based): active half adds the upper half.
            let width = (t.block_dim.next_power_of_two() >> phase).max(1);
            if t.thread < width && t.thread + width < t.block_dim {
                shared[t.thread] += shared[t.thread + width];
            }
        } else if t.thread == 0 {
            g.atomic_add(self.out, shared[0]);
        }
    }
}

/// Convenience: sum `data` on the device with the chosen kernel shape;
/// returns the total.
pub fn device_sum(data: &[f64], grid: usize, block: usize, tree: bool) -> f64 {
    let mut init = data.to_vec();
    init.push(0.0); // the accumulator
    let g = GlobalBuffer::from_f64(&init);
    let out = data.len();
    if tree {
        Launch {
            grid,
            block,
            shared: block,
        }
        .run(&BlockReduceSum { n: data.len(), out }, &g);
    } else {
        Launch {
            grid,
            block,
            shared: 0,
        }
        .run(&AtomicSum { n: data.len(), out }, &g);
    }
    g.load(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37) % 11) as f64 - 5.0).collect()
    }

    #[test]
    fn atomic_sum_correct() {
        let xs = data(10_000);
        let expected: f64 = xs.iter().sum();
        for (grid, block) in [(1usize, 1usize), (4, 32), (16, 64)] {
            let got = device_sum(&xs, grid, block, false);
            assert!((got - expected).abs() < 1e-9, "grid={grid} block={block}");
        }
    }

    #[test]
    fn tree_sum_correct() {
        let xs = data(10_000);
        let expected: f64 = xs.iter().sum();
        for (grid, block) in [(1usize, 1usize), (4, 32), (8, 128), (3, 33)] {
            let got = device_sum(&xs, grid, block, true);
            assert!(
                (got - expected).abs() < 1e-9,
                "grid={grid} block={block}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn tree_and_atomic_agree() {
        let xs = data(5_000);
        let a = device_sum(&xs, 8, 64, false);
        let b = device_sum(&xs, 8, 64, true);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn non_power_of_two_blocks() {
        let xs = data(1_000);
        let expected: f64 = xs.iter().sum();
        for block in [3usize, 7, 17, 100] {
            let got = device_sum(&xs, 5, block, true);
            assert!((got - expected).abs() < 1e-9, "block={block}");
        }
    }

    #[test]
    fn empty_input_sums_to_zero() {
        assert_eq!(device_sum(&[], 2, 8, true), 0.0);
        assert_eq!(device_sum(&[], 2, 8, false), 0.0);
    }
}
