//! Global device memory and access diagnostics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Global (device) memory: a flat array of 64-bit words shared by every
/// block, with relaxed atomic operations. Words are interpreted as `f64`
/// or `u64` per call — like a raw device allocation viewed through typed
/// pointers.
pub struct GlobalBuffer {
    words: Vec<AtomicU64>,
    tracker: Option<AccessTracker>,
}

impl GlobalBuffer {
    /// Allocate `len` zeroed words.
    pub fn zeroed(len: usize) -> Self {
        Self {
            words: (0..len).map(|_| AtomicU64::new(0.0f64.to_bits())).collect(),
            tracker: None,
        }
    }

    /// Allocate from f64 contents.
    pub fn from_f64(data: &[f64]) -> Self {
        Self {
            words: data.iter().map(|&x| AtomicU64::new(x.to_bits())).collect(),
            tracker: None,
        }
    }

    /// Allocate from u64 contents.
    pub fn from_u64(data: &[u64]) -> Self {
        Self {
            words: data.iter().map(|&x| AtomicU64::new(x)).collect(),
            tracker: None,
        }
    }

    /// Enable access tracking (for coalescing diagnostics).
    pub fn with_tracking(mut self) -> Self {
        self.tracker = Some(AccessTracker::default());
        self
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Load word `i` as `f64`.
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        self.note(i);
        f64::from_bits(self.words[i].load(Ordering::Relaxed))
    }

    /// Store `f64` into word `i`.
    #[inline]
    pub fn store(&self, i: usize, v: f64) {
        self.note(i);
        self.words[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Load word `i` as `u64`.
    #[inline]
    pub fn load_u64(&self, i: usize) -> u64 {
        self.note(i);
        self.words[i].load(Ordering::Relaxed)
    }

    /// Store `u64` into word `i`.
    #[inline]
    pub fn store_u64(&self, i: usize, v: u64) {
        self.note(i);
        self.words[i].store(v, Ordering::Relaxed);
    }

    /// Atomic integer add; returns the previous value.
    #[inline]
    pub fn atomic_add_u64(&self, i: usize, v: u64) -> u64 {
        self.note(i);
        self.words[i].fetch_add(v, Ordering::Relaxed)
    }

    /// Atomic `f64` add via compare-and-swap — the classic pre-Pascal CUDA
    /// `atomicAdd(double*)` emulation.
    #[inline]
    pub fn atomic_add(&self, i: usize, v: f64) {
        self.note(i);
        let cell = &self.words[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Atomic compare-and-swap on raw bits; returns the previous value.
    #[inline]
    pub fn compare_exchange_u64(&self, i: usize, expect: u64, new: u64) -> Result<u64, u64> {
        self.note(i);
        self.words[i].compare_exchange(expect, new, Ordering::Relaxed, Ordering::Relaxed)
    }

    /// Snapshot as `f64`s.
    pub fn to_f64(&self) -> Vec<f64> {
        self.words
            .iter()
            .map(|w| f64::from_bits(w.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshot as `u64`s.
    pub fn to_u64(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// The access tracker, if tracking was enabled.
    pub fn tracker(&self) -> Option<&AccessTracker> {
        self.tracker.as_ref()
    }

    #[inline]
    fn note(&self, i: usize) {
        if let Some(t) = &self.tracker {
            t.note(i);
        }
    }
}

/// Coalescing diagnostics: counts accesses and how many were "adjacent"
/// (address exactly one past the previous access from the engine's
/// serialized thread order — consecutive threads reading consecutive
/// addresses score high; strided or random patterns score low).
#[derive(Debug, Default)]
pub struct AccessTracker {
    accesses: AtomicU64,
    adjacent: AtomicU64,
    last: AtomicU64,
}

impl AccessTracker {
    fn note(&self, i: usize) {
        let prev = self.last.swap(i as u64, Ordering::Relaxed);
        self.accesses.fetch_add(1, Ordering::Relaxed);
        if i as u64 == prev.wrapping_add(1) {
            self.adjacent.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Fraction of accesses whose address followed the previous one — the
    /// coalescing score in [0, 1].
    pub fn coalescing(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            return 0.0;
        }
        self.adjacent.load(Ordering::Relaxed) as f64 / a as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let g = GlobalBuffer::from_f64(&[1.5, -2.5]);
        assert_eq!(g.load(0), 1.5);
        g.store(1, 7.25);
        assert_eq!(g.to_f64(), vec![1.5, 7.25]);
    }

    #[test]
    fn u64_and_f64_views_coexist() {
        let g = GlobalBuffer::zeroed(2);
        g.store_u64(0, 42);
        assert_eq!(g.load_u64(0), 42);
        g.store(1, 3.0);
        assert_eq!(g.load(1), 3.0);
    }

    #[test]
    fn atomic_f64_add_accumulates() {
        use rayon::prelude::*;
        let g = GlobalBuffer::from_f64(&[0.0]);
        (0..2000)
            .into_par_iter()
            .for_each(|_| g.atomic_add(0, 0.25));
        assert_eq!(g.load(0), 500.0);
    }

    #[test]
    fn atomic_u64_add_returns_previous() {
        let g = GlobalBuffer::from_u64(&[10]);
        assert_eq!(g.atomic_add_u64(0, 5), 10);
        assert_eq!(g.load_u64(0), 15);
    }

    #[test]
    fn coalescing_score_distinguishes_patterns() {
        let seq = GlobalBuffer::zeroed(1000).with_tracking();
        for i in 0..1000 {
            seq.load(i);
        }
        assert!(seq.tracker().unwrap().coalescing() > 0.99);

        let strided = GlobalBuffer::zeroed(1000).with_tracking();
        for i in (0..1000).step_by(32) {
            strided.load(i);
        }
        assert!(strided.tracker().unwrap().coalescing() < 0.1);
    }
}
