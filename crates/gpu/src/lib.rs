//! # peachy-gpu
//!
//! A deterministic **SIMT-style GPU execution model** — the substitute for
//! the CUDA/OpenCL leg of the Peachy assignment series (§3's three-model
//! progression, and the "accelerator programming models like CUDA"
//! adaptation of §2). No GPU is available or required: the crate models
//! the *programming concepts* the assignments teach —
//!
//! * a **grid** of **thread blocks**, each with `block_dim` threads
//!   ([`Launch`]);
//! * per-block **shared memory** visible to the block's threads;
//! * **barrier phases**: a kernel is written as numbered phases with an
//!   implicit `__syncthreads()` between consecutive phases (the idiom of
//!   every shared-memory tree reduction);
//! * **global memory** with relaxed atomics ([`GlobalBuffer::atomic_add`],
//!   `atomic_add_f64` via CAS — exactly the trick real CUDA code used
//!   before native double atomics);
//! * **coalescing diagnostics**: [`AccessTracker`] scores whether
//!   consecutive threads touched consecutive addresses, so the
//!   "coalesced memory accesses" lesson is measurable.
//!
//! ## Execution semantics (and why they are faithful where it matters)
//!
//! Blocks execute independently (parallel over the rayon pool); within a
//! block, the threads of one phase run to completion before the next phase
//! starts — i.e. every phase boundary is a block-wide barrier. Inside a
//! phase, threads are *serialized in thread order*. CUDA's contract is
//! that correct kernels must not race between barriers (distinct
//! locations, or atomics); any kernel that honours that contract computes
//! the same result under serialization, and the engine is deterministic —
//! which is what lets the test-suite `assert_eq!` GPU results against CPU
//! references.
//!
//! ```
//! use peachy_gpu::{GlobalBuffer, Kernel, Launch, Phase, ThreadCtx};
//!
//! // y[i] += a * x[i], one thread per element, grid-stride loop.
//! struct Axpy { a: f64, n: usize }
//! impl Kernel for Axpy {
//!     fn phases(&self) -> usize { 1 }
//!     fn run(&self, _phase: Phase, t: ThreadCtx, _shared: &mut [f64], g: &GlobalBuffer) {
//!         let mut i = t.global_id();
//!         while i < self.n {
//!             g.store(self.n + i, g.load(self.n + i) + self.a * g.load(i));
//!             i += t.grid_span();
//!         }
//!     }
//! }
//!
//! let g = GlobalBuffer::from_f64(&[1.0, 2.0, 10.0, 20.0]); // x ++ y
//! Launch { grid: 2, block: 2, shared: 0 }.run(&Axpy { a: 3.0, n: 2 }, &g);
//! assert_eq!(g.to_f64()[2..], [13.0, 26.0]);
//! ```

pub mod exec;
pub mod kernels;
pub mod memory;

pub use exec::{Kernel, Launch, Phase, ThreadCtx};
pub use memory::{AccessTracker, GlobalBuffer};
