//! E18 scenario builders: the optimizer-ablation pipelines shared by the
//! `dataflow` criterion bench, `report_all`, and the committed
//! `BENCH_6.json` baseline. Each scenario runs the same lineage under
//! [`OptimizerConfig::naive`] and [`OptimizerConfig::default`]; the comm
//! counters are deterministic (seeded inputs, fixed partition counts), so
//! the regression gate can demand exact matches across machines.

use std::sync::Arc;
use std::time::Instant;

use peachy::city::{hotspot_growth_with, CityTables};
use peachy::data::geo::{CityConfig, SyntheticCity};
use peachy::dataflow::{Dataset, KeyedDataset, OptimizerConfig, ShuffleStats};
use peachy::prng::{Lcg64, RandomStream};

/// Fixed seed for every E18 input — counters must replay bit-identically.
pub const E18_SEED: u64 = 1806;

/// One timed pipeline run: wall-clock median over the iterations plus the
/// comm counters of a single run (they are identical run-to-run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measured {
    /// Median wall time across the iterations, nanoseconds.
    pub median_ns: u64,
    /// Rows in the final result.
    pub rows: u64,
    /// Records moved through real shuffles.
    pub records: u64,
    /// Bytes moved through real shuffles.
    pub bytes: u64,
    /// Real (materialized) shuffle boundaries.
    pub shuffles: u64,
    /// Boundaries served from co-partitioned parents instead.
    pub elided: u64,
    /// Partitions written to disk by byte-budgeted stores (E20).
    pub spills: u64,
    /// Encoded bytes those spills wrote.
    pub spill_bytes: u64,
    /// Encoded bytes streamed back from spilled partitions.
    pub unspill_bytes: u64,
    /// High-water mark of bytes materialized or decoded at once by
    /// byte-budgeted stores (the E22 streaming meter).
    pub peak_resident_bytes: u64,
}

/// Run `run` `iters` times; each call must build a FRESH pipeline (shuffle
/// posts are memoized per op, so reusing one would time a cache hit).
pub fn measure<F>(iters: usize, run: F) -> Measured
where
    F: Fn() -> (usize, Arc<ShuffleStats>),
{
    assert!(iters >= 1, "need at least one iteration");
    let mut times = Vec::with_capacity(iters);
    let mut last = None;
    for _ in 0..iters {
        let t = Instant::now();
        let out = run();
        times.push(t.elapsed().as_nanos() as u64);
        last = Some(out);
    }
    times.sort_unstable();
    let (rows, stats) = last.expect("at least one run");
    Measured {
        median_ns: times[times.len() / 2],
        rows: rows as u64,
        records: stats.records(),
        bytes: stats.bytes(),
        shuffles: stats.shuffles(),
        elided: stats.shuffles_elided(),
        spills: stats.spills(),
        spill_bytes: stats.spill_bytes(),
        unspill_bytes: stats.unspill_bytes(),
        peak_resident_bytes: stats.peak_resident_bytes(),
    }
}

/// The default optimizer under a byte budget — the E20 ablation knob: the
/// same pipeline resident (`OptimizerConfig::default`) vs spilled
/// (`spill_cfg(budget)`) must produce identical rows and comm counters,
/// differing only in the spill traffic.
pub fn spill_cfg(budget: u64) -> OptimizerConfig {
    OptimizerConfig {
        spill_budget: Some(budget),
        ..OptimizerConfig::default()
    }
}

/// The E22 strawman: the same byte budget, but spilled partitions are
/// rebuilt whole on access instead of streamed through a row cursor.
pub fn rebuild_cfg(budget: u64) -> OptimizerConfig {
    OptimizerConfig {
        spill_budget: Some(budget),
        stream_spills: false,
        ..OptimizerConfig::default()
    }
}

/// The E22 streaming-ablation pipeline: a fully skewed group-by. Every
/// row routes to a single shuffle bucket, so the bucket dwarfs any source
/// partition — the rebuild-on-access strawman must materialize it whole to
/// post it, while streaming consumption decodes it row-by-row and its
/// high-water mark stays at the (half-sized) posted groups.
pub fn skewed_group(
    n: usize,
    partitions: usize,
    cfg: OptimizerConfig,
) -> (usize, Arc<ShuffleStats>) {
    let rows: Vec<u64> = (0..n as u64).collect();
    let stats = ShuffleStats::new();
    let grouped = Dataset::from_vec_with(rows, partitions, cfg)
        .with_stats(Arc::clone(&stats))
        .key_by(|_| 0u64)
        .with_stats(Arc::clone(&stats))
        .group_by_key()
        .collect();
    let total = grouped.iter().map(|(_, vs)| vs.len()).sum();
    (total, stats)
}

/// A seeded word corpus: `words` draws from a small vocabulary, ~12 words
/// per line.
pub fn corpus(words: usize, seed: u64) -> String {
    const VOCAB: [&str; 24] = [
        "peach", "parallel", "assignment", "shuffle", "partition", "lineage", "cluster", "reduce",
        "combine", "broadcast", "join", "cache", "stage", "narrow", "wide", "fuse", "elide",
        "plan", "cost", "bytes", "rank", "chunk", "worker", "task",
    ];
    let mut rng = Lcg64::seed_from(seed);
    let mut text = String::with_capacity(words * 8);
    for i in 0..words {
        text.push_str(VOCAB[rng.next_below(VOCAB.len() as u64) as usize]);
        text.push(if i % 12 == 11 { '\n' } else { ' ' });
    }
    text
}

/// Wordcount with a second aggregation pass: count words, drop the rare
/// ones, then re-aggregate per first letter — the second shuffle routes by
/// the same layout and elides under the default config. The narrow
/// ingest chain (flat_map → filter) additionally fuses.
pub fn wordcount(
    text: &str,
    partitions: usize,
    cfg: OptimizerConfig,
) -> (Vec<(String, u64)>, Arc<ShuffleStats>) {
    let stats = ShuffleStats::new();
    let mut out = Dataset::from_text(text, partitions)
        .with_optimizer(cfg)
        .flat_map(|line| {
            line.split_whitespace()
                .map(str::to_string)
                .collect::<Vec<_>>()
        })
        .filter(|w| w.len() > 3)
        .key_by(|w| w.clone())
        .with_stats(Arc::clone(&stats))
        .count_by_key()
        .filter_keys(|w| !w.ends_with('e'))
        .reduce_by_key(|a, b| a + b)
        .collect();
    out.sort();
    (out, stats)
}

/// The standard E18 city: 8×8 NTAs, seeded, sized for sub-second runs.
pub fn city_tables(arrests: usize) -> CityTables {
    let config = CityConfig {
        grid_w: 8,
        grid_h: 8,
        arrests,
        ..CityConfig::default()
    };
    let city = SyntheticCity::generate(config, E18_SEED);
    CityTables::from_city(&city, config.current_year)
}

/// The city hotspot-growth analysis under `cfg` (the flagship elision
/// site: both join sides are co-partitioned `count_by_key` outputs).
pub fn city_hotspot(
    tables: &CityTables,
    partitions: usize,
    cfg: OptimizerConfig,
) -> (usize, Arc<ShuffleStats>) {
    let (rows, stats) = hotspot_growth_with(tables, 4, partitions, cfg);
    (rows.len(), stats)
}

/// A keyed chained aggregation over seeded numeric rows — the pure
/// dataflow (no parsing) elision scenario.
pub fn chained_aggregation(
    n: usize,
    partitions: usize,
    cfg: OptimizerConfig,
) -> (usize, Arc<ShuffleStats>) {
    let mut rng = Lcg64::seed_from(E18_SEED);
    let rows: Vec<(u64, u64)> = (0..n)
        .map(|_| (rng.next_below(1 << 14), rng.next_below(100)))
        .collect();
    let stats = ShuffleStats::new();
    let out = KeyedDataset::from_dataset(Dataset::from_vec_with(rows, partitions, cfg))
        .with_stats(Arc::clone(&stats))
        .reduce_by_key(|a, b| a + b)
        .filter_keys(|k| k % 3 != 0)
        .map_values(|v| v * 2)
        .reduce_by_key(|a, b| a + b)
        .count();
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_config_invariant_and_optimizer_moves_fewer_bytes() {
        let text = corpus(20_000, E18_SEED);
        let (opt, opt_stats) = wordcount(&text, 8, OptimizerConfig::default());
        let (naive, naive_stats) = wordcount(&text, 8, OptimizerConfig::naive());
        assert_eq!(opt, naive);
        assert!(opt_stats.shuffles_elided() >= 1);
        assert!(opt_stats.bytes() < naive_stats.bytes());

        let (n_opt, s_opt) = chained_aggregation(50_000, 8, OptimizerConfig::default());
        let (n_naive, s_naive) = chained_aggregation(50_000, 8, OptimizerConfig::naive());
        assert_eq!(n_opt, n_naive);
        assert!(s_opt.bytes() < s_naive.bytes());
    }

    #[test]
    fn measure_reports_counters_of_a_fresh_run() {
        let m = measure(3, || chained_aggregation(10_000, 4, OptimizerConfig::default()));
        assert!(m.rows > 0);
        assert!(m.shuffles >= 1);
        assert!(m.elided >= 1);
    }
}
