//! E4 — regenerate Table 1 from raw survey records, using the dataflow
//! engine as the aggregation substrate (a pipeline about the pipeline
//! course's own survey).
//!
//! ```sh
//! cargo run --release -p peachy-bench --bin report_table1
//! ```

use peachy::dataflow::Dataset;
use peachy_bench::survey::{published_table, student_records, survey_items, Table1Row};

fn main() {
    // Aggregate item counts per winter with reduce_by_key over 4-vectors:
    // (pos_total, pos_proj, neg_total, neg_proj).
    let item_counts = Dataset::from_vec(survey_items(), 4)
        .key_by(|item| item.winter)
        .map_values(|item| {
            let pos = item.positive;
            let proj = item.about_project;
            [
                u64::from(pos),
                u64::from(pos && proj),
                u64::from(!pos),
                u64::from(!pos && proj),
            ]
        })
        .reduce_by_key(|a, b| [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]])
        .collect_map();

    // Student marginals per winter: (exam, survey).
    let student_counts = Dataset::from_vec(student_records(), 4)
        .key_by(|s| s.winter)
        .map_values(|s| [u64::from(s.exam), u64::from(s.survey)])
        .reduce_by_key(|a, b| [a[0] + b[0], a[1] + b[1]])
        .collect_map();

    let mut winters: Vec<u16> = item_counts.keys().copied().collect();
    winters.sort_unstable_by(|a, b| b.cmp(a));

    let rows: Vec<Table1Row> = winters
        .iter()
        .map(|&winter| {
            let items = item_counts[&winter];
            let students = student_counts[&winter];
            Table1Row {
                winter,
                exam: students[0],
                survey: students[1],
                pos_total: items[0],
                pos_proj: items[1],
                neg_total: items[2],
                neg_proj: items[3],
            }
        })
        .collect();

    println!("=== E4: Table 1 — survey aggregation, winters 2019/20 – 2022/23 ===\n");
    println!(
        "{:<10} {:>6} {:>8} {:>10} {:>7} {:>10} {:>7}",
        "Winter", "Exam", "Survey", "Pos.Total", "Proj.", "Neg.Total", "Proj."
    );
    for r in &rows {
        println!(
            "{:<10} {:>6} {:>8} {:>10} {:>7} {:>10} {:>7}",
            format!("{}/{}", r.winter, (r.winter + 1) % 100),
            r.exam,
            r.survey,
            r.pos_total,
            r.pos_proj,
            r.neg_total,
            r.neg_proj
        );
    }

    let expected = published_table();
    let ok = rows == expected;
    println!("\nmatches the published Table 1? {ok}");
    assert!(ok, "regenerated table diverges from the paper");
}
