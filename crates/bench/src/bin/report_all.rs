//! Regenerate every EXPERIMENTS.md number in one run — the compact
//! paper-vs-measured record, printed as a table with pass/fail marks.
//!
//! ```sh
//! cargo run --release -p peachy-bench --bin report_all
//! ```
//!
//! (Figures are produced by the examples; this binary covers the
//! quantitative claims. Scales are chosen so the whole run takes around a
//! minute in release mode.)

use std::sync::Arc;
use std::time::Instant;

use peachy::city::{arrests_per_100k, arrests_per_100k_broadcast, CityTables};
use peachy::dataflow::{OptimizerConfig, ShuffleStats};
use peachy::data::digits::{digit_dataset, render, render_blend, Style};
use peachy::data::geo::{CityConfig, SyntheticCity};
use peachy::data::iris::iris;
use peachy::data::split::train_test_split;
use peachy::data::synth::{gaussian_blobs, knn_paper_instance};
use peachy::ensemble::{block_assignment, Ensemble, NetConfig, TrainConfig};
use peachy::heat::{solve_coforall, solve_distributed, solve_forall, solve_serial, HeatProblem};
use peachy::kmeans::{self, GpuLaunch, GpuStrategy, KMeansConfig, Strategy};
use peachy::knn::{self, KnnMrConfig};
use peachy::traffic::{self, jam_fraction, AgentRoad, RoadConfig};
use peachy_bench::optimizer_scenarios as e18;
use peachy_bench::survey::published_table;

struct Report {
    rows: Vec<(String, String, bool)>,
}

impl Report {
    fn check(&mut self, id: &str, measured: String, ok: bool) {
        println!(
            "  [{}] {:<42} {}",
            if ok { "ok" } else { "!!" },
            id,
            measured
        );
        self.rows.push((id.to_string(), measured, ok));
    }
}

fn main() {
    let mut r = Report { rows: Vec::new() };
    let t0 = Instant::now();

    println!("E1 — §2 k-NN (paper instance, 40-d, 5 000 × 5 000):");
    {
        let (db, queries) = knn_paper_instance(1);
        let t = Instant::now();
        let seq = knn::classify_batch_seq(&db, &queries, 15);
        let elapsed = t.elapsed();
        let acc = knn::metrics::accuracy(&seq, &queries.labels);
        r.check(
            "sequential time (paper ≈5 s in C++)",
            format!("{elapsed:.2?}"),
            elapsed.as_secs_f64() < 30.0,
        );
        r.check("accuracy", format!("{acc:.3}"), acc > 0.95);
        let small_db = db.select(&(0..1000).collect::<Vec<_>>());
        let small_q = queries.select(&(0..500).collect::<Vec<_>>());
        let naive = knn::knn_mapreduce(
            &small_db,
            &small_q,
            KnnMrConfig {
                k: 15,
                ranks: 4,
                map_blocks: 16,
                combine: false,
            },
        );
        let comb = knn::knn_mapreduce(
            &small_db,
            &small_q,
            KnnMrConfig {
                k: 15,
                ranks: 4,
                map_blocks: 16,
                combine: true,
            },
        );
        r.check(
            "combiner shuffle reduction",
            format!("{} → {} pairs", naive.shuffled_pairs, comb.shuffled_pairs),
            comb.shuffled_pairs * 4 < naive.shuffled_pairs && naive.predictions == comb.predictions,
        );
    }

    println!("E3 — §3 k-means strategy equivalence (n = 50 000, K = 16):");
    {
        let data = gaussian_blobs(50_000, 4, 16, 1.0, 13);
        let init = kmeans::kmeans_plus_plus(&data.points, 16, 17);
        let cfg = KMeansConfig {
            max_iters: 10,
            min_changes: 0,
            min_shift: 0.0,
        };
        let seq = kmeans::fit_seq(&data.points, &cfg, init.clone());
        let all_agree = [Strategy::Critical, Strategy::Atomic, Strategy::Reduction]
            .into_iter()
            .all(|s| {
                kmeans::fit(&data.points, &cfg, init.clone(), s).assignments == seq.assignments
            })
            && kmeans::fit_distributed(&data.points, &cfg, init.clone(), 4).assignments
                == seq.assignments
            && kmeans::fit_buffers(&data.points, &cfg, init.clone()).assignments == seq.assignments
            && kmeans::fit_gpu(
                &data.points,
                &cfg,
                init.clone(),
                GpuStrategy::BlockReduction,
                GpuLaunch::default(),
            )
            .assignments
                == seq.assignments;
        r.check("7 implementations agree", format!("{all_agree}"), all_agree);
    }

    println!("E4 — §4 Table 1 (survey aggregation):");
    {
        // The report_table1 binary prints the full table; here just verify.
        let ok = !published_table().is_empty();
        r.check(
            "published table encoded & regenerable",
            "see report_table1".into(),
            ok,
        );
    }

    println!("E5 — §4 Figure 2 pipeline (8×8 NTAs, 200 000 arrests):");
    {
        let config = CityConfig {
            arrests: 200_000,
            ..CityConfig::default()
        };
        let city = SyntheticCity::generate(config, 2023);
        let tables = CityTables::from_city(&city, config.current_year);
        let (rows, stats) = arrests_per_100k(&tables, 8);
        let truth_ok = city.ntas.iter().enumerate().all(|(i, nta)| {
            rows.iter()
                .find(|r| r.code == nta.code)
                .map(|r| r.arrests)
                .unwrap_or(0)
                == city.truth_current_counts[i]
        });
        r.check(
            "per-NTA counts equal ground truth",
            format!("{} NTAs", rows.len()),
            truth_ok,
        );
        let (rows_b, stats_b) = arrests_per_100k_broadcast(&tables, 8);
        r.check(
            "broadcast plan: same answer, ≤ shuffle records",
            format!("{} vs {} records", stats_b.records(), stats.records()),
            rows_b == rows && stats_b.records() <= stats.records(),
        );
    }

    println!("E6 — §5 Figure 3 (200 cars, L = 1000, p = 0.13, v_max = 5):");
    {
        let fig3 = RoadConfig::figure3(11);
        let jam = jam_fraction(&fig3, 300, 200);
        let quiet = jam_fraction(&RoadConfig { p: 0.0, ..fig3 }, 300, 200);
        r.check(
            "jam fraction with p = 0.13",
            format!("{jam:.3}"),
            jam > 0.01,
        );
        r.check(
            "jam fraction with p = 0 (no jams)",
            format!("{quiet:.3}"),
            quiet == 0.0,
        );
    }

    println!("E7 — §5 reproducibility (L = 10 000, 2 000 cars, 200 steps):");
    {
        let big = RoadConfig {
            length: 10_000,
            cars: 2_000,
            v_max: 5,
            p: 0.2,
            seed: 7,
        };
        let mut serial = AgentRoad::new(&big);
        serial.run_serial(0, 200);
        let identical = [1usize, 2, 4, 8].into_iter().all(|chunks| {
            let mut par = AgentRoad::new(&big);
            par.run_parallel(0, 200, chunks);
            par == serial
        });
        r.check(
            "parallel ≡ serial for chunks {1,2,4,8}",
            format!("{identical}"),
            identical,
        );
        let dist = traffic::run_distributed(&big, 200, 5);
        r.check(
            "distributed ≡ serial (5 ranks)",
            format!("{}", dist.positions() == serial.positions()),
            dist.positions() == serial.positions(),
        );
        let gpu = traffic::gpu::run_gpu(&big, 200, 4, 64);
        r.check(
            "GPU ≡ serial (4×64 launch)",
            format!("{}", gpu.positions() == serial.positions()),
            gpu.positions() == serial.positions(),
        );
    }

    println!("E8 — §6 heat equation (n = 4 097, nt = 500):");
    {
        let p = HeatProblem::validation(4_097, 500);
        let serial = solve_serial(&p);
        let exact = p.exact_sine_solution().expect("validation problem");
        let max_err = serial
            .iter()
            .zip(&exact)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        r.check(
            "max error vs exact eigenmode",
            format!("{max_err:.2e}"),
            max_err < 1e-10,
        );
        let agree = solve_forall(&p, 8) == serial
            && solve_coforall(&p, 8) == serial
            && solve_distributed(&p, 8) == serial;
        r.check(
            "forall/coforall/distributed ≡ serial",
            format!("{agree}"),
            agree,
        );
    }

    println!("E9 — §7 Figure 4 (ensemble uncertainty):");
    {
        let train = digit_dataset(1_200, 0.05, 71);
        let ens = Ensemble::train(
            &NetConfig {
                layers: vec![peachy::data::digits::PIXELS, 24, 10],
            },
            &TrainConfig {
                epochs: 3,
                batch: 16,
                lr: 0.08,
                momentum: 0.9,
                seed: 72,
            },
            4,
            &train,
        );
        let clean = ens.predict_with_uncertainty(&render(4, &Style::clean()));
        let amb = ens.predict_with_uncertainty(&render_blend(4, 9, 0.5, &Style::clean()));
        r.check(
            "clean '4': predicted 4, entropy",
            format!("pred {} H {:.3}", clean.predicted, clean.predictive_entropy),
            clean.predicted == 4 && clean.confidence > 0.9,
        );
        r.check(
            "4/9 blend: entropy ≫ clean",
            format!(
                "H {:.3} vs {:.3}",
                amb.predictive_entropy, clean.predictive_entropy
            ),
            amb.predictive_entropy > 2.0 * clean.predictive_entropy + 0.05,
        );
    }

    println!("E10 — §7 task distribution (M = 10):");
    {
        let loads = |ranks: usize| -> Vec<usize> {
            (0..ranks)
                .map(|rk| block_assignment(10, ranks, rk).len())
                .collect()
        };
        let ok = loads(3) == vec![4, 3, 3]
            && loads(4) == vec![3, 3, 2, 2]
            && loads(6) == vec![2, 2, 2, 2, 1, 1];
        r.check(
            "block loads for R ∈ {3,4,6}",
            format!("{:?} …", loads(3)),
            ok,
        );
    }

    println!("E11 — §2 KD-tree adaptation (iris + equality):");
    {
        let ds = iris();
        let tt = train_test_split(&ds, 0.7, 2023);
        let tree = knn::KdTree::build(&tt.train);
        let pred: Vec<u32> = (0..tt.test.len())
            .map(|q| tree.classify(tt.test.points.row(q), 9))
            .collect();
        let acc = knn::metrics::accuracy(&pred, &tt.test.labels);
        r.check(
            "iris 9-NN held-out accuracy",
            format!("{acc:.3}"),
            acc > 0.9,
        );
    }

    println!("E18 — plan optimizer ablation (naive vs optimized, median of 5):");
    let mut bench_rows: Vec<(String, e18::Measured)> = Vec::new();
    {
        let text = e18::corpus(200_000, e18::E18_SEED);
        let tables = e18::city_tables(100_000);
        let iters = 5;
        let mut run_pair =
            |name: &str, f: &dyn Fn(OptimizerConfig) -> (usize, Arc<ShuffleStats>)| {
                let naive = e18::measure(iters, || f(OptimizerConfig::naive()));
                let optimized = e18::measure(iters, || f(OptimizerConfig::default()));
                r.check(
                    &format!("{name}: fewer bytes, same rows"),
                    format!(
                        "{} → {} bytes, {} → {} shuffles ({} elided), {:.1} → {:.1} ms",
                        naive.bytes,
                        optimized.bytes,
                        naive.shuffles,
                        optimized.shuffles,
                        optimized.elided,
                        naive.median_ns as f64 / 1e6,
                        optimized.median_ns as f64 / 1e6,
                    ),
                    optimized.bytes < naive.bytes
                        && optimized.elided > 0
                        && optimized.rows == naive.rows,
                );
                bench_rows.push((format!("{name}.naive"), naive));
                bench_rows.push((format!("{name}.optimized"), optimized));
            };
        run_pair("wordcount", &|cfg| {
            let (rows, stats) = e18::wordcount(&text, 8, cfg);
            (rows.len(), stats)
        });
        run_pair("city_hotspot", &|cfg| e18::city_hotspot(&tables, 8, cfg));
        run_pair("chained_agg", &|cfg| {
            e18::chained_aggregation(500_000, 8, cfg)
        });
    }

    println!("E20 — out-of-core ablation (resident vs byte-budgeted spill, median of 5):");
    {
        let text = e18::corpus(200_000, e18::E18_SEED);
        let iters = 5;
        let mut run_pair = |name: &str,
                            budget: u64,
                            f: &dyn Fn(OptimizerConfig) -> (usize, Arc<ShuffleStats>)| {
            let resident = e18::measure(iters, || f(OptimizerConfig::default()));
            let spilled = e18::measure(iters, || f(e18::spill_cfg(budget)));
            r.check(
                &format!("{name} @ {budget} B: spills, same answer"),
                format!(
                    "{} part(s) / {} B spilled, {} B re-read, {:.1} → {:.1} ms",
                    spilled.spills,
                    spilled.spill_bytes,
                    spilled.unspill_bytes,
                    resident.median_ns as f64 / 1e6,
                    spilled.median_ns as f64 / 1e6,
                ),
                resident.spills == 0
                    && spilled.spills > 0
                    && spilled.spill_bytes > 0
                    && spilled.rows == resident.rows
                    && spilled.records == resident.records
                    && spilled.bytes == resident.bytes
                    && spilled.shuffles == resident.shuffles
                    && spilled.elided == resident.elided,
            );
            bench_rows.push((format!("{name}_spill.resident"), resident));
            bench_rows.push((format!("{name}_spill.spilled"), spilled));
        };
        run_pair("wordcount", 1024, &|cfg| {
            let (rows, stats) = e18::wordcount(&text, 8, cfg);
            (rows.len(), stats)
        });
        run_pair("chained_agg", 256 * 1024, &|cfg| {
            e18::chained_aggregation(500_000, 8, cfg)
        });
    }

    println!("E21 — declarative scenario layer (committed city spec, median of 5):");
    {
        use peachy::spec::{RunOptions, Runner};
        let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/city_rates.peachy");
        // The golden line is dropped: its path is relative to the spec
        // file, and the in-memory variants below re-parse from text.
        let text: String = std::fs::read_to_string(spec_path)
            .expect("committed spec")
            .lines()
            .filter(|l| !l.trim_start().starts_with("golden"))
            .map(|l| format!("{l}\n"))
            .collect();
        let iters = 5;
        let run_variant = |extra: &str| -> e18::Measured {
            let text = text.replace("[run]\n", &format!("[run]\n{extra}"));
            let mut times = Vec::with_capacity(iters);
            let mut last = None;
            for _ in 0..iters {
                let runner = Runner::from_str(&text).expect("committed spec parses");
                let t = Instant::now();
                let report = runner.run(&RunOptions::default()).expect("committed spec runs");
                times.push(t.elapsed().as_nanos() as u64);
                last = Some(report);
            }
            times.sort_unstable();
            let report = last.expect("at least one run");
            let c = report.counters.clone();
            e18::Measured {
                median_ns: times[times.len() / 2],
                rows: report.rows.len() as u64,
                records: c.records,
                bytes: c.bytes,
                shuffles: c.shuffles,
                elided: c.shuffles_elided,
                spills: c.spills,
                spill_bytes: c.spill_bytes,
                unspill_bytes: c.unspill_bytes,
                peak_resident_bytes: c.peak_resident_bytes,
            }
        };
        let naive = run_variant("optimizer = naive\n");
        let optimized = run_variant("");

        let config = CityConfig {
            grid_w: 4,
            grid_h: 4,
            arrests: 8_000,
            ..CityConfig::default()
        };
        let city = SyntheticCity::generate(config, 99);
        let tables = CityTables::from_city(&city, config.current_year);
        let (twin_rows, twin_stats) = arrests_per_100k(&tables, 4);
        r.check(
            "spec city ≡ Rust twin (rows + shuffle family)",
            format!(
                "{} rows, {} records, {} shuffles ({} elided)",
                optimized.rows, optimized.records, optimized.shuffles, optimized.elided
            ),
            optimized.rows == twin_rows.len() as u64
                && optimized.records == twin_stats.records()
                && optimized.shuffles == twin_stats.shuffles()
                && optimized.elided == twin_stats.shuffles_elided()
                && optimized.spills == twin_stats.spills(),
        );
        r.check(
            "spec naive vs optimized: same rows, no extra traffic",
            format!(
                "{} → {} shuffles, {} → {} bytes, {:.1} → {:.1} ms",
                naive.shuffles,
                optimized.shuffles,
                naive.bytes,
                optimized.bytes,
                naive.median_ns as f64 / 1e6,
                optimized.median_ns as f64 / 1e6,
            ),
            naive.rows == optimized.rows
                && optimized.shuffles <= naive.shuffles
                && optimized.bytes <= naive.bytes,
        );
        bench_rows.push(("spec_city.naive".to_string(), naive));
        bench_rows.push(("spec_city.optimized".to_string(), optimized));
    }

    println!("E22 — streaming ablation (cursor vs rebuild-on-access, median of 5):");
    {
        // A fully skewed group-by: the single shuffle bucket dwarfs every
        // source partition, so the rebuild strawman's peak is the whole
        // bucket while the streaming cursor's stays at the posted groups.
        let iters = 5;
        let n = 16_000;
        let resident = e18::measure(iters, || e18::skewed_group(n, 8, OptimizerConfig::default()));
        r.check(
            "skewed group @ ∞: resident reference",
            format!(
                "{} rows, peak {} B, {:.1} ms",
                resident.rows,
                resident.peak_resident_bytes,
                resident.median_ns as f64 / 1e6,
            ),
            resident.spills == 0 && resident.rows == n as u64 && resident.peak_resident_bytes > 0,
        );
        bench_rows.push(("skewed_group_stream.resident".to_string(), resident));
        for budget in [64 * 1024u64, 1024] {
            let streamed = e18::measure(iters, || e18::skewed_group(n, 8, e18::spill_cfg(budget)));
            let rebuilt = e18::measure(iters, || e18::skewed_group(n, 8, e18::rebuild_cfg(budget)));
            r.check(
                &format!("skewed group @ {budget} B: streaming peak strictly lower"),
                format!(
                    "peak {} B streamed vs {} B rebuilt, {:.1} → {:.1} ms",
                    streamed.peak_resident_bytes,
                    rebuilt.peak_resident_bytes,
                    rebuilt.median_ns as f64 / 1e6,
                    streamed.median_ns as f64 / 1e6,
                ),
                streamed.spills > 0
                    && rebuilt.spills > 0
                    && streamed.rows == resident.rows
                    && rebuilt.rows == resident.rows
                    && streamed.records == rebuilt.records
                    && streamed.bytes == rebuilt.bytes
                    && streamed.peak_resident_bytes < rebuilt.peak_resident_bytes,
            );
            let kib = budget / 1024;
            bench_rows.push((format!("skewed_group_stream.streamed_{kib}k"), streamed));
            bench_rows.push((format!("skewed_group_stream.rebuilt_{kib}k"), rebuilt));
        }
    }

    // `--emit-bench PATH`: snapshot the E18/E20/E21/E22 numbers as flat
    // JSON for the committed baseline / regression gate (`bench_gate`).
    let mut args = std::env::args();
    if let Some(path) = args
        .by_ref()
        .find(|a| a == "--emit-bench")
        .and_then(|_| args.next())
    {
        let mut json = String::from("{\n  \"schema\": \"peachy-bench-9\",\n");
        json.push_str(&format!("  \"seed\": {},\n", e18::E18_SEED));
        for (i, (name, m)) in bench_rows.iter().enumerate() {
            let tail = if i + 1 == bench_rows.len() { "" } else { "," };
            json.push_str(&format!(
                "  \"{name}.median_ns\": {},\n  \"{name}.rows\": {},\n  \"{name}.records\": {},\n  \"{name}.bytes\": {},\n  \"{name}.shuffles\": {},\n  \"{name}.elided\": {},\n  \"{name}.spills\": {},\n  \"{name}.spill_bytes\": {},\n  \"{name}.unspill_bytes\": {},\n  \"{name}.peak_resident_bytes\": {}{tail}\n",
                m.median_ns, m.rows, m.records, m.bytes, m.shuffles, m.elided,
                m.spills, m.spill_bytes, m.unspill_bytes, m.peak_resident_bytes,
            ));
        }
        json.push_str("}\n");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\nwrote E18/E20/E21/E22 bench snapshot to {path}");
    }

    let failures = r.rows.iter().filter(|(_, _, ok)| !ok).count();
    println!(
        "\n{} checks, {} failed, total time {:.1?}",
        r.rows.len(),
        failures,
        t0.elapsed()
    );
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
