//! Regression gate over two bench snapshots (the committed baseline and a
//! freshly emitted one):
//!
//! ```sh
//! cargo run --release -p peachy-bench --bin report_all -- --emit-bench fresh.json
//! cargo run --release -p peachy-bench --bin bench_gate -- fresh.json
//! ```
//!
//! With one argument the baseline is auto-discovered: the `BENCH_<N>.json`
//! with the highest `N` in the current directory, so cutting a new
//! baseline (`BENCH_8.json`, …) never requires touching CI. An explicit
//! two-argument form (`bench_gate BENCH_6.json fresh.json`) pins one.
//!
//! Two kinds of checks:
//!
//! * **Comm counters** (`rows`, `records`, `bytes`, `shuffles`, `elided`,
//!   and the input `seed`) must match the baseline **exactly** — the E18
//!   inputs are seeded and partition counts fixed, so any drift means the
//!   optimizer's routing or elision behaviour changed.
//! * **Peak residency** (`peak_resident_bytes`, the E22 streaming
//!   high-water mark) is a ceiling, not an identity: the current value
//!   may come in *under* the baseline (a streaming improvement) but never
//!   above it (a regression back toward rebuild-on-access).
//! * **Wall time** is machine-dependent, so the gate compares the
//!   *speedup* (naive ÷ optimized median) per scenario, not absolute
//!   nanoseconds: the current speedup may not fall below the baseline
//!   speedup by more than `BENCH_GATE_TIME_FACTOR` (default 2.0).
//!
//! The snapshot format is deliberately flat (one `"key": value` line per
//! metric) so this binary needs no JSON dependency.

use std::collections::BTreeMap;
use std::process::exit;

fn parse(path: &str) -> BTreeMap<String, u64> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("bench_gate: read {path}: {e}"));
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        // Non-numeric values (e.g. the schema tag) are not gated metrics.
        if let Ok(n) = value.trim().parse::<u64>() {
            map.insert(key.to_string(), n);
        }
    }
    map
}

/// The committed `BENCH_<N>.json` with the highest `N` in `dir`.
fn newest_baseline(dir: &str) -> Option<String> {
    let mut best: Option<(u64, String)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name().into_string().ok()?;
        let n: u64 = match name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse().ok())
        {
            Some(n) => n,
            None => continue,
        };
        if best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, name));
        }
    }
    best.map(|(_, name)| name)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (baseline_path, current_path) = match args.len() {
        2 => {
            let found = newest_baseline(".").unwrap_or_else(|| {
                eprintln!("bench_gate: no BENCH_<N>.json baseline in the current directory");
                exit(2);
            });
            println!("bench_gate: baseline {found}");
            (found, args[1].clone())
        }
        3 => (args[1].clone(), args[2].clone()),
        _ => {
            eprintln!("usage: bench_gate [<baseline.json>] <current.json>");
            exit(2);
        }
    };
    let baseline = parse(&baseline_path);
    let current = parse(&current_path);
    let factor: f64 = std::env::var("BENCH_GATE_TIME_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let mut failures = 0;

    for (key, base) in &baseline {
        if key.ends_with(".median_ns") {
            continue; // absolute times are compared as speedups below
        }
        match current.get(key) {
            // The high-water meter gates one-sidedly: lower is a
            // streaming win, higher is a residency regression.
            Some(cur) if key.ends_with(".peak_resident_bytes") && cur <= base => {}
            Some(cur) if key.ends_with(".peak_resident_bytes") => {
                eprintln!("[!!] {key}: peak regressed above baseline ({base} → {cur})");
                failures += 1;
            }
            Some(cur) if cur == base => {}
            Some(cur) => {
                eprintln!("[!!] {key}: baseline {base}, current {cur}");
                failures += 1;
            }
            None => {
                eprintln!("[!!] {key}: missing from current snapshot");
                failures += 1;
            }
        }
    }

    let speedup = |map: &BTreeMap<String, u64>, scenario: &str| -> Option<f64> {
        let naive = *map.get(&format!("{scenario}.naive.median_ns"))? as f64;
        let optimized = *map.get(&format!("{scenario}.optimized.median_ns"))? as f64;
        (optimized > 0.0).then(|| naive / optimized)
    };
    let scenarios: Vec<String> = baseline
        .keys()
        .filter_map(|k| k.strip_suffix(".naive.median_ns"))
        .map(str::to_string)
        .collect();
    for scenario in &scenarios {
        let (Some(base), Some(cur)) = (speedup(&baseline, scenario), speedup(&current, scenario))
        else {
            eprintln!("[!!] {scenario}: median_ns metrics incomplete");
            failures += 1;
            continue;
        };
        let ok = cur * factor >= base;
        println!(
            "[{}] {scenario}: speedup {base:.2}x baseline, {cur:.2}x current (allowed drift {factor}x)",
            if ok { "ok" } else { "!!" },
        );
        if !ok {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("\nbench_gate: {failures} check(s) failed");
        exit(1);
    }
    println!(
        "\nbench_gate: counters match, speedups within {factor}x across {} scenario(s)",
        scenarios.len()
    );
}
