//! # peachy-bench
//!
//! The benchmark harness and report binaries that regenerate every table
//! and figure of *Peachy Parallel Assignments (EduHPC 2023)*. The mapping
//! from paper artifact to regenerator is indexed in `DESIGN.md`
//! (per-experiment index) and the measured outcomes are recorded in
//! `EXPERIMENTS.md`.
//!
//! * Criterion benches (`benches/`) cover the timing experiments:
//!   E1/E11 (`knn`), E3 (`kmeans`), E12/E18/E20 (`dataflow`), E6/E7
//!   (`traffic`), E8 (`heat`), E9/E10 (`ensemble`), E21 (`spec`), plus
//!   substrate ablations (`cluster`, `prng`).
//! * `optimizer_scenarios` builds the E18 naive-vs-optimized pipelines;
//!   `src/bin/report_all.rs --emit-bench PATH` snapshots the E18/E20/E21
//!   numbers as `BENCH_<N>.json` and `src/bin/bench_gate.rs` compares two
//!   snapshots (exact comm counters, bounded speedup drift).
//! * `src/bin/report_table1.rs` regenerates Table 1 from the raw survey
//!   records using the dataflow engine itself.
//! * The figure-producing "reports" are the workspace examples
//!   (`cargo run --release --example …`), one per figure — see DESIGN.md.

pub mod optimizer_scenarios;
pub mod survey;
