//! Substrate ablation: collective algorithms — binomial tree vs linear
//! broadcast/reduce, flat vs hierarchical (node-aware) reduction — the
//! "architectural knowledge" lesson of §2 made measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::cluster::{task_farm, Cluster, EdgeFault, FaultPlan, NodeMap, RetryPolicy};

fn bench_broadcast(c: &mut Criterion) {
    let payload: Vec<u64> = (0..1_000).collect();
    let mut group = c.benchmark_group("cluster_broadcast");
    group.sample_size(10);
    for ranks in [4usize, 8, 16] {
        let p = payload.clone();
        group.bench_with_input(BenchmarkId::new("tree", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let p = p.clone();
                Cluster::run(ranks, move |comm| {
                    let v = if comm.rank() == 0 {
                        p.clone()
                    } else {
                        Vec::new()
                    };
                    comm.broadcast(0, v).len()
                })
            })
        });
        let p = payload.clone();
        group.bench_with_input(BenchmarkId::new("linear", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let p = p.clone();
                Cluster::run(ranks, move |comm| {
                    let v = if comm.rank() == 0 {
                        p.clone()
                    } else {
                        Vec::new()
                    };
                    comm.broadcast_linear(0, v).len()
                })
            })
        });
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_reduce");
    group.sample_size(10);
    for ranks in [8usize, 16] {
        group.bench_with_input(BenchmarkId::new("tree", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Cluster::run(ranks, |comm| {
                    let v = vec![comm.rank() as u64; 1_000];
                    comm.reduce(0, v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect())
                        .map(|v| v[0])
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Cluster::run(ranks, |comm| {
                    let v = vec![comm.rank() as u64; 1_000];
                    comm.reduce_linear(0, v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect())
                        .map(|v| v[0])
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("hierarchical_4pn", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    Cluster::run(ranks, |comm| {
                        let v = vec![comm.rank() as u64; 1_000];
                        comm.hierarchical_reduce(NodeMap::block(4), 0, v, |a, b| {
                            a.iter().zip(&b).map(|(x, y)| x + y).collect()
                        })
                        .map(|v| v[0])
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_barrier_and_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sync");
    group.sample_size(10);
    for ranks in [4usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("barrier_x100", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    Cluster::run(ranks, |comm| {
                        for _ in 0..100 {
                            comm.barrier();
                        }
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("allreduce_x100", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    Cluster::run(ranks, |comm| {
                        let mut acc = comm.rank() as u64;
                        for _ in 0..100 {
                            acc = comm.allreduce(acc, |a, b| a.wrapping_add(b));
                        }
                        acc
                    })
                })
            },
        );
    }
    group.finish();
}

/// E14: what surviving a worker death costs the §7 task farm — fault-free
/// vs one killed worker vs benign (dup/reorder) chaos, same 64-task grid.
/// All three produce bit-identical result tables; only the overhead moves.
fn bench_farm_retry(c: &mut Criterion) {
    // Deterministic, CPU-bound task: a short LCG-iterate sum.
    fn farm_task(task: usize) -> u64 {
        let mut x = task as u64 + 1;
        let mut acc = 0u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            acc = acc.wrapping_add(x >> 33);
        }
        acc
    }

    const RANKS: usize = 4;
    const TASKS: usize = 64;
    let plans: [(&str, FaultPlan); 3] = [
        ("fault_free", FaultPlan::none()),
        // Worker 2 dies after its 4th transport send, mid-farm.
        ("kill_one_worker", FaultPlan::new(7).kill(2, 3)),
        (
            "benign_chaos",
            FaultPlan::new(7).all_edges(EdgeFault {
                drop_p: 0.0,
                dup_p: 0.2,
                reorder_p: 0.2,
                delay: std::time::Duration::ZERO,
            }),
        ),
    ];

    let mut group = c.benchmark_group("E14_farm_retry");
    group.sample_size(10);
    for (id, plan) in plans {
        group.bench_function(id, |b| {
            b.iter(|| {
                let mut results = Cluster::run_with_plan(RANKS, &plan, |comm| {
                    task_farm(comm, TASKS, &RetryPolicy::default(), farm_task)
                });
                results
                    .swap_remove(0)
                    .expect("manager survives every E14 plan")
                    .expect("manager reports the outcome")
                    .results
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_broadcast, bench_reduce, bench_barrier_and_allreduce, bench_farm_retry
);
criterion_main!(benches);
