//! Substrate ablation: collective algorithms — binomial tree vs linear
//! broadcast/reduce, flat vs hierarchical (node-aware) reduction — the
//! "architectural knowledge" lesson of §2 made measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::cluster::{Cluster, NodeMap};

fn bench_broadcast(c: &mut Criterion) {
    let payload: Vec<u64> = (0..1_000).collect();
    let mut group = c.benchmark_group("cluster_broadcast");
    group.sample_size(10);
    for ranks in [4usize, 8, 16] {
        let p = payload.clone();
        group.bench_with_input(BenchmarkId::new("tree", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let p = p.clone();
                Cluster::run(ranks, move |comm| {
                    let v = if comm.rank() == 0 {
                        p.clone()
                    } else {
                        Vec::new()
                    };
                    comm.broadcast(0, v).len()
                })
            })
        });
        let p = payload.clone();
        group.bench_with_input(BenchmarkId::new("linear", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                let p = p.clone();
                Cluster::run(ranks, move |comm| {
                    let v = if comm.rank() == 0 {
                        p.clone()
                    } else {
                        Vec::new()
                    };
                    comm.broadcast_linear(0, v).len()
                })
            })
        });
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_reduce");
    group.sample_size(10);
    for ranks in [8usize, 16] {
        group.bench_with_input(BenchmarkId::new("tree", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Cluster::run(ranks, |comm| {
                    let v = vec![comm.rank() as u64; 1_000];
                    comm.reduce(0, v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect())
                        .map(|v| v[0])
                })
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Cluster::run(ranks, |comm| {
                    let v = vec![comm.rank() as u64; 1_000];
                    comm.reduce_linear(0, v, |a, b| a.iter().zip(&b).map(|(x, y)| x + y).collect())
                        .map(|v| v[0])
                })
            })
        });
        group.bench_with_input(
            BenchmarkId::new("hierarchical_4pn", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    Cluster::run(ranks, |comm| {
                        let v = vec![comm.rank() as u64; 1_000];
                        comm.hierarchical_reduce(NodeMap::block(4), 0, v, |a, b| {
                            a.iter().zip(&b).map(|(x, y)| x + y).collect()
                        })
                        .map(|v| v[0])
                    })
                })
            },
        );
    }
    group.finish();
}

fn bench_barrier_and_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sync");
    group.sample_size(10);
    for ranks in [4usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("barrier_x100", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    Cluster::run(ranks, |comm| {
                        for _ in 0..100 {
                            comm.barrier();
                        }
                    })
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("allreduce_x100", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    Cluster::run(ranks, |comm| {
                        let mut acc = comm.rank() as u64;
                        for _ in 0..100 {
                            acc = comm.allreduce(acc, |a, b| a.wrapping_add(b));
                        }
                        acc
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_broadcast, bench_reduce, bench_barrier_and_allreduce
);
criterion_main!(benches);
