//! E12: dataflow-engine behaviour — narrow-op fusion, shuffle cost,
//! map-side combining (reduce_by_key vs group_by_key), joins, caching.
//! E18: the plan optimizer ablation — the same pipelines under
//! `OptimizerConfig::naive()` vs the default (fusion + shuffle elision +
//! auto-cache), on wordcount, the city hotspot analysis, and a chained
//! aggregation.
//! E20: the out-of-core ablation — the same pipelines fully resident vs
//! under a byte budget that forces partitions through disk spill.
//! E22: the streaming ablation — spilled partitions consumed through the
//! row cursor vs rebuilt whole on access (the strawman), on a fully
//! skewed group-by whose one bucket dwarfs every source partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::dataflow::{Dataset, KeyedDataset, OptimizerConfig};
use peachy::prng::{Lcg64, RandomStream};
use peachy_bench::optimizer_scenarios as e18;

fn rows(n: usize, keys: u64) -> Vec<(u64, u64)> {
    let mut rng = Lcg64::seed_from(1);
    (0..n)
        .map(|_| (rng.next_below(keys), rng.next_below(100)))
        .collect()
}

fn bench_narrow_chain(c: &mut Criterion) {
    let data: Vec<u64> = (0..1_000_000).collect();
    let mut group = c.benchmark_group("E12_narrow_fusion");
    group.sample_size(10);
    for partitions in [1usize, 4, 16] {
        let ds = Dataset::from_vec(data.clone(), partitions)
            .map(|x| x * 3)
            .filter(|x| x % 7 != 0)
            .map(|x| x + 1);
        group.bench_with_input(
            BenchmarkId::from_parameter(partitions),
            &partitions,
            |b, _| b.iter(|| ds.count()),
        );
    }
    group.finish();
}

fn bench_shuffle(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_shuffle");
    group.sample_size(10);
    // Few keys: reduce_by_key's map-side combining shines.
    let few = rows(500_000, 16);
    let ds = KeyedDataset::from_dataset(Dataset::from_vec(few, 8));
    group.bench_function("reduce_by_key_16keys", |b| {
        b.iter(|| ds.reduce_by_key(|a, b| a + b).count())
    });
    group.bench_function("group_by_key_16keys", |b| {
        b.iter(|| ds.group_by_key().count())
    });
    // Many keys: combining cannot help much.
    let many = rows(500_000, 400_000);
    let ds = KeyedDataset::from_dataset(Dataset::from_vec(many, 8));
    group.bench_function("reduce_by_key_400kkeys", |b| {
        b.iter(|| ds.reduce_by_key(|a, b| a + b).count())
    });
    group.finish();
}

fn bench_join(c: &mut Criterion) {
    let left = KeyedDataset::from_dataset(Dataset::from_vec(rows(200_000, 10_000), 8));
    let right = KeyedDataset::from_dataset(Dataset::from_vec(rows(10_000, 10_000), 8));
    let mut group = c.benchmark_group("E12_join");
    group.sample_size(10);
    group.bench_function("inner_join", |b| b.iter(|| left.join(&right).count()));
    group.bench_function("left_join", |b| b.iter(|| left.left_join(&right).count()));
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let base = Dataset::from_vec((0..300_000u64).collect::<Vec<_>>(), 8).map(|x| {
        // Deliberately non-trivial per-row work.
        let mut acc = x;
        for _ in 0..10 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        acc
    });
    let cached = base.cache();
    cached.count(); // warm
    let mut group = c.benchmark_group("E12_cache");
    group.sample_size(10);
    group.bench_function("uncached_recompute", |b| b.iter(|| base.count()));
    group.bench_function("cached", |b| b.iter(|| cached.count()));
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let text = e18::corpus(200_000, e18::E18_SEED);
    let tables = e18::city_tables(100_000);
    let mut group = c.benchmark_group("E18_optimizer");
    group.sample_size(10);
    for (label, cfg) in [
        ("naive", OptimizerConfig::naive()),
        ("optimized", OptimizerConfig::default()),
    ] {
        group.bench_function(format!("wordcount_{label}"), |b| {
            b.iter(|| e18::wordcount(&text, 8, cfg).0.len())
        });
        group.bench_function(format!("city_hotspot_{label}"), |b| {
            b.iter(|| e18::city_hotspot(&tables, 8, cfg).0)
        });
        group.bench_function(format!("chained_agg_{label}"), |b| {
            b.iter(|| e18::chained_aggregation(500_000, 8, cfg).0)
        });
    }
    group.finish();
}

fn bench_spill(c: &mut Criterion) {
    let text = e18::corpus(200_000, e18::E18_SEED);
    let mut group = c.benchmark_group("E20_spill");
    group.sample_size(10);
    for (label, wordcount_cfg, agg_cfg) in [
        ("resident", OptimizerConfig::default(), OptimizerConfig::default()),
        ("spilled", e18::spill_cfg(1024), e18::spill_cfg(256 * 1024)),
    ] {
        group.bench_function(format!("wordcount_{label}"), |b| {
            b.iter(|| e18::wordcount(&text, 8, wordcount_cfg).0.len())
        });
        group.bench_function(format!("chained_agg_{label}"), |b| {
            b.iter(|| e18::chained_aggregation(500_000, 8, agg_cfg).0)
        });
    }
    group.finish();
}

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("E22_stream");
    group.sample_size(10);
    for budget in [64 * 1024u64, 1024] {
        group.bench_function(format!("skewed_group_stream_{budget}B"), |b| {
            b.iter(|| e18::skewed_group(16_000, 8, e18::spill_cfg(budget)).0)
        });
        group.bench_function(format!("skewed_group_rebuild_{budget}B"), |b| {
            b.iter(|| e18::skewed_group(16_000, 8, e18::rebuild_cfg(budget)).0)
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_narrow_chain, bench_shuffle, bench_join, bench_cache, bench_optimizer,
        bench_spill, bench_stream
);
criterion_main!(benches);
