//! E6/E7: Nagel–Schreckenberg stepping cost — serial vs reproducible
//! parallel (fast-forward) vs per-thread substreams, grid vs agent
//! representation, and the fast-forward cost itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::prng::{FastForward, Lcg64, RandomStream, XorShift64Star};
use peachy::traffic::{grid::GridRoad, AgentRoad, RoadConfig};

const BIG: RoadConfig = RoadConfig {
    length: 100_000,
    cars: 20_000,
    v_max: 5,
    p: 0.2,
    seed: 3,
};

fn bench_stepping(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_step_cost");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| {
            let mut road = AgentRoad::new(&BIG);
            road.run_serial(0, 20);
            road.total_velocity()
        })
    });
    for chunks in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel_fastforward", chunks),
            &chunks,
            |b, &chunks| {
                b.iter(|| {
                    let mut road = AgentRoad::new(&BIG);
                    road.run_parallel(0, 20, chunks);
                    road.total_velocity()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel_substreams", chunks),
            &chunks,
            |b, &chunks| {
                b.iter(|| {
                    let mut road = AgentRoad::new(&BIG);
                    for step in 0..20 {
                        road.step_parallel_substreams(step, chunks);
                    }
                    road.total_velocity()
                })
            },
        );
    }
    group.finish();
}

fn bench_representations(c: &mut Criterion) {
    let config = RoadConfig {
        length: 20_000,
        cars: 4_000,
        v_max: 5,
        p: 0.13,
        seed: 5,
    };
    let mut group = c.benchmark_group("E6_representation");
    group.sample_size(10);
    group.bench_function("agent_based", |b| {
        b.iter(|| {
            let mut road = AgentRoad::new(&config);
            road.run_serial(0, 50);
            road.total_velocity()
        })
    });
    group.bench_function("grid_based", |b| {
        b.iter(|| {
            let mut road = GridRoad::new(&config);
            road.run_serial(0, 50);
            road.velocities().iter().map(|&v| v as u64).sum::<u64>()
        })
    });
    group.finish();
}

/// The enabling primitive: O(log n) jump vs replaying the stream — why the
/// LCG (and not, say, xorshift) is the right generator for this design.
fn bench_fast_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_fast_forward");
    for n in [1_000u64, 1_000_000, 1_000_000_000] {
        group.bench_with_input(BenchmarkId::new("lcg_jump", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Lcg64::seed_from(1);
                rng.jump(n);
                rng.next_u64()
            })
        });
        // Replaying is the only option for a non-jumpable generator; cap
        // the replayed distance to keep the bench finite.
        if n <= 1_000_000 {
            group.bench_with_input(BenchmarkId::new("xorshift_replay", n), &n, |b, &n| {
                b.iter(|| {
                    let mut rng = XorShift64Star::seed_from(1);
                    rng.slow_jump(n);
                    rng.next_u64()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_stepping, bench_representations, bench_fast_forward
);
criterion_main!(benches);
