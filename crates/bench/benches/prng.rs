//! Substrate ablation: generator throughput and jump cost — the numbers
//! behind choosing a fast-forwardable LCG for the traffic assignment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::prng::{
    Bernoulli, FastForward, Lcg31, Lcg64, RandomStream, SplitMix64, XorShift64Star,
};

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("prng_throughput_1M_draws");
    group.sample_size(10);
    group.bench_function("lcg64", |b| {
        b.iter(|| {
            let mut rng = Lcg64::seed_from(1);
            (0..1_000_000).fold(0u64, |acc, _| acc ^ rng.next_u64())
        })
    });
    group.bench_function("lcg31_minstd", |b| {
        b.iter(|| {
            let mut rng = Lcg31::seed_from(1);
            (0..1_000_000).fold(0u64, |acc, _| acc ^ rng.next_u64())
        })
    });
    group.bench_function("splitmix64", |b| {
        b.iter(|| {
            let mut rng = SplitMix64::seed_from(1);
            (0..1_000_000).fold(0u64, |acc, _| acc ^ rng.next_u64())
        })
    });
    group.bench_function("xorshift64star", |b| {
        b.iter(|| {
            let mut rng = XorShift64Star::seed_from(1);
            (0..1_000_000).fold(0u64, |acc, _| acc ^ rng.next_u64())
        })
    });
    group.finish();
}

fn bench_jump(c: &mut Criterion) {
    let mut group = c.benchmark_group("prng_jump");
    for exp in [6u32, 12, 18] {
        let n = 10u64.pow(exp);
        group.bench_with_input(BenchmarkId::new("lcg64_jump_10^", exp), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Lcg64::seed_from(1);
                rng.jump(n);
                rng.next_u64()
            })
        });
        group.bench_with_input(BenchmarkId::new("lcg31_jump_10^", exp), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Lcg31::seed_from(1);
                rng.jump(n);
                rng.next_u64()
            })
        });
    }
    group.finish();
}

fn bench_bernoulli(c: &mut Criterion) {
    // The traffic model's inner-loop draw.
    let mut group = c.benchmark_group("prng_bernoulli_p013");
    group.sample_size(10);
    let d = Bernoulli::new(0.13);
    group.bench_function("1M_trials", |b| {
        b.iter(|| {
            let mut rng = Lcg64::seed_from(2);
            (0..1_000_000).filter(|_| d.sample(&mut rng)).count()
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_throughput, bench_jump, bench_bernoulli
);
criterion_main!(benches);
