//! E16 — serving-layer throughput: micro-batch coalescing vs executor
//! backend.
//!
//! Two sweeps over the same seeded open-loop k-NN trace:
//!
//! * `E16_serve_batch_size` — end-to-end trace time as `max_batch_size`
//!   grows (batching amortizes per-dispatch overhead until batches stop
//!   filling before `max_wait`);
//! * `E16_serve_backends` — the same workload on Seq / Rayon / Cluster
//!   executors, the serving-side companion to E15's fit-time ablation.
//!
//! Responses are bit-identical across every point in both sweeps (pinned
//! by the serve test suites); only the wall-clock differs.
//!
//! E19 — reshard ablation: the same scripted join/kill/revive/drain
//! story served with delta migration (move only the shards the ring
//! says moved) vs the full-rebuild strawman (rebroadcast every shard on
//! every epoch bump). Answers are identical; the strawman pays for it
//! in migrated bytes and wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::cluster::{Executor, FaultPlan, TickBackoff};
use peachy::data::matrix::Matrix;
use peachy::data::synth::gaussian_blobs;
use peachy::serve::{
    keyed_query_trace, query_trace, KnnService, ScaleEvent, ServeConfig, Server, ShardConfig,
    ShardedKnnService, ShardedServer,
};

const SEED: u64 = 42;
const TICKS: u64 = 40;
const RATE: f64 = 4.0;

fn run_trace(
    db: &peachy::data::matrix::LabeledDataset,
    pool: &Matrix,
    exec: Executor,
    max_batch_size: usize,
) -> u64 {
    let cfg = ServeConfig {
        capacity: 512,
        max_batch_size,
        max_wait: 3,
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(KnnService::new(db.clone(), 5), exec, cfg);
    let trace = query_trace(SEED, TICKS, RATE, pool);
    let responses = server.run_trace(trace);
    let report = server.shutdown();
    assert_eq!(report.stats.failed(), 0);
    responses.into_iter().filter(|r| r.is_ok()).count() as u64
}

fn bench_batch_size(c: &mut Criterion) {
    let db = gaussian_blobs(600, 8, 4, 2.0, SEED);
    let pool = gaussian_blobs(100, 8, 4, 2.0, SEED + 1);
    let mut group = c.benchmark_group("E16_serve_batch_size");
    group.sample_size(10);
    for max_batch in [1usize, 4, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("rayon4", max_batch),
            &max_batch,
            |b, &max_batch| b.iter(|| run_trace(&db, &pool.points, Executor::rayon(4), max_batch)),
        );
    }
    group.finish();
}

fn bench_backends(c: &mut Criterion) {
    let db = gaussian_blobs(600, 8, 4, 2.0, SEED);
    let pool = gaussian_blobs(100, 8, 4, 2.0, SEED + 1);
    let mut group = c.benchmark_group("E16_serve_backends");
    group.sample_size(10);
    for (label, exec) in [
        ("seq", Executor::seq()),
        ("rayon4", Executor::rayon(4)),
        ("cluster4", Executor::cluster(4)),
    ] {
        group.bench_function(BenchmarkId::new(label, 8), |b| {
            b.iter(|| run_trace(&db, &pool.points, exec.clone(), 8))
        });
    }
    group.finish();
}

fn run_elastic(
    db: &peachy::data::matrix::LabeledDataset,
    pool: &Matrix,
    exec: Executor,
    full_rebuild: bool,
) -> u64 {
    let cfg = ShardConfig {
        num_shards: 16,
        initial_ranks: 4,
        max_batch_size: 4,
        max_wait: 2,
        backoff: TickBackoff::linear(1, 3, SEED),
        plan: FaultPlan::new(SEED).kill(2, 2).revive(2, 3),
        scaling: vec![(6, ScaleEvent::Add(4)), (18, ScaleEvent::Drain(1))],
        full_rebuild,
        ..ShardConfig::default()
    };
    let mut server = ShardedServer::start(ShardedKnnService::new(db.clone(), 5), exec, cfg);
    let responses = server.run_trace(keyed_query_trace(SEED, 24, 3.0, pool));
    let report = server.shutdown();
    assert_eq!(report.stats.failed(), 0);
    assert!(report.stats.replayed() > 0, "the scripted kill must fire");
    responses.into_iter().filter(|r| r.is_ok()).count() as u64
}

fn bench_reshard_ablation(c: &mut Criterion) {
    let db = gaussian_blobs(600, 8, 4, 2.0, SEED);
    let pool = gaussian_blobs(100, 8, 4, 2.0, SEED + 1);
    let mut group = c.benchmark_group("E19_reshard_ablation");
    group.sample_size(10);
    for (label, exec) in [("seq", Executor::seq()), ("cluster4", Executor::cluster(4))] {
        for (mode, full_rebuild) in [("delta", false), ("full_rebuild", true)] {
            group.bench_function(BenchmarkId::new(format!("{label}_{mode}"), 16), |b| {
                b.iter(|| run_elastic(&db, &pool.points, exec.clone(), full_rebuild))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_size, bench_backends, bench_reshard_ablation);
criterion_main!(benches);
