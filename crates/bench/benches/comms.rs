//! E17: zero-copy collective payloads and sized shuffles.
//!
//! Two ablations behind this experiment: (1) the tree broadcast's
//! clone path deep-copies the payload once per child, so its cost grows
//! with payload size, while the `Shared` (`Arc`-payload) path moves one
//! refcount bump per edge and its per-child cost should be
//! payload-size-independent; (2) the shuffle's two-pass exact-capacity
//! bucketing vs the naive flat push-and-grow strategy it replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use peachy::cluster::dist::{owner_of_key, ROUTE_SEED};
use peachy::cluster::{Cluster, Shared};
use peachy::dataflow::{Dataset, KeyedDataset};
use peachy::prng::{Lcg64, RandomStream};

const RANKS: usize = 8;

fn bench_broadcast_payload(c: &mut Criterion) {
    let mut group = c.benchmark_group("E17_broadcast_payload");
    group.sample_size(10);
    for &len in &[1_000usize, 10_000, 100_000] {
        let payload: Vec<f64> = (0..len).map(|i| i as f64).collect();
        group.throughput(Throughput::Bytes((len * 8) as u64));
        let p = payload.clone();
        group.bench_with_input(BenchmarkId::new("clone_tree", len), &len, |b, _| {
            b.iter(|| {
                let p = p.clone();
                Cluster::run(RANKS, move |comm| {
                    let v = if comm.rank() == 0 {
                        p.clone()
                    } else {
                        Vec::new()
                    };
                    comm.broadcast(0, v).len()
                })
            })
        });
        let p = payload.clone();
        group.bench_with_input(BenchmarkId::new("shared_tree", len), &len, |b, _| {
            b.iter(|| {
                let p = p.clone();
                Cluster::run(RANKS, move |comm| {
                    let v = Shared::new(if comm.rank() == 0 {
                        p.clone()
                    } else {
                        Vec::new()
                    });
                    comm.broadcast_shared(0, v).len()
                })
            })
        });
        let p = payload.clone();
        group.bench_with_input(BenchmarkId::new("shared_linear", len), &len, |b, _| {
            b.iter(|| {
                let p = p.clone();
                Cluster::run(RANKS, move |comm| {
                    let v = Shared::new(if comm.rank() == 0 {
                        p.clone()
                    } else {
                        Vec::new()
                    });
                    comm.broadcast_linear_shared(0, v).len()
                })
            })
        });
    }
    group.finish();
}

fn rows(n: usize, keys: u64) -> Vec<(u64, u64)> {
    let mut rng = Lcg64::seed_from(17);
    (0..n)
        .map(|_| (rng.next_below(keys), rng.next_below(100)))
        .collect()
}

fn bench_shuffle_bucketing(c: &mut Criterion) {
    let mut group = c.benchmark_group("E17_shuffle_bucketing");
    group.sample_size(10);
    let n = 500_000;
    let data = rows(n, u64::MAX); // effectively all-distinct keys
    let partitions = 8usize;
    // The engine end-to-end (its map side is the two-pass sized path).
    group.bench_function("sized_engine_group_by_key", |b| {
        b.iter(|| {
            KeyedDataset::from_dataset(Dataset::from_vec(data.clone(), partitions))
                .group_by_key()
                .count()
        })
    });
    // The isolated map-side ablation: identical routing, different
    // bucket-allocation strategy.
    group.bench_function("flat_push_and_grow", |b| {
        b.iter(|| {
            let mut buckets: Vec<Vec<(u64, u64)>> =
                (0..partitions).map(|_| Vec::new()).collect();
            for &(k, v) in &data {
                buckets[owner_of_key(&k, partitions, ROUTE_SEED)].push((k, v));
            }
            buckets.iter().map(Vec::len).sum::<usize>()
        })
    });
    group.bench_function("sized_two_pass", |b| {
        b.iter(|| {
            let mut counts = vec![0usize; partitions];
            let routes: Vec<u32> = data
                .iter()
                .map(|(k, _)| {
                    let p = owner_of_key(k, partitions, ROUTE_SEED);
                    counts[p] += 1;
                    p as u32
                })
                .collect();
            let mut buckets: Vec<Vec<(u64, u64)>> =
                counts.iter().map(|&c| Vec::with_capacity(c)).collect();
            for (&row, p) in data.iter().zip(routes) {
                buckets[p as usize].push(row);
            }
            buckets.iter().map(Vec::len).sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_broadcast_payload, bench_shuffle_bucketing);
criterion_main!(benches);
