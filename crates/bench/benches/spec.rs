//! E21: the declarative scenario layer — what the `.peachy` indirection
//! costs. Parsing + validation alone, compile + run of the committed
//! city scenario, and the hand-written Rust twin of the same pipeline
//! for the overhead comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use peachy::city::{arrests_per_100k, CityTables};
use peachy::data::geo::{CityConfig, SyntheticCity};
use peachy::spec::{parse_scenario, RunOptions, Runner};

/// The committed city spec, golden line dropped (goldens resolve
/// relative to the spec file; the bench re-parses from text).
fn city_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/city_rates.peachy");
    std::fs::read_to_string(path)
        .expect("committed spec")
        .lines()
        .filter(|l| !l.trim_start().starts_with("golden"))
        .map(|l| format!("{l}\n"))
        .collect()
}

fn bench_spec_layer(c: &mut Criterion) {
    let text = city_text();
    let mut group = c.benchmark_group("E21_spec");
    group.sample_size(10);
    group.bench_function("parse_validate_city_spec", |b| {
        b.iter(|| parse_scenario(&text).expect("parses"))
    });
    group.bench_function("compile_run_city_spec", |b| {
        b.iter(|| {
            Runner::from_str(&text)
                .expect("parses")
                .run(&RunOptions::default())
                .expect("runs")
                .rows
                .len()
        })
    });
    let config = CityConfig {
        grid_w: 4,
        grid_h: 4,
        arrests: 8_000,
        ..CityConfig::default()
    };
    let city = SyntheticCity::generate(config, 99);
    let tables = CityTables::from_city(&city, config.current_year);
    group.bench_function("rust_twin_city_pipeline", |b| {
        b.iter(|| arrests_per_100k(&tables, 4).0.len())
    });
    group.finish();
}

criterion_group!(benches, bench_spec_layer);
criterion_main!(benches);
