//! E8: heat-equation solvers — per-step task-spawn overhead (forall) vs
//! persistent tasks (coforall), across the two regimes that decide the
//! winner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::heat::{solve_coforall, solve_forall, solve_serial, HeatProblem, InitialCondition};

fn problem(n: usize, nt: usize) -> HeatProblem {
    HeatProblem {
        n,
        alpha: 0.25,
        nt,
        left: 1.0,
        right: 0.0,
        ic: InitialCondition::Gaussian(0.05),
    }
}

/// Spawn-dominated: small array, many steps — coforall's territory.
fn bench_spawn_dominated(c: &mut Criterion) {
    let p = problem(1_000, 2_000);
    let mut group = c.benchmark_group("E8_spawn_dominated_n1k_nt2k");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| solve_serial(&p)[500]));
    for locales in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("forall", locales), &locales, |b, &l| {
            b.iter(|| solve_forall(&p, l)[500])
        });
        group.bench_with_input(BenchmarkId::new("coforall", locales), &locales, |b, &l| {
            b.iter(|| solve_coforall(&p, l)[500])
        });
    }
    group.finish();
}

/// Compute-dominated: large array, few steps — overhead becomes noise.
fn bench_compute_dominated(c: &mut Criterion) {
    let p = problem(2_000_000, 10);
    let mut group = c.benchmark_group("E8_compute_dominated_n2M_nt10");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| solve_serial(&p)[1_000_000]));
    for locales in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("forall", locales), &locales, |b, &l| {
            b.iter(|| solve_forall(&p, l)[1_000_000])
        });
        group.bench_with_input(BenchmarkId::new("coforall", locales), &locales, |b, &l| {
            b.iter(|| solve_coforall(&p, l)[1_000_000])
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_spawn_dominated, bench_compute_dominated
);
criterion_main!(benches);
