//! E1 + E11: k-NN timing — heap vs sort selection, rayon batch, MapReduce
//! rank sweep, and the KD-tree vs brute-force crossover over dimension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::data::synth::gaussian_blobs;
use peachy::knn::{
    brute::{nearest_heap, nearest_sort},
    classify_batch_par, classify_batch_seq, knn_mapreduce, KdTree, KnnMrConfig,
};

fn small_instance() -> (peachy::data::LabeledDataset, peachy::data::LabeledDataset) {
    // A scaled copy of the paper's instance (full 5k×5k runs live in the
    // example; benches iterate many times so they use n = q = 1 000).
    let all = gaussian_blobs(2_000, 40, 8, 3.0, 1);
    (
        all.select(&(0..1_000).collect::<Vec<_>>()),
        all.select(&(1_000..2_000).collect::<Vec<_>>()),
    )
}

/// E1: top-k selection strategy, per query — Θ(n log k) heap vs
/// Θ(n log n) sort.
fn bench_selection(c: &mut Criterion) {
    let (db, queries) = small_instance();
    let q = queries.points.row(0);
    let mut group = c.benchmark_group("E1_selection_per_query");
    for k in [1usize, 15, 100] {
        group.bench_with_input(BenchmarkId::new("heap", k), &k, |b, &k| {
            b.iter(|| nearest_heap(&db, q, k))
        });
        group.bench_with_input(BenchmarkId::new("sort", k), &k, |b, &k| {
            b.iter(|| nearest_sort(&db, q, k))
        });
    }
    group.finish();
}

/// E1: the full batch, sequential vs rayon vs MapReduce over ranks.
fn bench_batch(c: &mut Criterion) {
    let (db, queries) = small_instance();
    let k = 15;
    let mut group = c.benchmark_group("E1_batch");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| classify_batch_seq(&db, &queries, k))
    });
    group.bench_function("rayon", |b| b.iter(|| classify_batch_par(&db, &queries, k)));
    for ranks in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("mapreduce_ranks", ranks),
            &ranks,
            |b, &ranks| {
                b.iter(|| {
                    knn_mapreduce(
                        &db,
                        &queries,
                        KnnMrConfig {
                            k,
                            ranks,
                            map_blocks: ranks * 2,
                            combine: true,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

/// E11: KD-tree vs brute force across dimensionality — the tree wins at
/// low d and loses by d = 40 (curse of dimensionality).
fn bench_kdtree_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_kdtree_crossover");
    group.sample_size(10);
    for d in [2usize, 8, 40] {
        let all = gaussian_blobs(20_000 + 200, d, 8, 2.0, d as u64);
        let db = all.select(&(0..20_000).collect::<Vec<_>>());
        let queries = all.select(&(20_000..20_200).collect::<Vec<_>>());
        let tree = KdTree::build(&db);
        group.bench_with_input(BenchmarkId::new("kdtree", d), &d, |b, _| {
            b.iter(|| {
                (0..queries.len())
                    .map(|i| tree.nearest(queries.points.row(i), 9).len())
                    .sum::<usize>()
            })
        });
        group.bench_with_input(BenchmarkId::new("brute", d), &d, |b, _| {
            b.iter(|| {
                (0..queries.len())
                    .map(|i| nearest_heap(&db, queries.points.row(i), 9).len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

/// E11 (2-D): quad-tree vs KD-tree vs brute on planar data — the
/// assignment names quad-trees specifically.
fn bench_quadtree(c: &mut Criterion) {
    let all = gaussian_blobs(20_200, 2, 8, 2.0, 23);
    let db = all.select(&(0..20_000).collect::<Vec<_>>());
    let queries = all.select(&(20_000..20_200).collect::<Vec<_>>());
    let quad = peachy::knn::QuadTree::build(&db);
    let kd = KdTree::build(&db);
    let mut group = c.benchmark_group("E11_quadtree_2d");
    group.sample_size(10);
    group.bench_function("quadtree", |b| {
        b.iter(|| {
            (0..queries.len())
                .map(|i| quad.nearest(queries.points.row(i), 9).len())
                .sum::<usize>()
        })
    });
    group.bench_function("kdtree", |b| {
        b.iter(|| {
            (0..queries.len())
                .map(|i| kd.nearest(queries.points.row(i), 9).len())
                .sum::<usize>()
        })
    });
    group.bench_function("brute", |b| {
        b.iter(|| {
            (0..queries.len())
                .map(|i| nearest_heap(&db, queries.points.row(i), 9).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

/// E11 (build): parallel vs sequential KD-tree construction.
fn bench_kdtree_build(c: &mut Criterion) {
    let db = gaussian_blobs(50_000, 3, 8, 2.0, 7);
    let mut group = c.benchmark_group("E11_kdtree_build");
    group.sample_size(10);
    group.bench_function("sequential", |b| b.iter(|| KdTree::build(&db).depth()));
    group.bench_function("parallel", |b| b.iter(|| KdTree::build_par(&db).depth()));
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_selection, bench_batch, bench_kdtree_crossover, bench_quadtree, bench_kdtree_build
);
criterion_main!(benches);
