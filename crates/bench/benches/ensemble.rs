//! E9/E10: ensemble training cost over rank counts (the task-farm
//! experiment) and per-input uncertainty evaluation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::data::digits::{digit_dataset, render, Style};
use peachy::ensemble::{distribute_training, Ensemble, NetConfig, TrainConfig};

fn tc(seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: 1,
        batch: 16,
        lr: 0.08,
        momentum: 0.9,
        seed,
    }
}

/// E10: M = 10 models over R ranks (including the uneven cases 3, 4, 6).
fn bench_distributed_training(c: &mut Criterion) {
    let data = digit_dataset(300, 0.05, 1);
    let config = NetConfig::digits_default(16);
    let mut group = c.benchmark_group("E10_train_10_models_over_ranks");
    group.sample_size(10);
    for ranks in [1usize, 3, 4, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| distribute_training(&config, &tc(2), 10, ranks, &data).len())
        });
    }
    group.finish();
}

/// E9: ensemble size vs prediction/uncertainty cost (inference scales
/// linearly in M; training dominates overall, which is why HPO's "free"
/// ensemble matters).
fn bench_uncertainty_eval(c: &mut Criterion) {
    let data = digit_dataset(300, 0.05, 3);
    let probe = render(4, &Style::clean());
    let mut group = c.benchmark_group("E9_uncertainty_eval");
    for m in [1usize, 4, 8] {
        let ens = Ensemble::train(&NetConfig::digits_default(16), &tc(4), m, &data);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| ens.predict_with_uncertainty(&probe).predictive_entropy)
        });
    }
    group.finish();
}

/// Single-model training throughput (the unit of all scaling above).
fn bench_single_model(c: &mut Criterion) {
    let data = digit_dataset(300, 0.05, 5);
    let config = NetConfig::digits_default(16);
    let mut group = c.benchmark_group("E9_single_model_epoch");
    group.sample_size(10);
    group.bench_function("train_1_epoch_300_images", |b| {
        b.iter(|| {
            let mut net = peachy::ensemble::DenseNet::new(&config, 9);
            net.train(&data, &tc(9))
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_distributed_training, bench_uncertainty_eval, bench_single_model
);
criterion_main!(benches);
