//! GPU-model ablations: atomics vs shared-memory tree reduction (the §3
//! CUDA question "when are atomic operations or reductions more
//! profitable"), GPU k-means strategies, GPU k-NN, and host-upload vs
//! on-device RNG for the traffic kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::data::synth::gaussian_blobs;
use peachy::gpu::kernels::device_sum;
use peachy::kmeans::{fit_gpu, kmeans_plus_plus, GpuLaunch, GpuStrategy, KMeansConfig};
use peachy::knn::gpu::classify_batch_gpu;
use peachy::traffic::{gpu::run_gpu, gpu::run_gpu_onboard_rng, RoadConfig};

fn bench_reduction_styles(c: &mut Criterion) {
    let xs: Vec<f64> = (0..1_000_000).map(|i| (i % 101) as f64).collect();
    let mut group = c.benchmark_group("gpu_sum_1M");
    group.sample_size(10);
    for (grid, block) in [(8usize, 64usize), (16, 128)] {
        group.bench_with_input(
            BenchmarkId::new("atomic", format!("{grid}x{block}")),
            &(grid, block),
            |b, &(g, bl)| b.iter(|| device_sum(&xs, g, bl, false)),
        );
        group.bench_with_input(
            BenchmarkId::new("tree", format!("{grid}x{block}")),
            &(grid, block),
            |b, &(g, bl)| b.iter(|| device_sum(&xs, g, bl, true)),
        );
    }
    group.finish();
}

fn bench_gpu_kmeans(c: &mut Criterion) {
    let data = gaussian_blobs(20_000, 4, 8, 1.0, 7);
    let init = kmeans_plus_plus(&data.points, 8, 8);
    let cfg = KMeansConfig {
        max_iters: 5,
        min_changes: 0,
        min_shift: 0.0,
    };
    let mut group = c.benchmark_group("gpu_kmeans_5iters");
    group.sample_size(10);
    group.bench_function("atomic", |b| {
        b.iter(|| {
            fit_gpu(
                &data.points,
                &cfg,
                init.clone(),
                GpuStrategy::Atomic,
                GpuLaunch::default(),
            )
            .iterations
        })
    });
    group.bench_function("block_reduction", |b| {
        b.iter(|| {
            fit_gpu(
                &data.points,
                &cfg,
                init.clone(),
                GpuStrategy::BlockReduction,
                GpuLaunch::default(),
            )
            .iterations
        })
    });
    group.finish();
}

fn bench_gpu_knn(c: &mut Criterion) {
    let all = gaussian_blobs(5_200, 8, 4, 1.5, 9);
    let db = all.select(&(0..5_000).collect::<Vec<_>>());
    let q = all.select(&(5_000..5_200).collect::<Vec<_>>());
    let mut group = c.benchmark_group("gpu_knn_200_queries");
    group.sample_size(10);
    for block in [16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(block), &block, |b, &block| {
            b.iter(|| classify_batch_gpu(&db, &q, 9, block))
        });
    }
    group.finish();
}

fn bench_traffic_rng_source(c: &mut Criterion) {
    let config = RoadConfig {
        length: 20_000,
        cars: 4_000,
        v_max: 5,
        p: 0.2,
        seed: 3,
    };
    let mut group = c.benchmark_group("gpu_traffic_rng_source");
    group.sample_size(10);
    group.bench_function("host_uploaded_lcg", |b| {
        b.iter(|| run_gpu(&config, 20, 8, 64).total_velocity())
    });
    group.bench_function("onboard_philox", |b| {
        b.iter(|| run_gpu_onboard_rng(&config, 20, 8, 64).total_velocity())
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_reduction_styles, bench_gpu_kmeans, bench_gpu_knn, bench_traffic_rng_source
);
criterion_main!(benches);
