//! E13: the flat-vs-blocked kernel ablation — how much of the "as fast as
//! the hardware allows" budget the shared kernel layer recovers over the
//! naïve scalar loops, mirroring the flat-vs-tree collectives ablation.
//!
//! The headline comparison is the k-means assignment shape (n=50k, d=16,
//! k=64): scalar per-pair argmin vs the lane-blocked decomposed scan
//! (serial) vs the fused rayon batch argmin. The GEMM and k-NN scan
//! kernels get the same flat-vs-blocked treatment on their natural shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use peachy::data::kernels::{
    argmin_dist2, argmin_dist2_ref, dist2, dist2_scan, matmul_nt, matmul_nt_ref, pairwise_dist2,
    pairwise_dist2_ref, Candidates,
};
use peachy::data::synth::gaussian_blobs;

/// The acceptance-criterion shape: blocked+rayon argmin must beat the
/// scalar nearest-centroid loop by ≥2× here.
fn bench_argmin(c: &mut Criterion) {
    let x = gaussian_blobs(50_000, 16, 8, 1.0, 41).points;
    let cents = gaussian_blobs(64, 16, 8, 1.0, 42).points;
    let mut group = c.benchmark_group("E13_kernel_argmin");
    group.sample_size(10);
    group.bench_function("scalar_loop", |b| {
        b.iter(|| argmin_dist2_ref(&x, &cents).len())
    });
    group.bench_function("blocked_serial", |b| {
        // The decomposed lane-blocked scan without rayon: one Candidates
        // per call (hoisted norms), queried row by row.
        b.iter(|| {
            let cand = Candidates::new(&cents);
            (0..x.rows())
                .map(|i| cand.nearest(x.row(i)) as u64)
                .sum::<u64>()
        })
    });
    group.bench_function("blocked_rayon", |b| {
        b.iter(|| argmin_dist2(&x, &cents).len())
    });
    group.finish();
}

fn bench_pairwise(c: &mut Criterion) {
    let x = gaussian_blobs(8_000, 16, 8, 1.0, 43).points;
    let cents = gaussian_blobs(64, 16, 8, 1.0, 44).points;
    let mut group = c.benchmark_group("E13_kernel_pairwise");
    group.sample_size(10);
    group.bench_function("flat", |b| b.iter(|| pairwise_dist2_ref(&x, &cents).rows()));
    group.bench_function("blocked_rayon", |b| {
        b.iter(|| pairwise_dist2(&x, &cents).rows())
    });
    group.finish();
}

/// The k-NN hot path: streaming distances for one query over a large
/// database, scalar pair loop vs the lane-blocked exact scan.
fn bench_scan(c: &mut Criterion) {
    let db = gaussian_blobs(200_000, 16, 8, 1.0, 45).points;
    let q = gaussian_blobs(1, 16, 8, 1.0, 46).points;
    let query: Vec<f64> = q.row(0).to_vec();
    let mut group = c.benchmark_group("E13_kernel_scan");
    group.sample_size(10);
    group.bench_function("scalar_loop", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..db.rows() {
                acc += dist2(db.row(i), &query);
            }
            acc
        })
    });
    group.bench_function("blocked_lanes", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            dist2_scan(&db, 0..db.rows(), &query, |_, d2| acc += d2);
            acc
        })
    });
    group.finish();
}

/// The NN batch forward shape: activations × weightsᵀ.
fn bench_matmul(c: &mut Criterion) {
    let a = gaussian_blobs(8_192, 64, 8, 1.0, 47).points;
    let w = gaussian_blobs(32, 64, 8, 1.0, 48).points;
    let bias = vec![0.1f64; 32];
    let mut group = c.benchmark_group("E13_kernel_matmul");
    group.sample_size(10);
    group.bench_function("flat", |b| {
        b.iter(|| matmul_nt_ref(&a, w.as_slice(), 32, Some(&bias)).rows())
    });
    group.bench_function("blocked_rayon", |b| {
        b.iter(|| matmul_nt(&a, w.as_slice(), 32, Some(&bias)).rows())
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_argmin, bench_pairwise, bench_scan, bench_matmul
);
criterion_main!(benches);
