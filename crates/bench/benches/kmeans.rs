//! E3: the k-means parallelization-strategy ladder and the distributed
//! version — the time-per-iteration cost of critical regions vs atomics vs
//! reductions, which is the ordering the assignment teaches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peachy::data::synth::gaussian_blobs;
use peachy::kmeans::{fit, fit_distributed, fit_seq, kmeans_plus_plus, KMeansConfig, Strategy};

fn bench_strategies(c: &mut Criterion) {
    let data = gaussian_blobs(50_000, 4, 32, 1.0, 13);
    let init = kmeans_plus_plus(&data.points, 32, 17);
    // Fixed 5 iterations: measure iteration cost, not convergence luck.
    let config = KMeansConfig {
        max_iters: 5,
        min_changes: 0,
        min_shift: 0.0,
    };
    let mut group = c.benchmark_group("E3_strategies");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| fit_seq(&data.points, &config, init.clone()).iterations)
    });
    for (name, strategy) in [
        ("critical", Strategy::Critical),
        ("atomic", Strategy::Atomic),
        ("reduction", Strategy::Reduction),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| fit(&data.points, &config, init.clone(), strategy).iterations)
        });
    }
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let data = gaussian_blobs(50_000, 4, 32, 1.0, 13);
    let init = kmeans_plus_plus(&data.points, 32, 17);
    let config = KMeansConfig {
        max_iters: 5,
        min_changes: 0,
        min_shift: 0.0,
    };
    let mut group = c.benchmark_group("E3_distributed_ranks");
    group.sample_size(10);
    for ranks in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| fit_distributed(&data.points, &config, init.clone(), ranks).iterations)
        });
    }
    group.finish();
}

/// Ablation: static layout vs the "dynamic buffers" locality layout —
/// the §3 design comparison ("better locality … but adds complexity").
fn bench_layout(c: &mut Criterion) {
    let data = gaussian_blobs(100_000, 8, 16, 1.0, 29);
    let init = kmeans_plus_plus(&data.points, 16, 31);
    let config = KMeansConfig {
        max_iters: 5,
        min_changes: 0,
        min_shift: 0.0,
    };
    let mut group = c.benchmark_group("E3_layout_ablation");
    group.sample_size(10);
    group.bench_function("static_layout", |b| {
        b.iter(|| fit_seq(&data.points, &config, init.clone()).iterations)
    });
    group.bench_function("cluster_buffers", |b| {
        b.iter(|| peachy::kmeans::fit_buffers(&data.points, &config, init.clone()).iterations)
    });
    group.finish();
}

/// Ablation: k-means++ vs random init — iterations to convergence.
fn bench_init(c: &mut Criterion) {
    let data = gaussian_blobs(20_000, 4, 16, 0.8, 19);
    let config = KMeansConfig::default();
    let mut group = c.benchmark_group("E3_init_ablation");
    group.sample_size(10);
    group.bench_function("random_init", |b| {
        b.iter(|| {
            let init = peachy::kmeans::random_init(&data.points, 16, 23);
            fit_seq(&data.points, &config, init).iterations
        })
    });
    group.bench_function("kmeans_plus_plus", |b| {
        b.iter(|| {
            let init = kmeans_plus_plus(&data.points, 16, 23);
            fit_seq(&data.points, &config, init).iterations
        })
    });
    group.finish();
}

/// E15: the same fit through the unified executor seam — `Seq`, `Rayon`,
/// `Cluster` — so backend overhead is measured against one code path.
fn bench_executor_backends(c: &mut Criterion) {
    use peachy::cluster::Executor;
    let data = gaussian_blobs(20_000, 4, 16, 1.0, 13);
    let init = kmeans_plus_plus(&data.points, 16, 17);
    let config = KMeansConfig {
        max_iters: 5,
        min_changes: 0,
        min_shift: 0.0,
    };
    let mut group = c.benchmark_group("E15_executor_backends");
    group.sample_size(10);
    for (name, exec) in [
        ("seq", Executor::seq()),
        ("rayon_64", Executor::rayon(64)),
        ("cluster_4", Executor::cluster(4)),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| peachy::kmeans::fit_with(&data.points, &config, init.clone(), &exec).iterations)
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_strategies, bench_distributed, bench_layout, bench_init,
        bench_executor_backends
);
criterion_main!(benches);
