//! The malformed-spec table: every parse or validation failure must
//! name the line, the section, and — when a name is merely misspelled —
//! a `did you mean` hint. One row per way a `.peachy` file can go
//! wrong; the satellite law for the scenario layer's error quality.

use peachy_spec::parse_scenario;

struct Case {
    name: &'static str,
    text: &'static str,
    /// Exact 1-based line the error must point at (0 = whole-spec error).
    line: Option<usize>,
    /// Exact section the error must name.
    section: &'static str,
    /// Exact `did you mean` hint, when one is required.
    hint: Option<&'static str>,
    /// Substring the message must contain.
    msg: &'static str,
}

const CASES: &[Case] = &[
    Case {
        name: "unknown_section_hints_nearest",
        text: "[scenario]\nname = x\n[sinnk]\nfrom = a\n",
        line: Some(3),
        section: "sinnk",
        hint: Some("sink"),
        msg: "unknown section",
    },
    Case {
        name: "misspelled_run_key",
        text: "[scenario]\nname = x\n[run]\npartitons = 2\n",
        line: Some(4),
        section: "run",
        hint: Some("partitions"),
        msg: "unknown key",
    },
    Case {
        name: "unknown_source_kind",
        text: "[scenario]\nname = x\n[source.d]\nkind = irs\n",
        line: Some(4),
        section: "source.d",
        hint: Some("iris"),
        msg: "unknown source kind",
    },
    Case {
        name: "unknown_stage_op",
        text: "[scenario]\nname = x\n[source.d]\nkind = iris\n[stage.s]\ninput = d\nop = fliter\n",
        line: Some(7),
        section: "stage.s",
        hint: Some("filter"),
        msg: "unknown stage op",
    },
    Case {
        name: "source_missing_kind",
        text: "[scenario]\nname = x\n[source.d]\ncolumns = \"a\"\n",
        line: Some(3),
        section: "source.d",
        hint: None,
        msg: "kind",
    },
    Case {
        name: "inline_row_arity_mismatch",
        text: "[scenario]\nname = x\n[source.d]\nkind = inline\ncolumns = \"a, b\"\nrow = \"1\"\n",
        line: Some(6),
        section: "source.d",
        hint: None,
        msg: "row has 1 cells, schema has 2 columns",
    },
    Case {
        name: "inline_source_without_rows",
        text: "[scenario]\nname = x\n[source.d]\nkind = inline\ncolumns = \"a\"\n",
        line: Some(3),
        section: "source.d",
        hint: None,
        msg: "no `row` entries",
    },
    Case {
        name: "wrongly_typed_value",
        text: "[scenario]\nname = x\n[run]\npartitions = 2.5\n",
        line: Some(4),
        section: "run",
        hint: None,
        msg: "must be",
    },
    Case {
        name: "duplicate_scenario_section",
        text: "[scenario]\nname = x\n[scenario]\nname = y\n",
        line: Some(3),
        section: "scenario",
        hint: None,
        msg: "duplicate `[scenario]`",
    },
    Case {
        name: "duplicate_source_name",
        text: "[scenario]\nname = x\n[source.d]\nkind = iris\n[source.d]\nkind = iris\n",
        line: Some(5),
        section: "source.d",
        hint: None,
        msg: "duplicate source `d`",
    },
    Case {
        name: "stage_cannot_reference_later_stage",
        text: "[scenario]\nname = x\n[source.rows]\nkind = iris\n\
               [stage.one]\ninput = two\nop = parse_arrest\n\
               [stage.two]\ninput = rows\nop = parse_arrest\n[sink]\nfrom = two\n",
        line: Some(5),
        section: "stage.one",
        hint: None,
        msg: "not a source or earlier stage",
    },
    Case {
        name: "stage_input_typo_hints_nearest",
        text: "[scenario]\nname = x\n[source.rows]\nkind = iris\n\
               [stage.s]\ninput = rosw\nop = parse_arrest\n[sink]\nfrom = s\n",
        line: Some(5),
        section: "stage.s",
        hint: Some("rows"),
        msg: "not a source or earlier stage",
    },
    Case {
        name: "join_with_typo_hints_nearest",
        text: "[scenario]\nname = x\n[source.rows]\nkind = iris\n\
               [stage.counts]\ninput = rows\nop = count\nkey = label\n\
               [stage.j]\ninput = counts\nop = join\nwith = conts\n[sink]\nfrom = j\n",
        line: Some(12),
        section: "stage.j",
        hint: Some("counts"),
        msg: "not a source or earlier stage",
    },
    Case {
        name: "locate_needs_a_city_source",
        text: "[scenario]\nname = x\n[source.rows]\nkind = iris\n\
               [stage.s]\ninput = rows\nop = locate\nboundaries = rows\n[sink]\nfrom = s\n",
        line: Some(5),
        section: "stage.s",
        hint: None,
        msg: "must name a city source",
    },
    Case {
        name: "neither_sink_nor_service",
        text: "[scenario]\nname = x\n[source.rows]\nkind = iris\n",
        line: Some(0),
        section: "",
        hint: None,
        msg: "neither a `[sink]` nor a `[service]`",
    },
    Case {
        name: "both_sink_and_service",
        text: "[scenario]\nname = x\n[source.rows]\nkind = iris\n[sink]\nfrom = rows\n\
               [service]\nkind = knn\ndata = iris\n[trace]\nkind = queries\n\
               pool_n = 4\npool_dims = 2\npool_classes = 2\npool_spread = 1.0\npool_seed = 1\n\
               seed = 1\nticks = 2\nrate = 1.0\n",
        line: Some(0),
        section: "",
        hint: None,
        msg: "both `[sink]` and `[service]`",
    },
    Case {
        name: "trace_without_service",
        text: "[scenario]\nname = x\n[source.rows]\nkind = iris\n[sink]\nfrom = rows\n\
               [trace]\nkind = test_split\n",
        line: Some(0),
        section: "trace",
        hint: None,
        msg: "needs a `[service]`",
    },
    Case {
        name: "service_without_trace",
        text: "[scenario]\nname = x\n[service]\nkind = knn\ndata = iris\n",
        line: Some(3),
        section: "service",
        hint: None,
        msg: "needs a `[trace]`",
    },
    Case {
        name: "sharded_service_needs_keyed_trace",
        text: "[scenario]\nname = x\n\
               [service]\nkind = knn_sharded\ndata = blobs\nn = 8\ndims = 2\nclasses = 2\nspread = 1.0\nseed = 1\n\
               [trace]\nkind = queries\npool_n = 4\npool_dims = 2\npool_classes = 2\npool_spread = 1.0\npool_seed = 1\n\
               seed = 1\nticks = 2\nrate = 1.0\n",
        line: Some(3),
        section: "trace",
        hint: None,
        msg: "keyed_queries",
    },
    Case {
        name: "test_split_trace_needs_a_split",
        text: "[scenario]\nname = x\n[service]\nkind = knn\ndata = iris\n[trace]\nkind = test_split\n",
        line: Some(3),
        section: "trace",
        hint: None,
        msg: "`split`",
    },
    Case {
        name: "bad_scaling_event",
        text: "[scenario]\nname = x\n[scaling]\nevent = \"groww 4 @ 6\"\n",
        line: Some(4),
        section: "scaling",
        hint: None,
        msg: "bad scaling event",
    },
    Case {
        name: "bad_kill_syntax",
        text: "[scenario]\nname = x\n[fault]\nseed = 1\nkill = \"2 at 3\"\n",
        line: Some(5),
        section: "fault",
        hint: None,
        msg: "rank @ after",
    },
    Case {
        name: "bad_sort_direction_hints",
        text: "[scenario]\nname = x\n[source.rows]\nkind = iris\n[sink]\nfrom = rows\nsort = \"label dsec\"\n",
        line: Some(7),
        section: "sink",
        hint: Some("desc"),
        msg: "sort direction",
    },
    Case {
        name: "optimizer_typo_hints",
        text: "[scenario]\nname = x\n[run]\noptimizer = navie\n",
        line: Some(4),
        section: "run",
        hint: Some("naive"),
        msg: "optimizer must be",
    },
    Case {
        name: "line_without_equals",
        text: "[scenario]\nname = x\n[run]\nwhat is this\n",
        line: Some(4),
        section: "run",
        hint: None,
        msg: "expected `key = value`",
    },
    Case {
        name: "unterminated_section_header",
        text: "[scenario]\nname = x\n[run\n",
        line: Some(3),
        section: "scenario",
        hint: None,
        msg: "unterminated section header",
    },
    Case {
        name: "unterminated_string",
        text: "[scenario]\nname = x\n[run]\npartitions = \"4\n",
        line: Some(4),
        section: "run",
        hint: None,
        msg: "unterminated string",
    },
    Case {
        name: "key_before_any_section",
        text: "name = x\n[scenario]\n",
        line: Some(1),
        section: "",
        hint: None,
        msg: "before any [section]",
    },
];

#[test]
fn every_malformed_spec_reports_line_section_and_hint() {
    assert!(CASES.len() >= 15, "the table must stay substantial");
    for case in CASES {
        let err = match parse_scenario(case.text) {
            Err(e) => e,
            Ok(_) => panic!("{}: expected a parse error, got Ok", case.name),
        };
        assert_eq!(err.section, case.section, "{}: section ({err})", case.name);
        assert!(
            err.message.contains(case.msg),
            "{}: message `{}` missing `{}`",
            case.name,
            err.message,
            case.msg
        );
        if let Some(line) = case.line {
            assert_eq!(err.line, line, "{}: line ({err})", case.name);
        }
        if let Some(hint) = case.hint {
            assert_eq!(err.hint.as_deref(), Some(hint), "{}: hint ({err})", case.name);
        }
    }
}

#[test]
fn errors_render_with_position_and_hint() {
    let err = parse_scenario("[scenario]\nname = x\n[sinnk]\nfrom = a\n").unwrap_err();
    let shown = err.to_string();
    assert!(shown.contains("line 3"), "{shown}");
    assert!(shown.contains("[sinnk]"), "{shown}");
    assert!(shown.contains("did you mean `sink`"), "{shown}");
}
