//! The typed row model every compiled scenario flows through.
//!
//! A scenario stage does not know the Rust type of its rows — it sees
//! [`Row`]s of [`Value`]s plus a column-name schema tracked by the
//! compiler. `Value` therefore has to satisfy every bound the dataflow
//! engine places on row and key types at once: `Clone + Send + Sync`
//! for partition evaluation, `Hash + Eq` so a value can key a shuffle,
//! [`ByteSized`] so the optimizer's cost model and the spill budget see
//! its volume, and [`SpillRow`] so byte-budgeted stores can park spec
//! rows on disk in the same deterministic encoding every typed row uses.
//!
//! Floats are the one delicate case: `f64` is neither `Eq` nor `Hash`.
//! `Value::Float` compares and hashes **by bit pattern** (`to_bits`), the
//! same convention [`row_route_key`](peachy_serve::row_route_key) uses
//! for sharded routing — exact, deterministic, and `NaN`-safe, at the
//! price of `-0.0 != 0.0`. Spec pipelines that key by floats inherit
//! that convention knowingly.

use std::fmt;
use std::hash::{Hash, Hasher};

use peachy_dataflow::{ByteSized, SpillReader, SpillRow};

/// One cell of a scenario row.
#[derive(Debug, Clone)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Signed 64-bit integer (counts, years, labels).
    Int(i64),
    /// 64-bit float; equality and hashing are bitwise.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Nested list (the result of a `group` stage).
    List(Vec<Value>),
}

/// A scenario row: one `Value` per column of the stage's schema.
pub type Row = Vec<Value>;

impl Value {
    /// Short tag for error messages ("int", "float", …).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
        }
    }

    /// Numeric view, promoting `Int` to `f64`; `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Total order used by sink `sort` keys: numbers before strings,
    /// floats via [`f64::total_cmp`], so sorting is deterministic for
    /// every value mix (documented in the grammar reference).
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (List(a), List(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let ord = x.total_cmp(y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                a.len().cmp(&b.len())
            }
            // Cross-type: order by type rank so the comparator stays total.
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
            Value::List(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (List(a), List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Bool(b) => {
                state.write_u8(0);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(1);
                i.hash(state);
            }
            Value::Float(f) => {
                state.write_u8(2);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::List(l) => {
                state.write_u8(4);
                l.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl ByteSized for Value {
    fn approx_bytes(&self) -> usize {
        1 + match self {
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len(),
            Value::List(l) => l.iter().map(|v| v.approx_bytes()).sum(),
        }
    }
}

impl SpillRow for Value {
    fn spill_encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Bool(b) => {
                out.push(0);
                b.spill_encode(out);
            }
            Value::Int(i) => {
                out.push(1);
                i.spill_encode(out);
            }
            Value::Float(f) => {
                out.push(2);
                f.spill_encode(out);
            }
            Value::Str(s) => {
                out.push(3);
                s.spill_encode(out);
            }
            Value::List(l) => {
                out.push(4);
                l.spill_encode(out);
            }
        }
    }

    fn spill_decode(r: &mut SpillReader<'_>) -> Self {
        match r.read_array::<1>()[0] {
            0 => Value::Bool(bool::spill_decode(r)),
            1 => Value::Int(i64::spill_decode(r)),
            2 => Value::Float(f64::spill_decode(r)),
            3 => Value::Str(String::spill_decode(r)),
            4 => Value::List(Vec::<Value>::spill_decode(r)),
            tag => panic!("spilled Value: unknown tag {tag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        v.spill_encode(&mut buf);
        let mut r = SpillReader::new(&buf);
        let back = Value::spill_decode(&mut r);
        assert_eq!(r.remaining(), 0, "decoder consumed everything");
        back
    }

    #[test]
    fn spill_roundtrips_every_variant() {
        let values = vec![
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(1.5),
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::Str("peach".into()),
            Value::List(vec![Value::Int(1), Value::Str("x".into())]),
        ];
        for v in &values {
            assert_eq!(&roundtrip(v), v);
        }
    }

    #[test]
    fn float_equality_is_bitwise() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_ne!(Value::Int(1), Value::Float(1.0));
    }

    #[test]
    fn total_cmp_orders_mixed_numbers() {
        use std::cmp::Ordering::*;
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Less);
        assert_eq!(Value::Float(2.0).total_cmp(&Value::Int(1)), Greater);
        assert_eq!(Value::Str("a".into()).total_cmp(&Value::Str("b".into())), Less);
    }

    #[test]
    fn hash_distinguishes_int_and_float_bits() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_ne!(h(&Value::Int(1)), h(&Value::Float(1.0)));
        assert_eq!(h(&Value::Float(1.0)), h(&Value::Float(1.0)));
    }
}
