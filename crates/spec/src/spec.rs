//! The typed scenario model and its validator.
//!
//! [`parse_scenario`] turns raw `.peachy` text into a [`ScenarioSpec`]:
//! every section and key is checked against a known-vocabulary table, so
//! a typo'd key (`partions`), a wrong type (`partitions = "four"`), a
//! missing required key, or a dangling reference (`input = claen`) all
//! fail here — with the offending line, the enclosing section, and a
//! "did you mean" hint — before any dataset is built.
//!
//! The grammar reference lives in `DESIGN.md` ("The scenario layer");
//! the lowering onto dataflow/serve is in [`crate::compile`] and
//! [`crate::run`].

use peachy_data::geo::CityConfig;
use peachy_serve::ScaleEvent;

use crate::parse::{parse_document, RawDoc, RawEntry, RawSection, RawValue, SpecError};
use crate::value::{Row, Value};

/// Every section name the grammar knows, for `[sectoin]` hints.
const KNOWN_SECTIONS: &[&str] = &[
    "scenario", "run", "source", "stage", "sink", "service", "serve", "shard", "backoff", "fault",
    "scaling", "trace", "report",
];

/// A validated scenario: either a pipeline (`sources → stages → sink`)
/// or a service run (`[service]` + `[trace]`), plus the shared knobs.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// `[scenario] name`.
    pub name: String,
    /// `[run]` engine knobs.
    pub run: RunSpec,
    /// `[source.X]` declarations, in order.
    pub sources: Vec<SourceDecl>,
    /// `[stage.X]` declarations, in order.
    pub stages: Vec<StageDecl>,
    /// `[sink]`, for pipeline scenarios.
    pub sink: Option<SinkSpec>,
    /// `[service]` (+ `[serve]`/`[shard]`/`[backoff]`/`[scaling]`/`[trace]`).
    pub service: Option<ServiceSpec>,
    /// `[fault]`: transport chaos for cluster pipelines, the full plan
    /// (kills included) for the sharded serving tier.
    pub fault: Option<FaultSpec>,
    /// `[report] explain = true`: attach the optimizer's plan rendering.
    pub explain: bool,
}

/// `[run]`: partitioning and optimizer knobs shared by every source.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Partitions per source dataset.
    pub partitions: usize,
    /// `optimizer = naive` disables fusion/elision/auto-cache.
    pub naive: bool,
    /// `spill_budget = N`: byte budget handed to the partition stores.
    pub spill_budget: Option<u64>,
}

impl Default for RunSpec {
    fn default() -> Self {
        Self {
            partitions: 4,
            naive: false,
            spill_budget: None,
        }
    }
}

/// One `[source.X]`.
#[derive(Debug, Clone)]
pub struct SourceDecl {
    /// Name stages refer to.
    pub name: String,
    /// Header line.
    pub line: usize,
    /// What the source yields.
    pub kind: SourceKind,
}

/// The source vocabulary.
#[derive(Debug, Clone)]
pub enum SourceKind {
    /// Literal rows written in the spec.
    Inline {
        /// Column names.
        columns: Vec<String>,
        /// Parsed rows (cells inferred int → float → string).
        rows: Vec<Row>,
    },
    /// Raw arrest CSV lines of a generated synthetic city (one string
    /// column `line`), exactly what `Dataset::from_text` ingests.
    CityArrests {
        /// Generator parameters.
        city: CityParams,
        /// Current-year or historic table.
        historic: bool,
    },
    /// `(code, population)` rows of a generated city.
    CityPopulation {
        /// Generator parameters.
        city: CityParams,
    },
    /// Gaussian blob rows: `label` + `x0..x{dims-1}`.
    Blobs(BlobParams),
    /// Fisher's iris rows: `label` + `x0..x3`.
    Iris,
}

/// [`CityConfig`] plus the generator seed, as written in a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct CityParams {
    /// NTA grid width.
    pub grid_w: usize,
    /// NTA grid height.
    pub grid_h: usize,
    /// Arrests per table.
    pub arrests: usize,
    /// Fraction of dirty (unparsable) rows.
    pub dirty_frac: f64,
    /// Arrest hotspots.
    pub hotspots: usize,
    /// The "current" year.
    pub current_year: u32,
    /// Historic years generated.
    pub historic_years: u32,
    /// Generator seed.
    pub seed: u64,
}

impl CityParams {
    /// The equivalent generator config.
    pub fn config(&self) -> CityConfig {
        CityConfig {
            grid_w: self.grid_w,
            grid_h: self.grid_h,
            arrests: self.arrests,
            dirty_frac: self.dirty_frac,
            hotspots: self.hotspots,
            current_year: self.current_year,
            historic_years: self.historic_years,
        }
    }
}

/// `gaussian_blobs` parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BlobParams {
    /// Points.
    pub n: usize,
    /// Dimensions.
    pub dims: usize,
    /// Classes / blob centers.
    pub classes: usize,
    /// Cluster spread.
    pub spread: f64,
    /// Generator seed.
    pub seed: u64,
}

/// One `[stage.X]`.
#[derive(Debug, Clone)]
pub struct StageDecl {
    /// Name later stages / the sink refer to.
    pub name: String,
    /// Header line.
    pub line: usize,
    /// Input source or stage name.
    pub input: String,
    /// The operation.
    pub op: StageOp,
}

/// The stage vocabulary. Narrow ops keep rows; `key_by`/`count`/`sum`/
/// `group` move to the keyed world (and shuffle); `join` combines two
/// keyed stages; `unkey` returns to rows.
#[derive(Debug, Clone)]
pub enum StageOp {
    /// Clean arrest CSV lines into `[year, offense, x, y]`.
    ParseArrest,
    /// Point-in-polygon lookup against a city source's NTA boundaries;
    /// yields `[code]`, dropping out-of-city points.
    Locate {
        /// Name of the city source whose boundaries to use.
        boundaries: String,
    },
    /// Full projection: `col.NAME = "expr"` entries, in order.
    Map {
        /// `(column, expression, line)` in declaration order.
        cols: Vec<(String, String, usize)>,
    },
    /// Keep rows where the predicate holds.
    Filter {
        /// Boolean expression over the input schema.
        pred: String,
        /// Line of the `where` entry.
        line: usize,
    },
    /// Keep the named columns, in the given order.
    Select {
        /// Column names.
        cols: Vec<String>,
        /// Line of the `cols` entry.
        line: usize,
    },
    /// Key rows by a column (value = the remaining columns).
    KeyBy {
        /// Key column.
        key: String,
        /// Line of the `key` entry.
        line: usize,
    },
    /// Count rows per key: `key → [count]`.
    Count {
        /// Key column.
        key: String,
        /// Line of the `key` entry.
        line: usize,
    },
    /// Sum a column per key: `key → [col]`.
    Sum {
        /// Key column.
        key: String,
        /// Summed column.
        col: String,
        /// Line of the `key` entry.
        line: usize,
    },
    /// Collect rows per key into a nested list: `key → [group]`.
    Group {
        /// Key column.
        key: String,
        /// Line of the `key` entry.
        line: usize,
    },
    /// Inner (or broadcast) join with another keyed stage.
    Join {
        /// The right-hand keyed stage.
        with: String,
        /// Ship the right side to every partition instead of shuffling.
        broadcast: bool,
        /// Line of the `with` entry.
        line: usize,
    },
    /// Keyed → rows: `[key_as, …values]`.
    Unkey {
        /// Column name for the key.
        key_as: String,
    },
}

/// `[sink]`.
#[derive(Debug, Clone)]
pub struct SinkSpec {
    /// Stage (or source) to materialize.
    pub from: String,
    /// Line of the `from` entry.
    pub line: usize,
    /// `kind = count`: a single `[count]` row instead of the rows.
    pub count_only: bool,
    /// Sort keys: `(column, descending, line)`.
    pub sort: Vec<(String, bool, usize)>,
    /// Keep only the first N rows after sorting.
    pub limit: Option<usize>,
    /// Golden file (relative to the spec) the rendered rows must match.
    pub golden: Option<String>,
}

/// `[service]` plus its rider sections.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    /// Which service to stand up.
    pub kind: ServiceKind,
    /// Header line.
    pub line: usize,
    /// k (neighbours / centroids), where the kind uses it.
    pub k: usize,
    /// The dataset behind the service.
    pub data: DataSpec,
    /// `[serve]` overrides for the fixed-pool server.
    pub serve: ServeSpec,
    /// `[shard]` overrides for the elastic tier.
    pub shard: ShardSpec,
    /// `[backoff]`: linear tick backoff `(base, jitter, seed)`.
    pub backoff: Option<(u64, u64, u64)>,
    /// `[scaling]` events: `(tick, event)`.
    pub scaling: Vec<(u64, ScaleEvent)>,
    /// `[trace]`: the offered load.
    pub trace: TraceSpec,
}

/// Service kinds the runner can stand up.
#[derive(Debug, Clone)]
pub enum ServiceKind {
    /// Fixed-pool k-NN classification.
    Knn,
    /// Nearest-centroid assignment (k-means++ seeded from the data).
    KmeansAssign {
        /// Seed for the k-means++ init.
        centroid_seed: u64,
    },
    /// Dense-net prediction (trained at startup).
    Ensemble {
        /// Hidden-layer width.
        hidden: usize,
        /// Training epochs.
        epochs: usize,
        /// Training seed.
        train_seed: u64,
    },
    /// Elastic sharded k-NN (consistent-hash shard map, scripted scaling
    /// and faults).
    KnnSharded,
}

/// Where the service's labeled data comes from.
#[derive(Debug, Clone)]
pub enum DataSpec {
    /// Fisher's iris, optionally train/test split `(frac, seed)`.
    Iris {
        /// `split`/`split_seed`, when the trace replays the test half.
        split: Option<(f64, u64)>,
    },
    /// Synthetic Gaussian blobs.
    Blobs(BlobParams),
}

/// `[serve]` overrides; `None` keeps `ServeConfig::default()`.
#[derive(Debug, Clone, Default)]
pub struct ServeSpec {
    /// Admission capacity.
    pub capacity: Option<usize>,
    /// Batch-close size.
    pub max_batch_size: Option<usize>,
    /// Batch-close wait.
    pub max_wait: Option<u64>,
    /// Worker threads.
    pub workers: Option<usize>,
}

/// `[shard]` overrides; `None` keeps `ShardConfig::default()`.
#[derive(Debug, Clone, Default)]
pub struct ShardSpec {
    /// Shard count.
    pub num_shards: Option<usize>,
    /// Virtual nodes per member.
    pub vnodes: Option<usize>,
    /// Ring seed.
    pub seed: Option<u64>,
    /// Starting membership.
    pub initial_ranks: Option<usize>,
    /// Admission capacity.
    pub capacity: Option<usize>,
    /// Batch-close size.
    pub max_batch_size: Option<usize>,
    /// Batch-close wait.
    pub max_wait: Option<u64>,
    /// Rebuild every shard on membership change instead of the delta.
    pub full_rebuild: Option<bool>,
}

/// `[trace]`.
#[derive(Debug, Clone)]
pub enum TraceSpec {
    /// Submit every test row of the service's iris split at tick 0.
    TestSplit,
    /// `query_trace(seed, ticks, rate, pool)`.
    Queries {
        /// Query pool generator.
        pool: BlobParams,
        /// Arrival seed.
        seed: u64,
        /// Trace length.
        ticks: u64,
        /// Mean arrivals per tick.
        rate: f64,
    },
    /// `keyed_query_trace(seed, ticks, rate, pool)` (sharded tier).
    KeyedQueries {
        /// Query pool generator.
        pool: BlobParams,
        /// Arrival seed.
        seed: u64,
        /// Trace length.
        ticks: u64,
        /// Mean arrivals per tick.
        rate: f64,
    },
}

/// `[fault]`: a declarative [`FaultPlan`](peachy_cluster::FaultPlan).
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Fault-stream seed (overridable at run time, the
    /// `PEACHY_CHAOS_SEED` convention).
    pub seed: u64,
    /// Per-message drop probability.
    pub drop_p: f64,
    /// Per-message duplication probability.
    pub dup_p: f64,
    /// Per-message reorder probability.
    pub reorder_p: f64,
    /// Maximum delivery delay in milliseconds.
    pub delay_ms: u64,
    /// `kill = "rank @ after"` entries.
    pub kills: Vec<(usize, u64)>,
    /// `revive = "rank @ after"` entries.
    pub revives: Vec<(usize, u64)>,
}

impl FaultSpec {
    /// Build the full plan (transport faults + kills + revivals).
    pub fn plan(&self) -> peachy_cluster::FaultPlan {
        let mut plan = peachy_cluster::FaultPlan::new(self.seed).all_edges(peachy_cluster::EdgeFault {
            drop_p: self.drop_p,
            dup_p: self.dup_p,
            reorder_p: self.reorder_p,
            delay: std::time::Duration::from_millis(self.delay_ms),
        });
        for &(rank, after) in &self.kills {
            plan = plan.kill(rank, after);
        }
        for &(rank, after) in &self.revives {
            plan = plan.revive(rank, after);
        }
        plan
    }
}

/// Parse and validate `.peachy` text into a [`ScenarioSpec`].
pub fn parse_scenario(text: &str) -> Result<ScenarioSpec, SpecError> {
    let doc = parse_document(text)?;
    from_doc(&doc)
}

// ---------------------------------------------------------------------------
// Typed-entry helpers over a raw section.

fn unknown_key(sec: &RawSection, e: &RawEntry, known: &[&str]) -> SpecError {
    SpecError::at(
        e.line,
        &sec.name,
        format!("unknown key `{}` (known: {})", e.key, known.join(", ")),
    )
    .with_hint_from(&e.key, known)
}

/// Reject entries whose key is neither in `known` nor under a prefix.
fn check_keys(sec: &RawSection, known: &[&str], prefixes: &[&str]) -> Result<(), SpecError> {
    for e in &sec.entries {
        let ok = known.contains(&e.key.as_str())
            || prefixes.iter().any(|p| e.key.starts_with(p) && e.key.len() > p.len());
        if !ok {
            return Err(unknown_key(sec, e, known));
        }
    }
    Ok(())
}

fn type_err(sec: &RawSection, e: &RawEntry, want: &str) -> SpecError {
    SpecError::at(
        e.line,
        &sec.name,
        format!("`{}` must be {want}, got {} ({:?})", e.key, e.value.type_name(), e.value),
    )
}

fn req<'a>(sec: &'a RawSection, key: &str) -> Result<&'a RawEntry, SpecError> {
    sec.get(key)
        .ok_or_else(|| SpecError::at(sec.line, &sec.name, format!("missing required key `{key}`")))
}

fn as_str(sec: &RawSection, e: &RawEntry) -> Result<String, SpecError> {
    match &e.value {
        RawValue::Str(s) => Ok(s.clone()),
        _ => Err(type_err(sec, e, "a string")),
    }
}

fn as_usize(sec: &RawSection, e: &RawEntry) -> Result<usize, SpecError> {
    match &e.value {
        RawValue::Int(i) if *i >= 0 => Ok(*i as usize),
        _ => Err(type_err(sec, e, "a non-negative integer")),
    }
}

fn as_u64(sec: &RawSection, e: &RawEntry) -> Result<u64, SpecError> {
    match &e.value {
        RawValue::Int(i) if *i >= 0 => Ok(*i as u64),
        _ => Err(type_err(sec, e, "a non-negative integer")),
    }
}

fn as_u32(sec: &RawSection, e: &RawEntry) -> Result<u32, SpecError> {
    match &e.value {
        RawValue::Int(i) if *i >= 0 && *i <= u32::MAX as i64 => Ok(*i as u32),
        _ => Err(type_err(sec, e, "a 32-bit non-negative integer")),
    }
}

fn as_f64(sec: &RawSection, e: &RawEntry) -> Result<f64, SpecError> {
    match &e.value {
        RawValue::Float(f) => Ok(*f),
        RawValue::Int(i) => Ok(*i as f64),
        _ => Err(type_err(sec, e, "a number")),
    }
}

fn as_bool(sec: &RawSection, e: &RawEntry) -> Result<bool, SpecError> {
    match &e.value {
        RawValue::Bool(b) => Ok(*b),
        _ => Err(type_err(sec, e, "a bool")),
    }
}

fn opt<T>(
    sec: &RawSection,
    key: &str,
    f: impl Fn(&RawSection, &RawEntry) -> Result<T, SpecError>,
) -> Result<Option<T>, SpecError> {
    sec.get(key).map(|e| f(sec, e)).transpose()
}

/// Split a comma-separated list (`"a, b"`) into trimmed names.
fn name_list(sec: &RawSection, e: &RawEntry) -> Result<Vec<String>, SpecError> {
    let raw = as_str(sec, e)?;
    let names: Vec<String> = raw
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if names.is_empty() {
        return Err(SpecError::at(e.line, &sec.name, format!("`{}` names no columns", e.key)));
    }
    for n in &names {
        if !n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(SpecError::at(
                e.line,
                &sec.name,
                format!("bad column name `{n}` in `{}` (letters, digits, `_`)", e.key),
            ));
        }
    }
    Ok(names)
}

/// Parse `"rank @ after"` (kills/revives).
fn rank_at(sec: &RawSection, e: &RawEntry) -> Result<(usize, u64), SpecError> {
    let raw = as_str(sec, e)?;
    let parse = || -> Option<(usize, u64)> {
        let (rank, after) = raw.split_once('@')?;
        Some((rank.trim().parse().ok()?, after.trim().parse().ok()?))
    };
    parse().ok_or_else(|| {
        SpecError::at(
            e.line,
            &sec.name,
            format!("`{}` must look like \"2 @ 3\" (rank @ after-events), got `{raw}`", e.key),
        )
    })
}

/// Parse a `[scaling]` event: `"add 4 @ 6"` / `"drain 1 @ 18"`.
fn scale_event(sec: &RawSection, e: &RawEntry) -> Result<(u64, ScaleEvent), SpecError> {
    let raw = as_str(sec, e)?;
    let bad = |msg: String| SpecError::at(e.line, &sec.name, msg);
    let Some((ev, tick)) = raw.split_once('@') else {
        return Err(bad(format!("`event` must look like \"add 4 @ 6\", got `{raw}`")));
    };
    let tick: u64 = tick
        .trim()
        .parse()
        .map_err(|_| bad(format!("bad tick in scaling event `{raw}`")))?;
    let ev: ScaleEvent = ev
        .trim()
        .parse()
        .map_err(|msg: String| bad(format!("bad scaling event `{raw}`: {msg}")))?;
    Ok((tick, ev))
}

/// Parse sink sort keys: `"per_100k desc, code"`.
fn sort_keys(sec: &RawSection, e: &RawEntry) -> Result<Vec<(String, bool, usize)>, SpecError> {
    let raw = as_str(sec, e)?;
    let mut keys = Vec::new();
    for part in raw.split(',') {
        let words: Vec<&str> = part.split_whitespace().collect();
        let (col, desc) = match words.as_slice() {
            [col] => (*col, false),
            [col, dir] => match *dir {
                "asc" => (*col, false),
                "desc" => (*col, true),
                other => {
                    return Err(SpecError::at(
                        e.line,
                        &sec.name,
                        format!("sort direction must be `asc` or `desc`, got `{other}`"),
                    )
                    .with_hint_from(other, &["asc", "desc"]))
                }
            },
            _ => {
                return Err(SpecError::at(
                    e.line,
                    &sec.name,
                    format!("bad sort key `{}` (want `col` or `col desc`)", part.trim()),
                ))
            }
        };
        keys.push((col.to_string(), desc, e.line));
    }
    if keys.is_empty() {
        return Err(SpecError::at(e.line, &sec.name, "empty sort key list"));
    }
    Ok(keys)
}

// ---------------------------------------------------------------------------
// Section validators.

fn city_params(sec: &RawSection) -> Result<CityParams, SpecError> {
    let d = CityConfig::default();
    Ok(CityParams {
        grid_w: opt(sec, "grid_w", as_usize)?.unwrap_or(d.grid_w),
        grid_h: opt(sec, "grid_h", as_usize)?.unwrap_or(d.grid_h),
        arrests: opt(sec, "arrests", as_usize)?.unwrap_or(d.arrests),
        dirty_frac: opt(sec, "dirty_frac", as_f64)?.unwrap_or(d.dirty_frac),
        hotspots: opt(sec, "hotspots", as_usize)?.unwrap_or(d.hotspots),
        current_year: opt(sec, "current_year", as_u32)?.unwrap_or(d.current_year),
        historic_years: opt(sec, "historic_years", as_u32)?.unwrap_or(d.historic_years),
        seed: as_u64(sec, req(sec, "seed")?)?,
    })
}

fn blob_params(sec: &RawSection, prefix: &str) -> Result<BlobParams, SpecError> {
    let key = |k: &str| format!("{prefix}{k}");
    let get = |k: &str| req(sec, &key(k));
    Ok(BlobParams {
        n: as_usize(sec, get("n")?)?,
        dims: as_usize(sec, get("dims")?)?,
        classes: as_usize(sec, get("classes")?)?,
        spread: as_f64(sec, get("spread")?)?,
        seed: as_u64(sec, get("seed")?)?,
    })
}

const CITY_KEYS: &[&str] = &[
    "kind", "grid_w", "grid_h", "arrests", "dirty_frac", "hotspots", "current_year",
    "historic_years", "seed", "table",
];

fn source_decl(sec: &RawSection, name: &str) -> Result<SourceDecl, SpecError> {
    const KINDS: &[&str] = &["inline", "city_arrests", "city_population", "blobs", "iris"];
    let kind_entry = req(sec, "kind")?;
    let kind_name = as_str(sec, kind_entry)?;
    let kind = match kind_name.as_str() {
        "inline" => {
            check_keys(sec, &["kind", "columns", "row"], &[])?;
            let columns = name_list(sec, req(sec, "columns")?)?;
            let mut rows = Vec::new();
            for e in sec.get_all("row") {
                let raw = as_str(sec, e)?;
                let cells: Vec<Value> = raw.split(',').map(|c| infer_cell(c.trim())).collect();
                if cells.len() != columns.len() {
                    return Err(SpecError::at(
                        e.line,
                        &sec.name,
                        format!("row has {} cells, schema has {} columns", cells.len(), columns.len()),
                    ));
                }
                rows.push(cells);
            }
            if rows.is_empty() {
                return Err(SpecError::at(sec.line, &sec.name, "inline source has no `row` entries"));
            }
            SourceKind::Inline { columns, rows }
        }
        "city_arrests" => {
            check_keys(sec, CITY_KEYS, &[])?;
            let historic = match opt(sec, "table", as_str)?.as_deref() {
                None | Some("current") => false,
                Some("historic") => true,
                Some(other) => {
                    return Err(SpecError::at(
                        sec.get("table").expect("present").line,
                        &sec.name,
                        format!("`table` must be `current` or `historic`, got `{other}`"),
                    )
                    .with_hint_from(other, &["current", "historic"]))
                }
            };
            SourceKind::CityArrests {
                city: city_params(sec)?,
                historic,
            }
        }
        "city_population" => {
            check_keys(sec, CITY_KEYS, &[])?;
            if sec.get("table").is_some() {
                return Err(SpecError::at(
                    sec.get("table").expect("present").line,
                    &sec.name,
                    "`table` only applies to kind = city_arrests",
                ));
            }
            SourceKind::CityPopulation {
                city: city_params(sec)?,
            }
        }
        "blobs" => {
            check_keys(sec, &["kind", "n", "dims", "classes", "spread", "seed"], &[])?;
            SourceKind::Blobs(blob_params(sec, "")?)
        }
        "iris" => {
            check_keys(sec, &["kind"], &[])?;
            SourceKind::Iris
        }
        other => {
            return Err(SpecError::at(
                kind_entry.line,
                &sec.name,
                format!("unknown source kind `{other}` (known: {})", KINDS.join(", ")),
            )
            .with_hint_from(other, KINDS))
        }
    };
    Ok(SourceDecl {
        name: name.to_string(),
        line: sec.line,
        kind,
    })
}

/// Inline cells: int, then float, then string.
fn infer_cell(cell: &str) -> Value {
    if let Ok(i) = cell.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = cell.parse::<f64>() {
        return Value::Float(f);
    }
    Value::Str(cell.to_string())
}

fn stage_decl(sec: &RawSection, name: &str) -> Result<StageDecl, SpecError> {
    const OPS: &[&str] = &[
        "parse_arrest", "locate", "map", "filter", "select", "key_by", "count", "sum", "group",
        "join", "unkey",
    ];
    let input = as_str(sec, req(sec, "input")?)?;
    let op_entry = req(sec, "op")?;
    let op_name = as_str(sec, op_entry)?;
    let op = match op_name.as_str() {
        "parse_arrest" => {
            check_keys(sec, &["input", "op"], &[])?;
            StageOp::ParseArrest
        }
        "locate" => {
            check_keys(sec, &["input", "op", "boundaries"], &[])?;
            StageOp::Locate {
                boundaries: as_str(sec, req(sec, "boundaries")?)?,
            }
        }
        "map" => {
            check_keys(sec, &["input", "op"], &["col."])?;
            let mut cols = Vec::new();
            for e in &sec.entries {
                if let Some(col) = e.key.strip_prefix("col.") {
                    cols.push((col.to_string(), as_str(sec, e)?, e.line));
                }
            }
            if cols.is_empty() {
                return Err(SpecError::at(sec.line, &sec.name, "map stage has no `col.NAME = \"expr\"` entries"));
            }
            StageOp::Map { cols }
        }
        "filter" => {
            check_keys(sec, &["input", "op", "where"], &[])?;
            let e = req(sec, "where")?;
            StageOp::Filter {
                pred: as_str(sec, e)?,
                line: e.line,
            }
        }
        "select" => {
            check_keys(sec, &["input", "op", "cols"], &[])?;
            let e = req(sec, "cols")?;
            StageOp::Select {
                cols: name_list(sec, e)?,
                line: e.line,
            }
        }
        "key_by" | "count" | "group" => {
            check_keys(sec, &["input", "op", "key"], &[])?;
            let e = req(sec, "key")?;
            let key = as_str(sec, e)?;
            match op_name.as_str() {
                "key_by" => StageOp::KeyBy { key, line: e.line },
                "count" => StageOp::Count { key, line: e.line },
                _ => StageOp::Group { key, line: e.line },
            }
        }
        "sum" => {
            check_keys(sec, &["input", "op", "key", "col"], &[])?;
            let e = req(sec, "key")?;
            StageOp::Sum {
                key: as_str(sec, e)?,
                col: as_str(sec, req(sec, "col")?)?,
                line: e.line,
            }
        }
        "join" => {
            check_keys(sec, &["input", "op", "with", "kind"], &[])?;
            let e = req(sec, "with")?;
            let broadcast = match opt(sec, "kind", as_str)?.as_deref() {
                None | Some("inner") => false,
                Some("broadcast") => true,
                Some(other) => {
                    return Err(SpecError::at(
                        sec.get("kind").expect("present").line,
                        &sec.name,
                        format!("join kind must be `inner` or `broadcast`, got `{other}`"),
                    )
                    .with_hint_from(other, &["inner", "broadcast"]))
                }
            };
            StageOp::Join {
                with: as_str(sec, e)?,
                broadcast,
                line: e.line,
            }
        }
        "unkey" => {
            check_keys(sec, &["input", "op", "key_as"], &[])?;
            StageOp::Unkey {
                key_as: as_str(sec, req(sec, "key_as")?)?,
            }
        }
        other => {
            return Err(SpecError::at(
                op_entry.line,
                &sec.name,
                format!("unknown stage op `{other}` (known: {})", OPS.join(", ")),
            )
            .with_hint_from(other, OPS))
        }
    };
    Ok(StageDecl {
        name: name.to_string(),
        line: sec.line,
        input,
        op,
    })
}

fn sink_spec(sec: &RawSection) -> Result<SinkSpec, SpecError> {
    check_keys(sec, &["from", "kind", "sort", "limit", "golden"], &[])?;
    let from_entry = req(sec, "from")?;
    let count_only = match opt(sec, "kind", as_str)?.as_deref() {
        None | Some("collect") => false,
        Some("count") => true,
        Some(other) => {
            return Err(SpecError::at(
                sec.get("kind").expect("present").line,
                &sec.name,
                format!("sink kind must be `collect` or `count`, got `{other}`"),
            )
            .with_hint_from(other, &["collect", "count"]))
        }
    };
    Ok(SinkSpec {
        from: as_str(sec, from_entry)?,
        line: from_entry.line,
        count_only,
        sort: opt(sec, "sort", sort_keys)?.unwrap_or_default(),
        limit: opt(sec, "limit", as_usize)?,
        golden: opt(sec, "golden", as_str)?,
    })
}

fn service_spec(sec: &RawSection) -> Result<(ServiceKind, usize, DataSpec, usize), SpecError> {
    const KINDS: &[&str] = &["knn", "kmeans_assign", "ensemble", "knn_sharded"];
    const DATA: &[&str] = &["iris", "blobs"];
    check_keys(
        sec,
        &[
            "kind", "k", "data", "split", "split_seed", "n", "dims", "classes", "spread", "seed",
            "centroid_seed", "hidden", "epochs", "train_seed",
        ],
        &[],
    )?;
    let kind_entry = req(sec, "kind")?;
    let kind_name = as_str(sec, kind_entry)?;
    let kind = match kind_name.as_str() {
        "knn" => ServiceKind::Knn,
        "knn_sharded" => ServiceKind::KnnSharded,
        "kmeans_assign" => ServiceKind::KmeansAssign {
            centroid_seed: opt(sec, "centroid_seed", as_u64)?.unwrap_or(1),
        },
        "ensemble" => ServiceKind::Ensemble {
            hidden: opt(sec, "hidden", as_usize)?.unwrap_or(16),
            epochs: opt(sec, "epochs", as_usize)?.unwrap_or(4),
            train_seed: opt(sec, "train_seed", as_u64)?.unwrap_or(1),
        },
        other => {
            return Err(SpecError::at(
                kind_entry.line,
                &sec.name,
                format!("unknown service kind `{other}` (known: {})", KINDS.join(", ")),
            )
            .with_hint_from(other, KINDS))
        }
    };
    let data_entry = req(sec, "data")?;
    let data_name = as_str(sec, data_entry)?;
    let data = match data_name.as_str() {
        "iris" => {
            let split = match (opt(sec, "split", as_f64)?, opt(sec, "split_seed", as_u64)?) {
                (Some(frac), seed) => Some((frac, seed.unwrap_or(0))),
                (None, Some(_)) => {
                    return Err(SpecError::at(
                        sec.get("split_seed").expect("present").line,
                        &sec.name,
                        "`split_seed` without `split`",
                    ))
                }
                (None, None) => None,
            };
            DataSpec::Iris { split }
        }
        "blobs" => DataSpec::Blobs(blob_params(sec, "")?),
        other => {
            return Err(SpecError::at(
                data_entry.line,
                &sec.name,
                format!("service data must be one of: {}", DATA.join(", ")),
            )
            .with_hint_from(other, DATA))
        }
    };
    let k = opt(sec, "k", as_usize)?.unwrap_or(5);
    Ok((kind, k, data, sec.line))
}

fn trace_spec(sec: &RawSection) -> Result<TraceSpec, SpecError> {
    const KINDS: &[&str] = &["test_split", "queries", "keyed_queries"];
    check_keys(
        sec,
        &[
            "kind", "seed", "ticks", "rate", "pool_n", "pool_dims", "pool_classes", "pool_spread",
            "pool_seed",
        ],
        &[],
    )?;
    let kind_entry = req(sec, "kind")?;
    let kind_name = as_str(sec, kind_entry)?;
    match kind_name.as_str() {
        "test_split" => Ok(TraceSpec::TestSplit),
        "queries" | "keyed_queries" => {
            let pool = blob_params(sec, "pool_")?;
            let seed = as_u64(sec, req(sec, "seed")?)?;
            let ticks = as_u64(sec, req(sec, "ticks")?)?;
            let rate = as_f64(sec, req(sec, "rate")?)?;
            Ok(if kind_name == "queries" {
                TraceSpec::Queries { pool, seed, ticks, rate }
            } else {
                TraceSpec::KeyedQueries { pool, seed, ticks, rate }
            })
        }
        other => Err(SpecError::at(
            kind_entry.line,
            &sec.name,
            format!("unknown trace kind `{other}` (known: {})", KINDS.join(", ")),
        )
        .with_hint_from(other, KINDS)),
    }
}

fn fault_spec(sec: &RawSection) -> Result<FaultSpec, SpecError> {
    check_keys(sec, &["seed", "drop_p", "dup_p", "reorder_p", "delay_ms", "kill", "revive"], &[])?;
    let mut kills = Vec::new();
    for e in sec.get_all("kill") {
        kills.push(rank_at(sec, e)?);
    }
    let mut revives = Vec::new();
    for e in sec.get_all("revive") {
        revives.push(rank_at(sec, e)?);
    }
    Ok(FaultSpec {
        seed: as_u64(sec, req(sec, "seed")?)?,
        drop_p: opt(sec, "drop_p", as_f64)?.unwrap_or(0.0),
        dup_p: opt(sec, "dup_p", as_f64)?.unwrap_or(0.0),
        reorder_p: opt(sec, "reorder_p", as_f64)?.unwrap_or(0.0),
        delay_ms: opt(sec, "delay_ms", as_u64)?.unwrap_or(0),
        kills,
        revives,
    })
}

// ---------------------------------------------------------------------------
// Document assembly + cross-reference validation.

fn from_doc(doc: &RawDoc) -> Result<ScenarioSpec, SpecError> {
    let mut name = None;
    let mut run = RunSpec::default();
    let mut sources: Vec<SourceDecl> = Vec::new();
    let mut stages: Vec<StageDecl> = Vec::new();
    let mut sink = None;
    let mut service_core = None;
    let mut serve = ServeSpec::default();
    let mut shard = ShardSpec::default();
    let mut backoff = None;
    let mut scaling = Vec::new();
    let mut trace = None;
    let mut fault = None;
    let mut explain = false;

    for sec in &doc.sections {
        let (head, sub) = match sec.name.split_once('.') {
            Some((h, s)) => (h, Some(s)),
            None => (sec.name.as_str(), None),
        };
        let dup = |what: &str| SpecError::at(sec.line, &sec.name, format!("duplicate `[{what}]` section"));
        match head {
            "scenario" => {
                check_keys(sec, &["name"], &[])?;
                if name.is_some() {
                    return Err(dup("scenario"));
                }
                name = Some(as_str(sec, req(sec, "name")?)?);
            }
            "run" => {
                check_keys(sec, &["partitions", "optimizer", "spill_budget"], &[])?;
                run.partitions = opt(sec, "partitions", as_usize)?.unwrap_or(4).max(1);
                run.naive = match opt(sec, "optimizer", as_str)?.as_deref() {
                    None | Some("default") => false,
                    Some("naive") => true,
                    Some(other) => {
                        return Err(SpecError::at(
                            sec.get("optimizer").expect("present").line,
                            &sec.name,
                            format!("optimizer must be `default` or `naive`, got `{other}`"),
                        )
                        .with_hint_from(other, &["default", "naive"]))
                    }
                };
                run.spill_budget = opt(sec, "spill_budget", as_u64)?;
            }
            "source" => {
                let Some(sub) = sub else {
                    return Err(SpecError::at(sec.line, &sec.name, "sources need a name: `[source.NAME]`"));
                };
                if sources.iter().any(|s| s.name == sub) {
                    return Err(SpecError::at(sec.line, &sec.name, format!("duplicate source `{sub}`")));
                }
                sources.push(source_decl(sec, sub)?);
            }
            "stage" => {
                let Some(sub) = sub else {
                    return Err(SpecError::at(sec.line, &sec.name, "stages need a name: `[stage.NAME]`"));
                };
                if stages.iter().any(|s| s.name == sub) || sources.iter().any(|s| s.name == sub) {
                    return Err(SpecError::at(sec.line, &sec.name, format!("duplicate name `{sub}`")));
                }
                stages.push(stage_decl(sec, sub)?);
            }
            "sink" => {
                if sink.is_some() {
                    return Err(dup("sink"));
                }
                sink = Some(sink_spec(sec)?);
            }
            "service" => {
                if service_core.is_some() {
                    return Err(dup("service"));
                }
                service_core = Some(service_spec(sec)?);
            }
            "serve" => {
                check_keys(sec, &["capacity", "max_batch_size", "max_wait", "workers"], &[])?;
                serve = ServeSpec {
                    capacity: opt(sec, "capacity", as_usize)?,
                    max_batch_size: opt(sec, "max_batch_size", as_usize)?,
                    max_wait: opt(sec, "max_wait", as_u64)?,
                    workers: opt(sec, "workers", as_usize)?,
                };
            }
            "shard" => {
                check_keys(
                    sec,
                    &[
                        "num_shards", "vnodes", "seed", "initial_ranks", "capacity",
                        "max_batch_size", "max_wait", "full_rebuild",
                    ],
                    &[],
                )?;
                shard = ShardSpec {
                    num_shards: opt(sec, "num_shards", as_usize)?,
                    vnodes: opt(sec, "vnodes", as_usize)?,
                    seed: opt(sec, "seed", as_u64)?,
                    initial_ranks: opt(sec, "initial_ranks", as_usize)?,
                    capacity: opt(sec, "capacity", as_usize)?,
                    max_batch_size: opt(sec, "max_batch_size", as_usize)?,
                    max_wait: opt(sec, "max_wait", as_u64)?,
                    full_rebuild: opt(sec, "full_rebuild", as_bool)?,
                };
            }
            "backoff" => {
                check_keys(sec, &["base", "jitter", "seed"], &[])?;
                backoff = Some((
                    as_u64(sec, req(sec, "base")?)?,
                    opt(sec, "jitter", as_u64)?.unwrap_or(0),
                    opt(sec, "seed", as_u64)?.unwrap_or(0),
                ));
            }
            "scaling" => {
                check_keys(sec, &["event"], &[])?;
                for e in sec.get_all("event") {
                    scaling.push(scale_event(sec, e)?);
                }
            }
            "fault" => {
                if fault.is_some() {
                    return Err(dup("fault"));
                }
                fault = Some(fault_spec(sec)?);
            }
            "trace" => {
                if trace.is_some() {
                    return Err(dup("trace"));
                }
                trace = Some(trace_spec(sec)?);
            }
            "report" => {
                check_keys(sec, &["explain"], &[])?;
                explain = opt(sec, "explain", as_bool)?.unwrap_or(false);
            }
            other => {
                return Err(SpecError::at(
                    sec.line,
                    &sec.name,
                    format!("unknown section `[{other}]` (known: {})", KNOWN_SECTIONS.join(", ")),
                )
                .with_hint_from(other, KNOWN_SECTIONS))
            }
        }
    }

    let name = name.ok_or_else(|| SpecError::at(0, "", "spec has no `[scenario]` section"))?;

    // Cross-reference checks, while names are cheap to hint against.
    let known_names = |sources: &[SourceDecl], stages: &[StageDecl], upto: usize| -> Vec<String> {
        sources
            .iter()
            .map(|s| s.name.clone())
            .chain(stages.iter().take(upto).map(|s| s.name.clone()))
            .collect()
    };
    for (idx, st) in stages.iter().enumerate() {
        let names = known_names(&sources, &stages, idx);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        if !refs.contains(&st.input.as_str()) {
            return Err(SpecError::at(
                st.line,
                &format!("stage.{}", st.name),
                format!("input `{}` is not a source or earlier stage", st.input),
            )
            .with_hint_from(&st.input, &refs));
        }
        if let StageOp::Join { with, line, .. } = &st.op {
            if !refs.contains(&with.as_str()) {
                return Err(SpecError::at(
                    *line,
                    &format!("stage.{}", st.name),
                    format!("join `with = {with}` is not a source or earlier stage"),
                )
                .with_hint_from(with, &refs));
            }
        }
        if let StageOp::Locate { boundaries } = &st.op {
            let is_city = sources.iter().any(|s| {
                s.name == *boundaries
                    && matches!(
                        s.kind,
                        SourceKind::CityArrests { .. } | SourceKind::CityPopulation { .. }
                    )
            });
            if !is_city {
                let cities: Vec<&str> = sources
                    .iter()
                    .filter(|s| {
                        matches!(
                            s.kind,
                            SourceKind::CityArrests { .. } | SourceKind::CityPopulation { .. }
                        )
                    })
                    .map(|s| s.name.as_str())
                    .collect();
                return Err(SpecError::at(
                    st.line,
                    &format!("stage.{}", st.name),
                    format!("locate `boundaries = {boundaries}` must name a city source"),
                )
                .with_hint_from(boundaries, &cities));
            }
        }
    }
    if let Some(sink) = &sink {
        let names = known_names(&sources, &stages, stages.len());
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        if !refs.contains(&sink.from.as_str()) {
            return Err(SpecError::at(
                sink.line,
                "sink",
                format!("`from = {}` is not a source or stage", sink.from),
            )
            .with_hint_from(&sink.from, &refs));
        }
    }

    let service = match service_core {
        Some((kind, k, data, line)) => {
            let trace = trace
                .ok_or_else(|| SpecError::at(line, "service", "a `[service]` needs a `[trace]` section"))?;
            if matches!(trace, TraceSpec::TestSplit)
                && !matches!(&data, DataSpec::Iris { split: Some(_) })
            {
                return Err(SpecError::at(
                    line,
                    "trace",
                    "trace kind `test_split` needs `data = iris` with a `split` in [service]",
                ));
            }
            match (&kind, &trace) {
                (ServiceKind::KnnSharded, TraceSpec::KeyedQueries { .. }) => {}
                (ServiceKind::KnnSharded, _) => {
                    return Err(SpecError::at(
                        line,
                        "trace",
                        "service `knn_sharded` routes by key: use trace kind `keyed_queries`",
                    ))
                }
                (_, TraceSpec::KeyedQueries { .. }) => {
                    return Err(SpecError::at(
                        line,
                        "trace",
                        "trace kind `keyed_queries` is only for service `knn_sharded`",
                    ))
                }
                _ => {}
            }
            Some(ServiceSpec {
                kind,
                line,
                k,
                data,
                serve,
                shard,
                backoff,
                scaling,
                trace,
            })
        }
        None => {
            if trace.is_some() {
                return Err(SpecError::at(0, "trace", "a `[trace]` needs a `[service]` section"));
            }
            None
        }
    };

    match (&sink, &service) {
        (None, None) => {
            return Err(SpecError::at(
                0,
                "",
                "spec declares neither a `[sink]` nor a `[service]` — nothing to run",
            ))
        }
        (Some(_), Some(_)) => {
            return Err(SpecError::at(
                0,
                "",
                "spec declares both `[sink]` and `[service]` — pick one per scenario",
            ))
        }
        _ => {}
    }

    Ok(ScenarioSpec {
        name,
        run,
        sources,
        stages,
        sink,
        service,
        fault,
        explain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CITY: &str = r#"
[scenario]
name = demo

[run]
partitions = 2

[source.arrests]
kind = city_arrests
grid_w = 4
grid_h = 4
arrests = 1000
seed = 7

[stage.clean]
input = arrests
op = parse_arrest

[stage.current]
input = clean
op = filter
where = "year == 2021"

[sink]
from = current
"#;

    #[test]
    fn validates_a_pipeline_spec() {
        let spec = parse_scenario(CITY).unwrap();
        assert_eq!(spec.name, "demo");
        assert_eq!(spec.run.partitions, 2);
        assert_eq!(spec.sources.len(), 1);
        assert_eq!(spec.stages.len(), 2);
        assert!(spec.sink.is_some());
        assert!(spec.service.is_none());
    }

    #[test]
    fn unknown_key_hints_nearest() {
        let err = parse_scenario("[scenario]\nname = x\n[run]\npartions = 4\n[sink]\nfrom = x\n").unwrap_err();
        assert_eq!(err.line, 4);
        assert_eq!(err.section, "run");
        assert_eq!(err.hint.as_deref(), Some("partitions"));
    }

    #[test]
    fn dangling_stage_input_hints_nearest_name() {
        let err = parse_scenario(
            "[scenario]\nname = x\n[source.rows]\nkind = iris\n[stage.s]\ninput = rosw\nop = parse_arrest\n[sink]\nfrom = s\n",
        )
        .unwrap_err();
        assert_eq!(err.section, "stage.s");
        assert_eq!(err.hint.as_deref(), Some("rows"));
    }

    #[test]
    fn sink_or_service_required() {
        let err = parse_scenario("[scenario]\nname = x\n").unwrap_err();
        assert!(err.message.contains("neither"));
    }

    #[test]
    fn service_requires_trace() {
        let err = parse_scenario(
            "[scenario]\nname = x\n[service]\nkind = knn\ndata = iris\nsplit = 0.7\n",
        )
        .unwrap_err();
        assert!(err.message.contains("needs a `[trace]`"));
    }

    #[test]
    fn scaling_and_fault_entries_parse() {
        let spec = parse_scenario(
            "[scenario]\nname = x\n[service]\nkind = knn_sharded\ndata = blobs\nn = 10\ndims = 2\nclasses = 2\nspread = 1.0\nseed = 1\n[scaling]\nevent = \"add 4 @ 6\"\nevent = \"drain 1 @ 18\"\n[fault]\nseed = 42\ndup_p = 0.15\nkill = \"2 @ 2\"\nrevive = \"2 @ 3\"\n[trace]\nkind = keyed_queries\npool_n = 5\npool_dims = 2\npool_classes = 2\npool_spread = 1.0\npool_seed = 2\nseed = 3\nticks = 8\nrate = 1.0\n",
        )
        .unwrap();
        let svc = spec.service.unwrap();
        assert_eq!(svc.scaling.len(), 2);
        assert_eq!(svc.scaling[0], (6, ScaleEvent::Add(4)));
        assert_eq!(svc.scaling[1], (18, ScaleEvent::Drain(1)));
        let fault = spec.fault.unwrap();
        assert_eq!(fault.kills, vec![(2, 2)]);
        assert_eq!(fault.revives, vec![(2, 3)]);
    }
}
