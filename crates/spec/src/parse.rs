//! The `.peachy` surface syntax: a hand-rolled, no-dependency sectioned
//! key/value format (TOML-lite).
//!
//! ```text
//! # comment
//! [section]          # or [section.name]
//! key = "string"     # \n \t \" \\ escapes
//! key = 42           # integer
//! key = 1.5          # float
//! key = true         # bool
//! key = bareword     # unquoted single token → string
//! ```
//!
//! Keys may repeat inside a section (`kill = …` twice schedules two
//! deaths); entry order is preserved. This module only builds the raw
//! document — [`crate::spec`] validates it into a typed
//! [`ScenarioSpec`](crate::ScenarioSpec), attaching the known-key tables
//! that power the "did you mean" hints.
//!
//! **Error quality is a feature**: every failure anywhere in the layer
//! (lexing, validation, compilation) is a [`SpecError`] carrying the
//! 1-based line number, the enclosing `[section]`, a message, and — when
//! a near-miss against a known vocabulary exists — a nearest-key hint.

use std::fmt;

/// Any failure in the scenario layer: parse, validation, or compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line in the spec text (0 when no line applies).
    pub line: usize,
    /// The enclosing section (`"stage.counts"`), or `""` before any.
    pub section: String,
    /// What went wrong.
    pub message: String,
    /// Nearest known key/name, when one is plausibly intended.
    pub hint: Option<String>,
}

impl SpecError {
    /// An error at `line` inside `section`.
    pub fn at(line: usize, section: &str, message: impl Into<String>) -> Self {
        Self {
            line,
            section: section.to_string(),
            message: message.into(),
            hint: None,
        }
    }

    /// Attach a "did you mean" hint: the nearest of `known` to `got`, if
    /// any is close enough to be a plausible typo.
    pub fn with_hint_from(mut self, got: &str, known: &[&str]) -> Self {
        self.hint = nearest(got, known).map(str::to_string);
        self
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: line {}", self.line)?;
        if !self.section.is_empty() {
            write!(f, " [{}]", self.section)?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(hint) = &self.hint {
            write!(f, " — did you mean `{hint}`?")?;
        }
        Ok(())
    }
}

impl std::error::Error for SpecError {}

/// Optimal-string-alignment distance: Levenshtein plus adjacent
/// transposition at cost 1, so `yaer` sits one edit from `year`.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev2 = vec![0usize; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            let mut best = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            if i > 0 && j > 0 && a[i] == b[j - 1] && a[i - 1] == b[j] {
                best = best.min(prev2[j - 1] + 1);
            }
            cur[j + 1] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The nearest of `known` to `got`, if within a typo-plausible distance
/// (≤ 1 for short words, ≤ len/3 for longer ones).
pub fn nearest<'a>(got: &str, known: &[&'a str]) -> Option<&'a str> {
    let budget = (got.chars().count() / 3).max(1);
    known
        .iter()
        .map(|k| (edit_distance(got, k), *k))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, k)| (*d, k.len()))
        .map(|(_, k)| k)
}

/// One scalar value as written in the spec.
#[derive(Debug, Clone, PartialEq)]
pub enum RawValue {
    /// Quoted or bareword string.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
}

impl RawValue {
    /// Tag for type-mismatch messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            RawValue::Str(_) => "string",
            RawValue::Int(_) => "integer",
            RawValue::Float(_) => "float",
            RawValue::Bool(_) => "bool",
        }
    }
}

/// One `key = value` line.
#[derive(Debug, Clone)]
pub struct RawEntry {
    /// The key, verbatim (may be dotted: `col.per_100k`).
    pub key: String,
    /// The parsed scalar.
    pub value: RawValue,
    /// 1-based source line.
    pub line: usize,
}

/// One `[section]` block with its entries in source order.
#[derive(Debug, Clone)]
pub struct RawSection {
    /// Full section name (`"stage.counts"`).
    pub name: String,
    /// 1-based line of the `[…]` header.
    pub line: usize,
    /// Entries in source order; keys may repeat.
    pub entries: Vec<RawEntry>,
}

/// A parsed spec file: sections in source order.
#[derive(Debug, Clone, Default)]
pub struct RawDoc {
    /// Sections in source order.
    pub sections: Vec<RawSection>,
}

/// Parse `.peachy` text into the raw section/entry document.
pub fn parse_document(text: &str) -> Result<RawDoc, SpecError> {
    let mut doc = RawDoc::default();
    let mut section: Option<RawSection> = None;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        let section_name = section.as_ref().map(|s| s.name.clone()).unwrap_or_default();
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(SpecError::at(
                    line_no,
                    &section_name,
                    format!("unterminated section header `{line}`"),
                ));
            };
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                return Err(SpecError::at(
                    line_no,
                    &section_name,
                    format!("invalid section name `[{name}]` (letters, digits, `_`, `.`)"),
                ));
            }
            if let Some(done) = section.take() {
                doc.sections.push(done);
            }
            section = Some(RawSection {
                name: name.to_string(),
                line: line_no,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(SpecError::at(
                line_no,
                &section_name,
                format!("expected `key = value` or `[section]`, got `{line}`"),
            ));
        };
        let key = key.trim();
        if key.is_empty()
            || !key
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        {
            return Err(SpecError::at(
                line_no,
                &section_name,
                format!("invalid key `{key}` (letters, digits, `_`, `.`)"),
            ));
        }
        let Some(sec) = section.as_mut() else {
            return Err(SpecError::at(
                line_no,
                "",
                format!("`{key} = …` before any [section] header"),
            ));
        };
        let value = parse_value(value.trim(), line_no, &sec.name)?;
        sec.entries.push(RawEntry {
            key: key.to_string(),
            value,
            line: line_no,
        });
    }
    if let Some(done) = section.take() {
        doc.sections.push(done);
    }
    Ok(doc)
}

/// Strip a trailing `# comment`, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str => escaped = !escaped,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn parse_value(src: &str, line: usize, section: &str) -> Result<RawValue, SpecError> {
    if src.is_empty() {
        return Err(SpecError::at(line, section, "missing value after `=`"));
    }
    if let Some(rest) = src.strip_prefix('"') {
        return parse_string(rest, line, section);
    }
    match src {
        "true" => return Ok(RawValue::Bool(true)),
        "false" => return Ok(RawValue::Bool(false)),
        _ => {}
    }
    let numeric_start = src.starts_with(|c: char| c.is_ascii_digit() || c == '-' || c == '+');
    if numeric_start {
        if let Ok(i) = src.replace('_', "").parse::<i64>() {
            return Ok(RawValue::Int(i));
        }
        if let Ok(f) = src.replace('_', "").parse::<f64>() {
            return Ok(RawValue::Float(f));
        }
        return Err(SpecError::at(
            line,
            section,
            format!("`{src}` looks numeric but parses as neither integer nor float"),
        ));
    }
    // Bareword: a single identifier-ish token is a string.
    if src
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == ':' || c == '-')
    {
        return Ok(RawValue::Str(src.to_string()));
    }
    Err(SpecError::at(
        line,
        section,
        format!("cannot parse value `{src}` (quote strings with spaces)"),
    ))
}

fn parse_string(rest: &str, line: usize, section: &str) -> Result<RawValue, SpecError> {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let tail: String = chars.collect();
                if !tail.trim().is_empty() {
                    return Err(SpecError::at(
                        line,
                        section,
                        format!("trailing garbage after closing quote: `{}`", tail.trim()),
                    ));
                }
                return Ok(RawValue::Str(out));
            }
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    return Err(SpecError::at(
                        line,
                        section,
                        format!("unknown escape `\\{other}` (know \\n \\t \\\" \\\\)"),
                    ));
                }
                None => break,
            },
            c => out.push(c),
        }
    }
    Err(SpecError::at(line, section, "unterminated string literal"))
}

impl RawSection {
    /// First entry with `key`, if present.
    pub fn get(&self, key: &str) -> Option<&RawEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Every entry with `key`, in order (repeatable keys).
    pub fn get_all<'a>(&'a self, key: &str) -> impl Iterator<Item = &'a RawEntry> {
        let key = key.to_string();
        self.entries.iter().filter(move |e| e.key == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_entries_and_types() {
        let doc = parse_document(
            "# a scenario\n[scenario]\nname = demo\n\n[source.rows]\nkind = inline\ntext = \"a b\\nc\"\nn = 42\nfrac = 0.5\nflag = true\n",
        )
        .unwrap();
        assert_eq!(doc.sections.len(), 2);
        assert_eq!(doc.sections[0].name, "scenario");
        let src = &doc.sections[1];
        assert_eq!(src.name, "source.rows");
        assert_eq!(src.get("text").unwrap().value, RawValue::Str("a b\nc".into()));
        assert_eq!(src.get("n").unwrap().value, RawValue::Int(42));
        assert_eq!(src.get("frac").unwrap().value, RawValue::Float(0.5));
        assert_eq!(src.get("flag").unwrap().value, RawValue::Bool(true));
    }

    #[test]
    fn repeated_keys_preserved_in_order() {
        let doc = parse_document("[fault]\nkill = a\nkill = b\n").unwrap();
        let kills: Vec<_> = doc.sections[0].get_all("kill").collect();
        assert_eq!(kills.len(), 2);
        assert_eq!(kills[0].value, RawValue::Str("a".into()));
        assert_eq!(kills[1].value, RawValue::Str("b".into()));
    }

    #[test]
    fn comments_respect_strings() {
        let doc = parse_document("[s]\nk = \"a # not a comment\" # real\n").unwrap();
        assert_eq!(
            doc.sections[0].get("k").unwrap().value,
            RawValue::Str("a # not a comment".into())
        );
    }

    #[test]
    fn errors_carry_line_and_section() {
        let err = parse_document("[stage.one]\nbad line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.section, "stage.one");
        let err = parse_document("key = 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("before any [section]"));
    }

    #[test]
    fn nearest_finds_plausible_typos_only() {
        assert_eq!(nearest("partions", &["partitions", "optimizer"]), Some("partitions"));
        assert_eq!(nearest("ky", &["key", "kind"]), Some("key"));
        assert_eq!(nearest("zzzzz", &["key", "kind"]), None);
    }

    #[test]
    fn unterminated_string_and_bad_escape_fail() {
        assert!(parse_document("[s]\nk = \"abc\n").is_err());
        let err = parse_document("[s]\nk = \"a\\q\"\n").unwrap_err();
        assert!(err.message.contains("unknown escape"));
    }
}
