//! The narrow-transform expression language: what `filter`, `map`, and
//! sink `sort` keys are written in.
//!
//! Grammar (standard precedence, left-associative):
//!
//! ```text
//! expr  := or
//! or    := and ("||" and)*
//! and   := cmp ("&&" cmp)*
//! cmp   := add (("==" | "!=" | "<=" | ">=" | "<" | ">") add)?
//! add   := mul (("+" | "-") mul)*
//! mul   := unary (("*" | "/" | "%") unary)*
//! unary := ("-" | "!")? atom
//! atom  := int | float | "string" | true | false | column | "(" expr ")"
//! ```
//!
//! Columns resolve against the stage's input schema **at compile time**
//! — an unknown column is a [`SpecError`] with a nearest-column hint,
//! not a runtime surprise. Numeric semantics mirror what a hand-written
//! Rust pipeline would do: `int ∘ int → int`, any float operand promotes
//! the operation to `f64` (so `arrests * 100000.0 / population` computes
//! exactly like `arrests as f64 * 100_000.0 / population as f64`).
//! Comparisons accept mixed numbers (promote), strings with strings, and
//! bools with bools. A type mismatch *at evaluation time* panics with
//! the offending expression — spec evaluation is deliberately strict so
//! equivalence suites never paper over a type confusion.

use crate::parse::SpecError;
use crate::value::Value;

/// A compiled expression over a row schema.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Literal.
    Lit(Value),
    /// Column reference, pre-resolved to its index.
    Col(usize, String),
    /// Unary negation / not.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
}

fn lex(src: &str, line: usize, section: &str) -> Result<Vec<Tok>, SpecError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            match chars.get(i + 1) {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                other => {
                                    return Err(SpecError::at(
                                        line,
                                        section,
                                        format!("bad escape in expression string: {other:?}"),
                                    ))
                                }
                            }
                            i += 2;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => {
                            return Err(SpecError::at(
                                line,
                                section,
                                format!("unterminated string in expression `{src}`"),
                            ))
                        }
                    }
                }
                toks.push(Tok::Str(s));
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.' || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().filter(|&&c| c != '_').collect();
                if text.contains('.') {
                    let f: f64 = text.parse().map_err(|_| {
                        SpecError::at(line, section, format!("bad float literal `{text}`"))
                    })?;
                    toks.push(Tok::Float(f));
                } else {
                    let n: i64 = text.parse().map_err(|_| {
                        SpecError::at(line, section, format!("bad integer literal `{text}`"))
                    })?;
                    toks.push(Tok::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect()));
            }
            _ => {
                let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
                let op = match two.as_str() {
                    "==" | "!=" | "<=" | ">=" | "&&" | "||" => {
                        i += 2;
                        match two.as_str() {
                            "==" => "==",
                            "!=" => "!=",
                            "<=" => "<=",
                            ">=" => ">=",
                            "&&" => "&&",
                            _ => "||",
                        }
                    }
                    _ => {
                        i += 1;
                        match c {
                            '+' => "+",
                            '-' => "-",
                            '*' => "*",
                            '/' => "/",
                            '%' => "%",
                            '<' => "<",
                            '>' => ">",
                            '!' => "!",
                            other => {
                                return Err(SpecError::at(
                                    line,
                                    section,
                                    format!("unexpected character `{other}` in expression `{src}`"),
                                ))
                            }
                        }
                    }
                };
                toks.push(Tok::Op(op));
            }
        }
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    schema: &'a [String],
    src: &'a str,
    line: usize,
    section: &'a str,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> SpecError {
        SpecError::at(self.line, self.section, msg)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat_op(&mut self, ops: &[&'static str]) -> Option<&'static str> {
        if let Some(Tok::Op(op)) = self.peek() {
            if ops.contains(op) {
                let op = *op;
                self.pos += 1;
                return Some(op);
            }
        }
        None
    }

    fn expr(&mut self) -> Result<Expr, SpecError> {
        let mut lhs = self.and()?;
        while self.eat_op(&["||"]).is_some() {
            let rhs = self.and()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Expr, SpecError> {
        let mut lhs = self.cmp()?;
        while self.eat_op(&["&&"]).is_some() {
            let rhs = self.cmp()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr, SpecError> {
        let lhs = self.add()?;
        if let Some(op) = self.eat_op(&["==", "!=", "<=", ">=", "<", ">"]) {
            let rhs = self.add()?;
            let op = match op {
                "==" => BinOp::Eq,
                "!=" => BinOp::Ne,
                "<=" => BinOp::Le,
                ">=" => BinOp::Ge,
                "<" => BinOp::Lt,
                _ => BinOp::Gt,
            };
            return Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn add(&mut self) -> Result<Expr, SpecError> {
        let mut lhs = self.mul()?;
        while let Some(op) = self.eat_op(&["+", "-"]) {
            let rhs = self.mul()?;
            let op = if op == "+" { BinOp::Add } else { BinOp::Sub };
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, SpecError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.eat_op(&["*", "/", "%"]) {
            let rhs = self.unary()?;
            let op = match op {
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                _ => BinOp::Rem,
            };
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, SpecError> {
        if self.eat_op(&["-"]).is_some() {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary()?)));
        }
        if self.eat_op(&["!"]).is_some() {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, SpecError> {
        let tok = self
            .peek()
            .cloned()
            .ok_or_else(|| self.err(format!("expression `{}` ends unexpectedly", self.src)))?;
        self.pos += 1;
        match tok {
            Tok::Int(i) => Ok(Expr::Lit(Value::Int(i))),
            Tok::Float(f) => Ok(Expr::Lit(Value::Float(f))),
            Tok::Str(s) => Ok(Expr::Lit(Value::Str(s))),
            Tok::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Lit(Value::Bool(true))),
                "false" => Ok(Expr::Lit(Value::Bool(false))),
                _ => match self.schema.iter().position(|c| c == &name) {
                    Some(idx) => Ok(Expr::Col(idx, name)),
                    None => {
                        let known: Vec<&str> = self.schema.iter().map(String::as_str).collect();
                        Err(self
                            .err(format!(
                                "unknown column `{name}` (columns: {})",
                                known.join(", ")
                            ))
                            .with_hint_from(&name, &known))
                    }
                },
            },
            Tok::LParen => {
                let inner = self.expr()?;
                match self.peek() {
                    Some(Tok::RParen) => {
                        self.pos += 1;
                        Ok(inner)
                    }
                    _ => Err(self.err(format!("missing `)` in expression `{}`", self.src))),
                }
            }
            other => Err(self.err(format!("unexpected token {other:?} in `{}`", self.src))),
        }
    }
}

/// Parse `src` against `schema`, resolving column names to indices.
pub fn parse_expr(
    src: &str,
    schema: &[String],
    line: usize,
    section: &str,
) -> Result<Expr, SpecError> {
    let toks = lex(src, line, section)?;
    if toks.is_empty() {
        return Err(SpecError::at(line, section, "empty expression"));
    }
    let mut p = Parser {
        toks,
        pos: 0,
        schema,
        src,
        line,
        section,
    };
    let e = p.expr()?;
    if p.pos != p.toks.len() {
        return Err(SpecError::at(
            line,
            section,
            format!("trailing tokens after expression `{src}`"),
        ));
    }
    Ok(e)
}

impl Expr {
    /// Evaluate against one row. Type mismatches panic (see module docs).
    pub fn eval(&self, row: &[Value]) -> Value {
        match self {
            Expr::Lit(v) => v.clone(),
            Expr::Col(idx, name) => row
                .get(*idx)
                .unwrap_or_else(|| panic!("column `{name}` (index {idx}) out of row bounds"))
                .clone(),
            Expr::Unary(op, inner) => {
                let v = inner.eval(row);
                match (op, v) {
                    (UnOp::Neg, Value::Int(i)) => Value::Int(-i),
                    (UnOp::Neg, Value::Float(f)) => Value::Float(-f),
                    (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                    (op, v) => panic!("spec expression: cannot apply {op:?} to {}", v.type_name()),
                }
            }
            Expr::Bin(op, lhs, rhs) => {
                // Short-circuit the boolean connectives.
                match op {
                    BinOp::And => {
                        return match lhs.eval(row) {
                            Value::Bool(false) => Value::Bool(false),
                            Value::Bool(true) => match rhs.eval(row) {
                                Value::Bool(b) => Value::Bool(b),
                                v => panic!("spec expression: && needs bools, got {}", v.type_name()),
                            },
                            v => panic!("spec expression: && needs bools, got {}", v.type_name()),
                        }
                    }
                    BinOp::Or => {
                        return match lhs.eval(row) {
                            Value::Bool(true) => Value::Bool(true),
                            Value::Bool(false) => match rhs.eval(row) {
                                Value::Bool(b) => Value::Bool(b),
                                v => panic!("spec expression: || needs bools, got {}", v.type_name()),
                            },
                            v => panic!("spec expression: || needs bools, got {}", v.type_name()),
                        }
                    }
                    _ => {}
                }
                let a = lhs.eval(row);
                let b = rhs.eval(row);
                eval_bin(*op, a, b)
            }
        }
    }

    /// Evaluate and require a boolean (filter predicates).
    pub fn eval_bool(&self, row: &[Value]) -> bool {
        match self.eval(row) {
            Value::Bool(b) => b,
            v => panic!(
                "spec expression: filter must evaluate to bool, got {}",
                v.type_name()
            ),
        }
    }
}

/// `a + b` under the expression language's promotion rules — the
/// combiner `sum`/`count` stages reduce with.
pub(crate) fn add_values(a: Value, b: Value) -> Value {
    eval_bin(BinOp::Add, a, b)
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    use Value::*;
    match op {
        Add | Sub | Mul | Div | Rem => match (a, b) {
            (Int(x), Int(y)) => Int(match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => x.checked_div(y).unwrap_or_else(|| panic!("spec expression: integer division by zero")),
                _ => x.checked_rem(y).unwrap_or_else(|| panic!("spec expression: integer modulo by zero")),
            }),
            (Str(x), Str(y)) if op == Add => Str(x + &y),
            (a, b) => {
                let (x, y) = match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => panic!(
                        "spec expression: arithmetic on {} and {}",
                        a.type_name(),
                        b.type_name()
                    ),
                };
                Float(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    _ => x % y,
                })
            }
        },
        Eq | Ne => {
            let equal = match (&a, &b) {
                // Mixed numbers compare by promoted value.
                (Int(x), Float(y)) => (*x as f64) == *y,
                (Float(x), Int(y)) => *x == (*y as f64),
                _ => a == b,
            };
            Bool(if op == Eq { equal } else { !equal })
        }
        Lt | Le | Gt | Ge => {
            let ord = match (&a, &b) {
                (Int(x), Int(y)) => x.partial_cmp(y),
                (Str(x), Str(y)) => x.partial_cmp(y),
                (a, b) => match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => x.partial_cmp(&y),
                    _ => panic!(
                        "spec expression: cannot order {} and {}",
                        a.type_name(),
                        b.type_name()
                    ),
                },
            };
            let Some(ord) = ord else {
                panic!("spec expression: unordered comparison (NaN operand)")
            };
            Bool(match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                _ => ord.is_ge(),
            })
        }
        And | Or => unreachable!("short-circuited above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(cols: &[&str]) -> Vec<String> {
        cols.iter().map(|s| s.to_string()).collect()
    }

    fn eval(src: &str, cols: &[&str], row: &[Value]) -> Value {
        parse_expr(src, &schema(cols), 1, "test").unwrap().eval(row)
    }

    #[test]
    fn arithmetic_promotes_like_rust() {
        assert_eq!(eval("2 + 3 * 4", &[], &[]), Value::Int(14));
        assert_eq!(eval("7 / 2", &[], &[]), Value::Int(3));
        assert_eq!(eval("7 / 2.0", &[], &[]), Value::Float(3.5));
        // The per-100k shape: (int → f64) * float / (int → f64).
        let v = eval(
            "arrests * 100000.0 / population",
            &["arrests", "population"],
            &[Value::Int(7), Value::Int(13000)],
        );
        assert_eq!(v, Value::Float(7f64 * 100000.0 / 13000f64));
    }

    #[test]
    fn comparisons_and_logic() {
        let row = [Value::Int(2021), Value::Str("fraud".into())];
        assert_eq!(
            eval("year == 2021 && offense != \"theft\"", &["year", "offense"], &row),
            Value::Bool(true)
        );
        assert_eq!(eval("year < 2000 || year >= 2021", &["year", "offense"], &row), Value::Bool(true));
        assert_eq!(eval("!(year == 2021)", &["year", "offense"], &row), Value::Bool(false));
    }

    #[test]
    fn string_concat_and_compare() {
        assert_eq!(
            eval("\"a\" + \"b\" < \"ac\"", &[], &[]),
            Value::Bool(true)
        );
    }

    #[test]
    fn unknown_column_hints_nearest() {
        let err = parse_expr("yaer == 2021", &schema(&["year", "offense"]), 7, "stage.f").unwrap_err();
        assert_eq!(err.line, 7);
        assert_eq!(err.section, "stage.f");
        assert_eq!(err.hint.as_deref(), Some("year"));
    }

    #[test]
    fn syntax_errors_are_spec_errors() {
        assert!(parse_expr("1 +", &[], 1, "s").is_err());
        assert!(parse_expr("(1 + 2", &[], 1, "s").is_err());
        assert!(parse_expr("1 ~ 2", &[], 1, "s").is_err());
        assert!(parse_expr("", &[], 1, "s").is_err());
        assert!(parse_expr("1 2", &[], 1, "s").is_err());
    }
}
