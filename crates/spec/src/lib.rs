//! # peachy-spec — a declarative scenario layer
//!
//! Course assignments keep rewriting the same driver: build a dataset,
//! chain a handful of transforms, shuffle by a key, maybe join, collect,
//! sort, print — or stand up a model server and replay a query trace
//! against it. `peachy-spec` turns that driver into *data*: a small
//! sectioned key/value text format (`.peachy` files) that declares
//! sources, stages, sinks and services, and a compiler that lowers the
//! declaration onto the existing engine — [`peachy_dataflow`] lineage
//! for pipelines (so the plan optimizer and the spill seam apply
//! unchanged) and [`peachy_serve`] for services (including the elastic
//! sharded tier, with scripted scaling and fault plans straight from the
//! spec).
//!
//! The format is hand-rolled and dependency-free. A document is a list
//! of `[section]` headers with `key = value` entries; values are
//! booleans, 64-bit ints, floats, or (optionally quoted) strings.
//! Section order doesn't matter except that a stage may only reference
//! sources and *earlier* stages — lineage is a DAG by construction.
//!
//! ```text
//! [scenario]
//! name = wordish
//!
//! [source.rows]
//! kind = inline
//! columns = "word"
//! row = "peach"
//! row = "plum"
//! row = "peach"
//!
//! [stage.counts]
//! input = rows
//! op = count
//! key = word
//!
//! [sink]
//! from = counts
//! sort = "word"
//! ```
//!
//! ```
//! use peachy_spec::{Runner, RunOptions};
//! # let text = "[scenario]\nname = t\n[source.r]\nkind = inline\ncolumns = \"w\"\nrow = \"a\"\nrow = \"b\"\nrow = \"a\"\n[stage.c]\ninput = r\nop = count\nkey = w\n[sink]\nfrom = c\nsort = \"w\"\n";
//! let report = Runner::from_str(text).unwrap().run(&RunOptions::default()).unwrap();
//! assert_eq!(report.rows.len(), 2);
//! ```
//!
//! Three design rules keep the layer honest:
//!
//! 1. **Compile, don't interpret.** A spec lowers to the same
//!    [`Dataset`](peachy_dataflow::Dataset)/[`KeyedDataset`](peachy_dataflow::KeyedDataset)
//!    lineage a hand-written driver builds, so the optimizer's fusion,
//!    shuffle elision and spill budgeting — and the engine's
//!    determinism laws — apply without a parallel code path. The
//!    equivalence suite pins committed specs bit-identical (rows *and*
//!    shuffle counters) to their Rust twins.
//! 2. **Errors name the line.** Every parse or validation failure
//!    reports the line, the section, and — when a key or reference is
//!    merely misspelled — a `did you mean` hint from edit distance over
//!    the known names.
//! 3. **Chaos is part of the scenario.** A `[fault]` section compiles to
//!    the engine's [`FaultPlan`](peachy_cluster::FaultPlan); pipelines
//!    take its transport half on cluster backends, the sharded tier
//!    takes kills and revivals too, and a reseeded chaotic run must
//!    equal the clean one bit-for-bit.

pub mod compile;
pub mod expr;
pub mod parse;
pub mod run;
pub mod spec;
pub mod value;

pub use parse::{nearest, parse_document, RawDoc, RawEntry, RawSection, RawValue, SpecError};
pub use run::{Counters, RunOptions, Runner, ScenarioReport, ServeCounters};
pub use spec::{
    parse_scenario, BlobParams, CityParams, DataSpec, FaultSpec, RunSpec, ScenarioSpec,
    ServiceKind, ServiceSpec, SinkSpec, SourceDecl, SourceKind, StageDecl, StageOp, TraceSpec,
};
pub use value::{Row, Value};
