//! Lowering: a validated [`ScenarioSpec`] onto [`peachy_dataflow`]
//! lineage.
//!
//! Each source/stage becomes a [`Node`]: either rows (`Dataset<Row>` plus
//! a column-name schema) or a keyed dataset (`KeyedDataset<Value, Row>`
//! plus the key's name and the value columns). The compiler tracks which
//! world every stage lives in so that narrow ops stay narrow and keyed
//! stages keep their `HashKeyed` partitioning claim between an
//! aggregation and a join — which is exactly what lets the PR 6 optimizer
//! elide the join-side shuffle for spec pipelines just as it does for the
//! hand-written city twin. Expressions are compiled (and column names
//! resolved) here, at build time, so a bad expression is a [`SpecError`]
//! with a line and a hint rather than a runtime panic.
//!
//! The lowering mirrors the hand-written pipelines deliberately:
//! `count` is `key_by → with_stats → map_values(1) → reduce_by_key(+)`,
//! `key_by` is `KeyedDataset::from_dataset` over explicit pairs, joins
//! concatenate value columns — so a spec run reproduces its Rust twin's
//! rows *and* shuffle counters bit-for-bit.

use std::collections::HashMap;
use std::sync::Arc;

use peachy_data::geo::{locate, Nta, Point, SyntheticCity};
use peachy_data::iris::iris;
use peachy_data::synth::gaussian_blobs;
use peachy_data::LabeledDataset;
use peachy_dataflow::{Dataset, KeyedDataset, OptimizerConfig, ShuffleStats};

use crate::expr::{add_values, parse_expr};
use crate::parse::SpecError;
use crate::spec::{BlobParams, ScenarioSpec, SourceKind, StageOp};
use crate::value::{Row, Value};

/// One compiled source or stage.
pub(crate) enum Node {
    /// Plain rows with a column schema.
    Rows {
        /// The dataset.
        ds: Dataset<Row>,
        /// Column names.
        schema: Vec<String>,
    },
    /// A keyed dataset: key column + value columns.
    Keyed {
        /// The keyed dataset.
        ds: KeyedDataset<Value, Row>,
        /// Name of the key column.
        key_name: String,
        /// Names of the value columns.
        vschema: Vec<String>,
    },
}

impl Node {
    /// The flattened column view (`[key, …values]` for keyed nodes).
    pub(crate) fn columns(&self) -> Vec<String> {
        match self {
            Node::Rows { schema, .. } => schema.clone(),
            Node::Keyed {
                key_name, vschema, ..
            } => std::iter::once(key_name.clone())
                .chain(vschema.iter().cloned())
                .collect(),
        }
    }
}

/// A fully lowered scenario, ready for [`crate::run::Runner`].
pub(crate) struct Compiled {
    /// Every source and stage by name.
    pub nodes: HashMap<String, Node>,
    /// The run's single counter block (attached at every keyed boundary).
    pub stats: Arc<ShuffleStats>,
}

/// Rows for a blob dataset: `[label, x0, …]`.
pub(crate) fn labeled_rows(ds: &LabeledDataset) -> Vec<Row> {
    (0..ds.len())
        .map(|i| {
            std::iter::once(Value::Int(ds.labels[i] as i64))
                .chain(ds.points.row(i).iter().map(|&x| Value::Float(x)))
                .collect()
        })
        .collect()
}

/// Schema for a blob dataset: `label, x0..x{d-1}`.
fn labeled_schema(dims: usize) -> Vec<String> {
    std::iter::once("label".to_string())
        .chain((0..dims).map(|d| format!("x{d}")))
        .collect()
}

/// Build the [`LabeledDataset`] a [`BlobParams`] describes.
pub(crate) fn make_blobs(p: &BlobParams) -> LabeledDataset {
    gaussian_blobs(p.n, p.dims, p.classes as u32, p.spread, p.seed)
}

fn col_idx(schema: &[String], name: &str, line: usize, section: &str) -> Result<usize, SpecError> {
    schema.iter().position(|c| c == name).ok_or_else(|| {
        let known: Vec<&str> = schema.iter().map(String::as_str).collect();
        SpecError::at(
            line,
            section,
            format!("unknown column `{name}` (columns: {})", known.join(", ")),
        )
        .with_hint_from(name, &known)
    })
}

/// Lower every source and stage of `spec`.
pub(crate) fn compile(spec: &ScenarioSpec) -> Result<Compiled, SpecError> {
    let stats = ShuffleStats::new();
    let partitions = spec.run.partitions;
    let mut cfg = if spec.run.naive {
        OptimizerConfig::naive()
    } else {
        OptimizerConfig::default()
    };
    cfg.spill_budget = spec.run.spill_budget;

    let mut nodes: HashMap<String, Node> = HashMap::new();
    // Cities are deterministic in (config, seed); generate each distinct
    // one once even when several sources view it.
    let mut cities: Vec<(crate::spec::CityParams, Arc<SyntheticCity>)> = Vec::new();
    let mut city_for = |params: &crate::spec::CityParams| -> Arc<SyntheticCity> {
        if let Some((_, city)) = cities.iter().find(|(p, _)| p == params) {
            return Arc::clone(city);
        }
        let city = Arc::new(SyntheticCity::generate(params.config(), params.seed));
        cities.push((params.clone(), Arc::clone(&city)));
        city
    };
    // Source name → its city, for `locate` boundary lookups.
    let mut city_of: HashMap<String, Arc<SyntheticCity>> = HashMap::new();

    for src in &spec.sources {
        let node = match &src.kind {
            SourceKind::Inline { columns, rows } => Node::Rows {
                ds: Dataset::from_vec_with(rows.clone(), partitions, cfg),
                schema: columns.clone(),
            },
            SourceKind::CityArrests { city, historic } => {
                let city = city_for(city);
                city_of.insert(src.name.clone(), Arc::clone(&city));
                let records = if *historic {
                    &city.arrests_historic
                } else {
                    &city.arrests_current
                };
                let csv = SyntheticCity::arrests_csv(records);
                Node::Rows {
                    ds: Dataset::from_text(&csv, partitions)
                        .with_optimizer(cfg)
                        .map(|line| vec![Value::Str(line)]),
                    schema: vec!["line".to_string()],
                }
            }
            SourceKind::CityPopulation { city } => {
                let city = city_for(city);
                city_of.insert(src.name.clone(), Arc::clone(&city));
                let rows: Vec<Row> = city
                    .population
                    .iter()
                    .map(|(code, pop)| vec![Value::Str(code.clone()), Value::Int(*pop as i64)])
                    .collect();
                Node::Rows {
                    ds: Dataset::from_vec_with(rows, partitions, cfg),
                    schema: vec!["code".to_string(), "population".to_string()],
                }
            }
            SourceKind::Blobs(p) => {
                let ds = make_blobs(p);
                Node::Rows {
                    ds: Dataset::from_vec_with(labeled_rows(&ds), partitions, cfg),
                    schema: labeled_schema(p.dims),
                }
            }
            SourceKind::Iris => {
                let ds = iris();
                let dims = ds.dims();
                Node::Rows {
                    ds: Dataset::from_vec_with(labeled_rows(&ds), partitions, cfg),
                    schema: labeled_schema(dims),
                }
            }
        };
        nodes.insert(src.name.clone(), node);
    }

    for st in &spec.stages {
        let section = format!("stage.{}", st.name);
        let input = nodes.get(&st.input).expect("validated reference");
        let rows_input = |op: &str| -> Result<(&Dataset<Row>, &Vec<String>), SpecError> {
            match input {
                Node::Rows { ds, schema } => Ok((ds, schema)),
                Node::Keyed { .. } => Err(SpecError::at(
                    st.line,
                    &section,
                    format!("op `{op}` needs a rows input, but `{}` is keyed (unkey it first)", st.input),
                )),
            }
        };
        let keyed_input = |name: &str, op: &str| -> Result<&Node, SpecError> {
            match nodes.get(name).expect("validated reference") {
                n @ Node::Keyed { .. } => Ok(n),
                Node::Rows { .. } => Err(SpecError::at(
                    st.line,
                    &section,
                    format!("op `{op}` needs a keyed input, but `{name}` is rows (key_by it first)"),
                )),
            }
        };

        let node = match &st.op {
            StageOp::ParseArrest => {
                let (ds, schema) = rows_input("parse_arrest")?;
                if schema.len() != 1 {
                    return Err(SpecError::at(
                        st.line,
                        &section,
                        format!(
                            "parse_arrest wants single-column text lines, got {} columns",
                            schema.len()
                        ),
                    ));
                }
                Node::Rows {
                    // Mirrors `peachy::city::parse_arrest`: id,year,offense,x,y
                    // with dirty rows (missing fields, unparsable or
                    // non-finite numbers) dropped.
                    ds: ds.flat_map(|row: Row| {
                        let Some(Value::Str(line)) = row.into_iter().next() else {
                            return None;
                        };
                        let fields: Vec<&str> = line.split(',').collect();
                        if fields.len() != 5 {
                            return None;
                        }
                        let year: u32 = fields[1].trim().parse().ok()?;
                        let x: f64 = fields[3].trim().parse().ok()?;
                        let y: f64 = fields[4].trim().parse().ok()?;
                        if !x.is_finite() || !y.is_finite() {
                            return None;
                        }
                        Some(vec![
                            Value::Int(year as i64),
                            Value::Str(fields[2].trim().to_string()),
                            Value::Float(x),
                            Value::Float(y),
                        ])
                    }),
                    schema: ["year", "offense", "x", "y"].map(String::from).to_vec(),
                }
            }
            StageOp::Locate { boundaries } => {
                let (ds, schema) = rows_input("locate")?;
                let xi = col_idx(schema, "x", st.line, &section)?;
                let yi = col_idx(schema, "y", st.line, &section)?;
                let city = city_of.get(boundaries).expect("validated city source");
                let ntas: Arc<Vec<Nta>> = Arc::new(city.ntas.clone());
                Node::Rows {
                    ds: ds.flat_map(move |row: Row| {
                        let (x, y) = match (&row[xi], &row[yi]) {
                            (Value::Float(x), Value::Float(y)) => (*x, *y),
                            (a, b) => panic!(
                                "locate wants float x/y, got {} and {}",
                                a.type_name(),
                                b.type_name()
                            ),
                        };
                        locate(&ntas, Point { x, y }).map(|idx| vec![Value::Str(ntas[idx].code.clone())])
                    }),
                    schema: vec!["code".to_string()],
                }
            }
            StageOp::Map { cols } => {
                let (ds, schema) = rows_input("map")?;
                let mut out_schema = Vec::new();
                let mut exprs = Vec::new();
                for (name, src, line) in cols {
                    if out_schema.contains(name) {
                        return Err(SpecError::at(
                            *line,
                            &section,
                            format!("duplicate output column `{name}`"),
                        ));
                    }
                    out_schema.push(name.clone());
                    exprs.push(parse_expr(src, schema, *line, &section)?);
                }
                Node::Rows {
                    ds: ds.map(move |row: Row| exprs.iter().map(|e| e.eval(&row)).collect::<Row>()),
                    schema: out_schema,
                }
            }
            StageOp::Filter { pred, line } => {
                let (ds, schema) = rows_input("filter")?;
                let pred = parse_expr(pred, schema, *line, &section)?;
                Node::Rows {
                    ds: ds.filter(move |row: &Row| pred.eval_bool(row)),
                    schema: schema.clone(),
                }
            }
            StageOp::Select { cols, line } => {
                let (ds, schema) = rows_input("select")?;
                let idxs: Vec<usize> = cols
                    .iter()
                    .map(|c| col_idx(schema, c, *line, &section))
                    .collect::<Result<_, _>>()?;
                Node::Rows {
                    ds: ds.map(move |row: Row| idxs.iter().map(|&i| row[i].clone()).collect::<Row>()),
                    schema: cols.clone(),
                }
            }
            StageOp::KeyBy { key, line } => {
                let (ds, schema) = rows_input("key_by")?;
                let ki = col_idx(schema, key, *line, &section)?;
                let vschema: Vec<String> = schema
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != ki)
                    .map(|(_, c)| c.clone())
                    .collect();
                let pairs = ds.map(move |row: Row| {
                    let key = row[ki].clone();
                    let value: Row = row
                        .into_iter()
                        .enumerate()
                        .filter(|(i, _)| *i != ki)
                        .map(|(_, v)| v)
                        .collect();
                    (key, value)
                });
                Node::Keyed {
                    ds: KeyedDataset::from_dataset(pairs).with_stats(Arc::clone(&stats)),
                    key_name: key.clone(),
                    vschema,
                }
            }
            StageOp::Count { key, line } => {
                let (ds, schema) = rows_input("count")?;
                let ki = col_idx(schema, key, *line, &section)?;
                Node::Keyed {
                    ds: ds
                        .key_by(move |row: &Row| row[ki].clone())
                        .with_stats(Arc::clone(&stats))
                        .map_values(|_| vec![Value::Int(1)])
                        .reduce_by_key(|a, b| vec![add_values(a[0].clone(), b[0].clone())]),
                    key_name: key.clone(),
                    vschema: vec!["count".to_string()],
                }
            }
            StageOp::Sum { key, col, line } => {
                let (ds, schema) = rows_input("sum")?;
                let ki = col_idx(schema, key, *line, &section)?;
                let ci = col_idx(schema, col, *line, &section)?;
                Node::Keyed {
                    ds: ds
                        .key_by(move |row: &Row| row[ki].clone())
                        .with_stats(Arc::clone(&stats))
                        .map_values(move |row: Row| vec![row[ci].clone()])
                        .reduce_by_key(|a, b| vec![add_values(a[0].clone(), b[0].clone())]),
                    key_name: key.clone(),
                    vschema: vec![col.clone()],
                }
            }
            StageOp::Group { key, line } => {
                let (ds, schema) = rows_input("group")?;
                let ki = col_idx(schema, key, *line, &section)?;
                Node::Keyed {
                    ds: ds
                        .key_by(move |row: &Row| row[ki].clone())
                        .with_stats(Arc::clone(&stats))
                        .group_by_key()
                        .map_values(|rows: Vec<Row>| {
                            vec![Value::List(rows.into_iter().map(Value::List).collect())]
                        }),
                    key_name: key.clone(),
                    vschema: vec!["group".to_string()],
                }
            }
            StageOp::Join {
                with,
                broadcast,
                line,
            } => {
                let (lds, lkey, lvs) = match keyed_input(&st.input, "join")? {
                    Node::Keyed {
                        ds,
                        key_name,
                        vschema,
                    } => (ds, key_name, vschema),
                    Node::Rows { .. } => unreachable!(),
                };
                let (rds, rvs) = match keyed_input(with, "join")? {
                    Node::Keyed { ds, vschema, .. } => (ds, vschema),
                    Node::Rows { .. } => unreachable!(),
                };
                if let Some(clash) = lvs.iter().find(|c| rvs.contains(c)) {
                    return Err(SpecError::at(
                        *line,
                        &section,
                        format!(
                            "both join sides have a `{clash}` column — select/map one side first"
                        ),
                    ));
                }
                let joined = if *broadcast {
                    lds.broadcast_join(rds)
                } else {
                    lds.join(rds)
                };
                Node::Keyed {
                    ds: joined.map_values(|(a, b): (Row, Row)| {
                        a.into_iter().chain(b).collect::<Row>()
                    }),
                    key_name: lkey.clone(),
                    vschema: lvs.iter().chain(rvs.iter()).cloned().collect(),
                }
            }
            StageOp::Unkey { key_as } => {
                let (kds, vschema) = match keyed_input(&st.input, "unkey")? {
                    Node::Keyed { ds, vschema, .. } => (ds, vschema),
                    Node::Rows { .. } => unreachable!(),
                };
                let schema: Vec<String> = std::iter::once(key_as.clone())
                    .chain(vschema.iter().cloned())
                    .collect();
                Node::Rows {
                    ds: kds
                        .rows()
                        .map(|(k, v): (Value, Row)| std::iter::once(k).chain(v).collect::<Row>()),
                    schema,
                }
            }
        };
        nodes.insert(st.name.clone(), node);
    }

    Ok(Compiled { nodes, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_scenario;

    fn run_rows(text: &str, from: &str) -> (Vec<Row>, Vec<String>) {
        let spec = parse_scenario(text).unwrap();
        let compiled = compile(&spec).unwrap();
        match &compiled.nodes[from] {
            Node::Rows { ds, schema } => (ds.collect(), schema.clone()),
            Node::Keyed { ds, .. } => (
                ds.collect()
                    .into_iter()
                    .map(|(k, v)| std::iter::once(k).chain(v).collect())
                    .collect(),
                compiled.nodes[from].columns(),
            ),
        }
    }

    const HEADER: &str = "[scenario]\nname = t\n[run]\npartitions = 2\n";

    #[test]
    fn inline_map_filter_lowers() {
        let text = format!(
            "{HEADER}[source.rows]\nkind = inline\ncolumns = \"name, n\"\nrow = \"a, 1\"\nrow = \"b, 2\"\nrow = \"c, 3\"\n\
             [stage.big]\ninput = rows\nop = filter\nwhere = \"n >= 2\"\n\
             [stage.scaled]\ninput = big\nop = map\ncol.name = \"name\"\ncol.twice = \"n * 2\"\n\
             [sink]\nfrom = scaled\n"
        );
        let (mut rows, schema) = run_rows(&text, "scaled");
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(schema, vec!["name", "twice"]);
        assert_eq!(
            rows,
            vec![
                vec![Value::Str("b".into()), Value::Int(4)],
                vec![Value::Str("c".into()), Value::Int(6)],
            ]
        );
    }

    #[test]
    fn count_and_join_lower_onto_keyed_world() {
        let text = format!(
            "{HEADER}[source.votes]\nkind = inline\ncolumns = \"city, n\"\nrow = \"ana, 1\"\nrow = \"bo, 1\"\nrow = \"ana, 1\"\n\
             [source.pops]\nkind = inline\ncolumns = \"city, pop\"\nrow = \"ana, 10\"\nrow = \"bo, 20\"\n\
             [stage.counts]\ninput = votes\nop = count\nkey = city\n\
             [stage.keyed_pops]\ninput = pops\nop = key_by\nkey = city\n\
             [stage.joined]\ninput = counts\nop = join\nwith = keyed_pops\n\
             [stage.flat]\ninput = joined\nop = unkey\nkey_as = city\n\
             [sink]\nfrom = flat\n"
        );
        let (mut rows, schema) = run_rows(&text, "flat");
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(schema, vec!["city", "count", "pop"]);
        assert_eq!(
            rows,
            vec![
                vec![Value::Str("ana".into()), Value::Int(2), Value::Int(10)],
                vec![Value::Str("bo".into()), Value::Int(1), Value::Int(20)],
            ]
        );
    }

    #[test]
    fn bad_expression_column_is_a_compile_error() {
        let text = format!(
            "{HEADER}[source.rows]\nkind = inline\ncolumns = \"n\"\nrow = \"1\"\n\
             [stage.f]\ninput = rows\nop = filter\nwhere = \"m > 0\"\n[sink]\nfrom = f\n"
        );
        let spec = parse_scenario(&text).unwrap();
        let err = compile(&spec).err().expect("unknown column must fail");
        assert_eq!(err.section, "stage.f");
        assert_eq!(err.hint.as_deref(), Some("n"));
    }

    #[test]
    fn group_nests_rows_per_key() {
        let text = format!(
            "{HEADER}[source.rows]\nkind = inline\ncolumns = \"k, v\"\nrow = \"a, 1\"\nrow = \"a, 2\"\nrow = \"b, 3\"\n\
             [stage.g]\ninput = rows\nop = group\nkey = k\n[sink]\nfrom = g\n"
        );
        let (rows, schema) = run_rows(&text, "g");
        assert_eq!(schema, vec!["k", "group"]);
        let a = rows.iter().find(|r| r[0] == Value::Str("a".into())).unwrap();
        let Value::List(groups) = &a[1] else { panic!("expected list") };
        assert_eq!(groups.len(), 2);
    }
}
